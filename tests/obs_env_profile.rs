//! Regression for the CI observability profile: `GROUPSAFE_OBS` must
//! reach the built engine whichever way the builder was assembled, a
//! malformed value must fail the build loudly, and explicit
//! [`SystemBuilder::observe`] calls must still win over it.
//!
//! One test, alone in its own binary: the env var is process-global, so
//! it must not race sibling tests that build systems concurrently.

use groupsafe::core::{BuildError, System};
use groupsafe::sim::{ObsConfig, ObsMode};

#[test]
fn env_profile_parses_plumbs_and_yields_to_explicit() {
    // ---- parsing: every recognised profile, and a typed error on typos
    // (a malformed value must never silently disable recording — that
    // would make an "obs on" CI pass vacuous).
    let parse = |v: Option<&str>| {
        match v {
            Some(v) => std::env::set_var("GROUPSAFE_OBS", v),
            None => std::env::remove_var("GROUPSAFE_OBS"),
        }
        let got = ObsConfig::from_env();
        std::env::remove_var("GROUPSAFE_OBS");
        got
    };
    assert_eq!(parse(None), Ok(None));
    assert_eq!(parse(Some("")), Ok(None));
    assert_eq!(parse(Some("off")), Ok(Some(ObsConfig::disabled())));
    assert_eq!(parse(Some("ring")), Ok(Some(ObsConfig::default())));
    assert_eq!(parse(Some("ring:64")), Ok(Some(ObsConfig::ring(64))));
    assert_eq!(
        parse(Some("full")).map(|o| o.map(|c| c.mode)),
        Ok(Some(ObsMode::Stream))
    );
    assert_eq!(
        parse(Some("stream")).map(|o| o.map(|c| c.mode)),
        Ok(Some(ObsMode::Stream))
    );
    for bad in ["rings", "ring:x", "off:64", "full:", "ring:0x10"] {
        assert!(
            parse(Some(bad)).is_err(),
            "{bad:?} must be a typed error, not silently record nothing"
        );
    }

    // ---- a malformed profile fails the build with a typed error.
    std::env::set_var("GROUPSAFE_OBS", "rings");
    let err = System::builder().build();
    std::env::remove_var("GROUPSAFE_OBS");
    assert!(
        matches!(
            err.as_ref().map(|_| ()),
            Err(BuildError::BadEnvProfile {
                var: "GROUPSAFE_OBS",
                ..
            })
        ),
        "a malformed profile must fail the build loudly"
    );

    // ---- the profile reaches the built engine...
    std::env::set_var("GROUPSAFE_OBS", "full");
    let run = System::builder().build().expect("valid");
    assert_eq!(run.system().engine.obs().mode(), ObsMode::Stream);

    // ---- ...and an explicit setter still beats it.
    let run = System::builder()
        .observe(ObsConfig::disabled())
        .build()
        .expect("valid");
    std::env::remove_var("GROUPSAFE_OBS");
    assert_eq!(
        run.system().engine.obs().mode(),
        ObsMode::Disabled,
        "explicit wins over the env profile"
    );
}
