//! Seeded scenario fuzzing, smoke-sized for `cargo test` (CI runs the
//! full budget through the `scenario_fuzz` bench bin), plus the negative
//! control: the oracle must demonstrably *catch* violations when a run
//! is audited against a safety level it does not honour.

use groupsafe::core::scenario::fuzz::{generate_plan, run_fuzz_case, FuzzSpec};
use groupsafe::core::scenario::{audit_scenario, OracleViolation, ScenarioPlan};
use groupsafe::core::{Load, SafetyLevel, System, Technique};
use groupsafe::sim::{SimDuration, SimTime};

/// Group-safe and 2-safe runs must satisfy the oracle on every seed.
#[test]
fn strong_levels_survive_random_scenarios() {
    for level in [SafetyLevel::GroupSafe, SafetyLevel::TwoSafe] {
        let spec = FuzzSpec::smoke(level);
        for seed in 0..25 {
            let out = run_fuzz_case(seed, &spec);
            assert!(out.ok(), "{}", out.describe());
            assert!(out.commits > 0, "seed {seed} never committed");
        }
    }
}

/// Weak levels under the same scenarios: the oracle's accounting rules
/// (rather than blanket no-loss) must hold — e.g. every 1-safe loss is
/// attributable to a delegate crash.
#[test]
fn weak_levels_satisfy_their_accounting_rules() {
    for level in [SafetyLevel::ZeroSafe, SafetyLevel::OneSafe] {
        let spec = FuzzSpec::smoke(level);
        for seed in 0..10 {
            let out = run_fuzz_case(seed, &spec);
            assert!(out.ok(), "{}", out.describe());
        }
    }
}

/// Same seed, same plan, same fingerprint: a failing seed is a complete
/// reproduction recipe.
#[test]
fn fuzz_cases_replay_bit_for_bit() {
    let spec = FuzzSpec::smoke(SafetyLevel::GroupSafe);
    let a = run_fuzz_case(7, &spec);
    let b = run_fuzz_case(7, &spec);
    assert_eq!(a.plan, b.plan, "plan generation must be deterministic");
    assert_eq!(a.fingerprint, b.fingerprint, "replay must be bit-for-bit");
    assert_eq!(a.commits, b.commits);
    assert_ne!(
        a.plan,
        generate_plan(8, &spec),
        "different seeds explore different scenarios"
    );
}

fn lazy_delegate_crash_system() -> (ScenarioPlan, groupsafe::core::System) {
    // The deliberately broken shadow configuration: a 1-safe (lazy)
    // system under a delegate crash, audited below as if it were
    // group-safe. High load + a delegate that never returns makes the
    // un-propagated window essentially certain to contain commits.
    let plan = ScenarioPlan::new().crash(SimTime::from_millis(2_333), 0);
    let mut run = System::builder()
        .servers(5)
        .clients_per_server(2)
        .technique(Technique::Lazy)
        // A wide propagation window (the 1-safe inconsistency window)
        // makes the delegate-local loss essentially certain.
        .lazy_prop_interval(SimDuration::from_millis(500))
        .load(Load::open_tps(40.0))
        .measure(SimDuration::from_secs(5))
        .drain(SimDuration::from_secs(2))
        .seed(23)
        .scenario(plan.clone())
        .build()
        .expect("valid");
    let end = SimTime::from_secs(5);
    run.run_until(end);
    run.stop_clients_at(end);
    run.run_until(end + SimDuration::from_secs(2));
    (plan, run.into_system())
}

/// Negative control: the oracle catches the seeded violation. A lazy
/// run that loses delegate-local commits is fine under its own level's
/// accounting — and a reported violation under a group-safe claim.
#[test]
fn oracle_catches_a_seeded_violation() {
    let (plan, system) = lazy_delegate_crash_system();
    assert!(
        !system.lost_transactions().is_empty(),
        "the shadow config must actually lose acknowledged work"
    );

    // Audited at its true level: every loss is accounted to the crashed
    // delegate — clean.
    let honest = audit_scenario(&plan, &system, SafetyLevel::OneSafe);
    assert!(honest.clean(), "{:?}", honest.violations);

    // Audited against the group-safe claim: the oracle must object,
    // naming the unaccounted losses.
    let dishonest = audit_scenario(&plan, &system, SafetyLevel::GroupSafe);
    assert!(!dishonest.clean(), "the oracle must catch the violation");
    assert!(
        dishonest.violations.iter().any(|v| matches!(
            v,
            OracleViolation::UnexpectedLoss {
                level: SafetyLevel::GroupSafe,
                ..
            }
        )),
        "{:?}",
        dishonest.violations
    );
    // And against the 2-safe claim, which never loses.
    let two = audit_scenario(&plan, &system, SafetyLevel::TwoSafe);
    assert!(!two.clean());
}
