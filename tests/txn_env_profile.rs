//! Regression for the CI transaction profile: `GROUPSAFE_TXN` must
//! reach the built system whichever way the builder was assembled, and
//! explicit transaction setters must still win over it.
//!
//! One test, alone in its own binary: the env var is process-global, so
//! it must not race sibling tests that build systems concurrently.

use groupsafe::core::{txn_from_env, SafetyLevel, System, Technique};
use groupsafe::workload::{builder_for, RunConfig};

#[test]
fn env_profile_parses_plumbs_and_yields_to_explicit() {
    // ---- parsing: the recognised shapes, and a typed error on typos
    // (a malformed value must never silently select the classic mix —
    // that would make a "transactions on" CI pass vacuous).
    let parse = |v: Option<&str>| {
        match v {
            Some(v) => std::env::set_var("GROUPSAFE_TXN", v),
            None => std::env::remove_var("GROUPSAFE_TXN"),
        }
        let got = txn_from_env();
        std::env::remove_var("GROUPSAFE_TXN");
        got
    };
    assert_eq!(parse(None), Ok(None));
    assert_eq!(parse(Some("off")), Ok(None));
    assert_eq!(parse(Some("  ")), Ok(None));
    assert_eq!(parse(Some("0.5")), Ok(Some((0.5, None))));
    assert_eq!(parse(Some("1")), Ok(Some((1.0, None))));
    assert_eq!(parse(Some("0.25:4-8")), Ok(Some((0.25, Some((4, 8))))));
    assert_eq!(parse(Some(" 0.5 : 2 - 6 ")), Ok(Some((0.5, Some((2, 6))))));
    for bad in [
        "half", "1.5", "-0.1", "0.5:8-4", "0.5:0-0", "0.5:4", "0.5:a-b",
    ] {
        assert!(
            parse(Some(bad)).is_err(),
            "{bad:?} must be a typed error, not silently select the classic mix"
        );
    }
    // And the error must surface through the builder as a typed
    // BuildError, failing the build loudly.
    std::env::set_var("GROUPSAFE_TXN", "lots");
    let err = System::builder().build();
    std::env::remove_var("GROUPSAFE_TXN");
    assert!(
        matches!(
            err.as_ref().map(|_| ()),
            Err(groupsafe::core::BuildError::BadEnvProfile {
                var: "GROUPSAFE_TXN",
                ..
            })
        ),
        "a malformed profile must fail the build with a typed error"
    );

    // ---- precedence through the builder.
    std::env::set_var("GROUPSAFE_TXN", "0.4:5-9");

    // The profile reaches the effective workload, and the snapshot mix
    // switches the multi-version store on.
    let b = System::builder();
    let spec = b.effective_workload().expect("valid");
    assert_eq!(spec.txn_fraction, 0.4, "env profile was dropped");
    assert_eq!((spec.txn_ops_min, spec.txn_ops_max), (5, 9));
    let cfg = b.to_system_config().expect("valid");
    assert!(
        cfg.replica.db.mvcc_depth > 0,
        "the snapshot mix enables MVCC"
    );

    // The canonical workload driver path (`builder_for`) as well.
    let run_cfg = RunConfig::paper(Technique::Dsm(SafetyLevel::GroupSafe), 30.0, 1);
    let spec = builder_for(&run_cfg).effective_workload().expect("valid");
    assert_eq!(spec.txn_fraction, 0.4, "builder_for shed the profile");

    // Explicit calls still beat the env — including an explicit zero.
    let b = System::builder().txn_fraction(0.0);
    let spec = b.effective_workload().expect("valid");
    assert_eq!(spec.txn_fraction, 0.0, "explicit wins");
    let cfg = b.to_system_config().expect("valid");
    assert_eq!(cfg.replica.db.mvcc_depth, 0, "classic keeps MVCC off");
    let spec = System::builder()
        .txn_ops(2, 3)
        .effective_workload()
        .expect("valid");
    assert_eq!(
        (spec.txn_ops_min, spec.txn_ops_max),
        (2, 3),
        "explicit ops range wins"
    );

    std::env::remove_var("GROUPSAFE_TXN");
}
