//! The `obs ≡ seed` pin: observability recording never touches the
//! dispatch fingerprint, the RNG streams or the event queue, so the
//! disabled, flight-recorder-ring and full-stream modes replay one seed
//! bit-for-bit — same fingerprint, same commits, same digests. Same
//! pattern as `tests/reads_off_equivalence.rs`: the baseline pins the
//! disabled mode explicitly, so the comparison holds under the
//! `GROUPSAFE_OBS` env profile too.

use groupsafe::core::scenario::fuzz::{run_fuzz_case, FuzzSpec};
use groupsafe::core::scenario::OracleViolation;
use groupsafe::core::{Load, SafetyLevel, System, SystemBuilder};
use groupsafe::sim::{ObsConfig, SimDuration};

fn base(seed: u64) -> SystemBuilder {
    // Pin the profile-free default (no sibling test in this binary ever
    // sets the variable, so clearing it is race-free).
    std::env::remove_var("GROUPSAFE_OBS");
    System::builder()
        .servers(3)
        .clients_per_server(2)
        .safety(SafetyLevel::GroupSafe)
        .load(Load::open_tps(15.0))
        .measure(SimDuration::from_secs(5))
        .drain(SimDuration::from_secs(2))
        .seed(seed)
}

#[test]
fn recording_mode_never_changes_the_run() {
    let disabled = base(4242)
        .observe(ObsConfig::disabled())
        .build()
        .expect("valid")
        .execute();
    // The untouched default: the bounded ring flight recorder.
    let ring = base(4242).build().expect("valid").execute();
    let stream = base(4242)
        .observe(ObsConfig::stream())
        .build()
        .expect("valid")
        .execute();
    assert_eq!(disabled.fingerprint, ring.fingerprint, "ring ≡ off");
    assert_eq!(disabled.fingerprint, stream.fingerprint, "stream ≡ off");
    assert_eq!(disabled.commits, ring.commits);
    assert_eq!(disabled.commits, stream.commits);
    assert_eq!(disabled.digests, ring.digests);
    assert_eq!(disabled.digests, stream.digests);
    // The ring retains no stream, so its report (decomposition included)
    // is byte-identical to the disabled run's.
    assert_eq!(disabled.to_json(), ring.to_json(), "whole report");
    assert!(disabled.obs_phases.is_empty());
    // Stream mode adds the phase decomposition — and nothing else.
    assert_eq!(stream.obs_phases.len(), 1, "one global row unsharded");
}

/// The acceptance reconciliation: each commit span's four phases are
/// consecutive, so their means sum exactly to the mean end-to-end
/// latency of the spanned commits.
#[test]
fn phase_means_reconcile_with_end_to_end_latency() {
    let report = base(7)
        .observe(ObsConfig::stream())
        .build()
        .expect("valid")
        .execute();
    let row = &report.obs_phases[0];
    assert!(row.commits > 10, "{report}");
    assert!(row.submit_ms >= 0.0 && row.exec_ms > 0.0 && row.commit_ms > 0.0);
    let total = row.total_ms();
    assert!(
        (total - (row.submit_ms + row.exec_ms + row.commit_ms + row.reply_ms)).abs() < 1e-12,
        "phases must sum to the end-to-end mean"
    );
    // Sanity against the wall: the commit phase (ordering + stability +
    // certification) dominates a group-safe pipeline.
    assert!(row.commit_ms > row.submit_ms, "{report}");
}

/// The fuzz repro dump carries the flight recorder's tail: the
/// default ring captures the pipeline's last events, and a violating
/// outcome's describe() appends them after the plan and violations.
/// The violation is seeded by hand (negative control) — a correct run
/// can never produce one.
#[test]
fn violation_dump_includes_the_flight_recorder_tail() {
    let clean = run_fuzz_case(3, &FuzzSpec::smoke(SafetyLevel::GroupSafe));
    assert!(clean.ok(), "{}", clean.describe());
    assert!(
        !clean.flight.is_empty(),
        "the default ring must have recorded the pipeline's tail"
    );
    // Seed a violation into a copy of the outcome and check the dump.
    let mut bad = clean.clone();
    bad.audit.violations = vec![OracleViolation::Divergence {
        digests: vec![1, 2],
    }];
    assert!(!bad.ok());
    let dump = bad.describe();
    assert!(dump.contains("VIOLATION"), "{dump}");
    assert!(dump.contains("flight recorder tail:"), "{dump}");
    assert!(
        dump.contains("client_ack") || dump.contains("uniform_deliver"),
        "the tail must carry rendered pipeline stages:\n{dump}"
    );
}
