//! Regression for the CI batching profile: `GROUPSAFE_BATCHING` must
//! reach the built system whichever way the builder was assembled, and
//! an explicit `.batching(..)` call must still win over it.
//!
//! One test, alone in its own binary: the env var is process-global, so
//! it must not race sibling tests that build systems concurrently.

use groupsafe::core::{BatchConfig, ReplicaConfig, SafetyLevel, System, Technique};
use groupsafe::sim::SimDuration;
use groupsafe::workload::{builder_for, RunConfig};

#[test]
fn env_profile_survives_replica_replacement_and_yields_to_explicit() {
    // ---- parsing: every recognised profile, and a typed error on typos
    // (a malformed value must never silently select the unbatched
    // profile — that would make a "batching on" CI pass vacuous).
    let parse = |v: Option<&str>| {
        match v {
            Some(v) => std::env::set_var("GROUPSAFE_BATCHING", v),
            None => std::env::remove_var("GROUPSAFE_BATCHING"),
        }
        let got = BatchConfig::from_env();
        std::env::remove_var("GROUPSAFE_BATCHING");
        got
    };
    assert_eq!(parse(None), Ok(None));
    assert_eq!(parse(Some("off")), Ok(None));
    assert_eq!(
        parse(Some("on")),
        Ok(Some(BatchConfig::of(8, SimDuration::from_micros(500))))
    );
    assert_eq!(
        parse(Some("msgs=16,delay_us=250,bytes=4096")),
        Ok(Some(BatchConfig {
            max_msgs: 16,
            max_bytes: 4096,
            max_delay: SimDuration::from_micros(250),
        }))
    );
    for bad in ["msg=8", "msgs=0", "msgs=eight", "batch"] {
        assert!(
            parse(Some(bad)).is_err(),
            "{bad:?} must be a typed error, not silently disable batching"
        );
    }
    // And the error must surface through the builder as a typed
    // BuildError, failing the build loudly.
    std::env::set_var("GROUPSAFE_BATCHING", "msgs=zero");
    let err = System::builder().build();
    std::env::remove_var("GROUPSAFE_BATCHING");
    assert!(
        matches!(
            err.as_ref().map(|_| ()),
            Err(groupsafe::core::BuildError::BadEnvProfile {
                var: "GROUPSAFE_BATCHING",
                ..
            })
        ),
        "a malformed profile must fail the build with a typed error"
    );

    // ---- precedence through the builder.
    std::env::set_var("GROUPSAFE_BATCHING", "msgs=4,delay_us=100");

    // A later `.replica(..)` (the workload drivers do exactly this) must
    // not shed the env-selected profile.
    let cfg = System::builder()
        .replica(ReplicaConfig::default())
        .to_system_config()
        .expect("valid");
    assert_eq!(cfg.replica.batch.max_msgs, 4, "env profile was dropped");

    // The canonical workload driver path (`builder_for`) as well.
    let run_cfg = RunConfig::paper(Technique::Dsm(SafetyLevel::GroupSafe), 30.0, 1);
    let cfg = builder_for(&run_cfg).to_system_config().expect("valid");
    assert_eq!(
        cfg.replica.batch.max_msgs, 4,
        "builder_for shed the profile"
    );

    // An explicit call still beats the env.
    let cfg = System::builder()
        .batching(BatchConfig::unbatched())
        .to_system_config()
        .expect("valid");
    assert!(
        !cfg.replica.batch.enabled(),
        "explicit .batching() must win"
    );

    std::env::remove_var("GROUPSAFE_BATCHING");
}
