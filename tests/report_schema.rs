//! The report JSON schema pin: `Report::to_json` is a hand-rolled,
//! key-ordered rendering that downstream tooling parses positionally, so
//! its shape is golden-filed. The run is fully deterministic (pinned
//! seed, simulated time only), so the whole rendering — values included
//! — must match `tests/golden/report_schema.json` byte-for-byte. Bump
//! [`Report::SCHEMA_VERSION`] and regenerate the golden file whenever a
//! key is added, removed or changes meaning.

use groupsafe::core::{Load, Report, SafetyLevel, System};
use groupsafe::sim::{ObsConfig, SimDuration};

const GOLDEN: &str = include_str!("golden/report_schema.json");

fn pinned_report() -> Report {
    // No sibling test sets the variable; clearing is race-free.
    std::env::remove_var("GROUPSAFE_OBS");
    System::builder()
        .servers(3)
        .clients_per_server(2)
        .safety(SafetyLevel::GroupSafe)
        .load(Load::open_tps(10.0))
        .measure(SimDuration::from_secs(4))
        .drain(SimDuration::from_secs(2))
        .seed(42)
        .observe(ObsConfig::stream())
        .build()
        .expect("valid")
        .execute()
}

#[test]
fn report_json_matches_the_golden_file() {
    let json = pinned_report().to_json();
    // Regenerate with:
    //   GROUPSAFE_REGOLDEN=1 cargo test --test report_schema
    if std::env::var("GROUPSAFE_REGOLDEN").is_ok() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/report_schema.json"
        );
        std::fs::write(path, format!("{json}\n")).expect("write golden");
        eprintln!("regenerated {path}");
        return;
    }
    assert_eq!(
        json,
        GOLDEN.trim_end(),
        "Report::to_json drifted from tests/golden/report_schema.json — \
         if the change is intentional, bump Report::SCHEMA_VERSION and \
         regenerate the golden file"
    );
}

#[test]
fn schema_version_is_the_first_key() {
    let json = pinned_report().to_json();
    let prefix = format!("{{\"schema_version\":{},", Report::SCHEMA_VERSION);
    assert!(json.starts_with(&prefix), "{json}");
    assert_eq!(Report::SCHEMA_VERSION, 2);
    // The new sections are present and the object still closes on the
    // fingerprint (kept last so a truncated file is detectable).
    assert!(json.contains("\"obs_phases\":["), "{json}");
    assert!(json.contains("\"phases\":["), "{json}");
    let tail_ok = json.ends_with('}')
        && json.rfind("\"fingerprint\":").is_some_and(|i| {
            !json[i..].contains("\"obs_phases\"") && !json[i..].contains("\"phases\"")
        });
    assert!(tail_ok, "fingerprint must stay the last key: {json}");
}
