//! The very-safe level (§2.1): the client is notified only when the
//! transaction is logged on *all* servers — so it survives anything, but
//! "a single crash renders the system unavailable".

use groupsafe::core::{FaultPlan, Load, Run, SafetyLevel, System, Technique};
use groupsafe::net::NodeId;
use groupsafe::sim::{SimDuration, SimTime};
use groupsafe::workload::{run_crash_scenario, CrashScenario, RecoveryPlan};

fn build(seed: u64, faults: FaultPlan) -> Run {
    System::builder()
        .servers(3)
        .clients_per_server(2)
        .safety(SafetyLevel::VerySafe)
        .load(Load::open_tps(10.0))
        .warmup(SimDuration::from_secs(1))
        .measure(SimDuration::from_secs(10))
        .drain(SimDuration::from_secs(3))
        .faults(faults)
        .seed(seed)
        .build()
        .expect("a valid configuration")
}

#[test]
fn very_safe_commits_when_everyone_is_up() {
    let mut run = build(61, FaultPlan::none());
    let end = SimTime::from_secs(11);
    run.run_until(end);
    run.stop_clients_at(end);
    run.run_until(end + SimDuration::from_secs(3));
    let system = run.system();
    let acked = system.oracle.borrow().acked.len();
    assert!(
        acked > 40,
        "very-safe must make progress when all are up ({acked})"
    );
    assert!(system.lost_transactions().is_empty());
    assert_eq!(system.convergence().len(), 1);
    // Every acknowledged update transaction is durable on EVERY replica —
    // the defining property.
    let oracle = system.oracle.borrow();
    for (txn, _) in oracle.acked.iter() {
        if !oracle.commits.contains_key(txn) {
            continue; // read-only
        }
        for i in 0..system.n_servers {
            let db = system.server(i).db();
            assert!(db.is_committed(*txn), "acked {txn} missing on replica {i}");
        }
    }
}

#[test]
fn very_safe_blocks_while_any_server_is_down() {
    // One crash: after a short grace period for in-flight confirmations,
    // no commit acknowledgement completes while the server is down — but
    // nothing is lost. (Contrast: group-safe keeps committing, see
    // tests/system_safety.rs.)
    let crash_at = SimTime::from_secs(4);
    let mut run = build(63, FaultPlan::crash(NodeId(2), crash_at));
    run.run_until(SimTime::from_secs(9));
    let system = run.system();
    let oracle = system.oracle.borrow();
    let pre = oracle.acked.values().filter(|a| a.at <= crash_at).count();
    let grace = crash_at + SimDuration::from_millis(500);
    // Read-only transactions never broadcast and keep answering; the
    // blocking property is about update transactions.
    let post_grace = oracle
        .acked
        .iter()
        .filter(|(txn, a)| a.at > grace && oracle.commits.contains_key(txn))
        .count();
    drop(oracle);
    assert!(pre > 5, "pre-crash commits must have completed ({pre})");
    assert_eq!(
        post_grace, 0,
        "very-safe must block while a server is down (§2.1: a single crash \
         renders the system unavailable)"
    );
    assert!(
        system.lost_transactions().is_empty(),
        "blocking, not losing"
    );
}

#[test]
fn very_safe_survives_total_failure() {
    // All crash and recover: the end-to-end broadcast replays unlogged
    // deliveries; nothing acknowledged can be missing anywhere.
    let out = run_crash_scenario(&CrashScenario {
        load_tps: 10.0,
        recovery: RecoveryPlan::Recover {
            downtime: SimDuration::from_millis(400),
        },
        ..CrashScenario::small(
            Technique::Dsm(SafetyLevel::VerySafe),
            vec![0, 1, 2, 3, 4],
            67,
        )
    });
    assert_eq!(out.lost, 0, "very-safe can never lose an acknowledged txn");
    assert!(out.acked > 5);
}
