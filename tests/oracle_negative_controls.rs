//! Negative controls for the scenario oracle's convergence, total-order,
//! certification-determinism, cross-group atomicity and snapshot-
//! isolation arms (`OracleViolation::Divergence`,
//! `OracleViolation::OrderDivergence`,
//! `OracleViolation::CertificationDivergence`,
//! `OracleViolation::AtomicityViolation`, `OracleViolation::SiLostUpdate`,
//! `OracleViolation::SiDirtyRead`).
//!
//! A green oracle is only evidence if the oracle demonstrably *fails*
//! when its invariant is broken — and a correct run can never break
//! them, so each test seeds the violation by hand: a write applied to a
//! single replica behind the protocol's back, a poisoned delivery-order
//! or certification digest, a cross-group commit record whose slice one
//! group never committed, a forged snapshot-certification record. Each
//! test first audits the untouched run clean (the control's control),
//! then corrupts and asserts the specific violation variant is reported.
//! `groupsafe-lint`'s `oracle-coverage` rule (GS-P04) keeps this file
//! honest: every `OracleViolation` variant must be exercised by some
//! test under `tests/`.

use groupsafe::core::scenario::{audit_scenario, OracleViolation, ScenarioPlan};
use groupsafe::core::server::ReplicaServer;
use groupsafe::core::{Load, SafetyLevel, SiRecord, System};
use groupsafe::db::{ItemId, TxnId, WriteOp};
use groupsafe::sim::{SimDuration, SimTime};

/// A clean, quiescent group-safe run (no injected faults), returned as
/// a live `System` so the tests can corrupt it surgically.
fn clean_system(shards: u32, cross: f64) -> System {
    clean_system_with_txns(shards, cross, 0.0)
}

/// Like [`clean_system`], but with a fraction of the workload issued as
/// interactive snapshot-isolation transactions, so the SI audit arms
/// have delegate certification records to chew on.
fn clean_system_with_txns(shards: u32, cross: f64, txns: f64) -> System {
    let mut b = System::builder()
        .servers(3)
        .clients_per_server(2)
        .safety(SafetyLevel::GroupSafe)
        .load(Load::open_tps(15.0 * shards as f64))
        .measure(SimDuration::from_secs(5))
        .drain(SimDuration::from_secs(2))
        .seed(42);
    if txns > 0.0 {
        b = b.txn_fraction(txns);
    }
    if shards > 1 {
        b = b.shards(shards).cross_shard_fraction(cross);
    }
    let mut run = b.build().expect("valid");
    let end = SimTime::from_secs(5);
    run.run_until(end);
    run.stop_clients_at(end);
    // Drain past the audit's settle window so convergence is judged.
    run.run_until(end + SimDuration::from_secs(3));
    run.into_system()
}

fn violations(system: &System) -> Vec<OracleViolation> {
    audit_scenario(&ScenarioPlan::new(), system, SafetyLevel::GroupSafe).violations
}

/// Seeded state divergence: one replica gets a write the protocol never
/// delivered. The convergence arm must name the distinct digests.
#[test]
fn oracle_catches_seeded_state_divergence() {
    let mut system = clean_system(1, 0.0);
    assert!(
        violations(&system).is_empty(),
        "the untouched run must audit clean"
    );

    let now = system.engine.now();
    let id = system.servers[0];
    let server: &mut ReplicaServer = system.engine.actor_mut(id);
    let db = server.db_mut_for_audit_controls();
    let rogue_version = db.max_version() + 1;
    db.apply_unlogged(
        now,
        TxnId {
            client: u32::MAX,
            seq: u64::MAX,
        },
        &[WriteOp {
            item: ItemId(0),
            value: -1,
            version: rogue_version,
        }],
    );

    let found = violations(&system);
    assert!(
        found
            .iter()
            .any(|v| matches!(v, OracleViolation::Divergence { digests } if digests.len() > 1)),
        "a replica with a rogue write must be reported as divergence: {found:?}"
    );
}

/// Seeded order divergence: one never-crashed replica claims a
/// different delivery history. The total-order arm must name both
/// digests even though the replicas' *states* still agree.
#[test]
fn oracle_catches_seeded_order_divergence() {
    let mut system = clean_system(1, 0.0);
    assert!(
        violations(&system).is_empty(),
        "the untouched run must audit clean"
    );

    let id = system.servers[1];
    let server: &mut ReplicaServer = system.engine.actor_mut(id);
    server.poison_order_digest_for_audit_controls(0xdead_beef_dead_beef);

    let found = violations(&system);
    assert!(
        found.iter().any(
            |v| matches!(v, OracleViolation::OrderDivergence { digests } if digests.len() > 1)
        ),
        "a poisoned order digest must be reported as order divergence: {found:?}"
    );
    assert!(
        !found
            .iter()
            .any(|v| matches!(v, OracleViolation::Divergence { .. })),
        "order divergence must be distinguished from state divergence: {found:?}"
    );
}

/// Seeded atomicity violation: a committed single-group transaction is
/// re-recorded as a cross-group commit touching a group that never
/// committed its slice. The all-or-nothing arm must name the
/// transaction and the missing group.
#[test]
fn oracle_catches_seeded_atomicity_violation() {
    let system = clean_system(2, 0.10);
    assert!(
        violations(&system).is_empty(),
        "the untouched run must audit clean"
    );

    // Find an acknowledged transaction committed in group 0 but (being
    // single-group) absent from group 1, then forge an oracle record
    // claiming it touched both.
    let victim = {
        let oracle = system.oracle.borrow();
        oracle
            .acked
            .keys()
            .copied()
            .find(|txn| {
                !oracle.xg.contains_key(txn)
                    && system
                        .replica_states_of(0)
                        .iter()
                        .any(|(db, live)| *live && db.is_committed(*txn))
                    && !system
                        .replica_states_of(1)
                        .iter()
                        .any(|(db, live)| *live && db.is_committed(*txn))
            })
            .expect("a sharded run commits some group-0-only transaction")
    };
    system.oracle.borrow_mut().record_xg(victim, vec![0, 1], 0);

    let found = violations(&system);
    assert!(
        found.iter().any(|v| matches!(
            v,
            OracleViolation::AtomicityViolation { txn, group: 1, .. } if *txn == victim
        )),
        "a forged cross-group record must be reported as an atomicity \
         violation naming the missing group: {found:?}"
    );
}

/// Seeded certification divergence: one never-crashed replica claims
/// different certification verdicts. The determinism arm must name both
/// digests — and keep them distinct from the order and state arms,
/// since neither the delivery history nor the replica states changed.
#[test]
fn oracle_catches_seeded_certification_divergence() {
    let mut system = clean_system_with_txns(1, 0.0, 0.4);
    let audit = audit_scenario(&ScenarioPlan::new(), &system, SafetyLevel::GroupSafe);
    assert!(
        audit.violations.is_empty(),
        "the untouched run must audit clean"
    );
    assert!(
        audit.si_audited > 0,
        "the control run must actually exercise the snapshot path"
    );

    let id = system.servers[2];
    let server: &mut ReplicaServer = system.engine.actor_mut(id);
    server.poison_cert_digest_for_audit_controls(0xbad0_cafe_bad0_cafe);

    let found = violations(&system);
    assert!(
        found.iter().any(|v| matches!(
            v,
            OracleViolation::CertificationDivergence { group: 0, digests } if digests.len() > 1
        )),
        "a poisoned certification digest must be reported as \
         certification divergence: {found:?}"
    );
    assert!(
        !found.iter().any(|v| matches!(
            v,
            OracleViolation::OrderDivergence { .. } | OracleViolation::Divergence { .. }
        )),
        "certification divergence must be distinguished from order and \
         state divergence: {found:?}"
    );
}

/// Seeded lost update: two forged delegate certification records both
/// commit a write to the same item, the second from a snapshot taken
/// before the first committed. First-committer-wins certification makes
/// this impossible in a real run, so the SI arm must flag the pair.
#[test]
fn oracle_catches_seeded_si_lost_update() {
    let system = clean_system_with_txns(1, 0.0, 0.4);
    assert!(
        violations(&system).is_empty(),
        "the untouched run must audit clean"
    );

    let first = TxnId {
        client: u32::MAX,
        seq: 1,
    };
    let second = TxnId {
        client: u32::MAX,
        seq: 2,
    };
    let item = ItemId(3);
    let mut oracle = system.oracle.borrow_mut();
    oracle.record_si(SiRecord {
        txn: first,
        group: 0,
        snapshot: 0,
        readset: vec![],
        writes: vec![item],
        committed: true,
        commit_seq: 1_000_000,
    });
    // Snapshot predates the first writer's commit, yet both committed:
    // the second writer overwrote an update it never saw.
    oracle.record_si(SiRecord {
        txn: second,
        group: 0,
        snapshot: 999_990,
        readset: vec![],
        writes: vec![item],
        committed: true,
        commit_seq: 1_000_010,
    });
    drop(oracle);

    let found = violations(&system);
    assert!(
        found.iter().any(|v| matches!(
            v,
            OracleViolation::SiLostUpdate { first: f, second: s, item: i }
                if *f == first && *s == second && *i == item
        )),
        "two committed writers across a stale-snapshot interval must be \
         reported as a lost update: {found:?}"
    );
}

/// Seeded dirty read: a forged certification record whose read set
/// claims a version above its own snapshot (equivalently, one no
/// committed transaction ever wrote). Snapshot containment makes this
/// impossible in a real run, so the SI arm must flag the read.
#[test]
fn oracle_catches_seeded_si_dirty_read() {
    let system = clean_system_with_txns(1, 0.0, 0.4);
    assert!(
        violations(&system).is_empty(),
        "the untouched run must audit clean"
    );

    let txn = TxnId {
        client: u32::MAX,
        seq: 7,
    };
    let item = ItemId(5);
    system.oracle.borrow_mut().record_si(SiRecord {
        txn,
        group: 0,
        snapshot: 10,
        readset: vec![(item, 999_999)],
        writes: vec![],
        committed: false,
        commit_seq: 0,
    });

    let found = violations(&system);
    assert!(
        found.iter().any(|v| matches!(
            v,
            OracleViolation::SiDirtyRead { txn: t, item: i, version: 999_999 }
                if *t == txn && *i == item
        )),
        "a snapshot read above its snapshot must be reported as a dirty \
         read: {found:?}"
    );
}
