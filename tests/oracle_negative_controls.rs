//! Negative controls for the scenario oracle's convergence, total-order
//! and cross-group atomicity arms (`OracleViolation::Divergence`,
//! `OracleViolation::OrderDivergence`,
//! `OracleViolation::AtomicityViolation`).
//!
//! A green oracle is only evidence if the oracle demonstrably *fails*
//! when its invariant is broken — and a correct run can never break
//! them, so each test seeds the violation by hand: a write applied to a
//! single replica behind the protocol's back, a poisoned delivery-order
//! digest, a cross-group commit record whose slice one group never
//! committed. Each test first audits the untouched run clean (the
//! control's control), then corrupts and asserts the specific violation
//! variant is reported. `groupsafe-lint`'s `oracle-coverage` rule
//! (GS-P04) keeps this file honest: every `OracleViolation` variant
//! must be exercised by some test under `tests/`.

use groupsafe::core::scenario::{audit_scenario, OracleViolation, ScenarioPlan};
use groupsafe::core::server::ReplicaServer;
use groupsafe::core::{Load, SafetyLevel, System};
use groupsafe::db::{ItemId, TxnId, WriteOp};
use groupsafe::sim::{SimDuration, SimTime};

/// A clean, quiescent group-safe run (no injected faults), returned as
/// a live `System` so the tests can corrupt it surgically.
fn clean_system(shards: u32, cross: f64) -> System {
    let mut b = System::builder()
        .servers(3)
        .clients_per_server(2)
        .safety(SafetyLevel::GroupSafe)
        .load(Load::open_tps(15.0 * shards as f64))
        .measure(SimDuration::from_secs(5))
        .drain(SimDuration::from_secs(2))
        .seed(42);
    if shards > 1 {
        b = b.shards(shards).cross_shard_fraction(cross);
    }
    let mut run = b.build().expect("valid");
    let end = SimTime::from_secs(5);
    run.run_until(end);
    run.stop_clients_at(end);
    // Drain past the audit's settle window so convergence is judged.
    run.run_until(end + SimDuration::from_secs(3));
    run.into_system()
}

fn violations(system: &System) -> Vec<OracleViolation> {
    audit_scenario(&ScenarioPlan::new(), system, SafetyLevel::GroupSafe).violations
}

/// Seeded state divergence: one replica gets a write the protocol never
/// delivered. The convergence arm must name the distinct digests.
#[test]
fn oracle_catches_seeded_state_divergence() {
    let mut system = clean_system(1, 0.0);
    assert!(
        violations(&system).is_empty(),
        "the untouched run must audit clean"
    );

    let now = system.engine.now();
    let id = system.servers[0];
    let server: &mut ReplicaServer = system.engine.actor_mut(id);
    let db = server.db_mut_for_audit_controls();
    let rogue_version = db.max_version() + 1;
    db.apply_unlogged(
        now,
        TxnId {
            client: u32::MAX,
            seq: u64::MAX,
        },
        &[WriteOp {
            item: ItemId(0),
            value: -1,
            version: rogue_version,
        }],
    );

    let found = violations(&system);
    assert!(
        found
            .iter()
            .any(|v| matches!(v, OracleViolation::Divergence { digests } if digests.len() > 1)),
        "a replica with a rogue write must be reported as divergence: {found:?}"
    );
}

/// Seeded order divergence: one never-crashed replica claims a
/// different delivery history. The total-order arm must name both
/// digests even though the replicas' *states* still agree.
#[test]
fn oracle_catches_seeded_order_divergence() {
    let mut system = clean_system(1, 0.0);
    assert!(
        violations(&system).is_empty(),
        "the untouched run must audit clean"
    );

    let id = system.servers[1];
    let server: &mut ReplicaServer = system.engine.actor_mut(id);
    server.poison_order_digest_for_audit_controls(0xdead_beef_dead_beef);

    let found = violations(&system);
    assert!(
        found.iter().any(
            |v| matches!(v, OracleViolation::OrderDivergence { digests } if digests.len() > 1)
        ),
        "a poisoned order digest must be reported as order divergence: {found:?}"
    );
    assert!(
        !found
            .iter()
            .any(|v| matches!(v, OracleViolation::Divergence { .. })),
        "order divergence must be distinguished from state divergence: {found:?}"
    );
}

/// Seeded atomicity violation: a committed single-group transaction is
/// re-recorded as a cross-group commit touching a group that never
/// committed its slice. The all-or-nothing arm must name the
/// transaction and the missing group.
#[test]
fn oracle_catches_seeded_atomicity_violation() {
    let system = clean_system(2, 0.10);
    assert!(
        violations(&system).is_empty(),
        "the untouched run must audit clean"
    );

    // Find an acknowledged transaction committed in group 0 but (being
    // single-group) absent from group 1, then forge an oracle record
    // claiming it touched both.
    let victim = {
        let oracle = system.oracle.borrow();
        oracle
            .acked
            .keys()
            .copied()
            .find(|txn| {
                !oracle.xg.contains_key(txn)
                    && system
                        .replica_states_of(0)
                        .iter()
                        .any(|(db, live)| *live && db.is_committed(*txn))
                    && !system
                        .replica_states_of(1)
                        .iter()
                        .any(|(db, live)| *live && db.is_committed(*txn))
            })
            .expect("a sharded run commits some group-0-only transaction")
    };
    system.oracle.borrow_mut().record_xg(victim, vec![0, 1], 0);

    let found = violations(&system);
    assert!(
        found.iter().any(|v| matches!(
            v,
            OracleViolation::AtomicityViolation { txn, group: 1, .. } if *txn == victim
        )),
        "a forged cross-group record must be reported as an atomicity \
         violation naming the missing group: {found:?}"
    );
}
