//! Regression pin for the first-writer-wins abort storm at a 50 % read
//! mix.
//!
//! With broadcast (strictly serializable) reads, the classic pipeline
//! certifies every read-only transaction's full read set, so under a
//! contended mix half the offered load consists of transactions any
//! concurrent writer can invalidate — the measured abort rate climbs to
//! ~0.42. Snapshot-isolation transactions serve those same reads off
//! MVCC snapshots and certify write sets only: an empty or disjoint
//! write set cannot conflict, and the abort rate collapses by an order
//! of magnitude at identical offered load.
//!
//! The two runs below differ in exactly one knob (`txn_fraction`), so a
//! regression in either direction is attributable: the classic floor
//! rising means the baseline changed; the snapshot ceiling breaking
//! means reads leaked back into certification.

use groupsafe::core::reads::ReadConfig;
use groupsafe::core::{Load, Report, SafetyLevel, System, WorkloadSpec};
use groupsafe::sim::SimDuration;

/// The contended 50 % read mix: Table 4 transaction shapes over
/// broadcast reads, offered just past the classic pipeline's knee.
fn contended_mix(txn_fraction: f64) -> Report {
    System::builder()
        .servers(3)
        .clients_per_server(4)
        .safety(SafetyLevel::GroupSafe)
        .reads(ReadConfig::broadcast())
        .workload(WorkloadSpec {
            read_fraction: 0.5,
            ..WorkloadSpec::default()
        })
        // Explicit on both runs, so the `GROUPSAFE_TXN` env profile can
        // never blur the single-knob comparison.
        .txn_fraction(txn_fraction)
        .load(Load::open_tps(32.0))
        .measure(SimDuration::from_secs(20))
        .drain(SimDuration::from_secs(2))
        .seed(11)
        .build()
        .expect("a valid contended mix")
        .execute()
}

#[test]
fn snapshot_txns_dissolve_the_first_writer_wins_abort_storm() {
    let classic = contended_mix(0.0);
    assert!(
        classic.abort_rate > 0.3,
        "the classic baseline's abort storm at the 50 % read mix has \
         moved (measured {:.3}, historically ~0.39–0.42) — retune the \
         load \
         before trusting the snapshot comparison",
        classic.abort_rate
    );

    let snapshot = contended_mix(1.0);
    assert!(
        snapshot.abort_rate < 0.1,
        "snapshot transactions must hold the abort rate below 0.1 at \
         the mix the classic pipeline aborts {:.3} of: measured {:.3}",
        classic.abort_rate,
        snapshot.abort_rate
    );
    assert!(
        snapshot.txn_abort_rate < 0.1,
        "certification aborts among snapshot transactions must stay \
         below 0.1: measured {:.3}",
        snapshot.txn_abort_rate
    );
    assert!(
        snapshot.txn_commits > 100,
        "the comparison is only meaningful if snapshot transactions \
         actually flowed: {} commits",
        snapshot.txn_commits
    );
    // The storm's dissolution is the headline: an order of magnitude.
    assert!(
        snapshot.abort_rate < classic.abort_rate / 3.0,
        "snapshot certification must beat the classic baseline by a \
         wide margin: {:.3} vs {:.3}",
        snapshot.abort_rate,
        classic.abort_rate
    );
}
