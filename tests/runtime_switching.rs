//! §5.2: "switching between group-1-safe and group-safe can be done
//! easily at runtime". Run one system, flip every server's safety level
//! mid-run through the `Run` handle's phase hooks, and verify (a) the
//! response-time regime changes accordingly, (b) nothing is lost and the
//! replicas stay convergent throughout.

use groupsafe::core::{Load, SafetyLevel, SwitchSafetyCmd, System};
use groupsafe::sim::{SimDuration, SimTime};

#[test]
fn switching_changes_the_reply_point_live() {
    let report = System::builder()
        .servers(5)
        .clients_per_server(3)
        .safety(SafetyLevel::GroupSafe)
        .load(Load::open_tps(20.0))
        .measure(SimDuration::from_secs(40))
        .drain(SimDuration::from_secs(2))
        .seed(55)
        .build()
        .expect("a valid configuration")
        // Phase 1: group-safe for 12 s. Then switch every server to
        // group-1-safe for 12 s, then back for the rest.
        .switch_safety_at(SimTime::from_secs(12), SafetyLevel::GroupOneSafe)
        .switch_safety_at(SimTime::from_secs(24), SafetyLevel::GroupSafe)
        .execute();

    // The per-phase breakdown names each hook's phase after its label.
    assert_eq!(report.phases.len(), 4, "measure + 2 switches + drain");
    let gs1 = &report.phases[0];
    let g1s = &report.phases[1];
    let gs2 = &report.phases[2];
    assert!(gs1.commits > 50 && g1s.commits > 50 && gs2.commits > 50);
    // The group-1-safe phase must be noticeably slower (its reply point
    // includes a synchronous log force and page install).
    assert!(
        g1s.mean_ms > gs1.mean_ms * 1.3,
        "group-1-safe phase must slow responses: {:.1} -> {:.1} ms",
        gs1.mean_ms,
        g1s.mean_ms
    );
    assert!(
        gs2.mean_ms < g1s.mean_ms,
        "switching back must speed responses up again: {:.1} -> {:.1} ms",
        g1s.mean_ms,
        gs2.mean_ms
    );

    // Safety held throughout: nothing lost, replicas agree.
    assert_eq!(report.lost, 0);
    assert_eq!(report.distinct_states, 1);
    assert!(
        report.acked > 300,
        "the system must have processed plenty across all three phases"
    );
}

#[test]
#[should_panic(expected = "runtime switching is defined between")]
fn switching_to_two_safe_is_rejected() {
    let mut run = System::builder()
        .servers(3)
        .clients_per_server(1)
        .safety(SafetyLevel::GroupSafe)
        .load(Load::open_tps(5.0))
        .measure(SimDuration::from_secs(2))
        .drain(SimDuration::ZERO)
        .seed(1)
        .build()
        .expect("a valid configuration");
    run.run_until(SimTime::from_secs(1));
    let system = run.system_mut();
    let now = system.engine.now();
    let s0 = system.servers[0];
    system
        .engine
        .schedule_resilient(now, s0, SwitchSafetyCmd(SafetyLevel::TwoSafe));
    // 2-safe needs a different broadcast primitive (end-to-end): the
    // switch must be refused loudly, not silently mis-configured.
    run.run_until(SimTime::from_secs(2));
}
