//! §5.2: "switching between group-1-safe and group-safe can be done
//! easily at runtime". Run one system, flip every server's safety level
//! mid-run, and verify (a) the response-time regime changes accordingly,
//! (b) nothing is lost and the replicas stay convergent throughout.

use groupsafe::core::{SafetyLevel, StopClient, SwitchSafetyCmd, System, Technique};
use groupsafe::sim::{SimDuration, SimTime};
use groupsafe::workload::{system_config, table4_generator, PaperParams, RunConfig};

fn phase_mean(system: &mut System, name: &'static str) -> f64 {
    let h = system.engine.metrics_mut().histogram_mut(name);
    h.mean()
}

#[test]
fn switching_changes_the_reply_point_live() {
    let params = PaperParams {
        n_servers: 5,
        clients_per_server: 3,
        ..PaperParams::default()
    };
    let cfg = RunConfig {
        technique: Technique::Dsm(SafetyLevel::GroupSafe),
        load_tps: 20.0,
        closed_loop: false,
        assumed_resp_ms: 70.0,
        lazy_prop_ms: 20.0,
        wal_flush_ms: 20.0,
        params: params.clone(),
        warmup: SimDuration::ZERO,
        duration: SimDuration::from_secs(40),
        drain: SimDuration::from_secs(2),
        seed: 55,
    };
    let mut system = System::build(system_config(&cfg), |_| table4_generator(&params));
    system.start();

    // Phase 1: group-safe for 12 s.
    system.engine.run_until(SimTime::from_secs(12));
    let phase1 = phase_mean(&mut system, "response_total_ms");

    // Switch every server to group-1-safe; run 12 more seconds.
    let now = system.engine.now();
    for &s in &system.servers.clone() {
        system
            .engine
            .schedule_resilient(now, s, SwitchSafetyCmd(SafetyLevel::GroupOneSafe));
    }
    system.engine.run_until(SimTime::from_secs(24));
    let cumulative2 = phase_mean(&mut system, "response_total_ms");

    // Switch back; run to the end and drain.
    let now = system.engine.now();
    for &s in &system.servers.clone() {
        system
            .engine
            .schedule_resilient(now, s, SwitchSafetyCmd(SafetyLevel::GroupSafe));
    }
    let end = SimTime::from_secs(40);
    system.engine.run_until(end);
    for &c in &system.clients.clone() {
        system.engine.schedule_resilient(end, c, StopClient);
    }
    system.engine.run_until(end + SimDuration::from_secs(2));

    // The group-1-safe phase must have pushed the cumulative mean up
    // noticeably (its reply point includes a synchronous log force and
    // page install).
    assert!(
        cumulative2 > phase1 * 1.3,
        "group-1-safe phase must slow responses: {phase1:.1} -> {cumulative2:.1} ms"
    );
    assert_eq!(
        system.engine.metrics().counter("safety_switches"),
        10,
        "five servers switched twice"
    );

    // Safety held throughout: nothing lost, replicas agree.
    assert!(system.lost_transactions().is_empty());
    assert_eq!(system.convergence().len(), 1);
    assert!(
        system.oracle.borrow().acked.len() > 300,
        "the system must have processed plenty across all three phases"
    );
}

#[test]
#[should_panic(expected = "runtime switching is defined between")]
fn switching_to_two_safe_is_rejected() {
    let params = PaperParams {
        n_servers: 3,
        clients_per_server: 1,
        ..PaperParams::default()
    };
    let cfg = RunConfig {
        technique: Technique::Dsm(SafetyLevel::GroupSafe),
        load_tps: 5.0,
        closed_loop: false,
        assumed_resp_ms: 70.0,
        lazy_prop_ms: 20.0,
        wal_flush_ms: 20.0,
        params: params.clone(),
        warmup: SimDuration::ZERO,
        duration: SimDuration::from_secs(2),
        drain: SimDuration::ZERO,
        seed: 1,
    };
    let mut system = System::build(system_config(&cfg), |_| table4_generator(&params));
    system.start();
    system.engine.run_until(SimTime::from_secs(1));
    let now = system.engine.now();
    let s0 = system.servers[0];
    system
        .engine
        .schedule_resilient(now, s0, SwitchSafetyCmd(SafetyLevel::TwoSafe));
    // 2-safe needs a different broadcast primitive (end-to-end): the
    // switch must be refused loudly, not silently mis-configured.
    system.engine.run_until(SimTime::from_secs(2));
}
