//! The local read path: follower reads at the three freshness levels,
//! session-token behavior, the read-freshness oracle (positive runs and
//! the negative controls), and the broadcast-read baseline.

use groupsafe::core::reads::{audit_reads, ReadLevel, ReadPath, ReadViolation};
use groupsafe::core::scenario::{audit_scenario, OracleViolation, ScenarioPlan};
use groupsafe::core::verify::{LostTransaction, Oracle, ReadAckRecord, ReadRecord};
use groupsafe::core::{BuildError, Load, SafetyLevel, System};
use groupsafe::db::{ItemId, TxnId, WriteOp};
use groupsafe::net::NodeId;
use groupsafe::sim::{SimDuration, SimTime};

fn read_builder(level: ReadLevel, fraction: f64, seed: u64) -> groupsafe::core::SystemBuilder {
    System::builder()
        .servers(3)
        .clients_per_server(2)
        .safety(SafetyLevel::GroupSafe)
        .read_level(level)
        .read_fraction(fraction)
        .load(Load::open_tps(20.0))
        .measure(SimDuration::from_secs(5))
        .drain(SimDuration::from_secs(2))
        .seed(seed)
}

// ---------------------------------------------------------------------
// The local path serves reads, at every level, and audits clean
// ---------------------------------------------------------------------

#[test]
fn local_reads_serve_and_audit_clean_at_every_level() {
    for level in [ReadLevel::Stable, ReadLevel::Session, ReadLevel::Latest] {
        let mut run = read_builder(level, 0.5, 11).build().expect("valid");
        run.run_until(SimTime::from_secs(5));
        run.stop_clients_at(SimTime::from_secs(5));
        run.run_until(SimTime::from_secs(7));
        let system = run.into_system();
        {
            let oracle = system.oracle.borrow();
            assert!(
                oracle.reads.len() > 20,
                "{level}: locally served reads expected, got {}",
                oracle.reads.len()
            );
            assert!(
                oracle.reads.iter().all(|r| r.level == level),
                "{level}: every local read carries its level"
            );
            // Session reads honour their token at serve time.
            for r in &oracle.reads {
                assert!(
                    r.snapshot_seq >= r.token || r.level != ReadLevel::Session,
                    "{level}: read {:?} served at {} below token {}",
                    r.txn,
                    r.snapshot_seq,
                    r.token
                );
            }
        }
        let audit = audit_scenario(&ScenarioPlan::new(), &system, SafetyLevel::GroupSafe);
        assert!(audit.clean(), "{level}: {:?}", audit.violations);
        assert!(audit.reads_audited > 20, "{level}: audit saw the reads");
        assert!(system.lost_transactions().is_empty(), "{level}");
    }
}

#[test]
fn read_report_carries_throughput_and_staleness() {
    let report = read_builder(ReadLevel::Session, 0.6, 23)
        .build()
        .expect("valid")
        .execute();
    assert!(report.reads > 20, "{report}");
    assert!(report.read_tps > 4.0, "{report}");
    assert!(report.read_mean_ms > 0.0, "{report}");
    assert!(report.is_safe_and_convergent(), "{report}");
    let json = report.to_json();
    assert!(json.contains("\"reads\":"), "{json}");
    assert!(json.contains("\"read_tps\":"), "{json}");
    assert!(json.contains("\"read_staleness\":"), "{json}");
}

#[test]
fn session_tokens_advance_with_commits_and_reads() {
    let mut run = read_builder(ReadLevel::Session, 0.5, 31)
        .build()
        .expect("valid");
    run.run_until(SimTime::from_secs(5));
    run.stop_clients_at(SimTime::from_secs(5));
    run.run_until(SimTime::from_secs(7));
    let system = run.into_system();
    let oracle = system.oracle.borrow();
    // Sessions that wrote before reading carry non-zero tokens: the
    // read-your-writes floor is actually exercised, not vacuous.
    let tokened = oracle.reads.iter().filter(|r| r.token > 0).count();
    assert!(
        tokened > 5,
        "tokened session reads expected, got {tokened}/{}",
        oracle.reads.len()
    );
    // Monotonic reads per session (ack order), by construction.
    let viols = audit_reads(&oracle, &[], &|_| false);
    assert!(viols.is_empty(), "{viols:?}");
}

#[test]
fn sharded_reads_stay_per_group_and_report_per_group() {
    let report = System::builder()
        .servers(3)
        .clients_per_server(2)
        .safety(SafetyLevel::GroupSafe)
        .shards(3)
        .read_level(ReadLevel::Session)
        .read_fraction(0.5)
        .load(Load::open_tps(45.0))
        .measure(SimDuration::from_secs(5))
        .drain(SimDuration::from_secs(2))
        .seed(41)
        .build()
        .expect("valid")
        .execute();
    assert!(report.reads > 30, "{report}");
    assert_eq!(report.groups.len(), 3);
    let spread: Vec<usize> = report.groups.iter().map(|g| g.reads).collect();
    assert!(
        spread.iter().filter(|&&r| r > 0).count() >= 2,
        "reads spread over groups: {spread:?}"
    );
    assert!(report.is_safe_and_convergent(), "{report}");
}

// ---------------------------------------------------------------------
// Levels differ where they should
// ---------------------------------------------------------------------

#[test]
fn stable_reads_never_exceed_the_watermark() {
    let mut run = read_builder(ReadLevel::Stable, 0.5, 53)
        .build()
        .expect("valid");
    run.run_until(SimTime::from_secs(5));
    run.stop_clients_at(SimTime::from_secs(5));
    run.run_until(SimTime::from_secs(7));
    let system = run.into_system();
    let oracle = system.oracle.borrow();
    for r in &oracle.reads {
        assert!(r.snapshot_seq <= r.stable_seq, "{r:?}");
        assert!(r.snapshot_seq <= r.applied_seq, "{r:?}");
        for &(item, version) in &r.items {
            assert!(version <= r.snapshot_seq, "{item:?}@{version} in {r:?}");
        }
    }
}

#[test]
fn unsupported_read_configurations_are_typed_errors() {
    // The lazy baseline serves reads through its own 2PL execution.
    let err = System::builder()
        .safety(SafetyLevel::OneSafe)
        .read_level(ReadLevel::Latest)
        .build()
        .err();
    assert!(
        matches!(err, Some(BuildError::UnsupportedReads { .. })),
        "{err:?}"
    );
    let err = System::builder()
        .safety(SafetyLevel::OneSafe)
        .read_path(ReadPath::Broadcast)
        .build()
        .err();
    assert!(
        matches!(err, Some(BuildError::UnsupportedReads { .. })),
        "{err:?}"
    );
    // 0-safe's non-uniform delivery casts no stability votes: no
    // watermark to serve stable reads under.
    let err = System::builder()
        .safety(SafetyLevel::ZeroSafe)
        .read_level(ReadLevel::Stable)
        .build()
        .err();
    assert!(
        matches!(err, Some(BuildError::UnsupportedReads { .. })),
        "{err:?}"
    );
    // Session/latest reads are fine at 0-safe.
    assert!(System::builder()
        .safety(SafetyLevel::ZeroSafe)
        .read_level(ReadLevel::Session)
        .build()
        .is_ok());
}

// ---------------------------------------------------------------------
// The broadcast baseline
// ---------------------------------------------------------------------

#[test]
fn broadcast_reads_pay_the_ordering_round() {
    let classic = read_builder(ReadLevel::Latest, 0.6, 67)
        .read_path(ReadPath::Classic)
        .build()
        .expect("valid")
        .execute();
    let broadcast = read_builder(ReadLevel::Latest, 0.6, 67)
        .read_path(ReadPath::Broadcast)
        .build()
        .expect("valid")
        .execute();
    assert!(classic.reads > 20, "{classic}");
    assert!(broadcast.reads > 0, "{broadcast}");
    // Broadcast reads ride the abcast: the same workload orders far
    // more entries than the classic path (which broadcasts only the
    // updates).
    assert!(
        broadcast.votes_per_delivery > 0.0 && broadcast.commits > 0,
        "{broadcast}"
    );
    assert!(broadcast.is_safe_and_convergent(), "{broadcast}");
    assert!(
        broadcast.read_mean_ms > classic.read_mean_ms,
        "an ordered read costs more than a delegate-local one: \
         broadcast {:.2} ms vs classic {:.2} ms",
        broadcast.read_mean_ms,
        classic.read_mean_ms
    );
}

/// Bounded-wait redirects fire when a replica's delivery head stalls
/// behind a session (here: a loss burst gaps its ordered stream until
/// gap repair, while the session's token keeps advancing through
/// commits answered by up-to-date replicas) — and the run still audits
/// clean: the redirect protocol trades latency, never freshness.
#[test]
fn lagging_replicas_redirect_session_reads() {
    let plan = ScenarioPlan::new().loss_burst(
        SimTime::from_millis(1_500),
        0.35,
        SimDuration::from_millis(1_000),
    );
    let mut run = System::builder()
        .servers(3)
        .clients_per_server(2)
        .safety(SafetyLevel::GroupSafe)
        .read_level(ReadLevel::Session)
        .read_fraction(0.5)
        .load(Load::open_tps(60.0))
        .measure(SimDuration::from_secs(5))
        .drain(SimDuration::from_secs(3))
        .scenario(plan.clone())
        .seed(3)
        .build()
        .expect("valid");
    run.run_until(SimTime::from_secs(5));
    run.stop_clients_at(SimTime::from_secs(5));
    run.run_until(SimTime::from_secs(8));
    let system = run.into_system();
    let redirects = system.oracle.borrow().read_redirects();
    assert!(redirects > 0, "the stalled replica must have redirected");
    assert!(system.lost_transactions().is_empty());
    let audit = audit_scenario(&plan, &system, SafetyLevel::GroupSafe);
    assert!(audit.clean(), "{:?}", audit.violations);
}

// ---------------------------------------------------------------------
// Read clients mixed into the scenario fuzzer (smoke; CI runs the
// 50-seed sweeps per level)
// ---------------------------------------------------------------------

#[test]
fn read_mixed_fuzz_smoke() {
    use groupsafe::core::scenario::fuzz::{run_fuzz_case, FuzzSpec};
    for level in [ReadLevel::Stable, ReadLevel::Session, ReadLevel::Latest] {
        let spec = FuzzSpec::smoke(SafetyLevel::GroupSafe).with_reads(level, 0.5);
        let mut reads_audited = 0usize;
        for seed in 0..8 {
            let out = run_fuzz_case(seed, &spec);
            assert!(out.ok(), "{level}: {}", out.describe());
            reads_audited += out.audit.reads_audited;
        }
        assert!(
            reads_audited > 50,
            "{level}: local reads flowed through the plans"
        );
    }
}

#[test]
fn read_mixed_fuzz_replays_bit_for_bit() {
    use groupsafe::core::scenario::fuzz::{run_fuzz_case, FuzzSpec};
    let spec = FuzzSpec::smoke(SafetyLevel::GroupSafe).with_reads(ReadLevel::Session, 0.5);
    let a = run_fuzz_case(3, &spec);
    let b = run_fuzz_case(3, &spec);
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.commits, b.commits);
    assert_eq!(a.audit.reads_audited, b.audit.reads_audited);
}

// ---------------------------------------------------------------------
// Negative controls: the oracle must catch seeded violations
// ---------------------------------------------------------------------

fn served_read(level: ReadLevel, token: u64, snapshot: u64, stable: u64) -> ReadRecord {
    ReadRecord {
        txn: TxnId { client: 1, seq: 99 },
        client: 1,
        group: 0,
        level,
        token,
        snapshot_seq: snapshot,
        stable_seq: stable,
        applied_seq: snapshot.max(stable),
        at: SimTime::from_secs(1),
        items: vec![(ItemId(4), snapshot.min(stable))],
    }
}

/// A deliberately stale session read — served below the token the
/// client carried — must be flagged.
#[test]
fn oracle_flags_a_stale_session_read() {
    let mut oracle = Oracle::default();
    oracle
        .reads
        .push(served_read(ReadLevel::Session, 12, 8, 20));
    let v = audit_reads(&oracle, &[], &|_| false);
    assert!(
        v.iter().any(|v| matches!(
            v,
            ReadViolation::StaleSessionRead {
                token: 12,
                snapshot_seq: 8,
                ..
            }
        )),
        "{v:?}"
    );
}

/// A stable read served above the group-stable watermark must be
/// flagged — and the scenario oracle must surface it as a violation.
#[test]
fn oracle_flags_a_stable_read_above_the_watermark() {
    let mut run = read_builder(ReadLevel::Stable, 0.4, 71)
        .build()
        .expect("valid");
    run.run_until(SimTime::from_secs(5));
    run.stop_clients_at(SimTime::from_secs(5));
    run.run_until(SimTime::from_secs(7));
    let system = run.into_system();
    // The honest run audits clean...
    let honest = audit_scenario(&ScenarioPlan::new(), &system, SafetyLevel::GroupSafe);
    assert!(honest.clean(), "{:?}", honest.violations);
    // ...then seed the violation: a fabricated stable read served two
    // sequence numbers above the watermark its replica exported.
    system
        .oracle
        .borrow_mut()
        .reads
        .push(served_read(ReadLevel::Stable, 0, 22, 20));
    let dishonest = audit_scenario(&ScenarioPlan::new(), &system, SafetyLevel::GroupSafe);
    assert!(
        dishonest.violations.iter().any(|v| matches!(
            v,
            OracleViolation::Read(ReadViolation::UnstableRead {
                snapshot_seq: 22,
                stable_seq: 20,
                ..
            })
        )),
        "{:?}",
        dishonest.violations
    );
}

/// A stable read that observed a value the loss audit later declared
/// lost is flagged — unless the owning group wholly failed (the
/// level's own excused window).
#[test]
fn oracle_flags_a_stable_read_of_a_lost_value() {
    let mut oracle = Oracle::default();
    let lost_txn = TxnId { client: 3, seq: 7 };
    oracle.record_commit(
        lost_txn,
        NodeId(0),
        vec![],
        vec![WriteOp {
            item: ItemId(4),
            value: 5,
            version: 6,
        }],
    );
    let mut read = served_read(ReadLevel::Stable, 0, 6, 6);
    read.items = vec![(ItemId(4), 6)];
    oracle.reads.push(read);
    let lost = vec![LostTransaction { txn: lost_txn }];
    let v = audit_reads(&oracle, &lost, &|_| false);
    assert!(
        v.iter().any(
            |v| matches!(v, ReadViolation::LostValueObserved { lost_txn: t, .. } if *t == lost_txn)
        ),
        "{v:?}"
    );
    // The whole-group-failure excuse silences exactly this rule.
    let excused = audit_reads(&oracle, &lost, &|_| true);
    assert!(excused.is_empty(), "{excused:?}");
}

/// Monotonicity: a session that accepts a snapshot older than one it
/// already saw is flagged.
#[test]
fn oracle_flags_a_session_regression() {
    let mut oracle = Oracle::default();
    let ack = |seq: u64, n: u64| ReadAckRecord {
        txn: TxnId { client: 2, seq: n },
        client: 2,
        group: 0,
        level: Some(ReadLevel::Session),
        snapshot_seq: seq,
        at: SimTime::from_millis(n),
        response_ms: 1.0,
    };
    oracle.read_acks.push(ack(9, 1));
    oracle.read_acks.push(ack(4, 2));
    let v = audit_reads(&oracle, &[], &|_| false);
    assert!(
        v.iter().any(|v| matches!(
            v,
            ReadViolation::SessionRegression {
                prev_seq: 9,
                snapshot_seq: 4,
                ..
            }
        )),
        "{v:?}"
    );
}
