//! Determinism of the observability layer itself: the structured event
//! stream and both exporters are pure functions of the seed. Two runs of
//! one seed must render byte-identical artefacts, and the two scheduler
//! backends — which are pinned to dispatch the identical event sequence
//! — must also record the identical stream.

use groupsafe::core::{Load, SafetyLevel, System};
use groupsafe::sim::{prometheus_snapshot, ObsConfig, Scheduler, SimDuration};

/// One full-stream run under `scheduler`: the rendered event stream, the
/// Chrome trace, the Prometheus snapshot and the dispatch fingerprint.
fn run_stream(seed: u64, scheduler: Scheduler) -> (String, String, String, u64) {
    // No sibling test sets the variable; clearing is race-free.
    std::env::remove_var("GROUPSAFE_OBS");
    let mut run = System::builder()
        .servers(3)
        .clients_per_server(2)
        .safety(SafetyLevel::GroupSafe)
        .load(Load::open_tps(15.0))
        .measure(SimDuration::from_secs(4))
        .seed(seed)
        .observe(ObsConfig::stream())
        .scheduler(scheduler)
        .build()
        .expect("valid");
    let end = run.measure_end();
    run.run_until(end);
    run.stop_clients_at(end);
    run.run_until(end + SimDuration::from_secs(2));
    let engine = &run.system().engine;
    (
        engine.obs().render_stream(),
        engine.obs().chrome_trace(),
        prometheus_snapshot(engine.metrics(), engine.obs()),
        engine.fingerprint(),
    )
}

#[test]
fn double_runs_render_byte_identical_artefacts() {
    let (stream_a, trace_a, prom_a, fp_a) = run_stream(31, Scheduler::TimingWheel);
    let (stream_b, trace_b, prom_b, fp_b) = run_stream(31, Scheduler::TimingWheel);
    assert_eq!(fp_a, fp_b);
    assert_eq!(stream_a, stream_b, "event stream must be byte-identical");
    assert_eq!(trace_a, trace_b, "chrome trace must be byte-identical");
    assert_eq!(prom_a, prom_b, "prometheus snapshot must be byte-identical");
    // And the artefacts actually carry the pipeline.
    for stage in ["client_submit", "exec_start", "broadcast", "client_ack"] {
        assert!(stream_a.contains(stage), "stream lacks {stage}");
        assert!(trace_a.contains(stage), "trace lacks {stage}");
    }
    assert!(prom_a.contains("groupsafe_obs_events_total"), "{prom_a}");
    assert!(trace_a.starts_with("{\"traceEvents\":["), "{trace_a}");
}

#[test]
fn scheduler_backends_record_identical_streams() {
    let (stream_wheel, trace_wheel, prom_wheel, fp_wheel) = run_stream(57, Scheduler::TimingWheel);
    let (stream_heap, trace_heap, prom_heap, fp_heap) = run_stream(57, Scheduler::LegacyHeap);
    assert_eq!(
        fp_wheel, fp_heap,
        "schedulers must dispatch the identical event sequence"
    );
    assert_eq!(stream_wheel, stream_heap, "identical recorded streams");
    assert_eq!(trace_wheel, trace_heap);
    assert_eq!(prom_wheel, prom_heap);
    assert!(!stream_wheel.is_empty());
}
