//! The `txns-off ≡ seed` pin: with snapshot transactions disabled (the
//! default), the system is bit-for-bit the pre-SI system — same dispatch
//! fingerprint, same commits, same digests, same report JSON. The
//! discipline is the draw-order contract: the SI coin is flipped only
//! when `txn_fraction > 0`, so a zero fraction consumes not a single
//! extra random draw anywhere in the generator. Same pattern as
//! `tests/reads_off_equivalence.rs`: the baseline pins the classic
//! configuration explicitly, so the comparison holds under the
//! `GROUPSAFE_TXN` env profile too.

use groupsafe::core::{Load, SafetyLevel, System, SystemBuilder};
use groupsafe::sim::SimDuration;

fn base(seed: u64) -> SystemBuilder {
    // This binary pins the *profile-free* default (every test builds
    // through here, and none ever sets the variables, so clearing is
    // race-free): under `GROUPSAFE_TXN` the untouched default
    // legitimately runs snapshot transactions and the comparison below
    // would be comparing two different — both correct — systems.
    std::env::remove_var("GROUPSAFE_TXN");
    std::env::remove_var("GROUPSAFE_READS");
    System::builder()
        .servers(3)
        .clients_per_server(2)
        .safety(SafetyLevel::GroupSafe)
        .load(Load::open_tps(15.0))
        .measure(SimDuration::from_secs(5))
        .drain(SimDuration::from_secs(2))
        .seed(seed)
}

#[test]
fn txns_off_is_fingerprint_identical_to_the_default() {
    // Explicitly zero snapshot-transaction fraction...
    let pinned = base(4242)
        .txn_fraction(0.0)
        .build()
        .expect("valid")
        .execute();
    // ...vs. the untouched default builder.
    let default = base(4242).build().expect("valid").execute();
    assert_eq!(pinned.fingerprint, default.fingerprint, "bit-for-bit");
    assert_eq!(pinned.commits, default.commits);
    assert_eq!(pinned.digests, default.digests);
    assert_eq!(pinned.to_json(), default.to_json(), "whole report");
    assert_eq!(
        default.txn_commits + default.txn_aborts,
        0,
        "no snapshot transactions at the Table 4 mix"
    );
}

/// The pin also holds with a read mix in play: the read coin precedes
/// the SI coin, and a zero `txn_fraction` must leave the read-mixed
/// draw sequence untouched too.
#[test]
fn txns_off_is_fingerprint_identical_under_a_read_mix() {
    let pinned = base(77)
        .read_fraction(0.5)
        .txn_fraction(0.0)
        .build()
        .expect("valid")
        .execute();
    let default = base(77)
        .read_fraction(0.5)
        .build()
        .expect("valid")
        .execute();
    assert_eq!(pinned.fingerprint, default.fingerprint, "bit-for-bit");
    assert_eq!(pinned.to_json(), default.to_json(), "whole report");
}

/// Sanity that the pin is not comparing two dead configurations: the
/// same seed with the fraction turned on actually runs snapshot
/// transactions, commits and converges.
#[test]
fn snapshot_txns_are_live_under_the_pinned_seed() {
    let si = base(4242)
        .txn_fraction(0.5)
        .build()
        .expect("valid")
        .execute();
    assert!(si.txn_commits > 10, "snapshot transactions must flow: {si}");
    assert!(si.is_safe_and_convergent(), "{si}");
}

/// Sharded runs honour the same draw-order contract: `txn_fraction(0)`
/// on a multi-group system is bit-for-bit the untouched sharded system.
#[test]
fn txns_off_is_fingerprint_identical_when_sharded() {
    let pinned = base(4242)
        .shards(2)
        .cross_shard_fraction(0.1)
        .txn_fraction(0.0)
        .build()
        .expect("valid")
        .execute();
    let default = base(4242)
        .shards(2)
        .cross_shard_fraction(0.1)
        .build()
        .expect("valid")
        .execute();
    assert_eq!(pinned.fingerprint, default.fingerprint, "bit-for-bit");
    assert_eq!(pinned.to_json(), default.to_json(), "whole report");
}
