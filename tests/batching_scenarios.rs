//! Deterministic scenario corpus for the batched abcast pipeline.
//!
//! Every scenario is pinned to a fixed seed and asserts exact outcome
//! counts: what was processed where, what was batched, what was
//! redelivered, and that nothing acknowledged was lost. The corpus
//! covers the situations the batching accumulator makes delicate:
//!
//! * a sequencer crash with a non-empty accumulator (nothing may be
//!   silently dropped — the senders' resends re-order the backlog),
//! * flushes triggered by the `max_delay` deadline vs. the size trigger,
//! * recovery replaying a partially-acked sequence window,
//! * a view change while the accumulator is non-empty,
//! * stale flush timers after a crash (regression for the epoch guard),
//! * full-system equivalence: the group-safety outcome of a batched run
//!   matches the unbatched run bit-for-bit (this is the check the CI
//!   batching job relies on, whatever `GROUPSAFE_BATCHING` selects).

use groupsafe::core::{BatchConfig, Load, SafetyLevel, System};
use groupsafe::gcs::harness::Cluster;
use groupsafe::gcs::{GcsConfig, ProcessClass};
use groupsafe::net::NodeId;
use groupsafe::sim::{SimDuration, SimTime};

fn ms(v: u64) -> SimTime {
    SimTime::from_millis(v)
}

fn batch(max_msgs: usize, max_delay_ms: u64) -> BatchConfig {
    BatchConfig {
        max_msgs,
        max_bytes: 0,
        max_delay: SimDuration::from_millis(max_delay_ms),
    }
}

/// All nodes hold the same history, equal (as a set) to `expected`.
fn assert_converged(cluster: &Cluster, n: u32, expected: &[u64]) {
    let reference = cluster.stable_values(NodeId(0));
    let mut sorted = reference.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, expected, "node 0 history incomplete");
    for i in 1..n {
        assert_eq!(
            cluster.stable_values(NodeId(i)),
            reference,
            "replica {i} diverged"
        );
    }
}

fn assert_no_violations(cluster: &Cluster, n: u32, e2e: bool, crashed: &[u32]) {
    {
        let mut obs = cluster.obs.borrow_mut();
        for i in 0..n {
            let class = if crashed.contains(&i) {
                ProcessClass::Yellow
            } else {
                ProcessClass::Green
            };
            obs.classes.insert(NodeId(i), class);
        }
    }
    let obs = cluster.obs.borrow();
    let mut v = obs.check_validity();
    v.extend(obs.check_total_order());
    v.extend(obs.check_uniform_integrity(e2e));
    if e2e {
        v.extend(obs.check_end_to_end());
    }
    assert!(v.is_empty(), "{v:?}");
}

/// Size trigger: a burst larger than `max_msgs` ships as full frames,
/// while the deadline flush handles the remainder.
#[test]
fn size_trigger_packs_full_frames() {
    let n = 3;
    let cfg = GcsConfig::end_to_end().with_batching(batch(4, 20));
    let mut cluster = Cluster::new(n, cfg, 42);
    // Nine broadcasts land at the sequencer in one instant: two full
    // frames of 4 plus one deadline-flushed frame of 1.
    for i in 0..9 {
        cluster.broadcast_at(ms(10), NodeId(1), 100 + i);
    }
    cluster.engine.run_until(SimTime::from_secs(5));

    let expected: Vec<u64> = (100..109).collect();
    assert_converged(&cluster, n, &expected);
    assert_no_violations(&cluster, n, true, &[]);
    let stats = cluster.endpoint(NodeId(0)).stats();
    assert_eq!(stats.batches_sent, 3, "2 size-triggered + 1 deadline flush");
    assert_eq!(stats.batch_msgs_sent, 9);
    let hist = cluster.endpoint(NodeId(0)).batch_histogram().clone();
    assert_eq!(hist.get(&4), Some(&2));
    assert_eq!(hist.get(&1), Some(&1));
}

/// Deadline trigger: a trickle below `max_msgs` still flushes after
/// `max_delay`, and a stale deadline never re-flushes a later batch.
#[test]
fn max_delay_flushes_partial_frames() {
    let n = 3;
    let cfg = GcsConfig::end_to_end().with_batching(batch(16, 2));
    let mut cluster = Cluster::new(n, cfg, 43);
    // Three messages at t=10 ms: no size trigger, deadline flush at
    // ~12 ms ships a frame of 3.
    for i in 0..3 {
        cluster.broadcast_at(ms(10), NodeId(1), 200 + i);
    }
    // Sixteen messages at t=50 ms: the size trigger fires immediately;
    // the deadline armed alongside it goes stale (epoch guard).
    for i in 0..16 {
        cluster.broadcast_at(ms(50), NodeId(2), 300 + i);
    }
    cluster.engine.run_until(SimTime::from_secs(5));

    let mut expected: Vec<u64> = (200..203).collect();
    expected.extend(300..316);
    assert_converged(&cluster, n, &expected);
    assert_no_violations(&cluster, n, true, &[]);
    let stats = cluster.endpoint(NodeId(0)).stats();
    assert_eq!(stats.batches_sent, 2, "one deadline flush + one size flush");
    let hist = cluster.endpoint(NodeId(0)).batch_histogram().clone();
    assert_eq!(hist.get(&3), Some(&1), "deadline-flushed frame of 3");
    assert_eq!(hist.get(&16), Some(&1), "size-flushed frame of 16");
}

/// The sequencer crashes with four broadcasts sitting in its accumulator
/// (the 20 ms deadline never fires). Nothing was multicast, so nothing
/// is stable — but nothing may be *lost* either: the senders' resend
/// timers re-forward the backlog once the sequencer recovers, and every
/// value commits exactly once. Also the regression for stale flush
/// deadlines: the pre-crash `BatchFlush` timer must not fire into the
/// recovered incarnation.
#[test]
fn sequencer_crash_mid_batch_loses_nothing() {
    let n = 3;
    let cfg = GcsConfig::end_to_end().with_batching(batch(32, 20));
    let mut cluster = Cluster::new(n, cfg, 44);
    cluster.broadcast_at(ms(10), NodeId(1), 501);
    cluster.broadcast_at(ms(10), NodeId(1), 502);
    cluster.broadcast_at(ms(10), NodeId(2), 503);
    cluster.broadcast_at(ms(10), NodeId(2), 504);
    // Crash at 12 ms: the forwards arrived (~10.07 ms) and sit in the
    // accumulator; the flush deadline (30 ms) is still pending.
    cluster.engine.schedule_crash(ms(12), cluster.hosts[0]);
    cluster.engine.schedule_recover(ms(100), cluster.hosts[0]);
    cluster.engine.run_until(SimTime::from_secs(5));

    assert_converged(&cluster, n, &[501, 502, 503, 504]);
    assert_no_violations(&cluster, n, true, &[0]);
    let seq = cluster.endpoint(NodeId(0));
    assert_eq!(seq.accumulator_len(), 0, "accumulator drained");
    assert_eq!(seq.stats().delivered, 4, "all four commit at the sequencer");
}

/// Recovery replays a partially-acked sequence window: the first frame
/// was processed (app-acked) before the crash, the second was delivered
/// but still unprocessed — end-to-end recovery redelivers exactly the
/// unacked window.
#[test]
fn recovery_replays_partially_acked_window() {
    let n = 3;
    let cfg = GcsConfig::end_to_end().with_batching(batch(2, 1));
    let mut cluster = Cluster::new(n, cfg, 45);
    // Frame 1 (seqs 1-2): processed everywhere by ~35 ms.
    cluster.broadcast_at(ms(10), NodeId(1), 601);
    cluster.broadcast_at(ms(10), NodeId(1), 602);
    // Frame 2 (seqs 3-4): seq 3's processing acks just before node 2
    // crashes at 70 ms; seq 4 is delivered but its 5 ms processing is
    // still in flight — the crash leaves exactly one delivered-but-
    // unacknowledged entry.
    cluster.broadcast_at(ms(60), NodeId(1), 603);
    cluster.broadcast_at(ms(60), NodeId(1), 604);
    cluster.engine.schedule_crash(ms(70), cluster.hosts[2]);
    cluster.engine.schedule_recover(ms(300), cluster.hosts[2]);
    cluster.engine.run_until(SimTime::from_secs(5));

    assert_converged(&cluster, n, &[601, 602, 603, 604]);
    assert_no_violations(&cluster, n, true, &[2]);
    let recovered = cluster.endpoint(NodeId(2)).stats();
    assert_eq!(
        recovered.redelivered, 1,
        "exactly the unacked window (seq 4) is replayed"
    );
}

/// A member crash forces a view change while three broadcasts sit in the
/// sequencer's accumulator. The accumulator is rolled back (its sequence
/// numbers were never multicast), the senders re-forward after the new
/// view installs, and every value still commits exactly once in the
/// surviving majority view.
#[test]
fn view_change_with_non_empty_accumulator() {
    let n = 3;
    let cfg = GcsConfig::view_based_uniform().with_batching(batch(32, 200));
    let mut cluster = Cluster::new(n, cfg, 46);
    for i in 0..3 {
        cluster.broadcast_at(ms(10), NodeId(1), 700 + i);
    }
    // Node 2 dies for good at 12 ms; the failure detector drives the
    // {0, 1} view in well under the 200 ms flush deadline.
    cluster.engine.schedule_crash(ms(75), cluster.hosts[2]);
    cluster.engine.run_until(SimTime::from_secs(5));

    for i in 0..2 {
        assert_eq!(
            cluster.stable_values(NodeId(i)),
            vec![700, 701, 702],
            "survivor {i} must hold the re-ordered backlog"
        );
    }
    assert_no_violations(&cluster, 2, false, &[]);
    let seq = cluster.endpoint(NodeId(0));
    assert_eq!(seq.accumulator_len(), 0);
    assert!(seq.stats().view_changes >= 1, "a view change completed");
    assert_eq!(seq.stats().delivered, 3);
}

/// The CI divergence gate: the group-safety fingerprint of a batched run
/// is bit-for-bit the fingerprint of the unbatched run of the same
/// schedule and seed — including across a mid-run crash and recovery of
/// a non-sequencer member.
#[test]
fn batched_and_unbatched_fingerprints_agree() {
    let run = |b: BatchConfig| {
        let cfg = GcsConfig::end_to_end().with_batching(b);
        let mut cluster = Cluster::new(4, cfg, 47);
        for i in 0..24 {
            cluster.broadcast_at(ms(10 + i * 7), NodeId((i % 4) as u32), 800 + i);
        }
        cluster.engine.schedule_crash(ms(60), cluster.hosts[3]);
        cluster.engine.schedule_recover(ms(400), cluster.hosts[3]);
        cluster.engine.run_until(SimTime::from_secs(10));
        cluster.group_safety_fingerprint()
    };
    let batched = run(batch(8, 1));
    let unbatched = run(BatchConfig::unbatched());
    assert_eq!(
        batched, unbatched,
        "batching changed the group-safety outcome"
    );
}

/// Full-system smoke: a batched group-safe run commits, stays safe and
/// convergent, reports its batching stats, and two identical batched
/// runs produce identical fingerprints (determinism under batching).
#[test]
fn full_system_batched_run_is_safe_and_deterministic() {
    let run = || {
        System::builder()
            .servers(3)
            .clients_per_server(2)
            .safety(SafetyLevel::GroupSafe)
            .batching(BatchConfig::of(8, SimDuration::from_micros(500)))
            .load(Load::open_tps(40.0))
            .measure(SimDuration::from_secs(5))
            .drain(SimDuration::from_secs(2))
            .seed(48)
            .build()
            .expect("valid configuration")
            .execute()
    };
    let a = run();
    let b = run();
    assert!(a.commits > 20, "commits {}", a.commits);
    assert!(a.is_safe_and_convergent(), "{a}");
    assert!(a.abcast_batches > 0, "batching must be exercised");
    assert!(a.mean_batch_size >= 1.0);
    assert_eq!(
        a.fingerprint, b.fingerprint,
        "batched runs must be deterministic"
    );
    assert_eq!(a.commits, b.commits);
    assert_eq!(a.digests, b.digests);
    let json = a.to_json();
    assert!(json.contains("\"abcast_batches\""), "{json}");
    assert!(json.contains("\"mean_batch_size\""), "{json}");
}
