//! Client-side behaviour across failures: timeout-driven failover to
//! another delegate (update-everywhere), exactly-once commits across
//! retries, and abort resubmission. Systems are wired by the builder;
//! crashes come from the declarative `FaultPlan`; the audits use the
//! `Run` handle's stepwise API for direct oracle access.

use groupsafe::core::{FaultPlan, Load, Run, SafetyLevel, System};
use groupsafe::db::TxnId;
use groupsafe::net::NodeId;
use groupsafe::sim::{SimDuration, SimTime};

const MEASURE: SimDuration = SimDuration::from_secs(20);
const DRAIN: SimDuration = SimDuration::from_secs(3);

fn build(seed: u64, faults: FaultPlan) -> Run {
    System::builder()
        .servers(3)
        .clients_per_server(1)
        .safety(SafetyLevel::GroupSafe)
        .load(Load::open_tps(10.0))
        .measure(MEASURE)
        .drain(DRAIN)
        .faults(faults)
        .seed(seed)
        .build()
        .expect("a valid configuration")
}

fn drive_to_completion(run: &mut Run) {
    let end = SimTime::ZERO + MEASURE;
    run.run_until(end);
    run.stop_clients_at(end);
    run.run_until(end + DRAIN);
}

/// Crash a delegate mid-run but let the group survive: its clients must
/// fail over to other servers and finish their work exactly once.
#[test]
fn clients_fail_over_when_their_delegate_dies() {
    // Crash server 0 (home of client 0) at 5 s; it stays down.
    let mut run = build(404, FaultPlan::crash(NodeId(0), SimTime::from_secs(5)));
    drive_to_completion(&mut run);

    let system = run.system();
    let oracle = system.oracle.borrow();
    assert!(
        oracle.timeouts > 0,
        "requests to the dead delegate must time out"
    );
    // Client 0's transactions after the crash carry its id; they must
    // still be acknowledged (served by another delegate).
    let post_crash_acks_client0 = oracle
        .acked
        .iter()
        .filter(|(txn, ack)| txn.client == 0 && ack.at > SimTime::from_secs(6))
        .count();
    assert!(
        post_crash_acks_client0 > 10,
        "client 0 must keep committing through other delegates \
         (got {post_crash_acks_client0})"
    );
    drop(oracle);
    assert!(system.lost_transactions().is_empty());
    assert_eq!(system.convergence().len(), 1, "survivors agree");
}

/// Exactly-once across retries: no transaction id is ever committed with
/// two different write sets, and commit acknowledgements are unique per
/// transaction.
#[test]
fn retries_commit_exactly_once() {
    // Make life hard: crash and recover a server mid-run.
    let mut run = build(
        405,
        FaultPlan::crash(NodeId(1), SimTime::from_secs(4))
            .recover(NodeId(1), SimTime::from_secs(8)),
    );
    drive_to_completion(&mut run);
    let system = run.system();

    // Every acknowledged update transaction is committed on every live
    // replica exactly once — the testable-transaction table dedups
    // resubmissions that raced a slow first execution.
    let oracle = system.oracle.borrow();
    let acked: Vec<TxnId> = oracle.acked.keys().copied().collect();
    drop(oracle);
    // Shard-aware form (identical to "on every replica" when there is
    // one group): a committed transaction must be held by *every*
    // member of each group that holds it at all.
    let mut on_all = 0;
    for txn in &acked {
        let mut any_group = false;
        let mut full = true;
        for g in 0..system.n_groups {
            let states = system.replica_states_of(g);
            let holders = states
                .iter()
                .filter(|(db, _)| db.is_committed(*txn))
                .count();
            if holders > 0 {
                any_group = true;
                if holders < states.len() {
                    full = false;
                }
            }
        }
        if any_group && full {
            on_all += 1;
        }
    }
    // Read-only transactions never enter the committed table; the rest
    // must be everywhere after the drain.
    let oracle = system.oracle.borrow();
    let updates = acked
        .iter()
        .filter(|t| oracle.commits.contains_key(t))
        .count();
    assert_eq!(
        on_all, updates,
        "every acknowledged update must be committed on all replicas"
    );
    assert!(updates > 100, "need a meaningful sample, got {updates}");
}
