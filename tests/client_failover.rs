//! Client-side behaviour across failures: timeout-driven failover to
//! another delegate (update-everywhere), exactly-once commits across
//! retries, and abort resubmission.

use groupsafe::core::{SafetyLevel, StopClient, System, Technique};
use groupsafe::db::TxnId;
use groupsafe::sim::{SimDuration, SimTime};
use groupsafe::workload::{system_config, table4_generator, PaperParams, RunConfig};

fn build(seed: u64) -> (System, RunConfig) {
    let params = PaperParams {
        n_servers: 3,
        clients_per_server: 1,
        ..PaperParams::default()
    };
    let cfg = RunConfig {
        technique: Technique::Dsm(SafetyLevel::GroupSafe),
        load_tps: 10.0,
        closed_loop: false,
        assumed_resp_ms: 70.0,
        lazy_prop_ms: 20.0,
        wal_flush_ms: 20.0,
        params: params.clone(),
        warmup: SimDuration::ZERO,
        duration: SimDuration::from_secs(20),
        drain: SimDuration::from_secs(3),
        seed,
    };
    let mut system = System::build(system_config(&cfg), |_| table4_generator(&params));
    system.start();
    (system, cfg)
}

/// Crash a delegate mid-run but let the group survive: its clients must
/// fail over to other servers and finish their work exactly once.
#[test]
fn clients_fail_over_when_their_delegate_dies() {
    let (mut system, cfg) = build(404);
    // Crash server 0 (home of client 0) at 5 s; it stays down.
    system.engine.schedule_crash(SimTime::from_secs(5), system.servers[0]);
    let end = SimTime::ZERO + cfg.duration;
    system.engine.run_until(end);
    for &c in &system.clients.clone() {
        system.engine.schedule_resilient(end, c, StopClient);
    }
    system.engine.run_until(end + cfg.drain);

    let oracle = system.oracle.borrow();
    assert!(oracle.timeouts > 0, "requests to the dead delegate must time out");
    // Client 0's transactions after the crash carry its id; they must
    // still be acknowledged (served by another delegate).
    let post_crash_acks_client0 = oracle
        .acked
        .iter()
        .filter(|(txn, ack)| txn.client == 0 && ack.at > SimTime::from_secs(6))
        .count();
    assert!(
        post_crash_acks_client0 > 10,
        "client 0 must keep committing through other delegates \
         (got {post_crash_acks_client0})"
    );
    drop(oracle);
    assert!(system.lost_transactions().is_empty());
    assert_eq!(system.convergence().len(), 1, "survivors agree");
}

/// Exactly-once across retries: no transaction id is ever committed with
/// two different write sets, and commit acknowledgements are unique per
/// transaction.
#[test]
fn retries_commit_exactly_once() {
    let (mut system, cfg) = build(405);
    // Make life hard: crash and recover a server mid-run.
    system.engine.schedule_crash(SimTime::from_secs(4), system.servers[1]);
    system
        .engine
        .schedule_recover(SimTime::from_secs(8), system.servers[1]);
    let end = SimTime::ZERO + cfg.duration;
    system.engine.run_until(end);
    for &c in &system.clients.clone() {
        system.engine.schedule_resilient(end, c, StopClient);
    }
    system.engine.run_until(end + cfg.drain);

    // Every acknowledged update transaction is committed on every live
    // replica exactly once — the testable-transaction table dedups
    // resubmissions that raced a slow first execution.
    let oracle = system.oracle.borrow();
    let acked: Vec<TxnId> = oracle.acked.keys().copied().collect();
    drop(oracle);
    let mut on_all = 0;
    for txn in &acked {
        let everywhere = (0..system.n_servers)
            .all(|i| system.server(i).db().is_committed(*txn));
        if everywhere {
            on_all += 1;
        }
    }
    // Read-only transactions never enter the committed table; the rest
    // must be everywhere after the drain.
    let oracle = system.oracle.borrow();
    let updates = acked
        .iter()
        .filter(|t| oracle.commits.contains_key(t))
        .count();
    assert_eq!(
        on_all, updates,
        "every acknowledged update must be committed on all replicas"
    );
    assert!(updates > 100, "need a meaningful sample, got {updates}");
}
