//! Membership edges under the scenario engine, pinned to fixed seeds:
//! minority-partition blocking, heal-then-catch-up (state transfer after
//! exclusion), and a targeted sequencer kill mid-batch — the PR-2
//! batching invariants re-checked under injected faults.

use groupsafe::core::scenario::{audit_scenario, ScenarioPlan};
use groupsafe::core::{BatchConfig, Load, Run, SafetyLevel, System};
use groupsafe::sim::{SimDuration, SimTime};

fn ms(v: u64) -> SimTime {
    SimTime::from_millis(v)
}

fn build(seed: u64, plan: ScenarioPlan, batch: Option<BatchConfig>) -> Run {
    let mut b = System::builder()
        .servers(5)
        .clients_per_server(2)
        .safety(SafetyLevel::GroupSafe)
        .load(Load::open_tps(25.0))
        .measure(SimDuration::from_secs(6))
        .drain(SimDuration::from_secs(3))
        .seed(seed)
        .scenario(plan);
    if let Some(batch) = batch {
        b = b.batching(batch);
    }
    b.build().expect("valid scenario configuration")
}

fn run_to_end(run: &mut Run) {
    let end = SimTime::from_secs(6);
    run.run_until(end);
    run.stop_clients_at(end);
    run.run_until(end + SimDuration::from_secs(3));
}

/// A minority partition (two servers and their clients) must block —
/// uniform delivery cannot acknowledge on the minority side — while the
/// majority keeps committing; nothing may be lost.
#[test]
fn minority_partition_blocks_but_stays_safe() {
    let plan = ScenarioPlan::new()
        .partition(ms(2_000), vec![vec![0, 1]])
        .heal(ms(3_500));
    let mut run = build(71, plan.clone(), None);
    run_to_end(&mut run);
    let system = run.into_system();

    let oracle = system.oracle.borrow();
    let in_window = |at: SimTime| at > ms(2_100) && at <= ms(3_500);
    // Update transactions acknowledged inside the partition window, split
    // by which side of the partition their client sat on.
    let (mut minority_acks, mut majority_acks) = (0, 0);
    for (txn, ack) in oracle.acked.iter() {
        if !in_window(ack.at) || !oracle.commits.contains_key(txn) {
            continue;
        }
        if txn.client % 5 <= 1 {
            minority_acks += 1;
        } else {
            majority_acks += 1;
        }
    }
    drop(oracle);
    assert_eq!(
        minority_acks, 0,
        "the minority side must block, not acknowledge"
    );
    assert!(
        majority_acks > 5,
        "the majority side must keep committing ({majority_acks})"
    );
    assert!(system.lost_transactions().is_empty());
    assert_eq!(system.convergence().len(), 1, "survivors re-converge");
    let audit = audit_scenario(&plan, &system, SafetyLevel::GroupSafe);
    assert!(audit.clean(), "{:?}", audit.violations);
    assert!(audit.quiescent, "the healed plan must be fully audited");
}

/// After the heal, the excluded minority learns it was dropped from the
/// view, demotes itself and catches up via state transfer.
#[test]
fn heal_then_catch_up_rejoins_via_state_transfer() {
    let plan = ScenarioPlan::new()
        .partition(ms(2_000), vec![vec![0, 1]])
        .heal(ms(3_500));
    let mut run = build(73, plan.clone(), None);
    run_to_end(&mut run);
    let system = run.into_system();

    let transfers: u32 = (0..2).map(|i| system.server(i).transfer_count()).sum();
    assert!(
        transfers >= 1,
        "an excluded minority member must rejoin via state transfer"
    );
    for i in 0..5 {
        assert_eq!(system.server(i).crash_count(), 0, "nobody crashed");
        assert!(
            system.server(i).gcs().expect("dsm").is_joined(),
            "server {i} must be a functioning member again"
        );
    }
    assert_eq!(system.convergence().len(), 1);
    // The majority never transferred: their order digests must agree.
    let audit = audit_scenario(&plan, &system, SafetyLevel::GroupSafe);
    assert!(audit.clean(), "{:?}", audit.violations);
}

/// Kill the sequencer mid-run with batching enabled (PR-2 invariants
/// under faults): the view change rolls the accumulator back, a new
/// sequencer takes over, nothing acknowledged is lost, and the batched
/// run stays deterministic.
#[test]
fn sequencer_kill_mid_batch_is_safe_and_deterministic() {
    let batch = BatchConfig {
        max_msgs: 8,
        max_bytes: 0,
        max_delay: SimDuration::from_micros(500),
    };
    let plan = ScenarioPlan::new().kill_sequencer(ms(2_500), Some(SimDuration::from_millis(700)));
    let run_once = || {
        let mut run = build(79, plan.clone(), Some(batch));
        run_to_end(&mut run);
        run.into_system()
    };
    let system = run_once();

    assert!(system.lost_transactions().is_empty(), "no loss");
    assert_eq!(system.convergence().len(), 1, "replicas agree");
    let (gcs, _) = system.gcs_stats();
    assert!(gcs.batches_sent > 0, "batching must be exercised");
    assert!(
        gcs.view_changes >= 2,
        "the kill forces a view change and the rejoin another"
    );
    let killed: Vec<u32> = (0..5)
        .filter(|&i| system.server(i).crash_count() > 0)
        .collect();
    assert_eq!(killed.len(), 1, "exactly the sequencer died: {killed:?}");
    let audit = audit_scenario(&plan, &system, SafetyLevel::GroupSafe);
    assert!(audit.clean(), "{:?}", audit.violations);

    // Bit-for-bit determinism of the batched faulty run.
    let again = run_once();
    assert_eq!(system.engine.fingerprint(), again.engine.fingerprint());
    assert_eq!(
        system.oracle.borrow().acked.len(),
        again.oracle.borrow().acked.len()
    );
}

/// The same fault timeline replayed against `execute()` (instead of the
/// stepwise driver) yields the same dispatch sequence: hooks fire at
/// their instants under both lifecycles.
#[test]
fn stepwise_and_execute_replay_identically() {
    let plan = ScenarioPlan::new()
        .crash_for(ms(1_500), 2, SimDuration::from_millis(600))
        .partition(ms(3_000), vec![vec![4]])
        .heal(ms(3_900));
    let stepwise = {
        let mut run = build(83, plan.clone(), None);
        run_to_end(&mut run);
        run.into_system().engine.fingerprint()
    };
    let executed = build(83, plan, None).execute().fingerprint;
    assert_eq!(stepwise, executed);
}
