//! The shard router and the cross-group commit protocol.
//!
//! * degenerate sharding: `shards(1)` is bit-for-bit the unsharded
//!   system (identical report fingerprints),
//! * build-time validation: empty/unowned/overlapping key ranges and
//!   unsupported technique combinations are typed errors,
//! * cross-group transactions: atomicity across groups under no faults
//!   and under a coordinator-group sequencer crash (PR 3 scenario
//!   events), audited by the extended `audit_scenario` oracle,
//! * whole-group failure with an operator restart audits clean at the
//!   group-safe level,
//! * a sharded scenario-fuzz smoke (seeded, deterministic).

use groupsafe_core::scenario::fuzz::{run_fuzz_case, FuzzSpec};
use groupsafe_core::shard::ShardError;
use groupsafe_core::{audit_scenario, BuildError, Load, SafetyLevel, ScenarioPlan, System};
use groupsafe_sim::{SimDuration, SimTime};

fn small(shards: u32, cross: f64, seed: u64) -> groupsafe_core::SystemBuilder {
    System::builder()
        .servers(3)
        .clients_per_server(2)
        .safety(SafetyLevel::GroupSafe)
        .shards(shards)
        .cross_shard_fraction(cross)
        .load(Load::open_tps(15.0 * shards as f64))
        .measure(SimDuration::from_secs(5))
        .drain(SimDuration::from_secs(2))
        .seed(seed)
}

// ---------------------------------------------------------------------
// Degenerate sharding ≡ unsharded
// ---------------------------------------------------------------------

#[test]
fn shards_1_is_fingerprint_identical_to_unsharded() {
    // The unsharded baseline pins the default single-group ShardSpec
    // explicitly, so the comparison holds under the GROUPSAFE_SHARDS
    // env profile too.
    let unsharded = System::builder()
        .servers(3)
        .clients_per_server(2)
        .safety(SafetyLevel::GroupSafe)
        .shard(groupsafe_core::ShardSpec::default())
        .load(Load::open_tps(15.0))
        .measure(SimDuration::from_secs(5))
        .drain(SimDuration::from_secs(2))
        .seed(1234)
        .build()
        .expect("valid")
        .execute();
    let sharded = small(1, 0.0, 1234).build().expect("valid").execute();
    assert_eq!(unsharded.fingerprint, sharded.fingerprint, "bit-for-bit");
    assert_eq!(unsharded.commits, sharded.commits);
    assert_eq!(unsharded.digests, sharded.digests);
    assert_eq!(unsharded.to_json(), sharded.to_json(), "whole report");
    assert!(
        sharded.groups.is_empty(),
        "no per-group section when single"
    );
}

// ---------------------------------------------------------------------
// Build-time validation
// ---------------------------------------------------------------------

#[test]
fn bad_shard_configurations_are_typed_errors() {
    // A gap in the ranges: keys 5000..6000 unowned.
    let err = System::builder()
        .shard_ranges(vec![(0, 5_000), (6_000, 10_000)])
        .build()
        .err();
    assert_eq!(
        err,
        Some(BuildError::Shard(ShardError::UnownedKeys {
            from: 5_000,
            to: 6_000
        }))
    );
    // An empty range.
    let err = System::builder()
        .shard_ranges(vec![(0, 5_000), (5_000, 5_000), (5_000, 10_000)])
        .build()
        .err();
    assert_eq!(
        err,
        Some(BuildError::Shard(ShardError::EmptyGroup { group: 1 }))
    );
    // Overlap.
    let err = System::builder()
        .shard_ranges(vec![(0, 6_000), (5_000, 10_000)])
        .build()
        .err();
    assert_eq!(
        err,
        Some(BuildError::Shard(ShardError::OverlappingRanges {
            key: 5_000
        }))
    );
    // More hash groups than keys.
    let err = System::builder()
        .shards(10)
        .workload(groupsafe_core::WorkloadSpec {
            n_items: 5,
            txn_len_min: 1,
            txn_len_max: 2,
            ..groupsafe_core::WorkloadSpec::table4()
        })
        .build()
        .err();
    assert!(matches!(
        err,
        Some(BuildError::Shard(ShardError::EmptyGroup { .. }))
    ));
    // Cross-group fraction outside [0, 1].
    let err = System::builder()
        .shards(2)
        .cross_shard_fraction(1.5)
        .build()
        .err();
    assert!(matches!(err, Some(BuildError::BadProbability { .. })));
    // The lazy baseline cannot commit across groups.
    let err = System::builder()
        .safety(SafetyLevel::OneSafe)
        .shards(2)
        .cross_shard_fraction(0.1)
        .build()
        .err();
    assert!(matches!(
        err,
        Some(BuildError::UnsupportedCrossShard { .. })
    ));
    // Scenario events must name existing groups.
    let err = System::builder()
        .shards(2)
        .scenario(ScenarioPlan::new().crash_whole_group(SimTime::from_secs(1), 5, None))
        .build()
        .err();
    assert_eq!(
        err,
        Some(BuildError::GroupOutOfRange {
            group: 5,
            n_groups: 2
        })
    );
}

// ---------------------------------------------------------------------
// Cross-group commits
// ---------------------------------------------------------------------

#[test]
fn cross_group_transactions_commit_atomically() {
    let mut run = small(3, 0.2, 77).build().expect("valid");
    run.run_until(SimTime::from_secs(5));
    run.stop_clients_at(SimTime::from_secs(5));
    run.run_until(SimTime::from_secs(8));
    let system = run.into_system();
    let audit = audit_scenario(&ScenarioPlan::new(), &system, SafetyLevel::GroupSafe);
    assert!(audit.clean(), "{:?}", audit.violations);
    assert!(
        audit.cross_group_audited > 5,
        "cross-group commits expected, audited {}",
        audit.cross_group_audited
    );
    // Direct all-or-nothing check, independent of the oracle's excuse
    // rules (no faults here, so there is nothing to excuse).
    let oracle = system.oracle.borrow();
    for (txn, xg) in &oracle.xg {
        if !oracle.acked.contains_key(txn) {
            continue;
        }
        assert!(xg.groups.len() >= 2, "recorded as cross-group");
        for &g in &xg.groups {
            let committed = system
                .replica_states_of(g)
                .iter()
                .any(|(db, live)| *live && db.is_committed(*txn));
            assert!(committed, "{txn:?} missing from group {g}");
        }
    }
}

#[test]
fn sharded_report_carries_per_group_stats() {
    let report = small(3, 0.1, 42).build().expect("valid").execute();
    assert_eq!(report.groups.len(), 3);
    assert!(report.cross_group_commits > 0, "{report}");
    assert!(report.cross_group_ratio > 0.0 && report.cross_group_ratio < 0.5);
    assert!(report.lost == 0, "{report}");
    assert_eq!(report.distinct_states, 1, "every group converged");
    let total: usize = report.groups.iter().map(|g| g.commits).sum();
    assert!(total > 0);
    for g in &report.groups {
        assert!(g.commits > 0, "group {} starved: {report}", g.group);
        assert!(g.wire_sent > 0, "per-domain wire accounting");
    }
    let json = report.to_json();
    assert!(json.contains("\"groups\":[{"), "{json}");
    assert!(json.contains("\"cross_group_ratio\""), "{json}");
}

#[test]
fn cross_group_atomicity_survives_coordinator_group_sequencer_crash() {
    // Kill group 0's sequencer mid-run (twice), while cross-group
    // traffic flows: the two-phase protocol must keep every
    // acknowledged transaction all-or-nothing across groups.
    let plan = ScenarioPlan::new()
        .kill_sequencer_in(
            SimTime::from_millis(1_500),
            0,
            Some(SimDuration::from_millis(800)),
        )
        .kill_sequencer_in(
            SimTime::from_millis(3_000),
            1,
            Some(SimDuration::from_millis(800)),
        );
    let mut run = small(3, 0.25, 909)
        .scenario(plan.clone())
        .build()
        .expect("valid");
    run.run_until(SimTime::from_secs(5));
    run.stop_clients_at(SimTime::from_secs(5));
    run.run_until(SimTime::from_secs(8));
    // Let stragglers drain like the fuzzer does.
    let mut extra = SimTime::from_secs(8);
    let cap = extra + SimDuration::from_secs(10);
    while (run.system().convergence().len() > 1 || run.system().delivery_backlog() > 0)
        && extra < cap
    {
        extra += SimDuration::from_secs(1);
        run.run_until(extra);
    }
    let system = run.into_system();
    let audit = audit_scenario(&plan, &system, SafetyLevel::GroupSafe);
    assert!(audit.clean(), "{:?}", audit.violations);
    assert!(audit.quiescent, "the audit must have applied in full");
    assert!(audit.cross_group_audited > 0, "cross traffic flowed");
}

#[test]
fn whole_group_failure_with_restart_audits_clean() {
    // Group 1 fails completely (the group-safe loss case, scoped to one
    // shard), recovers, and the operator restarts it as a fresh group.
    let down = SimDuration::from_millis(700);
    let plan = ScenarioPlan::new()
        .crash_whole_group(SimTime::from_millis(1_200), 1, Some(down))
        .restart_group(
            SimTime::from_millis(1_200) + down + SimDuration::from_millis(300),
            vec![3, 4, 5],
        );
    let mut run = small(3, 0.1, 5150)
        .scenario(plan.clone())
        .build()
        .expect("valid");
    run.run_until(SimTime::from_secs(5));
    run.stop_clients_at(SimTime::from_secs(5));
    run.run_until(SimTime::from_secs(8));
    let mut extra = SimTime::from_secs(8);
    let cap = extra + SimDuration::from_secs(10);
    while (run.system().convergence().len() > 1 || run.system().delivery_backlog() > 0)
        && extra < cap
    {
        extra += SimDuration::from_secs(1);
        run.run_until(extra);
    }
    let system = run.into_system();
    assert!(
        plan.group_failure_of(3, 3, 1),
        "the plan is recognised as a whole-group failure of group 1"
    );
    assert!(!plan.group_failure_of(3, 3, 0), "group 0 never failed");
    let audit = audit_scenario(&plan, &system, SafetyLevel::GroupSafe);
    assert!(audit.group_failed);
    assert!(audit.clean(), "{:?}", audit.violations);
}

#[test]
fn group_partition_isolates_one_groups_minority() {
    let plan = ScenarioPlan::new()
        .partition_group(SimTime::from_millis(1_500), 2, vec![0])
        .heal(SimTime::from_millis(2_700));
    let report = small(3, 0.1, 31)
        .scenario(plan)
        .build()
        .expect("valid")
        .execute();
    assert_eq!(report.lost, 0, "{report}");
    assert_eq!(report.distinct_states, 1, "{report}");
}

// ---------------------------------------------------------------------
// Sharded scenario fuzz (smoke; CI runs the 50-seed sweep)
// ---------------------------------------------------------------------

#[test]
fn sharded_fuzz_smoke_10_seeds_group_safe() {
    let spec = FuzzSpec::sharded(SafetyLevel::GroupSafe, 3);
    for seed in 0..10 {
        let out = run_fuzz_case(seed, &spec);
        assert!(out.ok(), "seed {seed}:\n{}", out.describe());
    }
}

#[test]
fn sharded_fuzz_replays_bit_for_bit() {
    let spec = FuzzSpec::sharded(SafetyLevel::GroupSafe, 3);
    let a = run_fuzz_case(4, &spec);
    let b = run_fuzz_case(4, &spec);
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.commits, b.commits);
    assert_eq!(a.plan, b.plan);
}
