//! The `reads-off ≡ seed` pin: with the read path disabled (the
//! default), the system is bit-for-bit the pre-read-path system — same
//! dispatch fingerprint, same commits, same digests, same report JSON.
//! Same pattern as the `shards(1)` pin in `tests/sharding.rs`: the
//! baseline pins the classic configuration explicitly, so the
//! comparison holds under the `GROUPSAFE_READS` env profile too.

use groupsafe::core::reads::{ReadConfig, ReadLevel};
use groupsafe::core::{Load, SafetyLevel, System, SystemBuilder};
use groupsafe::sim::SimDuration;

fn base(seed: u64) -> SystemBuilder {
    // This binary pins the *profile-free* default (every test builds
    // through here, and none ever sets the variable, so clearing it is
    // race-free): under `GROUPSAFE_READS` the untouched default
    // legitimately serves follower reads and the comparison below would
    // be comparing two different — both correct — systems.
    std::env::remove_var("GROUPSAFE_READS");
    System::builder()
        .servers(3)
        .clients_per_server(2)
        .safety(SafetyLevel::GroupSafe)
        .load(Load::open_tps(15.0))
        .measure(SimDuration::from_secs(5))
        .drain(SimDuration::from_secs(2))
        .seed(seed)
}

#[test]
fn reads_off_is_fingerprint_identical_to_the_default() {
    // Explicitly classic + zero read fraction...
    let pinned = base(4242)
        .reads(ReadConfig::classic())
        .read_fraction(0.0)
        .build()
        .expect("valid")
        .execute();
    // ...vs. the untouched default builder.
    let default = base(4242).build().expect("valid").execute();
    assert_eq!(pinned.fingerprint, default.fingerprint, "bit-for-bit");
    assert_eq!(pinned.commits, default.commits);
    assert_eq!(pinned.digests, default.digests);
    assert_eq!(pinned.to_json(), default.to_json(), "whole report");
    assert_eq!(default.reads, 0, "no read-only txns at the Table 4 mix");
    assert_eq!(default.read_redirects, 0);
}

/// The read *mix* alone (classic path, no local reads) must not change
/// the write-side machinery: the run still commits, converges and
/// loses nothing, and the read-only transactions are answered without
/// a single broadcast entry of their own.
#[test]
fn read_mix_on_the_classic_path_is_safe() {
    let report = base(77)
        .read_fraction(0.5)
        .build()
        .expect("valid")
        .execute();
    assert!(report.reads > 10, "{report}");
    assert!(report.is_safe_and_convergent(), "{report}");
}

/// Switching the read path while keeping the workload changes the read
/// plumbing only: the same seed still commits and converges, and the
/// local path actually serves (sanity that the pin above is not
/// comparing two dead configurations).
#[test]
fn local_reads_are_live_under_the_pinned_seed() {
    let local = base(4242)
        .read_level(ReadLevel::Session)
        .read_fraction(0.5)
        .build()
        .expect("valid")
        .execute();
    assert!(local.reads > 10, "{local}");
    assert!(local.is_safe_and_convergent(), "{local}");
}
