//! Cross-crate integration tests: determinism of the whole stack and
//! one-copy-serialisability-style consistency checks.

use groupsafe::core::{SafetyLevel, StopClient, Technique};
use groupsafe::db::{ItemState, WriteOp};
use groupsafe::sim::{SimDuration, SimTime};
use groupsafe::workload::{system_config, table4_generator, PaperParams, RunConfig};

fn small_cfg(technique: Technique, seed: u64) -> RunConfig {
    RunConfig {
        technique,
        load_tps: 15.0,
        closed_loop: false,
        assumed_resp_ms: 70.0,
        lazy_prop_ms: 20.0,
        wal_flush_ms: 20.0,
        params: PaperParams {
            n_servers: 3,
            clients_per_server: 2,
            ..PaperParams::default()
        },
        warmup: SimDuration::from_secs(1),
        duration: SimDuration::from_secs(8),
        drain: SimDuration::from_secs(2),
        seed,
    }
}

fn run_system(cfg: &RunConfig) -> (u64, usize, Vec<u64>) {
    let params = cfg.params.clone();
    let mut system =
        groupsafe::core::System::build(system_config(cfg), |_| table4_generator(&params));
    system.start();
    let end = SimTime::ZERO + cfg.warmup + cfg.duration;
    system.engine.run_until(end);
    for &c in &system.clients.clone() {
        system.engine.schedule_resilient(end, c, StopClient);
    }
    system.engine.run_until(end + cfg.drain);
    let fingerprint = system.engine.fingerprint();
    let commits = system.oracle.borrow().acked.len();
    let digests = system.convergence();
    (fingerprint, commits, digests)
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let cfg = small_cfg(Technique::Dsm(SafetyLevel::GroupSafe), 77);
    let a = run_system(&cfg);
    let b = run_system(&cfg);
    assert_eq!(a.0, b.0, "dispatch fingerprints must match");
    assert_eq!(a.1, b.1, "commit counts must match");
    assert_eq!(a.2, b.2, "final states must match");
}

#[test]
fn different_seeds_still_converge() {
    for seed in [1, 2, 3, 4] {
        let cfg = small_cfg(Technique::Dsm(SafetyLevel::GroupSafe), seed);
        let (_, commits, digests) = run_system(&cfg);
        assert!(commits > 20, "seed {seed}: too few commits ({commits})");
        assert_eq!(digests.len(), 1, "seed {seed}: replicas diverged");
    }
}

#[test]
fn lazy_converges_after_drain() {
    for seed in [5, 6, 7] {
        let cfg = small_cfg(Technique::Lazy, seed);
        let (_, commits, digests) = run_system(&cfg);
        assert!(commits > 20);
        assert_eq!(digests.len(), 1, "seed {seed}: lazy replicas diverged");
    }
}

/// One-copy serialisability witness for the database state machine: the
/// committed transactions, replayed in version (= delivery) order against
/// a fresh database, must reproduce every replica's final state exactly.
#[test]
fn dsm_commit_history_replays_to_the_replica_state() {
    let cfg = small_cfg(Technique::Dsm(SafetyLevel::GroupSafe), 123);
    let params = cfg.params.clone();
    let mut system =
        groupsafe::core::System::build(system_config(&cfg), |_| table4_generator(&params));
    system.start();
    let end = SimTime::ZERO + cfg.warmup + cfg.duration;
    system.engine.run_until(end);
    for &c in &system.clients.clone() {
        system.engine.schedule_resilient(end, c, StopClient);
    }
    system.engine.run_until(end + cfg.drain);

    // Gather the committed write sets and sort by version (delivery seq).
    let oracle = system.oracle.borrow();
    let mut history: Vec<(u64, Vec<WriteOp>)> = oracle
        .commits
        .values()
        .filter(|r| !r.writes.is_empty())
        .map(|r| (r.writes[0].version, r.writes.clone()))
        .collect();
    drop(oracle);
    history.sort_by_key(|(v, _)| *v);

    // Replay into a fresh image.
    let n_items = cfg.params.n_items as usize;
    let mut image = vec![ItemState::default(); n_items];
    for (_, writes) in &history {
        for w in writes {
            image[w.item.index()] = ItemState {
                value: w.value,
                version: w.version,
            };
        }
    }

    // Compare with every replica.
    for i in 0..system.n_servers {
        let db = system.server(i).db();
        for (idx, expect) in image.iter().enumerate() {
            let got = db.item(groupsafe::db::ItemId(idx as u32));
            assert_eq!(
                got, *expect,
                "replica {i}, item {idx}: serial replay mismatch"
            );
        }
    }
}

/// The certification invariant: no committed transaction observed a stale
/// read — for every (item, version) in a committed read set, no other
/// committed transaction wrote that item with a version between the read
/// version and the reader's own commit version.
#[test]
fn dsm_no_committed_transaction_read_stale_data() {
    let cfg = small_cfg(Technique::Dsm(SafetyLevel::GroupSafe), 321);
    let params = cfg.params.clone();
    let mut system =
        groupsafe::core::System::build(system_config(&cfg), |_| table4_generator(&params));
    system.start();
    system.engine.run_until(SimTime::from_secs(10));

    let oracle = system.oracle.borrow();
    // item -> sorted committed write versions
    let mut writes_by_item: std::collections::BTreeMap<u32, Vec<u64>> = Default::default();
    for rec in oracle.commits.values() {
        for w in &rec.writes {
            writes_by_item.entry(w.item.0).or_default().push(w.version);
        }
    }
    for v in writes_by_item.values_mut() {
        v.sort_unstable();
    }
    let mut checked = 0;
    for rec in oracle.commits.values() {
        let Some(own) = rec.writes.first().map(|w| w.version) else {
            continue;
        };
        for (item, read_v) in &rec.readset {
            if let Some(vs) = writes_by_item.get(&item.0) {
                let conflicting = vs
                    .iter()
                    .any(|&wv| wv > *read_v && wv < own);
                assert!(
                    !conflicting,
                    "committed txn at version {own} read item {item} at stale version {read_v}"
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 100, "the invariant must actually be exercised");
}
