//! Cross-crate integration tests: determinism of the whole stack and
//! one-copy-serialisability-style consistency checks, driven through the
//! builder API.

use groupsafe::core::{Load, Report, SafetyLevel, System, SystemBuilder};
use groupsafe::db::{ItemState, WriteOp};
use groupsafe::sim::{SimDuration, SimTime};

const N_ITEMS: u32 = 10_000;

fn small_builder(level: SafetyLevel, seed: u64) -> SystemBuilder {
    System::builder()
        .servers(3)
        .clients_per_server(2)
        .safety(level)
        .load(Load::open_tps(15.0))
        .warmup(SimDuration::from_secs(1))
        .measure(SimDuration::from_secs(8))
        .drain(SimDuration::from_secs(2))
        .seed(seed)
}

fn run_system(level: SafetyLevel, seed: u64) -> Report {
    small_builder(level, seed)
        .build()
        .expect("a valid configuration")
        .execute()
}

/// Run the full lifecycle but keep the system for post-hoc inspection.
fn run_and_keep(level: SafetyLevel, seed: u64) -> System {
    let mut run = small_builder(level, seed)
        .build()
        .expect("a valid configuration");
    let end = SimTime::from_secs(9);
    run.run_until(end);
    run.stop_clients_at(end);
    run.run_until(end + SimDuration::from_secs(2));
    run.into_system()
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let a = run_system(SafetyLevel::GroupSafe, 77);
    let b = run_system(SafetyLevel::GroupSafe, 77);
    assert_eq!(
        a.fingerprint, b.fingerprint,
        "dispatch fingerprints must match"
    );
    assert_eq!(a.acked, b.acked, "commit counts must match");
    assert_eq!(a.digests, b.digests, "final states must match");
}

#[test]
fn different_seeds_still_converge() {
    for seed in [1, 2, 3, 4] {
        let r = run_system(SafetyLevel::GroupSafe, seed);
        assert!(r.acked > 20, "seed {seed}: too few commits ({})", r.acked);
        assert_eq!(r.distinct_states, 1, "seed {seed}: replicas diverged");
    }
}

#[test]
fn lazy_converges_after_drain() {
    for seed in [5, 6, 7] {
        let r = run_system(SafetyLevel::OneSafe, seed);
        assert!(r.acked > 20);
        assert_eq!(r.distinct_states, 1, "seed {seed}: lazy replicas diverged");
    }
}

/// One-copy serialisability witness for the database state machine: the
/// committed transactions, replayed in version (= delivery) order against
/// a fresh database, must reproduce every replica's final state exactly.
#[test]
fn dsm_commit_history_replays_to_the_replica_state() {
    let system = run_and_keep(SafetyLevel::GroupSafe, 123);

    // Versions are per-group delivery sequence numbers and each group
    // holds only its own keys, so the replay runs group by group (one
    // pass over everything in the unsharded case).
    for g in 0..system.n_groups {
        // Gather the group's committed write sets, sorted by version
        // (delivery seq within the group).
        let oracle = system.oracle.borrow();
        let mut history: Vec<(u64, Vec<WriteOp>)> = oracle
            .commits
            .values()
            .filter(|r| !r.writes.is_empty())
            .filter(|r| system.shard.group_of(r.writes[0].item) == g)
            .map(|r| (r.writes[0].version, r.writes.clone()))
            .collect();
        drop(oracle);
        history.sort_by_key(|(v, _)| *v);

        // Replay into a fresh image.
        let mut image = vec![ItemState::default(); N_ITEMS as usize];
        for (_, writes) in &history {
            for w in writes {
                image[w.item.index()] = ItemState {
                    value: w.value,
                    version: w.version,
                };
            }
        }

        // Compare with every replica of the group, on the keys it owns.
        for i in g * system.servers_per_group..(g + 1) * system.servers_per_group {
            let db = system.server(i).db();
            for (idx, expect) in image.iter().enumerate() {
                if system.shard.group_of(groupsafe::db::ItemId(idx as u32)) != g {
                    continue;
                }
                let got = db.item(groupsafe::db::ItemId(idx as u32));
                assert_eq!(
                    got, *expect,
                    "group {g}, replica {i}, item {idx}: serial replay mismatch"
                );
            }
        }
    }
}

/// The certification invariant: no committed transaction observed a stale
/// read — for every (item, version) in a committed read set, no other
/// committed transaction wrote that item with a version between the read
/// version and the reader's own commit version.
#[test]
fn dsm_no_committed_transaction_read_stale_data() {
    let mut run = small_builder(SafetyLevel::GroupSafe, 321)
        .build()
        .expect("a valid configuration");
    run.run_until(SimTime::from_secs(10));
    let system = run.system();

    let oracle = system.oracle.borrow();
    // item -> sorted committed write versions
    let mut writes_by_item: std::collections::BTreeMap<u32, Vec<u64>> = Default::default();
    for rec in oracle.commits.values() {
        for w in &rec.writes {
            writes_by_item.entry(w.item.0).or_default().push(w.version);
        }
    }
    for v in writes_by_item.values_mut() {
        v.sort_unstable();
    }
    let mut checked = 0;
    for rec in oracle.commits.values() {
        let Some(own) = rec.writes.first().map(|w| w.version) else {
            continue;
        };
        for (item, read_v) in &rec.readset {
            if let Some(vs) = writes_by_item.get(&item.0) {
                let conflicting = vs.iter().any(|&wv| wv > *read_v && wv < own);
                assert!(
                    !conflicting,
                    "committed txn at version {own} read item {item} at stale version {read_v}"
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 100, "the invariant must actually be exercised");
}
