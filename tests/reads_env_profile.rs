//! Regression for the CI read profile: `GROUPSAFE_READS` must reach the
//! built system whichever way the builder was assembled, and explicit
//! read setters must still win over it.
//!
//! One test, alone in its own binary: the env var is process-global, so
//! it must not race sibling tests that build systems concurrently.

use groupsafe::core::reads::{reads_from_env, ReadConfig, ReadLevel, ReadPath};
use groupsafe::core::{ReplicaConfig, SafetyLevel, System, Technique};
use groupsafe::workload::{builder_for, RunConfig};

#[test]
fn env_profile_parses_plumbs_and_yields_to_explicit() {
    // ---- parsing: every recognised profile, and a typed error on typos
    // (a malformed value must never silently select the classic path —
    // that would make a "reads on" CI pass vacuous).
    let parse = |v: Option<&str>| {
        match v {
            Some(v) => std::env::set_var("GROUPSAFE_READS", v),
            None => std::env::remove_var("GROUPSAFE_READS"),
        }
        let got = reads_from_env();
        std::env::remove_var("GROUPSAFE_READS");
        got
    };
    assert_eq!(parse(None), Ok(None));
    assert_eq!(parse(Some("off")), Ok(None));
    assert_eq!(
        parse(Some("session")).map(|o| o.map(|(c, f)| (c.path, f))),
        Ok(Some((ReadPath::Local(ReadLevel::Session), None)))
    );
    assert_eq!(
        parse(Some("stable:0.9")).map(|o| o.map(|(c, f)| (c.path, f))),
        Ok(Some((ReadPath::Local(ReadLevel::Stable), Some(0.9))))
    );
    assert_eq!(
        parse(Some("latest:0.25")).map(|o| o.map(|(c, f)| (c.path, f))),
        Ok(Some((ReadPath::Local(ReadLevel::Latest), Some(0.25))))
    );
    assert_eq!(
        parse(Some("broadcast:0.5")).map(|o| o.map(|(c, f)| (c.path, f))),
        Ok(Some((ReadPath::Broadcast, Some(0.5))))
    );
    assert_eq!(
        parse(Some("classic")).map(|o| o.map(|(c, f)| (c.path, f))),
        Ok(Some((ReadPath::Classic, None)))
    );
    for bad in ["sessions", "session:2.0", "session:x", "snapshot"] {
        assert!(
            parse(Some(bad)).is_err(),
            "{bad:?} must be a typed error, not silently select classic"
        );
    }
    // And the error must surface through the builder as a typed
    // BuildError, failing the build loudly.
    std::env::set_var("GROUPSAFE_READS", "snapshot");
    let err = System::builder().build();
    std::env::remove_var("GROUPSAFE_READS");
    assert!(
        matches!(
            err.as_ref().map(|_| ()),
            Err(groupsafe::core::BuildError::BadEnvProfile {
                var: "GROUPSAFE_READS",
                ..
            })
        ),
        "a malformed profile must fail the build with a typed error"
    );

    // ---- precedence through the builder.
    std::env::set_var("GROUPSAFE_READS", "session:0.4");

    // A later `.replica(..)` must not shed the env-selected profile,
    // and the profile's fraction reaches the workload.
    let cfg = System::builder()
        .replica(ReplicaConfig::default())
        .to_system_config()
        .expect("valid");
    assert_eq!(
        cfg.replica.reads.path,
        ReadPath::Local(ReadLevel::Session),
        "env profile was dropped"
    );
    assert!(cfg.replica.db.mvcc_depth > 0, "local path enables MVCC");

    // The canonical workload driver path (`builder_for`) as well.
    let run_cfg = RunConfig::paper(Technique::Dsm(SafetyLevel::GroupSafe), 30.0, 1);
    let cfg = builder_for(&run_cfg).to_system_config().expect("valid");
    assert_eq!(
        cfg.replica.reads.path,
        ReadPath::Local(ReadLevel::Session),
        "builder_for shed the profile"
    );

    // Explicit calls still beat the env.
    let cfg = System::builder()
        .reads(ReadConfig::classic())
        .read_fraction(0.0)
        .to_system_config()
        .expect("valid");
    assert_eq!(cfg.replica.reads.path, ReadPath::Classic, "explicit wins");
    assert_eq!(cfg.replica.db.mvcc_depth, 0, "classic keeps MVCC off");

    std::env::remove_var("GROUPSAFE_READS");
}
