//! A hermitage-style isolation matrix for interactive snapshot-isolation
//! transactions over the multi-version store, run end to end through the
//! database state machine pipeline at every strong safety level
//! (group-safe, 2-safe, group-1-safe).
//!
//! Each test scripts one classic anomaly as hand-timed transactions
//! injected straight into the delegates of an otherwise idle system,
//! then asserts the outcome the SI contract promises — from the
//! delegates' certification records (`SiRecord`: verdict, pinned
//! snapshot, observed read versions) and the replicas' converged state:
//!
//! | anomaly                          | verdict under SI  |
//! |----------------------------------|-------------------|
//! | G0  dirty write                  | prevented         |
//! | G1a aborted read                 | prevented         |
//! | G1b intermediate read            | prevented         |
//! | G1c circular information flow    | prevented         |
//! | OTV observed transaction vanishes| prevented         |
//! | G-single read skew               | prevented         |
//! | lost update                      | prevented         |
//! | G2-item write skew               | **allowed**       |
//!
//! G2-item is the matrix's honesty check: snapshot isolation is *not*
//! serializability, and a suite in which write skew failed to commit
//! would be testing some other protocol.
//!
//! Every scenario then runs its negative control: corrupt one replica's
//! certification verdicts (the PR-6 seeded-corruption hooks) and assert
//! the scenario oracle reports `CertificationDivergence` — so a green
//! matrix is evidence, not vacuity. A final end-to-end control forces a
//! delegate to certify blindly and asserts the oracle convicts the
//! resulting lost update itself (`SiLostUpdate`).

use groupsafe::core::msg::{ClientMsg, TxnRequest};
use groupsafe::core::scenario::{audit_scenario, OracleViolation, ScenarioPlan};
use groupsafe::core::server::ReplicaServer;
use groupsafe::core::{Load, SafetyLevel, SiRecord, System};
use groupsafe::db::{DbConfig, FlushPolicy, ItemId, Operation, TxnId};
use groupsafe::net::{Incoming, NodeId};
use groupsafe::sim::{SimDuration, SimTime};

/// The safety levels the matrix runs at. SI semantics are carried by the
/// certification pipeline, which all three share; the levels differ only
/// in logging/ack discipline, and the matrix proves the isolation
/// guarantees are invariant across them.
const LEVELS: [SafetyLevel; 3] = [
    SafetyLevel::GroupSafe,
    SafetyLevel::TwoSafe,
    SafetyLevel::GroupOneSafe,
];

const X: ItemId = ItemId(10);
const Y: ItemId = ItemId(11);
/// Probe items: a snapshot read-only transaction commits locally without
/// a broadcast (and thus without a certification record), so readers
/// carry one write to a private item to travel the full pipeline.
const P1: ItemId = ItemId(100);
const P2: ItemId = ItemId(101);
const P3: ItemId = ItemId(102);

/// Injected transactions use a client id no generated workload can
/// collide with.
fn txn(seq: u64) -> TxnId {
    TxnId {
        client: u32::MAX,
        seq,
    }
}

/// One scripted transaction: injection time (ms), delegate server index,
/// id, operations.
struct Script {
    at_ms: u64,
    delegate: u32,
    id: TxnId,
    ops: Vec<Operation>,
}

fn script(at_ms: u64, delegate: u32, id: TxnId, ops: Vec<Operation>) -> Script {
    Script {
        at_ms,
        delegate,
        id,
        ops,
    }
}

/// Build an idle 3-replica system at `level`, inject the scripted
/// transactions as snapshot-isolation requests, run to quiescence and
/// hand back the system for inspection. `corrupt_delegate` switches one
/// server's certifier to commit-everything *before* the run — the
/// end-to-end negative control.
fn run_matrix(level: SafetyLevel, scripts: &[Script], corrupt_delegate: Option<u32>) -> System {
    let mut run = System::builder()
        .servers(3)
        .clients_per_server(1)
        .safety(level)
        .db(DbConfig {
            mvcc_depth: 64,
            flush_policy: FlushPolicy::Async,
            ..DbConfig::default()
        })
        // Shield the matrix from the `GROUPSAFE_TXN` env profile: the
        // scripted transactions are the whole workload.
        .txn_fraction(0.0)
        .load(Load::open_tps(1.0))
        .measure(SimDuration::from_secs(6))
        .drain(SimDuration::from_secs(2))
        .seed(7)
        .build()
        .expect("a valid matrix configuration");
    // The generated workload never starts: the matrix is single-stepped.
    run.stop_clients_at(SimTime::ZERO);
    let sys = run.system_mut();
    // With 3 servers the first client is node 3; replies to injected
    // transactions land there and are dropped as unknown.
    let client = NodeId(3);
    if let Some(idx) = corrupt_delegate {
        let id = sys.servers[idx as usize];
        let server: &mut ReplicaServer = sys.engine.actor_mut(id);
        server.force_commit_certification_for_audit_controls();
    }
    for s in scripts {
        let target = sys.servers[s.delegate as usize];
        let req = TxnRequest {
            id: s.id,
            ops: s.ops.clone(),
            client,
            attempt: 0,
            snapshot: true,
            token: 0,
        };
        sys.engine.schedule_resilient(
            SimTime::from_millis(s.at_ms),
            target,
            Incoming {
                from: client,
                msg: ClientMsg::Request(req),
            },
        );
    }
    run.run_until(SimTime::from_secs(6));
    run.into_system()
}

/// The delegate's certification record for an injected transaction:
/// verdict, pinned snapshot, observed read versions, commit sequence.
fn record(system: &System, id: TxnId) -> SiRecord {
    let oracle = system.oracle.borrow();
    let recs: Vec<&SiRecord> = oracle.si_txns.iter().filter(|r| r.txn == id).collect();
    assert_eq!(
        recs.len(),
        1,
        "exactly one certification record for {id:?} (no resubmissions)"
    );
    recs[0].clone()
}

/// The version an injected reader observed for `item`, from its record.
fn read_version(rec: &SiRecord, item: ItemId) -> u64 {
    rec.readset
        .iter()
        .find(|(i, _)| *i == item)
        .map(|&(_, v)| v)
        .unwrap_or_else(|| panic!("{:?} read no version of {item:?}", rec.txn))
}

/// The clean-run epilogue every scenario shares: the oracle audits the
/// run clean with the injected transactions actually on the snapshot
/// path, every live replica agrees on `item`'s final state — and the
/// negative control holds: poisoning one replica's certification digest
/// makes the same audit report `CertificationDivergence`.
fn assert_clean_then_control(
    mut system: System,
    level: SafetyLevel,
    min_si_records: usize,
    item: ItemId,
) {
    let audit = audit_scenario(&ScenarioPlan::new(), &system, level);
    assert!(
        audit.violations.is_empty(),
        "the scenario must audit clean at {level:?}: {:?}",
        audit.violations
    );
    assert!(
        audit.si_audited >= min_si_records,
        "the SI arms must have audited the injected transactions \
         ({} < {min_si_records})",
        audit.si_audited
    );
    let states: Vec<_> = system
        .replica_states_of(0)
        .iter()
        .filter(|(_, live)| *live)
        .map(|(db, _)| db.item(item))
        .collect();
    assert!(
        states.windows(2).all(|w| w[0] == w[1]),
        "every live replica must agree on {item:?}: {states:?}"
    );

    // Negative control: a matrix that cannot fail is not a test. Corrupt
    // one replica's certification verdicts and the oracle must convict.
    let id = system.servers[1];
    let server: &mut ReplicaServer = system.engine.actor_mut(id);
    server.poison_cert_digest_for_audit_controls(0x5151_5151_5151_5151);
    let found = audit_scenario(&ScenarioPlan::new(), &system, level).violations;
    assert!(
        found
            .iter()
            .any(|v| matches!(v, OracleViolation::CertificationDivergence { .. })),
        "corrupted certification must be reported at {level:?}: {found:?}"
    );
}

/// G0 — dirty write: two concurrent transactions interleave writes to x
/// and y. Writes are buffered at the delegate and applied atomically at
/// delivery, and first-committer-wins aborts the overlapping write set:
/// one transaction wins both items wholesale.
#[test]
fn g0_dirty_write_prevented() {
    for level in LEVELS {
        let system = run_matrix(
            level,
            &[
                script(
                    1000,
                    0,
                    txn(1),
                    vec![Operation::Write(X, 10), Operation::Write(Y, 10)],
                ),
                script(
                    1000,
                    1,
                    txn(2),
                    vec![Operation::Write(X, 20), Operation::Write(Y, 20)],
                ),
            ],
            None,
        );
        let (t1, t2) = (record(&system, txn(1)), record(&system, txn(2)));
        assert!(
            t1.committed ^ t2.committed,
            "concurrent overlapping writers must resolve to exactly one \
             commit at {level:?}: {t1:?} {t2:?}"
        );
        let winner = if t1.committed { &t1 } else { &t2 };
        let db0 = system.server(0).db();
        let (x, y) = (db0.item(X), db0.item(Y));
        assert_eq!(
            (x.version, y.version),
            (winner.commit_seq, winner.commit_seq),
            "both items must carry the single winner's versions at {level:?}"
        );
        assert_eq!(
            x.value, y.value,
            "interleaved writes must never mix at {level:?}"
        );
        assert_clean_then_control(system, level, 2, X);
    }
}

/// G1a — aborted read: a later reader must never observe a version
/// written by a transaction that aborted. Aborted writers never install
/// versions, so the reader sees exactly the surviving writer's commit.
#[test]
fn g1a_aborted_read_prevented() {
    for level in LEVELS {
        let system = run_matrix(
            level,
            &[
                script(1000, 0, txn(1), vec![Operation::Write(X, 5)]),
                script(1000, 1, txn(2), vec![Operation::Write(X, 7)]),
                script(
                    3000,
                    2,
                    txn(3),
                    vec![Operation::Read(X), Operation::Write(P1, 1)],
                ),
            ],
            None,
        );
        let (t1, t2) = (record(&system, txn(1)), record(&system, txn(2)));
        assert!(
            t1.committed ^ t2.committed,
            "one of the conflicting writers must abort at {level:?}"
        );
        let winner = if t1.committed { &t1 } else { &t2 };
        let reader = record(&system, txn(3));
        assert!(reader.committed, "the probe reader commits at {level:?}");
        assert_eq!(
            read_version(&reader, X),
            winner.commit_seq,
            "the reader must observe the committed writer, never the \
             aborted one, at {level:?}"
        );
        assert_clean_then_control(system, level, 3, X);
    }
}

/// G1b — intermediate read: a transaction writes x twice; a concurrent
/// reader must see either the initial version or the final write, never
/// the intermediate one. Delegate-buffered writes make intermediates
/// unobservable by construction; the final value is what ships.
#[test]
fn g1b_intermediate_read_prevented() {
    for level in LEVELS {
        let system = run_matrix(
            level,
            &[
                script(
                    1000,
                    0,
                    txn(1),
                    vec![Operation::Write(X, 41), Operation::Write(X, 42)],
                ),
                script(
                    1000,
                    1,
                    txn(2),
                    vec![Operation::Read(X), Operation::Write(P2, 1)],
                ),
                script(
                    3000,
                    2,
                    txn(3),
                    vec![Operation::Read(X), Operation::Write(P3, 1)],
                ),
            ],
            None,
        );
        let writer = record(&system, txn(1));
        assert!(writer.committed, "the double writer commits at {level:?}");
        let concurrent = record(&system, txn(2));
        assert_eq!(
            read_version(&concurrent, X),
            0,
            "a concurrent snapshot reader sees the initial version, \
             never a buffered intermediate, at {level:?}"
        );
        let after = record(&system, txn(3));
        assert_eq!(
            read_version(&after, X),
            writer.commit_seq,
            "a later reader sees the writer's single installed version \
             at {level:?}"
        );
        assert_eq!(
            system.server(0).db().item(X).value,
            42,
            "only the final write of the pair is ever installed at {level:?}"
        );
        assert_clean_then_control(system, level, 3, X);
    }
}

/// G1c — circular information flow: T1 reads y and writes x while T2
/// reads x and writes y. Both may commit under SI (disjoint write sets),
/// but each read from its pre-transaction snapshot: neither observes the
/// other's write, so no information cycle forms.
#[test]
fn g1c_circular_information_flow_prevented() {
    for level in LEVELS {
        let system = run_matrix(
            level,
            &[
                script(
                    1000,
                    0,
                    txn(1),
                    vec![Operation::Read(Y), Operation::Write(X, 1)],
                ),
                script(
                    1000,
                    1,
                    txn(2),
                    vec![Operation::Read(X), Operation::Write(Y, 2)],
                ),
            ],
            None,
        );
        let (t1, t2) = (record(&system, txn(1)), record(&system, txn(2)));
        assert!(
            t1.committed && t2.committed,
            "disjoint write sets certify cleanly at {level:?}"
        );
        assert_eq!(
            (read_version(&t1, Y), read_version(&t2, X)),
            (0, 0),
            "neither transaction may observe the other's write at {level:?}"
        );
        assert_clean_then_control(system, level, 2, X);
    }
}

/// OTV — observed transaction vanishes: once a reader observes one of a
/// committed transaction's writes, it must observe all of them. The
/// reads execute against one pinned snapshot, so visibility is
/// all-or-nothing per transaction.
#[test]
fn otv_prevented() {
    for level in LEVELS {
        let system = run_matrix(
            level,
            &[
                script(
                    1000,
                    0,
                    txn(1),
                    vec![Operation::Write(X, 3), Operation::Write(Y, 4)],
                ),
                script(
                    3000,
                    1,
                    txn(2),
                    vec![
                        Operation::Read(X),
                        Operation::Read(Y),
                        Operation::Write(P1, 1),
                    ],
                ),
            ],
            None,
        );
        let writer = record(&system, txn(1));
        assert!(writer.committed, "the writer commits at {level:?}");
        let reader = record(&system, txn(2));
        assert_eq!(
            (read_version(&reader, X), read_version(&reader, Y)),
            (writer.commit_seq, writer.commit_seq),
            "a reader observing one write must observe them all at {level:?}"
        );
        assert_clean_then_control(system, level, 2, X);
    }
}

/// G-single — read skew: T1 reads x, dawdles, then reads y; T2 writes
/// both and commits in between. T1's second read must come from its
/// pinned snapshot (the multi-version store serves the superseded
/// version), not from T2's newer commit.
#[test]
fn g_single_read_skew_prevented() {
    for level in LEVELS {
        // 20 filler reads (~8 ms of I/O each) hold T1's read phase open
        // across T2's entire pipeline.
        let mut slow_ops = vec![Operation::Read(X)];
        slow_ops.extend((200..220).map(|i| Operation::Read(ItemId(i))));
        slow_ops.push(Operation::Read(Y));
        slow_ops.push(Operation::Write(P1, 1));
        let system = run_matrix(
            level,
            &[
                script(1000, 0, txn(1), slow_ops.clone()),
                script(
                    1005,
                    1,
                    txn(2),
                    vec![Operation::Write(X, 9), Operation::Write(Y, 9)],
                ),
            ],
            None,
        );
        let (t1, t2) = (record(&system, txn(1)), record(&system, txn(2)));
        assert!(
            t1.committed && t2.committed,
            "reader and writer have disjoint write sets at {level:?}"
        );
        assert!(
            t2.commit_seq > t1.snapshot,
            "the writer must commit after the reader pinned its snapshot \
             (the scenario's timing premise) at {level:?}"
        );
        assert_eq!(
            (read_version(&t1, X), read_version(&t1, Y)),
            (0, 0),
            "both reads must come from the pinned snapshot even though \
             the second executed after the writer committed, at {level:?}"
        );
        assert_clean_then_control(system, level, 2, X);
    }
}

/// Lost update: two concurrent read-modify-writes of x. First-committer-
/// wins certification aborts the second writer — its snapshot predates
/// the first commit — so no update is silently overwritten.
#[test]
fn lost_update_prevented() {
    for level in LEVELS {
        let system = run_matrix(
            level,
            &[
                script(
                    1000,
                    0,
                    txn(1),
                    vec![Operation::Read(X), Operation::Write(X, 100)],
                ),
                script(
                    1000,
                    1,
                    txn(2),
                    vec![Operation::Read(X), Operation::Write(X, 200)],
                ),
            ],
            None,
        );
        let (t1, t2) = (record(&system, txn(1)), record(&system, txn(2)));
        assert!(
            t1.committed ^ t2.committed,
            "concurrent read-modify-writes must resolve to exactly one \
             commit at {level:?}: {t1:?} {t2:?}"
        );
        let winner = if t1.committed { &t1 } else { &t2 };
        assert_eq!(
            system.server(0).db().item(X).version,
            winner.commit_seq,
            "the surviving update is the winner's at {level:?}"
        );
        assert_clean_then_control(system, level, 2, X);
    }
}

/// G2-item — write skew, the anomaly snapshot isolation famously admits:
/// both transactions read {x, y} and write disjoint items, so
/// first-committer-wins finds no overlap and both commit. The matrix
/// asserts the anomaly *happens* — a pipeline where this aborted would
/// be serializable, not SI, and the rest of the matrix would be testing
/// the wrong protocol.
#[test]
fn g2_item_write_skew_allowed() {
    for level in LEVELS {
        let system = run_matrix(
            level,
            &[
                script(
                    1000,
                    0,
                    txn(1),
                    vec![
                        Operation::Read(X),
                        Operation::Read(Y),
                        Operation::Write(X, 1),
                    ],
                ),
                script(
                    1000,
                    1,
                    txn(2),
                    vec![
                        Operation::Read(X),
                        Operation::Read(Y),
                        Operation::Write(Y, 1),
                    ],
                ),
            ],
            None,
        );
        let (t1, t2) = (record(&system, txn(1)), record(&system, txn(2)));
        assert!(
            t1.committed && t2.committed,
            "snapshot isolation admits write skew — both must commit at \
             {level:?}: {t1:?} {t2:?}"
        );
        assert!(
            t1.snapshot < t2.commit_seq && t2.snapshot < t1.commit_seq,
            "the commits must be genuinely concurrent for the skew to be \
             meaningful at {level:?}"
        );
        assert_clean_then_control(system, level, 2, X);
    }
}

/// End-to-end negative control: force one delegate to certify
/// everything as committed and replay the lost-update scenario through
/// it. The corrupted delegate commits both writers and its own
/// certification records now exhibit the lost update — the oracle must
/// convict both the anomaly (`SiLostUpdate`) and the replica's verdict
/// divergence (`CertificationDivergence`).
#[test]
fn corrupted_certification_loses_update_and_oracle_convicts() {
    for level in LEVELS {
        let system = run_matrix(
            level,
            &[
                script(
                    1000,
                    0,
                    txn(1),
                    vec![Operation::Read(X), Operation::Write(X, 100)],
                ),
                script(
                    1000,
                    0,
                    txn(2),
                    vec![Operation::Read(X), Operation::Write(X, 200)],
                ),
            ],
            Some(0),
        );
        let (t1, t2) = (record(&system, txn(1)), record(&system, txn(2)));
        assert!(
            t1.committed && t2.committed,
            "the corrupted delegate certifies both writers at {level:?}"
        );
        let found = audit_scenario(&ScenarioPlan::new(), &system, level).violations;
        assert!(
            found
                .iter()
                .any(|v| matches!(v, OracleViolation::SiLostUpdate { item: X, .. })),
            "the oracle must convict the lost update itself at {level:?}: \
             {found:?}"
        );
        assert!(
            found
                .iter()
                .any(|v| matches!(v, OracleViolation::CertificationDivergence { .. })),
            "the oracle must convict the diverging verdicts at {level:?}: \
             {found:?}"
        );
    }
}
