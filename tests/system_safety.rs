//! Cross-crate integration tests: the safety taxonomy (Tables 1–3) as
//! executable scenarios on the full stack.

use groupsafe::core::{SafetyLevel, Technique};
use groupsafe::sim::SimDuration;
use groupsafe::workload::{run_crash_scenario, CrashScenario, RecoveryPlan};

fn recovering(sc: CrashScenario) -> CrashScenario {
    CrashScenario {
        recovery: RecoveryPlan::Recover {
            downtime: SimDuration::from_millis(400),
        },
        ..sc
    }
}

#[test]
fn group_safe_survives_minority_crash() {
    let out = run_crash_scenario(&CrashScenario::small(
        Technique::Dsm(SafetyLevel::GroupSafe),
        vec![1, 3],
        1,
    ));
    assert_eq!(out.lost, 0);
    assert!(out.acked_after_crash > 0, "must keep committing");
    assert_eq!(out.distinct_states, 1, "survivors agree");
}

#[test]
fn group_safe_survives_all_but_one_crash_without_loss() {
    // Table 2: "less than n crashes". Availability may stop (primary-
    // partition rule blocks a lone survivor) but nothing is lost.
    let out = run_crash_scenario(&CrashScenario::small(
        Technique::Dsm(SafetyLevel::GroupSafe),
        vec![0, 1, 2, 3],
        3,
    ));
    assert_eq!(out.lost, 0, "n-1 crashes must not lose acknowledged work");
}

#[test]
fn group_safe_total_failure_loses() {
    // Table 2: group-safe does not tolerate n crashes.
    let out = run_crash_scenario(&recovering(CrashScenario::small(
        Technique::Dsm(SafetyLevel::GroupSafe),
        vec![0, 1, 2, 3, 4],
        5,
    )));
    assert!(
        out.lost > 0,
        "total failure must expose the asynchronous-durability window (acked {})",
        out.acked
    );
}

#[test]
fn two_safe_survives_total_failure() {
    // Table 2: 2-safe tolerates n crashes — the end-to-end atomic
    // broadcast replays everything unacknowledged.
    let out = run_crash_scenario(&recovering(CrashScenario::small(
        Technique::Dsm(SafetyLevel::TwoSafe),
        vec![0, 1, 2, 3, 4],
        7,
    )));
    assert_eq!(out.lost, 0, "2-safe must survive the crash of all servers");
    assert!(out.acked > 10);
}

#[test]
fn lazy_loses_on_delegate_crash() {
    // Table 2: 1-safe tolerates no crash.
    let out = run_crash_scenario(&CrashScenario {
        load_tps: 40.0,
        ..CrashScenario::small(Technique::Lazy, vec![0], 11)
    });
    assert!(out.lost > 0, "1-safe must lose delegate-local commits");
}

#[test]
fn lazy_survivors_stay_available() {
    let out = run_crash_scenario(&CrashScenario::small(Technique::Lazy, vec![0], 13));
    assert!(
        out.acked_after_crash > 0,
        "remaining delegates keep serving; clients fail over"
    );
}

#[test]
fn zero_safe_partitioned_delegate_loses() {
    // Table 1's weakest cell: non-uniform delivery acknowledges messages
    // nobody else received while the delegate is isolated.
    let out = run_crash_scenario(&CrashScenario {
        partition_before: vec![0],
        partition_hold: SimDuration::from_millis(1_500),
        ..CrashScenario::small(Technique::Dsm(SafetyLevel::ZeroSafe), vec![0], 17)
    });
    assert!(out.lost > 0, "0-safe must lose under partition + crash");
}

#[test]
fn group_safe_partitioned_delegate_does_not_ack() {
    // Same partition, uniform delivery: the minority side blocks instead
    // of acknowledging, so nothing can be lost.
    let out = run_crash_scenario(&CrashScenario {
        partition_before: vec![0],
        partition_hold: SimDuration::from_millis(1_500),
        ..CrashScenario::small(Technique::Dsm(SafetyLevel::GroupSafe), vec![0], 19)
    });
    assert_eq!(
        out.lost, 0,
        "uniform delivery must not acknowledge on the minority side"
    );
}

#[test]
fn group_one_safe_outliving_delegate_loss_requires_delegate_death() {
    // Table 3's two right columns, in one pair of runs.
    let base = CrashScenario {
        load_tps: 40.0,
        crash_last: Some((0, SimDuration::from_millis(400))),
        ..CrashScenario::small(
            Technique::Dsm(SafetyLevel::GroupOneSafe),
            vec![0, 1, 2, 3, 4],
            23,
        )
    };
    // Delegate's log returns: no loss.
    let both = run_crash_scenario(&recovering(base.clone()));
    assert_eq!(both.lost, 0, "group-1-safe survives when all logs return");
    // Delegate never recovers: the loss is *possible* (Table 3), i.e. it
    // appears across a handful of adversarial runs.
    let mut lost = 0;
    for seed in [23, 29, 31, 37, 41, 43, 47, 53] {
        let out = run_crash_scenario(&recovering(CrashScenario {
            stay_down: vec![0],
            seed,
            ..base.clone()
        }));
        lost += out.lost;
    }
    assert!(
        lost > 0,
        "group-1-safe must lose when the delegate's log never returns"
    );
}
