//! The replicated database server: one actor per node, embedding the
//! group communication endpoint and the local database engine.
//!
//! Two techniques are implemented:
//!
//! * **Database state machine** (update-everywhere, non-voting, single
//!   network interaction — the paper's Fig. 2/Fig. 8): the delegate
//!   executes the read phase locally, atomically broadcasts the
//!   transaction's read and write sets, and every replica certifies and
//!   applies deliveries deterministically in delivery order. The *reply
//!   point* — where the client learns of the commit — is fixed by the
//!   configured [`SafetyLevel`]:
//!     - `ZeroSafe`: reply at (non-uniform) delivery, nothing logged;
//!     - `GroupSafe` (Fig. 8): reply at uniform delivery + certification,
//!       all disk writes asynchronous;
//!     - `GroupOneSafe` (Fig. 2): reply after the delegate's synchronous
//!       log flush;
//!     - `TwoSafe`: end-to-end atomic broadcast; reply after the
//!       delegate's flush, `ack(m)` sent once the transaction is logged.
//! * **Lazy (1-safe) replication**: full local execution under strict
//!   2PL, synchronous local log flush, reply, then asynchronous
//!   propagation of write sets applied at the other replicas under the
//!   Thomas write rule, with no conflict handling — the paper's baseline.
//!
//! In a sharded system ([`crate::shard`]) each server belongs to one
//! replica group and its group communication spans only that group.
//! Single-group transactions follow the paths above unchanged. A
//! transaction spanning groups commits through an ordered two-phase
//! protocol layered on the per-group broadcasts:
//!
//! 1. the coordinator (the delegate in the group of the transaction's
//!    first key) executes the read phase for its own slice and ships the
//!    remote slices to one *gateway* server per touched group
//!    ([`XgSubRequest`]),
//! 2. every touched group atomically broadcasts an
//!    [`XgPrepare`]; at its (uniform) delivery all
//!    replicas of the group certify the slice identically, reserve its
//!    items, and the broadcasting delegate votes to the coordinator,
//! 3. the coordinator collects one vote per group and broadcasts the
//!    [`XgDecision`] — in its own group directly
//!    (the ordered decision broadcast), to the other groups via their
//!    gateways; at the decision's delivery each group releases the
//!    reservations and applies (or discards) its slice, with the
//!    per-level reply point ([`SafetyLevel`]) enforced in the
//!    coordinator's group exactly as for single-group commits.
//!
//! Reservations make the window between vote and decision safe: any
//! other transaction touching a reserved item is deterministically
//! aborted at certification (no waiting, hence no distributed
//! deadlock). Participants probe the coordinator's group for lost
//! decisions ([`XgStatusQuery`]), so a crashed
//! gateway or a dropped forward cannot leave a group reserved forever.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use groupsafe_db::{
    DbCheckpoint, DbConfig, DbEngine, FlushPolicy, ItemId, LockMode, LockOutcome, Lsn, Operation,
    TxnId, Value, Version, WriteOp,
};
use groupsafe_gcs::{BatchConfig, GcsConfig, GcsEndpoint, GcsOutput, GcsTimer, Wire};
use groupsafe_net::{Incoming, Network, NodeId, NET_CPU};
use groupsafe_sim::{Actor, Ctx, Disk, Fcfs, ObsEvent, Payload, SimDuration, SimTime};

use crate::certify::{certify, certify_snapshot, Certification};
use crate::msg::{
    ClientMsg, DsmMsg, GroupMsg, LazyPropagation, LoggedConfirm, ServerReply, TxnRequest,
    XgDecision, XgDecisionFwd, XgPrepare, XgStatusQuery, XgSubRequest, XgVote,
};
use crate::obs_txn;
use crate::reads::{ReadConfig, ReadLevel, ReadPath, ReadReply, ReadRequest};
use crate::safety::SafetyLevel;
use crate::shard::ShardMap;
use crate::verify::{Oracle, ReadRecord, SiRecord};

/// Which replication technique a server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technique {
    /// Database state machine at the given safety level
    /// (`ZeroSafe`, `GroupSafe`, `GroupOneSafe` or `TwoSafe`).
    Dsm(SafetyLevel),
    /// Lazy (1-safe) replication.
    Lazy,
}

impl Technique {
    /// The safety level the client-visible guarantee corresponds to.
    pub fn safety_level(self) -> SafetyLevel {
        match self {
            Technique::Dsm(l) => l,
            Technique::Lazy => SafetyLevel::OneSafe,
        }
    }

    /// The group communication configuration this technique requires
    /// (`None` for lazy replication, which uses plain messages).
    pub fn gcs_config(self) -> Option<GcsConfig> {
        match self {
            Technique::Dsm(SafetyLevel::ZeroSafe) => Some(GcsConfig::view_based_non_uniform()),
            Technique::Dsm(SafetyLevel::GroupSafe | SafetyLevel::GroupOneSafe) => {
                Some(GcsConfig::view_based_uniform())
            }
            Technique::Dsm(SafetyLevel::TwoSafe | SafetyLevel::VerySafe) => {
                Some(GcsConfig::end_to_end())
            }
            Technique::Dsm(l) => panic!("no DSM variant implements {l}"),
            Technique::Lazy => None,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Technique::Dsm(SafetyLevel::ZeroSafe) => "0-safe (dsm)",
            Technique::Dsm(SafetyLevel::GroupSafe) => "group-safe",
            Technique::Dsm(SafetyLevel::GroupOneSafe) => "group-1-safe",
            Technique::Dsm(SafetyLevel::TwoSafe) => "2-safe (e2e)",
            Technique::Dsm(SafetyLevel::VerySafe) => "very-safe",
            Technique::Dsm(_) => "dsm",
            Technique::Lazy => "lazy (1-safe)",
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Replication technique.
    pub technique: Technique,
    /// Local database configuration.
    pub db: DbConfig,
    /// Number of CPUs (Table 4: 2).
    pub cpus: usize,
    /// Background WAL flush period (async durability).
    pub wal_flush_interval: SimDuration,
    /// Background data-page flush period (write caching).
    pub page_flush_interval: SimDuration,
    /// Lazy propagation batching period.
    pub lazy_prop_interval: SimDuration,
    /// Sequential-batch discount of the disk pool (fraction of a full
    /// access charged per extra page; 1.0 disables write caching — the
    /// §5.1 ablation).
    pub disk_sequential_factor: f64,
    /// Batching knobs of the atomic-broadcast pipeline (applied to
    /// whatever [`GcsConfig`] the technique selects; ignored by
    /// [`Technique::Lazy`], which uses no group communication).
    pub batch: BatchConfig,
    /// How read-only transactions travel (classic pipeline, broadcast,
    /// or the local follower-read path — see [`crate::reads`]).
    pub reads: ReadConfig,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            technique: Technique::Dsm(SafetyLevel::GroupSafe),
            db: DbConfig {
                // Flushing is orchestrated by the server per safety level;
                // the engine itself never flushes inside `commit`.
                flush_policy: FlushPolicy::Async,
                ..DbConfig::default()
            },
            cpus: 2,
            wal_flush_interval: SimDuration::from_millis(20),
            page_flush_interval: SimDuration::from_millis(100),
            lazy_prop_interval: SimDuration::from_millis(20),
            disk_sequential_factor: 0.3,
            batch: BatchConfig::unbatched(),
            reads: ReadConfig::classic(),
        }
    }
}

/// Wire type of the replication layer's broadcasts. The payload is
/// `Rc`-shared: a broadcast fanned to the whole group ships one heap
/// allocation whose refcount bumps per receiver instead of a deep clone
/// per receiver (the group log holds another shared reference).
pub type RWire = Wire<Rc<GroupMsg>, DbCheckpoint>;

/// Server-internal timers.
#[derive(Debug, Clone)]
enum ServerTimer {
    /// The read phase (or lazy execution) of `txn` completed.
    ExecDone(TxnId),
    /// Periodic background WAL flush.
    WalFlushTick,
    /// A WAL flush covering records below `lsn` hit the disk.
    WalDurable(Lsn),
    /// Periodic background page flush.
    PageFlushTick,
    /// Periodic lazy propagation.
    LazyPropTick,
    /// Send `reply` to `client` now (the reply point was reached).
    Reply {
        /// Destination client.
        client: NodeId,
        /// The reply.
        reply: ServerReply,
    },
    /// Send a read reply to `client` now (its simulated execution
    /// completed).
    ReadReplyAt {
        /// Destination client.
        client: NodeId,
        /// The reply.
        reply: ReadReply,
    },
    /// A parked session read's bounded wait expired: redirect unless the
    /// replica caught up meanwhile.
    ReadWaitTimeout {
        /// The parked read.
        txn: TxnId,
        /// The attempt the wait covers (a resubmission cancels it).
        attempt: u32,
    },
    /// A parked snapshot transaction's bounded wait expired: execute at
    /// the snapshot the replica has (snapshot isolation stays correct at
    /// any snapshot — only read-your-writes freshness is best-effort).
    TxnWaitTimeout {
        /// The parked transaction.
        txn: TxnId,
        /// The attempt the wait covers (a resubmission cancels it).
        attempt: u32,
    },
    /// Send a cross-group certification vote to the coordinator now (the
    /// slice's delivery point was reached).
    XgVoteAt {
        /// The coordinator to vote to.
        to: NodeId,
        /// The vote.
        vote: XgVote,
    },
    /// A group delivered a cross-group prepare but no decision yet: probe
    /// the coordinator's group for it (rotating through its members).
    XgProbe {
        /// The undecided transaction.
        txn: TxnId,
        /// Probe attempts so far (rotates the target).
        tries: u32,
    },
    /// A coordinated round has collected no full vote set within the
    /// round timeout: presume abort, so the touched groups' reservations
    /// are released instead of dangling behind a lost vote.
    XgRoundTimeout {
        /// The stalled transaction.
        txn: TxnId,
        /// The attempt the timeout covers (a newer round cancels it).
        attempt: u32,
    },
}

/// How long a prepare's delegate waits for the decision before probing
/// the coordinator's group for it.
const XG_PROBE_DELAY: SimDuration = SimDuration::from_millis(300);

/// How long a coordinator waits for the full vote set before presuming
/// abort (releasing every touched group's reservations; the client
/// retries). Covers votes lost to gateway crashes and groups that are
/// partitioned or down.
const XG_ROUND_TIMEOUT: SimDuration = SimDuration::from_millis(600);

/// Driver command: initialise the server.
#[derive(Debug, Clone, Copy)]
pub struct InitServer;

/// Driver command after a *total* group failure in the dynamic model: all
/// processes restart as a brand-new group (the GC history is gone), with
/// sequence numbers continuing above `seq_base`.
#[derive(Debug, Clone)]
pub struct RestartServerCmd {
    /// Members of the fresh group.
    pub members: Vec<NodeId>,
    /// Highest sequence number reflected in any recovered state.
    pub seq_base: u64,
}

/// Operator command: switch the reply point between group-safe and
/// group-1-safe at runtime (§5.2: "switching between group-1-safe and
/// group-safe can be done easily at runtime: an actual implementation
/// might choose to switch between both modes depending on the
/// situation"). Both levels run on the same uniform atomic broadcast, so
/// only the reply point changes; transactions delivered after the switch
/// follow the new level.
#[derive(Debug, Clone, Copy)]
pub struct SwitchSafetyCmd(pub SafetyLevel);

/// Driver command: adopt this checkpoint (operator-driven reconciliation
/// after a total failure: every replica installs the most advanced
/// recovered state — a durable-prefix union, since all states are
/// prefixes of the same delivery history).
#[derive(Debug, Clone)]
pub struct InstallCheckpointCmd(pub DbCheckpoint);

/// What an in-flight local execution is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecKind {
    /// An ordinary (single-group) transaction.
    Local,
    /// The coordinator's own slice of a cross-group transaction.
    XgHome,
    /// A remote slice executed on behalf of `coordinator` (this server is
    /// the slice's gateway).
    XgSub {
        /// The coordinator awaiting this group's vote.
        coordinator: NodeId,
    },
}

/// An in-flight local execution (read phase or lazy 2PL execution).
struct Exec {
    req: TxnRequest,
    kind: ExecKind,
    idx: usize,
    cursor: SimTime,
    readset: Vec<(ItemId, Version)>,
    writes: Vec<(ItemId, Value)>,
    /// The delivery sequence number a snapshot-isolation read phase is
    /// pinned to (`None` = classic read-set-certified execution).
    snapshot: Option<u64>,
    /// Set when the multi-version store could no longer serve the
    /// pinned snapshot (the depth cap evicted its floor): the
    /// transaction is doomed to a delegate-side abort — a snapshot read
    /// must never observe a version above its snapshot.
    snapshot_too_old: bool,
}

/// Coordinator-side bookkeeping for one cross-group transaction between
/// its sub-request fan-out and its decision broadcast.
struct XgCoord {
    client: NodeId,
    attempt: u32,
    /// Touched groups, ascending.
    groups: Vec<u32>,
    /// Per-group operation slices, aligned with `groups`.
    slices: Vec<Vec<Operation>>,
    /// Votes received so far (group → certified).
    votes: std::collections::BTreeMap<u32, bool>,
}

/// The replicated database server actor.
pub struct ReplicaServer {
    node: NodeId,
    cfg: ReplicaConfig,
    /// The technique currently in force (starts as `cfg.technique`; the
    /// safety level may be switched at runtime between group-safe and
    /// group-1-safe, §5.2).
    technique: Technique,
    net: Network,
    cpu: Rc<RefCell<Fcfs>>,
    log_disk: Rc<RefCell<Disk>>,
    data_disk: Rc<RefCell<Disk>>,
    gcs: Option<GcsEndpoint<Rc<GroupMsg>, DbCheckpoint>>,
    db: DbEngine,
    oracle: Rc<RefCell<Oracle>>,
    /// Members of this server's replica group (its abcast spans exactly
    /// these; the whole system in the unsharded case).
    n_servers: u32,
    /// The key → group router (single-group in the unsharded case).
    shard: Rc<ShardMap>,
    /// This server's group.
    group: u32,
    /// First node id of this server's group (`group * n_servers`).
    group_base: u32,

    // Volatile.
    execs: std::collections::BTreeMap<TxnId, Exec>,
    /// Last GCS sequence number applied to the database.
    applied_seq: u64,
    /// Delivered transactions are processed in delivery order: this is
    /// when the apply pipeline frees up (the next delivery's processing
    /// starts no earlier).
    apply_cursor: SimTime,
    /// (record lsn, gcs seq) pairs awaiting durability before `ack(m)`
    /// (2-safe and very-safe).
    pending_acks: Vec<(Lsn, u64)>,
    /// (record lsn, txn, delegate) triples awaiting durability before a
    /// very-safe confirmation is sent to the delegate.
    pending_confirms: Vec<(Lsn, TxnId, NodeId)>,
    /// Delegate side of very-safe commits: per transaction, the client to
    /// answer, the attempt, the delivery sequence number, and the
    /// replicas that confirmed logging.
    very_waiting:
        std::collections::BTreeMap<TxnId, (NodeId, u32, u64, std::collections::BTreeSet<NodeId>)>,
    /// Confirmations that arrived before this delegate's own delivery
    /// opened the waiting entry (its local GC persist can lag behind a
    /// fast peer's whole flush-and-confirm path).
    very_early: std::collections::BTreeMap<TxnId, std::collections::BTreeSet<NodeId>>,
    /// Write sets awaiting lazy propagation.
    lazy_buffer: Vec<(TxnId, Vec<WriteOp>)>,
    /// Coordinator bookkeeping for in-flight cross-group transactions.
    xg_coord: std::collections::BTreeMap<TxnId, XgCoord>,
    /// Decisions this replica has delivered (or learned), kept to answer
    /// participants' status probes and to suppress duplicate rebroadcasts.
    xg_decided: std::collections::BTreeMap<TxnId, XgDecision>,
    /// (coordinator, attempt) per undecided prepare this replica
    /// delivered (probe-target bookkeeping). An entry leaves only when a
    /// decision of the *same or a later* attempt arrives — a stale
    /// abort surfacing after a retry's prepare must not silence the
    /// probes still owed that retry's decision.
    xg_pending: std::collections::BTreeMap<TxnId, (NodeId, u32)>,
    /// Highest decision attempt this replica already rebroadcast into
    /// its group, and when (storm brake: while the broadcast drains
    /// through the delivery pipeline, further probe answers for the same
    /// decision must not queue it again — but a forward that never
    /// resulted in a delivery, e.g. lost in a loss burst, may be retried
    /// after a cool-down).
    xg_forwarded: std::collections::BTreeMap<TxnId, (u32, SimTime)>,
    /// Last version this delegate assigned (lazy technique): versions must
    /// be unique per node or the Thomas write rule diverges on ties.
    last_lazy_version: Version,
    /// Session reads parked until the applied state reaches their token
    /// (bounded by the read config's `max_wait`, then redirected).
    parked_reads: std::collections::BTreeMap<TxnId, ReadRequest>,
    /// Snapshot transactions parked until the applied state reaches
    /// their session token (bounded by the read config's `max_wait`,
    /// then executed at whatever snapshot the replica has).
    parked_txns: std::collections::BTreeMap<TxnId, TxnRequest>,
    /// The sequence number the replica's *recovered* state corresponds
    /// to: `applied_seq` restarts at 0 after a crash while the redone
    /// WAL prefix (or an installed checkpoint) already reflects newer
    /// versions — reads must serve at the max of both, or a read served
    /// right after recovery would claim a snapshot older than the
    /// values it returns.
    state_floor: u64,
    up: bool,

    // Audit metadata for the scenario oracle (not replica state: it
    // survives crashes and is never part of any digest or checkpoint).
    /// Crashes this server suffered during the run.
    crashes: u32,
    /// Checkpoints installed from peers (join/rejoin state transfers).
    transfers: u32,
    /// FNV-1a hash over the delivery decisions `(seq, txn, verdict)` this
    /// replica processed, in processing order — the total-order witness
    /// the oracle compares across replicas that never crashed.
    order_digest: u64,
    /// FNV-1a hash over the certification verdicts
    /// `(seq, txn, verdict, snapshot)` this replica reached for ordinary
    /// transaction deliveries, in processing order — the
    /// certification-determinism witness the oracle compares across
    /// replicas that never crashed (deterministic certification is the
    /// defining property of the non-voting technique, so any divergence
    /// here is a protocol bug even before states drift).
    cert_digest: u64,
    /// Test support (negative controls): force every certification this
    /// replica reaches to `Commit`, corrupting its verdicts relative to
    /// its peers. Never set outside audit-control tests.
    force_commit_cert: bool,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl ReplicaServer {
    /// Build a server for `node` in a group of `n_servers` replicas.
    ///
    /// In the unsharded system (`shard` is single-group) `n_servers` is
    /// the whole system; in a sharded one it is the group size and
    /// `node / n_servers` names the server's group.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node: NodeId,
        n_servers: u32,
        cfg: ReplicaConfig,
        net: Network,
        oracle: Rc<RefCell<Oracle>>,
        seed: u64,
        shard: Rc<ShardMap>,
    ) -> Self {
        let cpu = Rc::new(RefCell::new(Fcfs::new(cfg.cpus)));
        // Table 4: two disks per server, pooled; log and data traffic
        // share them ("all three techniques used the same logging
        // setting, so they share the same throughput limits").
        let disk_pool = Rc::new(RefCell::new(Disk::pool(
            groupsafe_sim::DiskConfig {
                sequential_factor: cfg.disk_sequential_factor,
                ..groupsafe_sim::DiskConfig::default()
            },
            2,
        )));
        let log_disk = disk_pool.clone();
        let data_disk = disk_pool;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_0000_0000 ^ node.0 as u64);
        let group_id = node.0 / n_servers.max(1);
        let group_base = group_id * n_servers;
        let group: Vec<NodeId> = (group_base..group_base + n_servers).map(NodeId).collect();
        let gcs = cfg.technique.gcs_config().map(|gcfg| {
            GcsEndpoint::new(
                gcfg.with_batching(cfg.batch),
                node,
                group,
                net.clone(),
                Some(log_disk.clone()),
                StdRng::seed_from_u64(rng.random()),
            )
        });
        let db = DbEngine::new(
            cfg.db.clone(),
            cpu.clone(),
            log_disk.clone(),
            data_disk.clone(),
            StdRng::seed_from_u64(rng.random()),
        );
        ReplicaServer {
            node,
            technique: cfg.technique,
            cfg,
            net,
            cpu,
            log_disk,
            data_disk,
            gcs,
            db,
            oracle,
            n_servers,
            shard,
            group: group_id,
            group_base,
            execs: std::collections::BTreeMap::new(),
            applied_seq: 0,
            apply_cursor: SimTime::ZERO,
            pending_acks: Vec::new(),
            pending_confirms: Vec::new(),
            very_waiting: std::collections::BTreeMap::new(),
            very_early: std::collections::BTreeMap::new(),
            lazy_buffer: Vec::new(),
            xg_coord: std::collections::BTreeMap::new(),
            xg_decided: std::collections::BTreeMap::new(),
            xg_pending: std::collections::BTreeMap::new(),
            xg_forwarded: std::collections::BTreeMap::new(),
            last_lazy_version: 0,
            parked_reads: std::collections::BTreeMap::new(),
            parked_txns: std::collections::BTreeMap::new(),
            state_floor: 0,
            up: true,
            crashes: 0,
            transfers: 0,
            order_digest: FNV_OFFSET,
            cert_digest: FNV_OFFSET,
            force_commit_cert: false,
        }
    }

    /// The local database engine (verification access).
    pub fn db(&self) -> &DbEngine {
        &self.db
    }

    /// This server's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// True if the server is currently up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// The group communication endpoint, if the technique uses one.
    pub fn gcs(&self) -> Option<&GcsEndpoint<Rc<GroupMsg>, DbCheckpoint>> {
        self.gcs.as_ref()
    }

    /// This server's replica group.
    pub fn group(&self) -> u32 {
        self.group
    }

    /// This server's rank within its group.
    fn rank(&self) -> u32 {
        self.node.0 - self.group_base
    }

    /// The gateway this server uses in group `g`: the peer of its own
    /// rank, so a client failover to another coordinator also rotates the
    /// gateways (groups are homogeneous in size).
    fn gateway(&self, g: u32) -> NodeId {
        NodeId(g * self.n_servers + self.rank() % self.n_servers)
    }

    /// The group a peer server belongs to.
    fn group_of_server(&self, node: NodeId) -> u32 {
        node.0 / self.n_servers.max(1)
    }

    /// The technique currently in force.
    pub fn technique(&self) -> Technique {
        self.technique
    }

    /// Crashes this server suffered during the run (audit metadata).
    pub fn crash_count(&self) -> u32 {
        self.crashes
    }

    /// Peer checkpoints installed via state transfer (audit metadata).
    pub fn transfer_count(&self) -> u32 {
        self.transfers
    }

    /// FNV-1a hash of the delivery decisions processed so far, in order.
    /// Replicas that never crashed and never state-transferred must agree
    /// on it once the run quiesces (uniform total order).
    pub fn order_digest(&self) -> u64 {
        self.order_digest
    }

    /// FNV-1a hash of the certification verdicts reached so far, in
    /// order (classic and snapshot-isolation transaction deliveries).
    /// Replicas that never crashed and never state-transferred must
    /// agree on it once the run quiesces: certification is a
    /// deterministic function of (delivery order, message), so disagreeing
    /// verdicts are a protocol bug even while the states still match.
    pub fn cert_digest(&self) -> u64 {
        self.cert_digest
    }

    /// Test support: mutable access to the local database, so the
    /// oracle's negative controls can seed a state divergence that no
    /// correct run produces and assert `audit_scenario` reports it
    /// (`OracleViolation::Divergence`). Not part of the replica's
    /// protocol surface.
    #[doc(hidden)]
    pub fn db_mut_for_audit_controls(&mut self) -> &mut DbEngine {
        &mut self.db
    }

    /// Test support: perturb the delivery-order digest, seeding the
    /// order divergence a correct total order can never produce, so the
    /// negative controls can assert `audit_scenario` reports it
    /// (`OracleViolation::OrderDivergence`).
    #[doc(hidden)]
    pub fn poison_order_digest_for_audit_controls(&mut self, salt: u64) {
        self.order_digest ^= salt;
    }

    /// Test support: perturb the certification digest, seeding the
    /// verdict divergence deterministic certification can never produce,
    /// so the negative controls can assert `audit_scenario` reports it
    /// (`OracleViolation::CertificationDivergence`).
    #[doc(hidden)]
    pub fn poison_cert_digest_for_audit_controls(&mut self, salt: u64) {
        self.cert_digest ^= salt;
    }

    /// Test support: make this replica certify every delivery `Commit`
    /// from now on — the corruption hook the isolation-matrix negative
    /// controls use to demonstrate the oracle catches a replica whose
    /// certification disagrees with its peers.
    #[doc(hidden)]
    pub fn force_commit_certification_for_audit_controls(&mut self) {
        self.force_commit_cert = true;
    }

    /// Cross-group prepares delivered here whose decision has not
    /// arrived yet (the transactions this replica is still probing for).
    /// Scenario drivers treat a non-zero count as "not yet quiesced".
    pub fn xg_unresolved(&self) -> usize {
        self.xg_pending.len()
    }

    /// Scale this server's disk service times (1.0 = nominal). Applies to
    /// the pooled log/data disks the server and its GC endpoint share.
    pub fn set_disk_slowdown(&mut self, factor: f64) {
        self.log_disk.borrow_mut().set_slowdown(factor);
        if !Rc::ptr_eq(&self.log_disk, &self.data_disk) {
            self.data_disk.borrow_mut().set_slowdown(factor);
        }
    }

    fn mix_order(&mut self, seq: u64, txn: TxnId, committed: bool) {
        for v in [
            seq,
            txn.client as u64,
            txn.seq,
            if committed { 0xC0 } else { 0xAB },
        ] {
            self.order_digest ^= v;
            self.order_digest = self.order_digest.wrapping_mul(FNV_PRIME);
        }
    }

    fn mix_cert(&mut self, seq: u64, txn: TxnId, committed: bool, snapshot: Option<u64>) {
        for v in [
            seq,
            txn.client as u64,
            txn.seq,
            if committed { 0xC0 } else { 0xAB },
            snapshot.unwrap_or(u64::MAX),
        ] {
            self.cert_digest ^= v;
            self.cert_digest = self.cert_digest.wrapping_mul(FNV_PRIME);
        }
    }

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(gcs) = &mut self.gcs {
            gcs.start(ctx);
        }
        ctx.timer(self.cfg.wal_flush_interval, ServerTimer::WalFlushTick);
        ctx.timer(self.cfg.page_flush_interval, ServerTimer::PageFlushTick);
        if self.technique == Technique::Lazy {
            ctx.timer(self.cfg.lazy_prop_interval, ServerTimer::LazyPropTick);
        }
    }

    /// Switch between group-safe and group-1-safe (§5.2). Only these two
    /// levels share a group communication configuration, so only they can
    /// be swapped live.
    fn switch_safety(&mut self, ctx: &mut Ctx<'_>, level: SafetyLevel) {
        assert!(
            matches!(level, SafetyLevel::GroupSafe | SafetyLevel::GroupOneSafe),
            "runtime switching is defined between group-safe and group-1-safe"
        );
        assert!(
            matches!(
                self.technique,
                Technique::Dsm(SafetyLevel::GroupSafe | SafetyLevel::GroupOneSafe)
            ),
            "the server must already run one of the switchable levels"
        );
        self.technique = Technique::Dsm(level);
        ctx.metrics().incr("safety_switches");
    }

    /// Collapse a transaction's write list into its write *set*: one entry
    /// per item, the last write wins. Without this, a transaction writing
    /// the same item twice diverges under the Thomas write rule (the
    /// delegate applies both in order; a remote skips the second, equal-
    /// version write).
    fn dedup_writes(writes: &[(ItemId, Value)]) -> Vec<(ItemId, Value)> {
        let mut out: Vec<(ItemId, Value)> = Vec::with_capacity(writes.len());
        for &(item, value) in writes {
            if let Some(slot) = out.iter_mut().find(|(i, _)| *i == item) {
                slot.1 = value;
            } else {
                out.push((item, value));
            }
        }
        out
    }

    /// Charge one network operation's CPU cost starting at `from`.
    fn charge_net_cpu(&mut self, from: SimTime) -> SimTime {
        self.cpu.borrow_mut().request(from, NET_CPU)
    }

    fn reply_at(&mut self, ctx: &mut Ctx<'_>, at: SimTime, client: NodeId, reply: ServerReply) {
        let delay = at - ctx.now();
        ctx.timer(delay, ServerTimer::Reply { client, reply });
    }

    // ------------------------------------------------------------------
    // Request handling (delegate side)
    // ------------------------------------------------------------------

    fn on_request(&mut self, ctx: &mut Ctx<'_>, req: TxnRequest) {
        ctx.metrics().incr("server_requests");
        let start = self.charge_net_cpu(ctx.now());
        // A DSM transaction spanning several groups takes the two-phase
        // cross-group path; everything else (single-group, lazy) follows
        // the classic pipeline. (A snapshot flag on a cross-group
        // transaction is ignored: its slices certify classically.)
        if matches!(self.technique, Technique::Dsm(_)) && self.shard.n_groups() > 1 {
            let groups = self.shard.groups_of(&req.ops);
            if groups.len() > 1 {
                self.start_xg(ctx, req, groups, start);
                return;
            }
        }
        // A snapshot transaction behind its session token waits (bounded)
        // for the applied state to catch up, so its snapshot observes the
        // session's own prior commits. Past the bound it executes at the
        // snapshot the replica has — snapshot isolation is correct at any
        // snapshot; only read-your-writes freshness is best-effort.
        if matches!(self.technique, Technique::Dsm(_))
            && req.snapshot
            && self.state_seq() < req.token
        {
            ctx.metrics().incr("txn_parked");
            let attempt = req.attempt;
            let txn = req.id;
            self.parked_txns.insert(txn, req);
            ctx.timer(
                self.cfg.reads.max_wait,
                ServerTimer::TxnWaitTimeout { txn, attempt },
            );
            return;
        }
        self.start_local_exec(ctx, req, start);
    }

    /// Begin the local execution of a single-group transaction: pin the
    /// snapshot (snapshot-isolation requests under DSM) and run the
    /// technique's read phase.
    fn start_local_exec(&mut self, ctx: &mut Ctx<'_>, req: TxnRequest, start: SimTime) {
        let snapshot = match self.technique {
            Technique::Dsm(_) if req.snapshot => Some(self.state_seq()),
            // The lazy baseline has no snapshot store: the flag degrades
            // to classic 2PL execution.
            Technique::Dsm(_) | Technique::Lazy => None,
        };
        let exec = Exec {
            req,
            kind: ExecKind::Local,
            idx: 0,
            cursor: start,
            readset: Vec::new(),
            writes: Vec::new(),
            snapshot,
            snapshot_too_old: false,
        };
        let id = exec.req.id;
        self.execs.insert(id, exec);
        ctx.emit(|| ObsEvent::ExecStart { txn: obs_txn(id) });
        match self.technique {
            Technique::Dsm(_) => self.run_dsm_read_phase(ctx, id),
            Technique::Lazy => self.continue_lazy(ctx, id),
        }
    }

    /// Start every parked snapshot transaction the applied state has
    /// caught up to (called after each delivery advances `applied_seq`).
    fn drain_parked_txns(&mut self, ctx: &mut Ctx<'_>) {
        if self.parked_txns.is_empty() {
            return;
        }
        let state = self.state_seq();
        let ready: Vec<TxnId> = self
            .parked_txns
            .iter()
            .filter(|(_, r)| r.token <= state)
            .map(|(&t, _)| t)
            .collect();
        for t in ready {
            if let Some(req) = self.parked_txns.remove(&t) {
                let start = ctx.now();
                self.start_local_exec(ctx, req, start);
            }
        }
    }

    /// A parked snapshot transaction's bounded wait expired: execute at
    /// the snapshot this replica has.
    fn on_txn_wait_timeout(&mut self, ctx: &mut Ctx<'_>, txn: TxnId, attempt: u32) {
        let Some(req) = self.parked_txns.get(&txn) else {
            return; // started meanwhile
        };
        if req.attempt != attempt {
            return; // a resubmission owns the entry now
        }
        let Some(req) = self.parked_txns.remove(&txn) else {
            return; // raced with drain above
        };
        ctx.metrics().incr("txn_park_timeouts");
        let start = ctx.now();
        self.start_local_exec(ctx, req, start);
    }

    // ------------------------------------------------------------------
    // The local read path (follower reads; see `crate::reads`)
    // ------------------------------------------------------------------

    /// The group-stable watermark this replica's group communication
    /// endpoint exports (its applied head for techniques without one —
    /// degenerate, since the local path is only wired for DSM levels).
    fn stable_watermark(&self) -> u64 {
        self.gcs
            .as_ref()
            .map_or(self.applied_seq, |g| g.stable_watermark())
    }

    /// The delivery sequence number this replica's committed state
    /// corresponds to (the applied head, floored by what recovery
    /// rebuilt — see `state_floor`).
    fn state_seq(&self) -> u64 {
        self.applied_seq.max(self.state_floor)
    }

    /// A read-only transaction arrived on the local read path: serve it
    /// at the requested freshness level, park it (session level, behind
    /// its token) or — never — broadcast it.
    fn on_read_request(&mut self, ctx: &mut Ctx<'_>, req: ReadRequest) {
        ctx.metrics().incr("read_requests");
        self.charge_net_cpu(ctx.now());
        if req.level == ReadLevel::Session && self.state_seq() < req.token {
            // Behind the session: wait (bounded) for the applied state to
            // catch up instead of serving a stale snapshot.
            ctx.metrics().incr("read_parked");
            let attempt = req.attempt;
            let txn = req.id;
            self.parked_reads.insert(txn, req);
            ctx.timer(
                self.cfg.reads.max_wait,
                ServerTimer::ReadWaitTimeout { txn, attempt },
            );
            return;
        }
        self.serve_read(ctx, req);
    }

    /// Execute a read at its level's snapshot and schedule the reply at
    /// the simulated completion instant.
    fn serve_read(&mut self, ctx: &mut Ctx<'_>, req: ReadRequest) {
        let now = ctx.now();
        let applied = self.state_seq();
        // The stability evidence this replica holds: the live vote
        // watermark its endpoint exports, floored by the recovered
        // state's horizon (uniform delivery hands nothing up before it
        // is stable, so state a pre-crash incarnation applied — and a
        // crash redo rebuilt — was stable by construction, even though
        // the vote bookkeeping died with the crash). `applied` is
        // deliberately NOT folded in: if delivery ever outran
        // stability tracking, stable reads would pin *below* the
        // applied head — served from the multi-version store — rather
        // than silently serve unproven state. (The builder rejects
        // stable reads for non-uniform techniques, whose endpoints
        // cast no votes at all.)
        let stable = self.stable_watermark().max(self.state_floor);
        // The snapshot each level pins: `Stable` never exceeds the
        // stability evidence; `Session`/`Latest` serve the freshest
        // applied state (the session guarantee is a floor, not a pin).
        let (snapshot, limit) = match req.level {
            ReadLevel::Stable => {
                let s = stable.min(applied);
                (s, s)
            }
            ReadLevel::Session | ReadLevel::Latest => (applied, u64::MAX),
        };
        let mut cursor = now;
        let mut values = Vec::with_capacity(req.items.len());
        let mut observed = Vec::with_capacity(req.items.len());
        for &item in &req.items {
            let r = self.db.read_versioned(cursor, item, limit);
            values.push((item, r.value, r.version));
            observed.push((item, r.version));
            cursor = r.done;
        }
        ctx.metrics().incr("reads_served");
        {
            let (id, redirected) = (req.id, req.attempt > 0);
            ctx.emit(|| ObsEvent::ReadServe {
                read: obs_txn(id),
                redirected,
            });
        }
        self.oracle.borrow_mut().record_read(ReadRecord {
            txn: req.id,
            client: req.id.client,
            group: self.group,
            level: req.level,
            token: req.token,
            snapshot_seq: snapshot,
            stable_seq: stable,
            applied_seq: applied,
            at: now,
            items: observed,
        });
        let reply = ReadReply::Served {
            txn: req.id,
            attempt: req.attempt,
            group: self.group,
            snapshot_seq: snapshot,
            values,
        };
        let delay = cursor - now;
        ctx.timer(
            delay,
            ServerTimer::ReadReplyAt {
                client: req.client,
                reply,
            },
        );
    }

    /// Serve every parked session read the applied state has caught up
    /// to (called after each delivery advances `applied_seq`).
    fn drain_parked_reads(&mut self, ctx: &mut Ctx<'_>) {
        if self.parked_reads.is_empty() {
            return;
        }
        let state = self.state_seq();
        let ready: Vec<TxnId> = self
            .parked_reads
            .iter()
            .filter(|(_, r)| r.token <= state)
            .map(|(&t, _)| t)
            .collect();
        for t in ready {
            if let Some(req) = self.parked_reads.remove(&t) {
                self.serve_read(ctx, req);
            }
        }
    }

    /// A parked read's bounded wait expired: answer with a redirect so
    /// the client retries at a fresher group member.
    fn on_read_wait_timeout(&mut self, ctx: &mut Ctx<'_>, txn: TxnId, attempt: u32) {
        let Some(req) = self.parked_reads.get(&txn) else {
            return; // served meanwhile
        };
        if req.attempt != attempt {
            return; // a resubmission owns the entry now
        }
        let Some(req) = self.parked_reads.remove(&txn) else {
            return; // raced with drain above
        };
        ctx.metrics().incr("read_redirects");
        self.oracle.borrow_mut().record_read_redirect(self.group);
        let at = self.charge_net_cpu(ctx.now());
        let reply = ReadReply::Redirect {
            txn,
            attempt: req.attempt,
            group: self.group,
            applied_seq: self.applied_seq,
        };
        let delay = at - ctx.now();
        ctx.timer(
            delay,
            ServerTimer::ReadReplyAt {
                client: req.client,
                reply,
            },
        );
    }

    /// Coordinator entry point of a cross-group transaction: slice the
    /// operations by owning group, execute the home slice's read phase
    /// locally and ship the remote slices to their gateways. A retry of
    /// the same transaction restarts the round (stale votes are filtered
    /// by attempt).
    fn start_xg(&mut self, ctx: &mut Ctx<'_>, req: TxnRequest, groups: Vec<u32>, start: SimTime) {
        ctx.metrics().incr("xg_coordinated");
        let id = req.id;
        ctx.emit(|| ObsEvent::ExecStart { txn: obs_txn(id) });
        let mut slices: Vec<Vec<Operation>> = vec![Vec::new(); groups.len()];
        for &op in &req.ops {
            let g = self.shard.group_of(op.item());
            let i = groups.iter().position(|&x| x == g).expect("sliced group");
            slices[i].push(op);
        }
        self.xg_coord.insert(
            req.id,
            XgCoord {
                client: req.client,
                attempt: req.attempt,
                groups: groups.clone(),
                slices: slices.clone(),
                votes: std::collections::BTreeMap::new(),
            },
        );
        // Presume abort if the vote set never completes (a gateway died,
        // a touched group is down): the abort decision releases every
        // reservation this round took, so a stalled round cannot pin its
        // items until the client's next retry happens to conclude.
        ctx.timer(
            XG_ROUND_TIMEOUT,
            ServerTimer::XgRoundTimeout {
                txn: req.id,
                attempt: req.attempt,
            },
        );
        for (i, &g) in groups.iter().enumerate() {
            if g == self.group {
                let exec = Exec {
                    req: TxnRequest {
                        id: req.id,
                        ops: slices[i].clone(),
                        client: req.client,
                        attempt: req.attempt,
                        snapshot: false,
                        token: 0,
                    },
                    kind: ExecKind::XgHome,
                    idx: 0,
                    cursor: start,
                    readset: Vec::new(),
                    writes: Vec::new(),
                    snapshot: None,
                    snapshot_too_old: false,
                };
                self.execs.insert(req.id, exec);
                self.run_dsm_read_phase(ctx, req.id);
            } else {
                self.charge_net_cpu(ctx.now());
                self.net.send(
                    ctx,
                    self.node,
                    self.gateway(g),
                    XgSubRequest {
                        txn: req.id,
                        attempt: req.attempt,
                        coordinator: self.node,
                        client: req.client,
                        ops: slices[i].clone(),
                    },
                );
            }
        }
    }

    /// Gateway entry point: execute a remote slice's read phase, then
    /// broadcast its prepare in this group.
    fn on_xg_sub(&mut self, ctx: &mut Ctx<'_>, sub: XgSubRequest) {
        ctx.metrics().incr("xg_sub_requests");
        let start = self.charge_net_cpu(ctx.now());
        let exec = Exec {
            req: TxnRequest {
                id: sub.txn,
                ops: sub.ops,
                client: sub.client,
                attempt: sub.attempt,
                snapshot: false,
                token: 0,
            },
            kind: ExecKind::XgSub {
                coordinator: sub.coordinator,
            },
            idx: 0,
            cursor: start,
            readset: Vec::new(),
            writes: Vec::new(),
            snapshot: None,
            snapshot_too_old: false,
        };
        self.execs.insert(sub.txn, exec);
        self.run_dsm_read_phase(ctx, sub.txn);
    }

    /// DSM read phase: no locks; reads observe committed versions, writes
    /// are buffered. The whole chain is computed analytically and the
    /// completion scheduled as one event.
    fn run_dsm_read_phase(&mut self, ctx: &mut Ctx<'_>, txn: TxnId) {
        let mut exec = self.execs.remove(&txn).expect("exec exists");
        while exec.idx < exec.req.ops.len() {
            match (exec.req.ops[exec.idx], exec.snapshot) {
                (Operation::Read(item), None) => {
                    let r = self.db.read(exec.cursor, item);
                    exec.readset.push((item, r.version));
                    exec.cursor = r.done;
                }
                (Operation::Write(item, value), None) => {
                    let done = self
                        .cpu
                        .borrow_mut()
                        .request(exec.cursor, self.db.config().cpu_per_op);
                    // Updates overwrite the current version: record it so
                    // certification catches write-write conflicts (and the
                    // oracle can recognise lost updates). The version is
                    // catalogue metadata — no disk access.
                    exec.readset.push((item, self.db.item(item).version));
                    exec.writes.push((item, value));
                    exec.cursor = done;
                }
                (Operation::Read(item), Some(snap)) => {
                    // Snapshot read: this transaction's own buffered write
                    // wins (read-your-own-writes); otherwise the
                    // multi-version store serves the snapshot. Reads enter
                    // the readset for the oracle's dirty-read audit but
                    // never conflict at certification.
                    if exec.writes.iter().any(|&(i, _)| i == item) {
                        exec.cursor = self
                            .cpu
                            .borrow_mut()
                            .request(exec.cursor, self.db.config().cpu_per_op);
                    } else {
                        let r = self.db.read_versioned(exec.cursor, item, snap);
                        exec.cursor = r.done;
                        if r.version > snap {
                            // The depth cap evicted the snapshot's floor
                            // and the store served its bounded-staleness
                            // fallback — a version a snapshot read must
                            // never observe. Doom the transaction to a
                            // delegate-side abort; the retry pins a
                            // fresh snapshot.
                            exec.snapshot_too_old = true;
                            break;
                        }
                        exec.readset.push((item, r.version));
                    }
                }
                (Operation::Write(item, value), Some(_)) => {
                    // Snapshot write: buffered client-side semantics — no
                    // readset entry, so a concurrent writer of an item
                    // this transaction merely overwrites no longer aborts
                    // it at read-set certification. First-committer-wins
                    // over the write set happens at delivery instead.
                    let done = self
                        .cpu
                        .borrow_mut()
                        .request(exec.cursor, self.db.config().cpu_per_op);
                    exec.writes.push((item, value));
                    exec.cursor = done;
                }
            }
            exec.idx += 1;
        }
        let at = exec.cursor;
        self.execs.insert(txn, exec);
        let delay = at - ctx.now();
        ctx.timer(delay, ServerTimer::ExecDone(txn));
    }

    /// Lazy execution: strict 2PL, one op at a time; parks on lock waits.
    fn continue_lazy(&mut self, ctx: &mut Ctx<'_>, txn: TxnId) {
        loop {
            let Some(exec) = self.execs.get(&txn) else {
                return; // aborted meanwhile
            };
            if exec.idx >= exec.req.ops.len() {
                let at = exec.cursor.max(ctx.now());
                let delay = at - ctx.now();
                ctx.timer(delay, ServerTimer::ExecDone(txn));
                return;
            }
            let op = exec.req.ops[exec.idx];
            let mode = if op.is_write() {
                LockMode::Exclusive
            } else {
                LockMode::Shared
            };
            match self.db.locks().acquire(txn, op.item(), mode) {
                LockOutcome::Granted => {
                    let exec = self.execs.get_mut(&txn).expect("exists");
                    let from = exec.cursor.max(ctx.now());
                    match op {
                        Operation::Read(item) => {
                            let r = self.db.read(from, item);
                            let exec = self.execs.get_mut(&txn).expect("exists");
                            exec.readset.push((item, r.version));
                            exec.cursor = r.done;
                        }
                        Operation::Write(item, value) => {
                            let done = self
                                .cpu
                                .borrow_mut()
                                .request(from, self.db.config().cpu_per_op);
                            let version = self.db.item(item).version;
                            let exec = self.execs.get_mut(&txn).expect("exists");
                            exec.readset.push((item, version));
                            exec.writes.push((item, value));
                            exec.cursor = done;
                        }
                    }
                    let exec = self.execs.get_mut(&txn).expect("exists");
                    exec.idx += 1;
                }
                LockOutcome::Waiting => return,
                LockOutcome::Deadlock { victim } => {
                    ctx.metrics().incr("deadlocks");
                    if victim == txn {
                        self.abort_lazy(ctx, txn);
                        return;
                    }
                    self.abort_lazy(ctx, victim);
                    // Retry the acquire now that the victim released.
                }
            }
        }
    }

    /// Abort a lazy transaction (deadlock victim): release its locks,
    /// answer its client, resume whoever the release unblocked.
    fn abort_lazy(&mut self, ctx: &mut Ctx<'_>, txn: TxnId) {
        let Some(exec) = self.execs.remove(&txn) else {
            return;
        };
        ctx.metrics().incr("txn_aborted_deadlock");
        self.oracle.borrow_mut().aborts += 1;
        let reply = ServerReply::Aborted {
            txn,
            attempt: exec.req.attempt,
        };
        let at = self.charge_net_cpu(ctx.now());
        self.reply_at(ctx, at, exec.req.client, reply);
        let granted = self.db.locks().release_all(txn);
        for (t, _) in granted {
            self.continue_lazy(ctx, t);
        }
    }

    fn on_exec_done(&mut self, ctx: &mut Ctx<'_>, txn: TxnId) {
        match self.technique {
            Technique::Dsm(_) => self.dsm_exec_done(ctx, txn),
            Technique::Lazy => self.lazy_exec_done(ctx, txn),
        }
    }

    fn dsm_exec_done(&mut self, ctx: &mut Ctx<'_>, txn: TxnId) {
        let Some(exec) = self.execs.remove(&txn) else {
            return;
        };
        if exec.snapshot_too_old {
            // Snapshot too old: nothing was broadcast, so the group never
            // sees the doomed attempt. Record the served prefix (every
            // entry at or below the snapshot) so per-group accounting
            // counts the abort, and send the client back for a fresh
            // snapshot.
            ctx.metrics().incr("txn_aborted_snapshot_too_old");
            {
                let mut oracle = self.oracle.borrow_mut();
                oracle.aborts += 1;
                oracle.record_si(SiRecord {
                    txn,
                    group: self.group,
                    snapshot: exec.snapshot.unwrap_or(0),
                    readset: exec.readset,
                    writes: exec.writes.iter().map(|&(i, _)| i).collect(),
                    committed: false,
                    commit_seq: 0,
                });
            }
            let at = self.charge_net_cpu(ctx.now());
            self.reply_at(
                ctx,
                at,
                exec.req.client,
                ServerReply::Aborted {
                    txn,
                    attempt: exec.req.attempt,
                },
            );
            return;
        }
        if exec.kind != ExecKind::Local {
            // A cross-group slice: broadcast its prepare in this group
            // (even a read-only slice — certification still orders it).
            let coordinator = match exec.kind {
                ExecKind::XgSub { coordinator } => coordinator,
                // Exhaustive on purpose: a new execution kind must name
                // its coordinator explicitly (Local never reaches this
                // branch; XgHome coordinates itself).
                ExecKind::Local | ExecKind::XgHome => self.node,
            };
            let prepare = XgPrepare {
                txn,
                attempt: exec.req.attempt,
                delegate: self.node,
                coordinator,
                client: exec.req.client,
                group: self.group,
                readset: exec.readset,
                writes: Self::dedup_writes(&exec.writes),
            };
            if exec.kind == ExecKind::XgHome {
                // The coordinator's slice entering the ordered pipeline is
                // the commit phase's start for the whole transaction.
                ctx.emit(|| ObsEvent::BroadcastTxn { txn: obs_txn(txn) });
            }
            ctx.emit(|| ObsEvent::XgPrepare { txn: obs_txn(txn) });
            let gcs = self.gcs.as_mut().expect("xg runs on group communication");
            gcs.broadcast(ctx, Rc::new(GroupMsg::XgPrepare(prepare)));
            ctx.metrics().incr("xg_prepares");
            return;
        }
        if !exec.req.is_update() {
            if self.cfg.reads.path != ReadPath::Broadcast {
                // Read-only: commits locally without interaction (Fig. 2
                // note) — the classic path. (The local read path answers
                // read-only transactions before they ever reach the
                // transaction pipeline; this branch still serves the ones
                // it falls back on, e.g. cross-group read-only.)
                ctx.metrics().incr("txn_readonly");
                let at = self.charge_net_cpu(ctx.now());
                self.reply_at(
                    ctx,
                    at,
                    exec.req.client,
                    ServerReply::Committed {
                        txn,
                        attempt: exec.req.attempt,
                        commit_seq: 0,
                    },
                );
                return;
            }
            // Broadcast reads: the read-only transaction's read set goes
            // through the full ordering round and certifies at delivery
            // like an update — strictly serializable reads, the baseline
            // the local read path is benchmarked against.
            ctx.metrics().incr("txn_readonly_broadcast");
        }
        let msg = DsmMsg {
            txn,
            attempt: exec.req.attempt,
            delegate: self.node,
            client: exec.req.client,
            readset: exec.readset,
            writes: Self::dedup_writes(&exec.writes),
            snapshot: exec.snapshot,
        };
        ctx.emit(|| ObsEvent::BroadcastTxn { txn: obs_txn(txn) });
        let gcs = self.gcs.as_mut().expect("DSM uses group communication");
        gcs.broadcast(ctx, Rc::new(GroupMsg::Txn(msg)));
        ctx.metrics().incr("dsm_broadcasts");
    }

    fn lazy_exec_done(&mut self, ctx: &mut Ctx<'_>, txn: TxnId) {
        let Some(exec) = self.execs.remove(&txn) else {
            return;
        };
        let now = ctx.now();
        if exec.writes.is_empty() {
            ctx.metrics().incr("txn_readonly");
            let at = self.charge_net_cpu(now);
            self.reply_at(
                ctx,
                at,
                exec.req.client,
                ServerReply::Committed {
                    txn,
                    attempt: exec.req.attempt,
                    commit_seq: 0,
                },
            );
            let granted = self.db.locks().release_all(txn);
            for (t, _) in granted {
                self.continue_lazy(ctx, t);
            }
            return;
        }
        // Version: origin timestamp (µs) with the node id as tiebreaker —
        // totally ordered across replicas for the Thomas write rule. Two
        // local commits in the same microsecond must not collide (a tie
        // would be applied by this delegate but skipped by the others), so
        // bump the timestamp component monotonically.
        let mut version: Version = (now.as_nanos() / 1_000) << 8 | self.node.0 as u64;
        if version <= self.last_lazy_version {
            version = (((self.last_lazy_version >> 8) + 1) << 8) | self.node.0 as u64;
        }
        self.last_lazy_version = version;
        let writes: Vec<WriteOp> = Self::dedup_writes(&exec.writes)
            .into_iter()
            .map(|(item, value)| WriteOp {
                item,
                value,
                version,
            })
            .collect();
        let res = self.db.commit(now, txn, &writes);
        ctx.metrics().incr("txn_committed");
        self.oracle.borrow_mut().record_commit(
            txn,
            self.node,
            exec.readset.clone(),
            writes.clone(),
        );
        // 1-safe: reply after the local synchronous log flush.
        let reply_at = if let Some((flush_done, lsn)) = self.db.flush_wal_sync(res.done) {
            let delay = flush_done - now;
            ctx.timer(delay, ServerTimer::WalDurable(lsn));
            flush_done
        } else {
            res.done
        };
        self.reply_at(
            ctx,
            reply_at,
            exec.req.client,
            ServerReply::Committed {
                txn,
                attempt: exec.req.attempt,
                commit_seq: 0,
            },
        );
        self.lazy_buffer.push((txn, writes));
        let granted = self.db.locks().release_all(txn);
        for (t, _) in granted {
            self.continue_lazy(ctx, t);
        }
    }

    // ------------------------------------------------------------------
    // DSM delivery handling (every replica)
    // ------------------------------------------------------------------

    fn on_deliver(
        &mut self,
        ctx: &mut Ctx<'_>,
        seq: u64,
        msg: &GroupMsg,
        redelivery: bool,
        span: u32,
    ) {
        match msg {
            GroupMsg::Txn(m) => self.deliver_txn(ctx, seq, m, redelivery, span),
            GroupMsg::XgPrepare(p) => self.deliver_xg_prepare(ctx, seq, p, span),
            GroupMsg::XgDecision(d) => self.deliver_xg_decision(ctx, seq, d, span),
        }
    }

    /// The delivery-side CPU charge every ordered message pays: the
    /// ordering traffic's share plus certification over `cert_items`
    /// read-set entries. Returns the instant the verdict is reached.
    fn delivery_cpu(&mut self, now: SimTime, span: u32, cert_items: usize) -> SimTime {
        // CPU cost of the ordering traffic this delivery represents
        // (ordered message + the view's acknowledgements), charged in bulk
        // rather than one event per ack. See DESIGN.md. Under the batched
        // pipeline the frame and its aggregated votes are shared by every
        // entry they carry, so each delivery pays its amortised share.
        let acks = self.n_servers as u64;
        self.cpu
            .borrow_mut()
            .request(now, NET_CPU * (acks + 1) / u64::from(span.max(1)));
        // Delivered transactions are processed strictly in delivery order
        // (determinism requires it): processing starts when the pipeline
        // frees up.
        let start = now.max(self.apply_cursor);
        // Certification cost.
        let cert_cpu = self.db.config().cpu_per_op * cert_items.max(1) as u64;
        self.cpu.borrow_mut().request(start, cert_cpu)
    }

    fn deliver_txn(
        &mut self,
        ctx: &mut Ctx<'_>,
        seq: u64,
        msg: &DsmMsg,
        redelivery: bool,
        span: u32,
    ) {
        let now = ctx.now();
        let cert_items = match msg.snapshot {
            Some(_) => msg.writes.len(),
            None => msg.readset.len(),
        };
        let decided_at = self.delivery_cpu(now, span, cert_items);
        // Certification, extended by the cross-group reservation check:
        // an item reserved by an in-flight cross-group transaction aborts
        // any other transaction deterministically (all replicas share the
        // reservation table at every delivery point). A transaction that
        // already committed here short-circuits to its outcome (testable
        // transactions): a lost-reply retry must be answered "committed",
        // not re-certified against state that includes its own writes.
        // Snapshot-isolation deliveries certify first-committer-wins over
        // the write set against the shipped snapshot instead of the read
        // set — the same deterministic function of (delivery order,
        // message) at every replica.
        let verdict = if self.force_commit_cert || self.db.is_committed(msg.txn) {
            Certification::Commit
        } else if let Some(snap) = msg.snapshot {
            match certify_snapshot(&self.db, snap, &msg.writes) {
                Certification::Commit => {
                    match self
                        .db
                        .reserved_conflict(msg.txn, msg.writes.iter().map(|&(i, _)| i))
                    {
                        Some(conflict) => {
                            ctx.metrics().incr("txn_aborted_reserved");
                            Certification::Abort { conflict }
                        }
                        None => Certification::Commit,
                    }
                }
                abort => abort,
            }
        } else {
            match certify(&self.db, &msg.readset) {
                Certification::Commit => {
                    match self
                        .db
                        .reserved_conflict(msg.txn, msg.readset.iter().map(|&(i, _)| i))
                    {
                        Some(conflict) => {
                            ctx.metrics().incr("txn_aborted_reserved");
                            Certification::Abort { conflict }
                        }
                        None => Certification::Commit,
                    }
                }
                abort => abort,
            }
        };
        let level = match self.technique {
            Technique::Dsm(l) => l,
            Technique::Lazy => unreachable!("lazy does not deliver"),
        };
        let committed = matches!(verdict, Certification::Commit);
        {
            let txn = msg.txn;
            ctx.emit(|| ObsEvent::Certify {
                txn: obs_txn(txn),
                committed,
            });
        }
        self.mix_order(seq, msg.txn, committed);
        self.mix_cert(seq, msg.txn, committed, msg.snapshot);
        // Delegate-side snapshot-transaction record for the SI oracle
        // (lost-update and dirty-read audits + per-group accounting).
        if let Some(snap) = msg.snapshot {
            if msg.delegate == self.node && !self.db.is_committed(msg.txn) {
                self.oracle.borrow_mut().record_si(SiRecord {
                    txn: msg.txn,
                    group: self.group,
                    snapshot: snap,
                    readset: msg.readset.clone(),
                    writes: msg.writes.iter().map(|&(i, _)| i).collect(),
                    committed,
                    commit_seq: if committed { seq } else { 0 },
                });
            }
        }
        match verdict {
            Certification::Abort { .. } => {
                ctx.metrics().incr("txn_aborted_cert");
                self.apply_cursor = decided_at;
                if msg.delegate == self.node {
                    self.oracle.borrow_mut().aborts += 1;
                    let reply = ServerReply::Aborted {
                        txn: msg.txn,
                        attempt: msg.attempt,
                    };
                    self.reply_at(ctx, decided_at, msg.client, reply);
                }
                // Processing is complete (nothing to log): ack immediately.
                if matches!(level, SafetyLevel::TwoSafe | SafetyLevel::VerySafe) {
                    if let Some(gcs) = &mut self.gcs {
                        gcs.app_ack(ctx, seq);
                    }
                }
            }
            Certification::Commit => {
                let writes: Vec<WriteOp> = msg
                    .writes
                    .iter()
                    .map(|&(item, value)| WriteOp {
                        item,
                        value,
                        version: seq,
                    })
                    .collect();
                let res = self.db.commit(decided_at, msg.txn, &writes);
                if !res.duplicate {
                    let txn = msg.txn;
                    ctx.emit(|| ObsEvent::Apply { txn: obs_txn(txn) });
                }
                if !res.duplicate && !writes.is_empty() {
                    // Broadcast read-only transactions leave no commit
                    // record: like classic read-only commits they promise
                    // no durability, so the loss audit must not demand it.
                    ctx.metrics().incr("txn_committed");
                    self.oracle.borrow_mut().record_commit(
                        msg.txn,
                        msg.delegate,
                        msg.readset.clone(),
                        writes,
                    );
                }
                let record_lsn = self.db.wal_end_lsn().saturating_sub(1);
                let is_delegate = msg.delegate == self.node;
                // Processing completion per safety level. Under
                // group-1-safe and 2-safe, *every* replica writes the
                // commit record synchronously inside the delivery pipeline
                // (Fig. 2: all servers run commit(t) as part of
                // processing); under 0-safe/group-safe the log write is
                // asynchronous and the pipeline only pays CPU (Fig. 8).
                let processed_at = if level.reply_before_logging() || res.duplicate {
                    // Fig. 8: all disk writes leave the transaction
                    // boundary; the pipeline only pays CPU.
                    res.done
                } else {
                    // Fig. 2: commit(t) completes within the processing
                    // step — force the commit record (serialised in the
                    // delivery pipeline) and install the written pages
                    // synchronously (concurrent with later deliveries).
                    let mut done = res.done;
                    if let Some((flush_done, lsn)) = self.db.flush_wal_sync(res.done) {
                        let delay = flush_done - now;
                        ctx.timer(delay, ServerTimer::WalDurable(lsn));
                        done = flush_done;
                    }
                    self.db.sync_install(done, msg.writes.len())
                };
                self.apply_cursor = processed_at;
                if level == SafetyLevel::VerySafe && !res.duplicate {
                    // Confirmations flow to the delegate once each record
                    // is durable; the delegate answers after all n.
                    self.pending_confirms
                        .push((record_lsn, msg.txn, msg.delegate));
                    ctx.metrics().incr("very_confirm_registered");
                    if is_delegate {
                        let early = self.very_early.remove(&msg.txn).unwrap_or_default();
                        self.very_waiting
                            .insert(msg.txn, (msg.client, msg.attempt, seq, early));
                        ctx.metrics().incr("very_waiting_opened");
                        self.check_very_complete(ctx, msg.txn);
                    }
                } else if level == SafetyLevel::VerySafe {
                    // Duplicate delivery of a very-safe transaction — a
                    // failover resubmission through a *different* delegate,
                    // or a retry after a lost reply. The answer must still
                    // wait until the whole group confirms logging (a new
                    // delegate holds none of the original confirmations),
                    // so the group re-confirms: every replica re-announces
                    // durability of its copy once its appended log prefix
                    // is on disk.
                    if is_delegate {
                        let early = self.very_early.remove(&msg.txn).unwrap_or_default();
                        let entry = self.very_waiting.entry(msg.txn).or_insert_with(|| {
                            (
                                msg.client,
                                msg.attempt,
                                seq,
                                std::collections::BTreeSet::new(),
                            )
                        });
                        entry.0 = msg.client;
                        entry.1 = msg.attempt;
                        entry.2 = seq;
                        entry.3.extend(early);
                        ctx.metrics().incr("very_waiting_reopened");
                    }
                    // The original record sits at an unknown earlier LSN;
                    // the prefix appended so far covers it.
                    let fence = self.db.wal_end_lsn();
                    if self.db.wal_durable_lsn() >= fence {
                        // Our copy is already durable: confirm at once.
                        if is_delegate {
                            self.record_confirm(ctx, msg.txn, self.node);
                        } else {
                            self.charge_net_cpu(ctx.now());
                            self.net.send(
                                ctx,
                                self.node,
                                msg.delegate,
                                LoggedConfirm { txn: msg.txn },
                            );
                        }
                    } else {
                        self.pending_confirms.push((
                            fence.saturating_sub(1),
                            msg.txn,
                            msg.delegate,
                        ));
                    }
                    if is_delegate {
                        self.check_very_complete(ctx, msg.txn);
                    }
                } else if is_delegate {
                    let reply = ServerReply::Committed {
                        txn: msg.txn,
                        attempt: msg.attempt,
                        commit_seq: seq,
                    };
                    self.reply_at(ctx, processed_at, msg.client, reply);
                }
                if matches!(level, SafetyLevel::TwoSafe | SafetyLevel::VerySafe) {
                    if res.duplicate {
                        // Already logged previously.
                        if let Some(gcs) = &mut self.gcs {
                            gcs.app_ack(ctx, seq);
                        }
                    } else {
                        // ack(m) once the record is durable.
                        self.pending_acks.push((record_lsn, seq));
                    }
                }
            }
        }
        self.applied_seq = seq.max(self.applied_seq);
        let _ = redelivery;
    }

    /// Phase 1 delivery: certify the slice (certification plus the
    /// reservation check), reserve its items on success, and — on the
    /// replica that broadcast it — vote to the coordinator. Uniform
    /// delivery makes the verdict identical on every group member.
    fn deliver_xg_prepare(&mut self, ctx: &mut Ctx<'_>, seq: u64, p: &XgPrepare, span: u32) {
        let now = ctx.now();
        let decided_at = self.delivery_cpu(now, span, p.readset.len());
        let level = match self.technique {
            Technique::Dsm(l) => l,
            Technique::Lazy => unreachable!("lazy does not deliver"),
        };
        // The verdict depends only on delivery-ordered state that state
        // transfer carries (committed versions + the reservation table),
        // so every group member — including a mid-protocol joiner —
        // reaches the same answer. A retry's prepare racing its own
        // earlier decision is safe: reservations are keyed by
        // transaction and re-released by the retry's decision, and the
        // commit apply is idempotent. A slice already committed here
        // votes yes outright (testable transactions): the retry of a
        // decided-but-unacknowledged commit must converge on "committed".
        let ok = self.db.is_committed(p.txn)
            || (matches!(certify(&self.db, &p.readset), Certification::Commit)
                && self
                    .db
                    .reserved_conflict(p.txn, p.readset.iter().map(|&(i, _)| i))
                    .is_none());
        self.mix_order(seq, p.txn, ok);
        self.apply_cursor = decided_at;
        let logging = matches!(level, SafetyLevel::TwoSafe | SafetyLevel::VerySafe);
        if ok {
            ctx.metrics().incr("xg_reserved");
            let items: Vec<ItemId> = p
                .readset
                .iter()
                .map(|&(i, _)| i)
                .chain(p.writes.iter().map(|&(i, _)| i))
                .collect();
            if logging {
                // End-to-end abcast: the reservation must survive a
                // crash before `ack(m)` — an acked entry is never
                // redelivered, so an unlogged reservation would silently
                // unwind this replica's certification state while its
                // peers keep theirs. Append the record and ack once the
                // background group-commit flush covers it; nothing else
                // (vote, pipeline) waits on the disk.
                let record_lsn = self.db.reserve_logged(p.txn, p.coordinator.0, items);
                self.pending_acks.push((record_lsn, seq));
            } else {
                self.db.reserve(p.txn, p.coordinator.0, items);
            }
        } else if logging {
            // A rejected prepare changes nothing durable: ack at once.
            if let Some(gcs) = &mut self.gcs {
                gcs.app_ack(ctx, seq);
            }
        }
        if p.delegate == self.node {
            {
                let (txn, group) = (p.txn, self.group);
                ctx.emit(|| ObsEvent::XgVote {
                    txn: obs_txn(txn),
                    group,
                    commit: ok,
                });
            }
            let vote = XgVote {
                txn: p.txn,
                attempt: p.attempt,
                group: self.group,
                commit: ok,
            };
            let delay = decided_at - now;
            ctx.timer(
                delay,
                ServerTimer::XgVoteAt {
                    to: p.coordinator,
                    vote,
                },
            );
        }
        // Every member watches for the decision — not just the delegate,
        // whose crash would otherwise orphan the group's reservations
        // when the coordinator's forward raced its death. Probes rotate
        // through the coordinator's group, with each member starting at
        // a different offset.
        let stale = self
            .xg_pending
            .get(&p.txn)
            .is_some_and(|&(_, a)| a > p.attempt);
        if !stale {
            self.xg_pending.insert(p.txn, (p.coordinator, p.attempt));
            ctx.timer(
                (decided_at - now) + XG_PROBE_DELAY,
                ServerTimer::XgProbe {
                    txn: p.txn,
                    tries: self.rank(),
                },
            );
        }
        self.applied_seq = seq.max(self.applied_seq);
    }

    /// Phase 2 delivery: release the transaction's reservations and, on
    /// commit, apply this group's slice with the group's per-level
    /// processing semantics (asynchronous logging for 0-safe/group-safe,
    /// synchronous commit record otherwise). The coordinator's replica
    /// answers the client at the level's reply point.
    fn deliver_xg_decision(&mut self, ctx: &mut Ctx<'_>, seq: u64, d: &XgDecision, span: u32) {
        let now = ctx.now();
        let slice: Vec<(ItemId, Value)> = d.writes_of(self.group).unwrap_or(&[]).to_vec();
        let decided_at = self.delivery_cpu(now, span, slice.len());
        let level = match self.technique {
            Technique::Dsm(l) => l,
            Technique::Lazy => unreachable!("lazy does not deliver"),
        };
        {
            let (txn, commit) = (d.txn, d.commit);
            ctx.emit(|| ObsEvent::XgDecision {
                txn: obs_txn(txn),
                commit,
            });
        }
        let held = self.db.holds_reservation(d.txn);
        self.db.release(d.txn);
        if self
            .xg_pending
            .get(&d.txn)
            .is_some_and(|&(_, a)| a <= d.attempt)
        {
            self.xg_pending.remove(&d.txn);
        }
        // Keep the *latest* decision per transaction: a retry's commit
        // must supersede an earlier attempt's abort for probe answers
        // and rebroadcast suppression.
        match self.xg_decided.entry(d.txn) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(d.clone());
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                if d.attempt > e.get().attempt {
                    e.insert(d.clone());
                }
            }
        }
        self.mix_order(seq, d.txn, d.commit);
        let is_coord = d.coordinator == self.node;
        let logging = matches!(level, SafetyLevel::TwoSafe | SafetyLevel::VerySafe);
        if !d.commit {
            ctx.metrics().incr("xg_aborts_applied");
            self.apply_cursor = decided_at;
            if is_coord {
                self.oracle.borrow_mut().aborts += 1;
                self.reply_at(
                    ctx,
                    decided_at,
                    d.client,
                    ServerReply::Aborted {
                        txn: d.txn,
                        attempt: d.attempt,
                    },
                );
            }
            if logging {
                if held {
                    // The release must be redo-visible before ack(m),
                    // for the same reason the reservation was logged.
                    let record_lsn = self.db.release_logged(d.txn);
                    self.pending_acks.push((record_lsn, seq));
                } else if let Some(gcs) = &mut self.gcs {
                    // Nothing durable changed: ack at once.
                    gcs.app_ack(ctx, seq);
                }
            }
            self.applied_seq = seq.max(self.applied_seq);
            return;
        }
        let writes: Vec<WriteOp> = slice
            .iter()
            .map(|&(item, value)| WriteOp {
                item,
                value,
                version: seq,
            })
            .collect();
        let res = self.db.commit(decided_at, d.txn, &writes);
        if !res.duplicate {
            ctx.metrics().incr("txn_committed");
            ctx.metrics().incr("xg_commits_applied");
            let coord_group = self.group_of_server(d.coordinator);
            let mut oracle = self.oracle.borrow_mut();
            oracle.record_commit_slice(d.txn, d.coordinator, writes);
            oracle.record_xg(d.txn, d.groups.clone(), coord_group);
        }
        let record_lsn = self.db.wal_end_lsn().saturating_sub(1);
        // Per-level processing completion, exactly as for single-group
        // commits: group-safe levels leave all disk writes outside the
        // boundary, the logging levels force the record (and pages) inside
        // the delivery pipeline.
        let processed_at = if level.reply_before_logging() || res.duplicate {
            res.done
        } else {
            let mut done = res.done;
            if let Some((flush_done, lsn)) = self.db.flush_wal_sync(res.done) {
                let delay = flush_done - now;
                ctx.timer(delay, ServerTimer::WalDurable(lsn));
                done = flush_done;
            }
            self.db.sync_install(done, slice.len())
        };
        self.apply_cursor = processed_at;
        if is_coord {
            self.reply_at(
                ctx,
                processed_at,
                d.client,
                ServerReply::Committed {
                    txn: d.txn,
                    attempt: d.attempt,
                    commit_seq: seq,
                },
            );
        }
        if logging {
            if res.duplicate {
                if held {
                    // The commit record (which releases at redo) is from
                    // an earlier delivery; only this decision's release
                    // of a re-prepare reservation is new — make it
                    // redo-visible before ack(m).
                    let dup_lsn = self.db.release_logged(d.txn);
                    self.pending_acks.push((dup_lsn, seq));
                } else if let Some(gcs) = &mut self.gcs {
                    gcs.app_ack(ctx, seq);
                }
            } else {
                self.pending_acks.push((record_lsn, seq));
            }
        }
        self.applied_seq = seq.max(self.applied_seq);
    }

    /// Re-arm the decision probes for every transaction still holding a
    /// reservation in the (recovered or transferred) database: the
    /// probe timers died with the crash, and without them a decided-
    /// while-down transaction would stay reserved forever.
    fn rearm_xg_probes(&mut self, ctx: &mut Ctx<'_>) {
        for (txn, coord) in self.db.reservation_holders() {
            self.xg_pending.insert(txn, (NodeId(coord), 0));
            ctx.timer(
                XG_PROBE_DELAY,
                ServerTimer::XgProbe {
                    txn,
                    tries: self.rank(),
                },
            );
        }
    }

    /// Coordinator side: count a group's certification vote; once every
    /// touched group voted, decide and broadcast the decision — directly
    /// in the home group, via the gateways elsewhere.
    fn on_xg_vote(&mut self, ctx: &mut Ctx<'_>, v: XgVote) {
        let Some(entry) = self.xg_coord.get_mut(&v.txn) else {
            return; // decided, superseded or crashed away
        };
        if v.attempt != entry.attempt {
            return; // stale vote from an earlier round
        }
        entry.votes.insert(v.group, v.commit);
        if entry.votes.len() < entry.groups.len() {
            return;
        }
        let entry = self.xg_coord.remove(&v.txn).expect("present");
        let commit = entry.votes.values().all(|&c| c);
        self.send_xg_decision(ctx, v.txn, entry, commit);
    }

    /// Build and fan out the decision for a completed (or timed-out)
    /// round: an ordered broadcast in the home group, gateway forwards to
    /// the other touched groups.
    fn send_xg_decision(&mut self, ctx: &mut Ctx<'_>, txn: TxnId, entry: XgCoord, commit: bool) {
        ctx.metrics().incr(if commit {
            "xg_commit_decisions"
        } else {
            "xg_abort_decisions"
        });
        let writes_by_group: Vec<Vec<(ItemId, Value)>> = entry
            .slices
            .iter()
            .map(|ops| {
                let writes: Vec<(ItemId, Value)> = ops
                    .iter()
                    .filter_map(|op| match *op {
                        Operation::Write(item, value) => Some((item, value)),
                        Operation::Read(_) => None,
                    })
                    .collect();
                Self::dedup_writes(&writes)
            })
            .collect();
        let d = XgDecision {
            txn,
            attempt: entry.attempt,
            commit,
            coordinator: self.node,
            client: entry.client,
            groups: entry.groups.clone(),
            writes_by_group,
        };
        for &g in &entry.groups {
            if g == self.group {
                let gcs = self.gcs.as_mut().expect("xg runs on group communication");
                gcs.broadcast(ctx, Rc::new(GroupMsg::XgDecision(d.clone())));
            } else {
                self.charge_net_cpu(ctx.now());
                self.net
                    .send(ctx, self.node, self.gateway(g), XgDecisionFwd(d.clone()));
            }
        }
    }

    /// A decision reached this replica by unicast (gateway fan-out or a
    /// probe answer): broadcast it in this group unless the group already
    /// delivered it.
    fn on_xg_decision_fwd(&mut self, ctx: &mut Ctx<'_>, d: XgDecision) {
        self.charge_net_cpu(ctx.now());
        // Suppress decisions this group already delivered at the same
        // (or a later) attempt — a retry's decision supersedes an
        // earlier attempt's and must still go out — and decisions this
        // replica recently queued into the broadcast pipeline (probe
        // answers keep arriving while the delivery backlog drains; a
        // replica re-forwards the same decision only after a cool-down,
        // in case the first broadcast was lost on the wire).
        let now = ctx.now();
        if self
            .xg_decided
            .get(&d.txn)
            .is_some_and(|seen| seen.attempt >= d.attempt)
            || self
                .xg_forwarded
                .get(&d.txn)
                .is_some_and(|&(a, at)| a >= d.attempt && now < at + XG_ROUND_TIMEOUT)
        {
            return;
        }
        self.xg_forwarded.insert(d.txn, (d.attempt, now));
        if let Some(gcs) = &mut self.gcs {
            gcs.broadcast(ctx, Rc::new(GroupMsg::XgDecision(d)));
            ctx.metrics().incr("xg_decision_rebroadcasts");
        }
    }

    /// A participant asks whether a transaction was decided; answer with
    /// the stored decision if this replica delivered it.
    fn on_xg_status_query(&mut self, ctx: &mut Ctx<'_>, from: NodeId, q: XgStatusQuery) {
        self.charge_net_cpu(ctx.now());
        if let Some(d) = self.xg_decided.get(&q.txn) {
            let d = d.clone();
            self.net.send(ctx, self.node, from, XgDecisionFwd(d));
        }
    }

    /// Probe timer: the decision for `txn` has not been delivered here
    /// yet — ask a member of the coordinator's group (rotating, so a
    /// crashed coordinator does not silence the protocol) and re-arm.
    fn on_xg_probe(&mut self, ctx: &mut Ctx<'_>, txn: TxnId, tries: u32) {
        let Some(&(coordinator, _)) = self.xg_pending.get(&txn) else {
            return; // decided meanwhile
        };
        let spg = self.n_servers.max(1);
        let base = (coordinator.0 / spg) * spg;
        let target = NodeId(base + (coordinator.0 - base + tries) % spg);
        self.charge_net_cpu(ctx.now());
        self.net.send(ctx, self.node, target, XgStatusQuery { txn });
        ctx.metrics().incr("xg_probes");
        // Mild backoff: a decision that stays missing (its coordinator
        // group is down, or the delivery backlog is deep) is probed less
        // and less often, up to 8× the base period.
        let rounds = (tries / self.n_servers.max(1)).min(7) as u64 + 1;
        ctx.timer(
            XG_PROBE_DELAY * rounds,
            ServerTimer::XgProbe {
                txn,
                tries: tries.wrapping_add(1),
            },
        );
    }

    fn handle_gcs_outputs(
        &mut self,
        ctx: &mut Ctx<'_>,
        outputs: Vec<GcsOutput<Rc<GroupMsg>, DbCheckpoint>>,
    ) {
        for o in outputs {
            match o {
                GcsOutput::Deliver {
                    seq,
                    payload,
                    redelivery,
                    ..
                } => {
                    let span = self.gcs.as_ref().map_or(1, |g| g.frame_span(seq));
                    self.on_deliver(ctx, seq, &payload, redelivery, span)
                }
                GcsOutput::CheckpointRequest { joiner, generation } => {
                    let ckpt = self.db.checkpoint();
                    let applied = self.applied_seq;
                    if let Some(gcs) = &mut self.gcs {
                        gcs.checkpoint_ready(ctx, joiner, generation, ckpt, applied);
                    }
                }
                GcsOutput::InstallState { state, applied_seq } => {
                    ctx.emit(|| ObsEvent::StateTransfer { applied_seq });
                    self.db.install_checkpoint(state);
                    self.applied_seq = applied_seq;
                    self.state_floor = self.state_floor.max(applied_seq);
                    self.transfers += 1;
                    // The transferred state may carry in-flight
                    // cross-group reservations: resume probing for their
                    // decisions.
                    self.rearm_xg_probes(ctx);
                    ctx.metrics().incr("state_transfers");
                }
                GcsOutput::ViewInstalled { view } => {
                    ctx.metrics().incr("view_changes");
                    ctx.emit(|| ObsEvent::ViewChange { view: view.id });
                }
                GcsOutput::Joined { .. } => {
                    ctx.metrics().incr("rejoins");
                }
                GcsOutput::GroupFailed => {
                    ctx.metrics().incr("group_failed_signals");
                }
            }
        }
        // Deliveries (and state installs) advanced the applied head:
        // parked session reads (and snapshot transactions waiting for a
        // fresh-enough snapshot) may be servable now.
        self.drain_parked_reads(ctx);
        self.drain_parked_txns(ctx);
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, t: ServerTimer) {
        match t {
            ServerTimer::ExecDone(txn) => self.on_exec_done(ctx, txn),
            ServerTimer::WalFlushTick => {
                if let Some((done, lsn)) = self.db.flush_wal(ctx.now()) {
                    let delay = done - ctx.now();
                    ctx.timer(delay, ServerTimer::WalDurable(lsn));
                }
                ctx.timer(self.cfg.wal_flush_interval, ServerTimer::WalFlushTick);
            }
            ServerTimer::WalDurable(lsn) => {
                ctx.emit(|| ObsEvent::WalSync { lsn });
                self.db.wal_mark_durable(lsn);
                // 2-safe/very-safe: transactions whose records are now
                // durable are "processed" — send their ack(m).
                let ready: Vec<u64> = self
                    .pending_acks
                    .iter()
                    .filter(|(l, _)| *l < lsn)
                    .map(|(_, s)| *s)
                    .collect();
                self.pending_acks.retain(|(l, _)| *l >= lsn);
                if let Some(gcs) = &mut self.gcs {
                    for seq in ready {
                        gcs.app_ack(ctx, seq);
                    }
                }
                // Very-safe: tell each delegate its record is on our disk.
                let confirms: Vec<(TxnId, NodeId)> = self
                    .pending_confirms
                    .iter()
                    .filter(|(l, _, _)| *l < lsn)
                    .map(|(_, t, d)| (*t, *d))
                    .collect();
                self.pending_confirms.retain(|(l, _, _)| *l >= lsn);
                for (txn, delegate) in confirms {
                    if delegate == self.node {
                        self.record_confirm(ctx, txn, self.node);
                    } else {
                        self.charge_net_cpu(ctx.now());
                        self.net
                            .send(ctx, self.node, delegate, LoggedConfirm { txn });
                    }
                }
            }
            ServerTimer::PageFlushTick => {
                self.db.flush_pages(ctx.now());
                // Multi-version retention is bounded by the group-stable
                // watermark: snapshots below it are unreachable by any
                // read level, so their versions can go.
                self.db
                    .prune_versions(self.stable_watermark().min(self.applied_seq));
                ctx.timer(self.cfg.page_flush_interval, ServerTimer::PageFlushTick);
            }
            ServerTimer::LazyPropTick => {
                if !self.lazy_buffer.is_empty() {
                    let writesets = std::mem::take(&mut self.lazy_buffer);
                    let count = writesets.len() as u32;
                    ctx.emit(|| ObsEvent::LazyPropagate { count });
                    let msg = LazyPropagation { writesets };
                    self.charge_net_cpu(ctx.now());
                    for i in 0..self.n_servers {
                        let peer = NodeId(self.group_base + i);
                        if peer != self.node {
                            self.net.send(ctx, self.node, peer, msg.clone());
                        }
                    }
                    ctx.metrics().incr("lazy_propagations");
                }
                ctx.timer(self.cfg.lazy_prop_interval, ServerTimer::LazyPropTick);
            }
            ServerTimer::Reply { client, reply } => {
                let group = self.group;
                let (txn, committed) = match &reply {
                    ServerReply::Committed { txn, .. } => (*txn, true),
                    ServerReply::Aborted { txn, .. } => (*txn, false),
                };
                ctx.emit(|| ObsEvent::Reply {
                    txn: obs_txn(txn),
                    group,
                    committed,
                });
                self.charge_net_cpu(ctx.now());
                self.net.send(ctx, self.node, client, reply);
            }
            ServerTimer::ReadReplyAt { client, reply } => {
                self.charge_net_cpu(ctx.now());
                self.net.send(ctx, self.node, client, reply);
            }
            ServerTimer::ReadWaitTimeout { txn, attempt } => {
                self.on_read_wait_timeout(ctx, txn, attempt)
            }
            ServerTimer::TxnWaitTimeout { txn, attempt } => {
                self.on_txn_wait_timeout(ctx, txn, attempt)
            }
            ServerTimer::XgVoteAt { to, vote } => {
                if to == self.node {
                    self.on_xg_vote(ctx, vote);
                } else {
                    self.charge_net_cpu(ctx.now());
                    self.net.send(ctx, self.node, to, vote);
                }
            }
            ServerTimer::XgProbe { txn, tries } => self.on_xg_probe(ctx, txn, tries),
            ServerTimer::XgRoundTimeout { txn, attempt } => {
                if self
                    .xg_coord
                    .get(&txn)
                    .is_some_and(|e| e.attempt == attempt)
                {
                    let entry = self.xg_coord.remove(&txn).expect("present");
                    ctx.metrics().incr("xg_round_timeouts");
                    self.send_xg_decision(ctx, txn, entry, false);
                }
            }
        }
    }

    /// Delegate side of very-safe: count a replica's logging confirmation
    /// and answer the client once the whole group confirmed.
    fn record_confirm(&mut self, ctx: &mut Ctx<'_>, txn: TxnId, from: NodeId) {
        ctx.metrics().incr("very_confirms_seen");
        let Some(entry) = self.very_waiting.get_mut(&txn) else {
            // Our own delivery has not opened the entry yet: buffer.
            self.very_early.entry(txn).or_default().insert(from);
            ctx.metrics().incr("very_confirms_early");
            return;
        };
        entry.3.insert(from);
        self.check_very_complete(ctx, txn);
    }

    /// Reply to the client once every group member confirmed logging.
    fn check_very_complete(&mut self, ctx: &mut Ctx<'_>, txn: TxnId) {
        let Some(entry) = self.very_waiting.get(&txn) else {
            return;
        };
        if entry.3.len() == self.n_servers as usize {
            ctx.metrics().incr("very_replies");
            let (client, attempt, commit_seq, _) = self.very_waiting.remove(&txn).expect("present");
            let at = self.charge_net_cpu(ctx.now());
            self.reply_at(
                ctx,
                at,
                client,
                ServerReply::Committed {
                    txn,
                    attempt,
                    commit_seq,
                },
            );
        }
    }

    fn on_lazy_propagation(&mut self, ctx: &mut Ctx<'_>, msg: LazyPropagation) {
        self.charge_net_cpu(ctx.now());
        for (txn, writes) in msg.writesets {
            // Thomas write rule, in memory only: 1-safe durability lives
            // in the delegate's log; remote replicas that crash
            // re-synchronise from peers instead of redoing a local log.
            let res = self.db.apply_unlogged(ctx.now(), txn, &writes);
            if !res.duplicate {
                ctx.metrics().incr("lazy_remote_applies");
            }
        }
    }
}

impl Actor for ReplicaServer {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        let payload = match payload.downcast::<InitServer>() {
            Ok(_) => {
                self.init(ctx);
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<RestartServerCmd>() {
            Ok(cmd) => {
                if let Some(gcs) = &mut self.gcs {
                    gcs.restart_group(ctx, cmd.members.clone(), cmd.seq_base);
                }
                self.applied_seq = cmd.seq_base;
                self.state_floor = self.state_floor.max(cmd.seq_base);
                self.apply_cursor = ctx.now();
                // Cross-group state died with the group: in-flight
                // reservations can never be decided (their coordinator
                // history is gone) and would block items forever.
                self.db.clear_reservations();
                self.xg_coord.clear();
                self.xg_pending.clear();
                ctx.metrics().incr("group_restarts");
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<SwitchSafetyCmd>() {
            Ok(cmd) => {
                self.switch_safety(ctx, cmd.0);
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<InstallCheckpointCmd>() {
            Ok(cmd) => {
                self.db.install_checkpoint(cmd.0);
                self.state_floor = self.state_floor.max(self.db.max_version());
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<Incoming<ClientMsg>>() {
            Ok(inc) => {
                let ClientMsg::Request(req) = inc.msg;
                self.on_request(ctx, req);
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<Incoming<ReadRequest>>() {
            Ok(inc) => {
                self.on_read_request(ctx, inc.msg);
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<Incoming<RWire>>() {
            Ok(inc) => {
                let mut outputs = Vec::new();
                if let Some(gcs) = &mut self.gcs {
                    gcs.on_net(ctx, inc.from, inc.msg, &mut outputs);
                }
                self.handle_gcs_outputs(ctx, outputs);
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<Incoming<LoggedConfirm>>() {
            Ok(inc) => {
                self.charge_net_cpu(ctx.now());
                self.record_confirm(ctx, inc.msg.txn, inc.from);
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<Incoming<LazyPropagation>>() {
            Ok(inc) => {
                self.on_lazy_propagation(ctx, inc.msg);
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<Incoming<XgSubRequest>>() {
            Ok(inc) => {
                self.on_xg_sub(ctx, inc.msg);
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<Incoming<XgVote>>() {
            Ok(inc) => {
                self.charge_net_cpu(ctx.now());
                self.on_xg_vote(ctx, inc.msg);
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<Incoming<XgDecisionFwd>>() {
            Ok(inc) => {
                self.on_xg_decision_fwd(ctx, inc.msg.0);
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<Incoming<XgStatusQuery>>() {
            Ok(inc) => {
                self.on_xg_status_query(ctx, inc.from, inc.msg);
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<GcsTimer>() {
            Ok(t) => {
                let mut outputs = Vec::new();
                if let Some(gcs) = &mut self.gcs {
                    gcs.on_timer(ctx, *t, &mut outputs);
                }
                self.handle_gcs_outputs(ctx, outputs);
                return;
            }
            Err(p) => p,
        };
        match payload.downcast::<ServerTimer>() {
            Ok(t) => self.on_timer(ctx, *t),
            Err(_) => panic!("replica server: unhandled event payload"),
        }
    }

    fn on_crash(&mut self, ctx: &mut Ctx<'_>) {
        self.up = false;
        self.crashes += 1;
        if let Some(gcs) = &mut self.gcs {
            gcs.on_crash();
        }
        self.execs.clear();
        self.pending_acks.clear();
        self.pending_confirms.clear();
        self.very_waiting.clear();
        self.very_early.clear();
        self.lazy_buffer.clear();
        self.parked_reads.clear();
        self.parked_txns.clear();
        self.xg_coord.clear();
        self.xg_decided.clear();
        self.xg_pending.clear();
        self.xg_forwarded.clear();
        // In-flight work on the server's resources dies with it.
        self.cpu.borrow_mut().reset(ctx.now());
        self.log_disk.borrow_mut().reset(ctx.now());
        self.data_disk.borrow_mut().reset(ctx.now());
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_>) {
        self.up = true;
        // Local database recovery: redo the durable WAL prefix.
        self.db.crash();
        // The redone state reflects versions up to its durable prefix;
        // reads served before catch-up must claim at least that
        // snapshot (`applied_seq` restarts at 0 below).
        self.state_floor = self.state_floor.max(self.db.max_version());
        self.applied_seq = 0;
        self.apply_cursor = ctx.now();
        let mut outputs = Vec::new();
        if let Some(gcs) = &mut self.gcs {
            gcs.on_recover(ctx, &mut outputs);
        }
        self.handle_gcs_outputs(ctx, outputs);
        ctx.timer(self.cfg.wal_flush_interval, ServerTimer::WalFlushTick);
        ctx.timer(self.cfg.page_flush_interval, ServerTimer::PageFlushTick);
        if self.technique == Technique::Lazy {
            ctx.timer(self.cfg.lazy_prop_interval, ServerTimer::LazyPropTick);
        }
        // Reservations redone from the WAL need their decision probes
        // back (their timers died with the crash).
        self.rearm_xg_probes(ctx);
        ctx.metrics().incr("server_recoveries");
    }

    fn name(&self) -> &str {
        "replica-server"
    }
}
