//! Verification: the oracle records what clients were told and what
//! servers committed; after a run (and its crash schedule) the checks
//! decide whether any *acknowledged* transaction was lost, whether the
//! replicas converged, and whether lazy replication produced lost
//! updates (§7).

use std::collections::BTreeMap;

use groupsafe_db::{DbEngine, ItemId, TxnId, Version, WriteOp};
use groupsafe_net::NodeId;
use groupsafe_sim::SimTime;

use crate::reads::ReadLevel;

/// A commit as recorded at the replica that processed it.
#[derive(Debug, Clone)]
pub struct CommitRecord {
    /// The delegate that executed the transaction.
    pub delegate: NodeId,
    /// Items read with observed versions.
    pub readset: Vec<(ItemId, Version)>,
    /// Writes applied.
    pub writes: Vec<WriteOp>,
}

/// An acknowledgement as observed by the client.
#[derive(Debug, Clone, Copy)]
pub struct AckRecord {
    /// When the client received the commit notification.
    pub at: SimTime,
    /// Response time of the successful attempt, milliseconds.
    pub response_ms: f64,
}

/// A locally served read, as recorded by the replica that served it
/// (the read-freshness oracle's server-side evidence).
#[derive(Debug, Clone)]
pub struct ReadRecord {
    /// The read transaction.
    pub txn: TxnId,
    /// The issuing session (numeric client id).
    pub client: u32,
    /// The serving replica's group.
    pub group: u32,
    /// Freshness level requested.
    pub level: ReadLevel,
    /// The session token the client carried (0 for non-session levels).
    pub token: u64,
    /// The snapshot the read was served at.
    pub snapshot_seq: u64,
    /// The serving replica's group-stable watermark at serve time.
    pub stable_seq: u64,
    /// The serving replica's applied head at serve time.
    pub applied_seq: u64,
    /// Serve instant.
    pub at: SimTime,
    /// Items observed, with the committed versions returned.
    pub items: Vec<(ItemId, Version)>,
}

/// A read-only transaction's acknowledgement as accepted by the client
/// (the read-freshness oracle's session-order evidence; `level` is
/// `None` for reads that rode the classic or broadcast pipeline).
#[derive(Debug, Clone)]
pub struct ReadAckRecord {
    /// The read transaction.
    pub txn: TxnId,
    /// The accepting session (numeric client id).
    pub client: u32,
    /// The group the read was served from.
    pub group: u32,
    /// Freshness level (None = classic/broadcast pipeline).
    pub level: Option<ReadLevel>,
    /// The snapshot the session observed (0 when the pipeline carries
    /// no snapshot, i.e. classic/broadcast reads).
    pub snapshot_seq: u64,
    /// Acceptance instant.
    pub at: SimTime,
    /// Response time of the successful attempt, milliseconds.
    pub response_ms: f64,
}

/// A snapshot-isolation transaction's certification outcome, recorded by
/// the delegate at delivery time (the SI oracle's evidence for the
/// lost-update and dirty-read audits and the per-group commit/abort
/// accounting).
#[derive(Debug, Clone)]
pub struct SiRecord {
    /// The transaction.
    pub txn: TxnId,
    /// The delegate's group.
    pub group: u32,
    /// The delivery sequence number the read phase executed against.
    pub snapshot: u64,
    /// Items read (outside the transaction's own write buffer), with the
    /// committed versions observed.
    pub readset: Vec<(ItemId, Version)>,
    /// Items written.
    pub writes: Vec<ItemId>,
    /// Certification verdict.
    pub committed: bool,
    /// The delivery sequence number the commit was applied at (0 on
    /// abort).
    pub commit_seq: u64,
}

/// Touched-group record of one committed cross-group transaction.
#[derive(Debug, Clone)]
pub struct XgRecord {
    /// Every group the transaction wrote or read in, ascending.
    pub groups: Vec<u32>,
    /// The coordinator's group (the decision's origin).
    pub coordinator_group: u32,
}

/// Shared run oracle.
#[derive(Debug, Default)]
pub struct Oracle {
    /// Client-visible commit acknowledgements.
    pub acked: BTreeMap<TxnId, AckRecord>,
    /// Server-side commit records (first commit per transaction).
    pub commits: BTreeMap<TxnId, CommitRecord>,
    /// Cross-group commits and the groups they touched (the atomicity
    /// oracle audits all-or-nothing over these).
    pub xg: BTreeMap<TxnId, XgRecord>,
    /// Aborted attempts (certification + deadlock victims).
    pub aborts: u64,
    /// Committed attempt acknowledgements received by clients.
    pub commit_acks: u64,
    /// Client-side timeouts (requests that got no reply in time).
    pub timeouts: u64,
    /// Locally served reads, in serve order (read-freshness oracle).
    pub reads: Vec<ReadRecord>,
    /// Read-only transaction acknowledgements, in client-accept order.
    pub read_acks: Vec<ReadAckRecord>,
    /// Session reads a lagging replica answered with a redirect, per
    /// serving group.
    pub read_redirects_by_group: BTreeMap<u32, u64>,
    /// Snapshot-isolation certification outcomes, in delegate delivery
    /// order (SI anomaly audits + per-group accounting).
    pub si_txns: Vec<SiRecord>,
}

impl Oracle {
    /// Record a server-side commit (idempotent per transaction).
    pub fn record_commit(
        &mut self,
        txn: TxnId,
        delegate: NodeId,
        readset: Vec<(ItemId, Version)>,
        writes: Vec<WriteOp>,
    ) {
        self.commits.entry(txn).or_insert(CommitRecord {
            delegate,
            readset,
            writes,
        });
    }

    /// Record one group's applied slice of a cross-group commit. Unlike
    /// [`Oracle::record_commit`] — idempotent per transaction, which is
    /// right for single-group commits, where every replica reports the
    /// same writes — the slices of a cross-group transaction differ per
    /// group, so each group's writes are merged into the record (the SI
    /// snapshot-containment audit would otherwise see the second group's
    /// versions as written by nobody). Replicas of one group report
    /// identical (item, version) pairs; the dedup keeps one of each.
    pub fn record_commit_slice(&mut self, txn: TxnId, coordinator: NodeId, writes: Vec<WriteOp>) {
        let rec = self.commits.entry(txn).or_insert_with(|| CommitRecord {
            delegate: coordinator,
            readset: Vec::new(),
            writes: Vec::new(),
        });
        for w in writes {
            if !rec
                .writes
                .iter()
                .any(|e| e.item == w.item && e.version == w.version)
            {
                rec.writes.push(w);
            }
        }
    }

    /// Record a cross-group commit's touched groups (idempotent).
    pub fn record_xg(&mut self, txn: TxnId, groups: Vec<u32>, coordinator_group: u32) {
        self.xg.entry(txn).or_insert(XgRecord {
            groups,
            coordinator_group,
        });
    }

    /// Record a locally served read (server side, at serve time).
    pub fn record_read(&mut self, rec: ReadRecord) {
        self.reads.push(rec);
    }

    /// Record a read-only transaction's acknowledgement (client side, in
    /// session-accept order — the monotonic-reads evidence).
    pub fn record_read_ack(&mut self, rec: ReadAckRecord) {
        self.read_acks.push(rec);
    }

    /// Record a snapshot-isolation certification outcome (delegate side,
    /// at delivery time).
    pub fn record_si(&mut self, rec: SiRecord) {
        self.si_txns.push(rec);
    }

    /// Count a session-read redirect answered by a replica of `group`.
    pub fn record_read_redirect(&mut self, group: u32) {
        *self.read_redirects_by_group.entry(group).or_insert(0) += 1;
    }

    /// Session-read redirects over the whole run, all groups.
    pub fn read_redirects(&self) -> u64 {
        self.read_redirects_by_group.values().sum()
    }

    /// Record a client-side acknowledgement.
    pub fn record_ack(&mut self, txn: TxnId, at: SimTime, response_ms: f64) {
        self.commit_acks += 1;
        self.acked
            .entry(txn)
            .or_insert(AckRecord { at, response_ms });
    }

    /// Abort rate over all answered attempts.
    pub fn abort_rate(&self) -> f64 {
        let total = self.aborts + self.commit_acks;
        if total == 0 {
            return 0.0;
        }
        self.aborts as f64 / total as f64
    }
}

/// A transaction the client was told committed but that no surviving
/// replica knows about: the durability violation the safety criteria are
/// about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LostTransaction {
    /// The lost transaction.
    pub txn: TxnId,
}

/// Check for lost transactions: every acknowledged *update* transaction
/// must be committed on at least one *live* replica (from where the group
/// will re-propagate it). Read-only transactions have no durability
/// footprint — they commit locally without entering any committed-
/// transaction table — so only transactions with a recorded commit (i.e.
/// with writes) are audited. `replicas` pairs each engine with its
/// liveness.
pub fn check_no_loss(oracle: &Oracle, replicas: &[(&DbEngine, bool)]) -> Vec<LostTransaction> {
    let mut lost = Vec::new();
    for txn in oracle.acked.keys() {
        if !oracle.commits.contains_key(txn) {
            continue; // read-only: nothing durable was promised
        }
        let present = replicas
            .iter()
            .any(|(db, live)| *live && db.is_committed(*txn));
        if !present {
            lost.push(LostTransaction { txn: *txn });
        }
    }
    lost
}

/// Check replica convergence: all live replicas hold the same committed
/// state (digest equality). Returns the set of distinct digests observed
/// (length 1 = consistent).
pub fn check_convergence(replicas: &[(&DbEngine, bool)]) -> Vec<u64> {
    let mut digests: Vec<u64> = replicas
        .iter()
        .filter(|(_, live)| *live)
        .map(|(db, _)| db.state_digest())
        .collect();
    digests.sort_unstable();
    digests.dedup();
    digests
}

/// A lazy-replication lost update (§7): two acknowledged transactions
/// wrote the same item having read the same version of it — serially, one
/// would have observed the other, so one update was silently destroyed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LostUpdate {
    /// First transaction.
    pub a: TxnId,
    /// Second transaction.
    pub b: TxnId,
    /// The contended item.
    pub item: ItemId,
}

/// Detect lost updates among acknowledged commits.
pub fn check_lost_updates(oracle: &Oracle) -> Vec<LostUpdate> {
    // Index: item -> [(txn, version read, version written)].
    let mut by_item: BTreeMap<ItemId, Vec<(TxnId, Option<Version>, Version)>> = BTreeMap::new();
    for (txn, rec) in &oracle.commits {
        if !oracle.acked.contains_key(txn) {
            continue;
        }
        for w in &rec.writes {
            let read_v = rec
                .readset
                .iter()
                .find(|(i, _)| *i == w.item)
                .map(|(_, v)| *v);
            by_item
                .entry(w.item)
                .or_default()
                .push((*txn, read_v, w.version));
        }
    }
    let mut out = Vec::new();
    for (item, entries) in by_item {
        for i in 0..entries.len() {
            for j in i + 1..entries.len() {
                let (ta, ra, _) = entries[i];
                let (tb, rb, _) = entries[j];
                if let (Some(ra), Some(rb)) = (ra, rb) {
                    if ra == rb {
                        out.push(LostUpdate { a: ta, b: tb, item });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(seq: u64) -> TxnId {
        TxnId { client: 0, seq }
    }

    fn w(item: u32, version: u64) -> WriteOp {
        WriteOp {
            item: ItemId(item),
            value: 1,
            version,
        }
    }

    #[test]
    fn abort_rate_counts_both_outcomes() {
        let mut o = Oracle::default();
        o.record_ack(t(1), SimTime::ZERO, 10.0);
        o.record_ack(t(2), SimTime::ZERO, 10.0);
        o.aborts = 2;
        assert!((o.abort_rate() - 0.5).abs() < 1e-12);
        assert_eq!(Oracle::default().abort_rate(), 0.0);
    }

    #[test]
    fn duplicate_acks_dedup() {
        let mut o = Oracle::default();
        o.record_ack(t(1), SimTime::ZERO, 10.0);
        o.record_ack(t(1), SimTime::from_millis(5), 12.0);
        assert_eq!(o.acked.len(), 1);
        assert_eq!(o.commit_acks, 2);
    }

    #[test]
    fn lost_update_detection() {
        let mut o = Oracle::default();
        // Both read version 0 of item 7 and wrote it: lost update.
        o.record_commit(t(1), NodeId(0), vec![(ItemId(7), 0)], vec![w(7, 100)]);
        o.record_commit(t(2), NodeId(1), vec![(ItemId(7), 0)], vec![w(7, 101)]);
        o.record_ack(t(1), SimTime::ZERO, 1.0);
        o.record_ack(t(2), SimTime::ZERO, 1.0);
        let lu = check_lost_updates(&o);
        assert_eq!(lu.len(), 1);
        assert_eq!(lu[0].item, ItemId(7));
        // If the second read the first's version, it is a normal overwrite.
        let mut o2 = Oracle::default();
        o2.record_commit(t(1), NodeId(0), vec![(ItemId(7), 0)], vec![w(7, 100)]);
        o2.record_commit(t(2), NodeId(1), vec![(ItemId(7), 100)], vec![w(7, 101)]);
        o2.record_ack(t(1), SimTime::ZERO, 1.0);
        o2.record_ack(t(2), SimTime::ZERO, 1.0);
        assert!(check_lost_updates(&o2).is_empty());
    }

    #[test]
    fn unacked_commits_do_not_count_as_lost_updates() {
        let mut o = Oracle::default();
        o.record_commit(t(1), NodeId(0), vec![(ItemId(7), 0)], vec![w(7, 100)]);
        o.record_commit(t(2), NodeId(1), vec![(ItemId(7), 0)], vec![w(7, 101)]);
        // Neither acked.
        assert!(check_lost_updates(&o).is_empty());
    }
}
