//! # groupsafe-core — the paper's contribution
//!
//! Group-safe database replication (Wiesmann & Schiper, EDBT 2004):
//!
//! * [`SafetyLevel`] — the taxonomy of §2.1 and §5 with Tables 1–3 as
//!   executable functions,
//! * [`certify`](mod@certify) — the database state machine's
//!   deterministic certification,
//! * [`ReplicaServer`] — update-everywhere, non-voting, single-network-
//!   interaction replication over atomic broadcast, with the reply point
//!   parameterised by safety level (0-safe, group-safe, group-1-safe,
//!   2-safe over end-to-end atomic broadcast), plus the lazy (1-safe)
//!   baseline with asynchronous propagation,
//! * [`Client`] — open/closed-loop clients with abort resubmission and
//!   timeout failover,
//! * [`verify`] — the oracle and the lost-transaction / convergence /
//!   lost-update checks,
//! * [`System`] — one-call assembly of a full replicated database,
//! * [`builder`] — the fluent [`SystemBuilder`] → [`Run`] → [`Report`]
//!   API: one declarative entry point over system wiring, the
//!   warm-up / measure / stop-clients / drain lifecycle, and structured
//!   results,
//! * [`scenario`] — the deterministic fault-scenario engine: declarative
//!   [`ScenarioPlan`] timelines (crashes, partitions, sequencer kills,
//!   network bursts, slow disks, group-targeted events), the
//!   per-safety-level oracle ([`audit_scenario`], with per-group loss
//!   rules and the cross-group atomicity digest) and the seeded
//!   scenario fuzzer ([`scenario::fuzz`]),
//! * [`shard`] — key-routed sharding over `N` independent replica
//!   groups: the [`ShardMap`] router (hash/range strategies), the
//!   sharded workload generator, and — in [`server`] — the ordered
//!   two-phase cross-group commit protocol layered on the per-group
//!   atomic broadcasts,
//! * [`reads`] — the local read path: follower reads at any replica
//!   under three freshness levels tied to the safety spectrum
//!   ([`ReadLevel::Stable`] at the group-stable watermark,
//!   [`ReadLevel::Session`] with per-group session tokens and
//!   bounded-wait redirects, [`ReadLevel::Latest`]), the broadcast-read
//!   baseline, and the read-freshness oracle ([`audit_reads`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod certify;
pub mod client;
pub mod msg;
pub mod reads;
pub mod safety;
pub mod scenario;
pub mod server;
pub mod shard;
pub mod system;
pub mod verify;

pub use builder::{
    txn_from_env, BuildError, FaultPlan, GroupStats, Load, ObsPhaseStats, PhaseStats, Report, Run,
    SystemBuilder, WorkloadSpec,
};

/// Stable `u64` encoding of a [`groupsafe_db::TxnId`] for observability
/// events ([`groupsafe_sim::ObsEvent`] keys transactions by a single
/// integer). Client ids are small and sequence numbers are per-client,
/// so `client << 40 ^ seq` is collision-free for any simulated run and
/// renders compactly.
#[inline]
pub fn obs_txn(id: groupsafe_db::TxnId) -> u64 {
    (u64::from(id.client) << 40) ^ id.seq
}
pub use certify::{certify, certify_snapshot, certify_versions, Certification};
pub use client::{Client, ClientConfig, LoadModel, OpGenerator, StartClient, StopClient, TxnPlan};
pub use groupsafe_gcs::BatchConfig;
pub use msg::{
    ClientMsg, DsmMsg, GroupMsg, LazyPropagation, LoggedConfirm, ServerReply, TxnRequest,
    XgDecision, XgPrepare, XgVote,
};
pub use reads::{
    audit_reads, ReadConfig, ReadLevel, ReadPath, ReadReply, ReadRequest, ReadViolation,
};
pub use safety::{table1, Guarantee, SafetyLevel};
pub use scenario::{
    audit_scenario, reconcile_restart, OracleViolation, ScenarioAudit, ScenarioEvent, ScenarioPlan,
    ScenarioStep,
};
pub use server::{
    InitServer, InstallCheckpointCmd, RWire, ReplicaConfig, ReplicaServer, RestartServerCmd,
    SwitchSafetyCmd, Technique,
};
pub use shard::{sharded_generator, ShardError, ShardMap, ShardSpec, ShardStrategy};
pub use system::{System, SystemConfig};
pub use verify::{
    check_convergence, check_lost_updates, check_no_loss, LostTransaction, LostUpdate, Oracle,
    SiRecord, XgRecord,
};
