//! System assembly: wire `n` replica servers, their clients, the network
//! and the oracle into a ready-to-run simulation.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use groupsafe_db::DbEngine;
use groupsafe_gcs::GcsStats;
use groupsafe_net::{NetConfig, Network, NodeId};
use groupsafe_sim::{ActorId, Engine, SimDuration, SimTime};

use crate::client::{Client, ClientConfig, LoadModel, OpGenerator, StartClient};
use crate::server::{InitServer, ReplicaConfig, ReplicaServer, Technique};
use crate::verify::{self, LostTransaction, Oracle};

/// Configuration of a whole replicated-database system.
pub struct SystemConfig {
    /// Number of replica servers (Table 4: 9).
    pub n_servers: u32,
    /// Clients per server (Table 4: 4).
    pub clients_per_server: u32,
    /// Server configuration (technique, database, timers).
    pub replica: ReplicaConfig,
    /// Client load model.
    pub load: LoadModel,
    /// Client request timeout (failover trigger).
    pub client_timeout: SimDuration,
    /// Discard response samples before this instant (warm-up).
    pub measure_from: SimTime,
    /// Network parameters.
    pub net: NetConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            n_servers: 9,
            clients_per_server: 4,
            replica: ReplicaConfig::default(),
            load: LoadModel::Open {
                mean_interarrival: SimDuration::from_millis(1_200),
            },
            client_timeout: SimDuration::from_secs(2),
            measure_from: SimTime::ZERO,
            net: NetConfig::default(),
            seed: 42,
        }
    }
}

/// A fully wired system.
pub struct System {
    /// The simulation engine.
    pub engine: Engine,
    /// The shared network.
    pub net: Network,
    /// Server actor ids (index = node id).
    pub servers: Vec<ActorId>,
    /// Client actor ids.
    pub clients: Vec<ActorId>,
    /// The shared oracle.
    pub oracle: Rc<RefCell<Oracle>>,
    /// Number of servers.
    pub n_servers: u32,
}

impl System {
    /// Build a system. `make_gen` supplies each client's operation
    /// generator (called once per client with its id).
    pub fn build(cfg: SystemConfig, mut make_gen: impl FnMut(u32) -> OpGenerator) -> System {
        let mut engine = Engine::new(cfg.seed);
        let net = Network::new(cfg.net.clone());
        let oracle = Rc::new(RefCell::new(Oracle::default()));
        let mut seeder = StdRng::seed_from_u64(cfg.seed);

        let mut servers = Vec::with_capacity(cfg.n_servers as usize);
        for i in 0..cfg.n_servers {
            let node = NodeId(i);
            let server = ReplicaServer::new(
                node,
                cfg.n_servers,
                cfg.replica.clone(),
                net.clone(),
                oracle.clone(),
                seeder.random(),
            );
            let id = engine.add_actor(Box::new(server));
            net.register(node, id);
            servers.push(id);
        }

        let n_clients = cfg.n_servers * cfg.clients_per_server;
        let mut clients = Vec::with_capacity(n_clients as usize);
        for c in 0..n_clients {
            let node = NodeId(cfg.n_servers + c);
            let home = NodeId(c % cfg.n_servers);
            let client = Client::new(
                ClientConfig {
                    node,
                    id: c,
                    home,
                    n_servers: cfg.n_servers,
                    load: cfg.load,
                    timeout: cfg.client_timeout,
                    measure_from: cfg.measure_from,
                },
                net.clone(),
                oracle.clone(),
                StdRng::seed_from_u64(seeder.random()),
                make_gen(c),
            );
            let id = engine.add_actor(Box::new(client));
            net.register(node, id);
            clients.push(id);
        }

        System {
            engine,
            net,
            servers,
            clients,
            oracle,
            n_servers: cfg.n_servers,
        }
    }

    /// Schedule server initialisation (t = 0) and client start (staggered
    /// across the first 100 ms to avoid arrival synchronisation).
    pub fn start(&mut self) {
        for &s in &self.servers {
            self.engine.schedule(SimTime::ZERO, s, InitServer);
        }
        let count = self.clients.len().max(1) as u64;
        for (i, &c) in self.clients.iter().enumerate() {
            let offset = SimTime::from_nanos(100_000_000 * i as u64 / count);
            self.engine.schedule(offset, c, StartClient);
        }
    }

    /// Borrow server `i`'s actor.
    pub fn server(&self, i: u32) -> &ReplicaServer {
        self.engine.actor(self.servers[i as usize])
    }

    /// (engine, live) pairs for the verification functions.
    pub fn replica_states(&self) -> Vec<(&DbEngine, bool)> {
        self.servers
            .iter()
            .map(|&id| {
                let s: &ReplicaServer = self.engine.actor(id);
                (s.db(), self.engine.is_alive(id))
            })
            .collect()
    }

    /// Acknowledged transactions missing from every live replica.
    pub fn lost_transactions(&self) -> Vec<LostTransaction> {
        let replicas = self.replica_states();
        verify::check_no_loss(&self.oracle.borrow(), &replicas)
    }

    /// Distinct state digests across live replicas (length 1 = converged).
    pub fn convergence(&self) -> Vec<u64> {
        verify::check_convergence(&self.replica_states())
    }

    /// Mean / p95 response time (ms) and sample count for this run.
    pub fn response_stats(&mut self) -> (f64, f64, usize) {
        let h = self.engine.metrics_mut().histogram_mut("response_ms");
        (h.mean(), h.quantile(0.95), h.count())
    }

    /// The technique's label (from the first server's config).
    pub fn technique(&self) -> Technique {
        self.server(0).technique()
    }

    /// The live server currently acting as the group's sequencer, if any
    /// (None for techniques without group communication, or while the
    /// group is down). Scenario drivers use this to aim targeted faults
    /// at whoever holds the role *now*.
    pub fn current_sequencer(&self) -> Option<u32> {
        (0..self.n_servers).find(|&i| {
            self.engine.is_alive(self.servers[i as usize])
                && self.server(i).gcs().is_some_and(|g| g.is_sequencer())
        })
    }

    /// Undelivered atomic-broadcast entries summed over the *live*
    /// replicas (0 = every live endpoint has drained its known
    /// sequence). Scenario drivers use this as a quiescence signal.
    pub fn delivery_backlog(&self) -> u64 {
        (0..self.n_servers)
            .filter(|&i| self.engine.is_alive(self.servers[i as usize]))
            .filter_map(|i| self.server(i).gcs().map(|g| g.backlog()))
            .sum()
    }

    /// Partition the network into the given server groups; each group
    /// takes its home clients with it. Servers absent from every group
    /// (and their clients) form an implicit final component.
    pub fn apply_partition(&mut self, groups: &[Vec<u32>]) {
        let n = self.n_servers;
        let total = self.net.node_count() as u32;
        let mut sides: Vec<Vec<NodeId>> = Vec::with_capacity(groups.len());
        for group in groups {
            let mut side: Vec<NodeId> = group.iter().map(|&i| NodeId(i)).collect();
            for c in n..total {
                if group.contains(&((c - n) % n)) {
                    side.push(NodeId(c));
                }
            }
            sides.push(side);
        }
        let refs: Vec<&[NodeId]> = sides.iter().map(|s| s.as_slice()).collect();
        self.net.partition(&refs);
    }

    /// Whole-group atomic-broadcast counters plus the merged batch-size
    /// histogram (size → frame count), summed over every server's
    /// endpoint. Empty/default for techniques without group
    /// communication.
    pub fn gcs_stats(&self) -> (GcsStats, Vec<(u32, u64)>) {
        let mut total = GcsStats::default();
        let mut hist: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for &id in &self.servers {
            let s: &ReplicaServer = self.engine.actor(id);
            if let Some(g) = s.gcs() {
                total.merge(&g.stats());
                for (&size, &count) in g.batch_histogram() {
                    *hist.entry(size).or_insert(0) += count;
                }
            }
        }
        (total, hist.into_iter().collect())
    }
}
