//! System assembly: wire the replica servers (one group, or `N` sharded
//! groups), their clients, the network and the oracle into a
//! ready-to-run simulation.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use groupsafe_db::DbEngine;
use groupsafe_gcs::GcsStats;
use groupsafe_net::{NetConfig, Network, NodeId};
use groupsafe_sim::{ActorId, Engine, ObsConfig, Scheduler, SimDuration, SimTime};

use crate::client::{Client, ClientConfig, LoadModel, OpGenerator, StartClient};
use crate::server::{InitServer, ReplicaConfig, ReplicaServer, Technique};
use crate::shard::{ShardMap, ShardSpec};
use crate::verify::{self, LostTransaction, Oracle};

/// Configuration of a whole replicated-database system.
pub struct SystemConfig {
    /// Number of replica servers *per group* (Table 4: 9; the whole
    /// system when `shard` keeps its single-group default).
    pub n_servers: u32,
    /// Clients per server (Table 4: 4).
    pub clients_per_server: u32,
    /// Server configuration (technique, database, timers).
    pub replica: ReplicaConfig,
    /// Client load model.
    pub load: LoadModel,
    /// Client request timeout (failover trigger).
    pub client_timeout: SimDuration,
    /// Discard response samples before this instant (warm-up).
    pub measure_from: SimTime,
    /// Network parameters.
    pub net: NetConfig,
    /// Sharding: how many replica groups and how keys route to them
    /// (default: one group — the classic unsharded system).
    pub shard: ShardSpec,
    /// Master seed.
    pub seed: u64,
    /// Observability: recording mode of the typed event layer (default:
    /// the ring-buffer flight recorder; recording never perturbs the
    /// simulation).
    pub obs: ObsConfig,
    /// Event-queue scheduler of the simulation kernel (timing wheel by
    /// default; the legacy heap is kept for equivalence testing).
    pub scheduler: Scheduler,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            n_servers: 9,
            clients_per_server: 4,
            replica: ReplicaConfig::default(),
            load: LoadModel::Open {
                mean_interarrival: SimDuration::from_millis(1_200),
            },
            client_timeout: SimDuration::from_secs(2),
            measure_from: SimTime::ZERO,
            net: NetConfig::default(),
            shard: ShardSpec::default(),
            seed: 42,
            obs: ObsConfig::default(),
            scheduler: Scheduler::default(),
        }
    }
}

/// A fully wired system: one replica group in the classic configuration,
/// `N` key-routed groups when built with a multi-group
/// [`ShardSpec`].
pub struct System {
    /// The simulation engine.
    pub engine: Engine,
    /// The shared network.
    pub net: Network,
    /// Server actor ids (index = node id; group `g` owns the contiguous
    /// slice `g * servers_per_group ..`).
    pub servers: Vec<ActorId>,
    /// Client actor ids.
    pub clients: Vec<ActorId>,
    /// The shared oracle.
    pub oracle: Rc<RefCell<Oracle>>,
    /// Total number of servers (all groups).
    pub n_servers: u32,
    /// The key → group router (single-group when unsharded).
    pub shard: Rc<ShardMap>,
    /// Servers per replica group.
    pub servers_per_group: u32,
    /// Number of replica groups.
    pub n_groups: u32,
}

impl System {
    /// Build a system. `make_gen` supplies each client's operation
    /// generator (called once per client with its id).
    ///
    /// # Panics
    /// Panics if `cfg.shard` does not denote a valid partition of the
    /// database's key space (the builder validates this ahead of time).
    pub fn build(cfg: SystemConfig, mut make_gen: impl FnMut(u32) -> OpGenerator) -> System {
        let shard = Rc::new(
            cfg.shard
                .resolve(cfg.replica.db.n_items)
                .expect("invalid shard configuration"),
        );
        let n_groups = shard.n_groups();
        let spg = cfg.n_servers;
        let total_servers = spg * n_groups;
        let mut engine = Engine::new_with_scheduler(cfg.seed, cfg.scheduler);
        engine.set_obs(cfg.obs);
        let net = Network::new(cfg.net.clone());
        let oracle = Rc::new(RefCell::new(Oracle::default()));
        let mut seeder = StdRng::seed_from_u64(cfg.seed);

        let mut servers = Vec::with_capacity(total_servers as usize);
        for i in 0..total_servers {
            let node = NodeId(i);
            let server = ReplicaServer::new(
                node,
                spg,
                cfg.replica.clone(),
                net.clone(),
                oracle.clone(),
                seeder.random(),
                shard.clone(),
            );
            let id = engine.add_actor(Box::new(server));
            net.register(node, id);
            servers.push(id);
        }

        let n_clients = total_servers * cfg.clients_per_server;
        let mut clients = Vec::with_capacity(n_clients as usize);
        for c in 0..n_clients {
            let node = NodeId(total_servers + c);
            let home = NodeId(c % total_servers);
            let client = Client::new(
                ClientConfig {
                    node,
                    id: c,
                    home,
                    n_servers: total_servers,
                    servers_per_group: spg,
                    shard: shard.clone(),
                    load: cfg.load,
                    timeout: cfg.client_timeout,
                    measure_from: cfg.measure_from,
                    reads: cfg.replica.reads,
                },
                net.clone(),
                oracle.clone(),
                StdRng::seed_from_u64(seeder.random()),
                make_gen(c),
            );
            let id = engine.add_actor(Box::new(client));
            net.register(node, id);
            clients.push(id);
        }

        // One multicast domain per group (its servers plus the clients
        // nominally homed there) for per-group wire accounting.
        let domains: Vec<Vec<NodeId>> = (0..n_groups)
            .map(|g| {
                let mut d: Vec<NodeId> = (g * spg..(g + 1) * spg).map(NodeId).collect();
                for c in 0..n_clients {
                    if (c % total_servers) / spg == g {
                        d.push(NodeId(total_servers + c));
                    }
                }
                d
            })
            .collect();
        net.set_domains(&domains);

        System {
            engine,
            net,
            servers,
            clients,
            oracle,
            n_servers: total_servers,
            shard,
            servers_per_group: spg,
            n_groups,
        }
    }

    /// Schedule server initialisation (t = 0) and client start (staggered
    /// across the first 100 ms to avoid arrival synchronisation).
    pub fn start(&mut self) {
        for &s in &self.servers {
            self.engine.schedule(SimTime::ZERO, s, InitServer);
        }
        let count = self.clients.len().max(1) as u64;
        for (i, &c) in self.clients.iter().enumerate() {
            let offset = SimTime::from_nanos(100_000_000 * i as u64 / count);
            self.engine.schedule(offset, c, StartClient);
        }
    }

    /// Borrow server `i`'s actor.
    pub fn server(&self, i: u32) -> &ReplicaServer {
        self.engine.actor(self.servers[i as usize])
    }

    /// (engine, live) pairs for the verification functions.
    pub fn replica_states(&self) -> Vec<(&DbEngine, bool)> {
        self.servers
            .iter()
            .map(|&id| {
                let s: &ReplicaServer = self.engine.actor(id);
                (s.db(), self.engine.is_alive(id))
            })
            .collect()
    }

    /// Acknowledged transactions missing from every live replica.
    pub fn lost_transactions(&self) -> Vec<LostTransaction> {
        let replicas = self.replica_states();
        verify::check_no_loss(&self.oracle.borrow(), &replicas)
    }

    /// The global server indices of group `g`.
    pub fn group_server_indices(&self, g: u32) -> Vec<u32> {
        (g * self.servers_per_group..(g + 1) * self.servers_per_group).collect()
    }

    /// The group server `i` belongs to.
    pub fn group_of_server(&self, i: u32) -> u32 {
        i / self.servers_per_group.max(1)
    }

    /// (engine, live) pairs of group `g`'s replicas.
    pub fn replica_states_of(&self, g: u32) -> Vec<(&DbEngine, bool)> {
        self.group_server_indices(g)
            .into_iter()
            .map(|i| {
                let id = self.servers[i as usize];
                let s: &ReplicaServer = self.engine.actor(id);
                (s.db(), self.engine.is_alive(id))
            })
            .collect()
    }

    /// Distinct state digests per group across each group's live replicas
    /// (each inner vector of length ≤ 1 = that group converged).
    pub fn convergence_by_group(&self) -> Vec<Vec<u64>> {
        (0..self.n_groups)
            .map(|g| verify::check_convergence(&self.replica_states_of(g)))
            .collect()
    }

    /// Distinct state digests across live replicas (length ≤ 1 =
    /// converged). In a sharded system the groups hold different data by
    /// design, so convergence is checked *within* each group: when every
    /// group internally agrees this returns a single combined witness
    /// digest, otherwise the distinct digests of the divergent groups.
    pub fn convergence(&self) -> Vec<u64> {
        if self.n_groups <= 1 {
            return verify::check_convergence(&self.replica_states());
        }
        let by_group = self.convergence_by_group();
        if by_group.iter().all(|d| d.len() <= 1) {
            let mut h: u64 = 0xcbf29ce484222325;
            for d in by_group.iter().flatten() {
                h ^= *d;
                h = h.wrapping_mul(0x100000001b3);
            }
            vec![h]
        } else {
            by_group.into_iter().flatten().collect()
        }
    }

    /// Mean / p95 response time (ms) and sample count for this run.
    pub fn response_stats(&mut self) -> (f64, f64, usize) {
        let h = self.engine.metrics_mut().histogram_mut("response_ms");
        (h.mean(), h.quantile(0.95), h.count())
    }

    /// The technique's label (from the first server's config).
    pub fn technique(&self) -> Technique {
        self.server(0).technique()
    }

    /// The live server currently acting as a sequencer, if any (the
    /// first one found in node order — use
    /// [`System::current_sequencer_of`] to target one group of a sharded
    /// system). `None` for techniques without group communication, or
    /// while the group is down. Scenario drivers use this to aim targeted
    /// faults at whoever holds the role *now*.
    pub fn current_sequencer(&self) -> Option<u32> {
        (0..self.n_servers).find(|&i| {
            self.engine.is_alive(self.servers[i as usize])
                && self.server(i).gcs().is_some_and(|g| g.is_sequencer())
        })
    }

    /// The live server currently acting as group `g`'s sequencer, if any.
    pub fn current_sequencer_of(&self, g: u32) -> Option<u32> {
        self.group_server_indices(g).into_iter().find(|&i| {
            self.engine.is_alive(self.servers[i as usize])
                && self.server(i).gcs().is_some_and(|s| s.is_sequencer())
        })
    }

    /// Cross-group transactions some *live* replica is still awaiting a
    /// decision for (probes in flight). Scenario drivers use this as a
    /// quiescence signal alongside [`System::delivery_backlog`].
    pub fn xg_unresolved(&self) -> usize {
        (0..self.n_servers)
            .filter(|&i| self.engine.is_alive(self.servers[i as usize]))
            .map(|i| self.server(i).xg_unresolved())
            .sum()
    }

    /// Undelivered atomic-broadcast entries summed over the *live*
    /// replicas (0 = every live endpoint has drained its known
    /// sequence). Scenario drivers use this as a quiescence signal.
    pub fn delivery_backlog(&self) -> u64 {
        (0..self.n_servers)
            .filter(|&i| self.engine.is_alive(self.servers[i as usize]))
            .filter_map(|i| self.server(i).gcs().map(|g| g.backlog()))
            .sum()
    }

    /// Partition the network into the given server groups; each group
    /// takes its home clients with it. Servers absent from every group
    /// (and their clients) form an implicit final component.
    pub fn apply_partition(&mut self, groups: &[Vec<u32>]) {
        let n = self.n_servers;
        let total = self.net.node_count() as u32;
        let mut sides: Vec<Vec<NodeId>> = Vec::with_capacity(groups.len());
        for group in groups {
            let mut side: Vec<NodeId> = group.iter().map(|&i| NodeId(i)).collect();
            for c in n..total {
                if group.contains(&((c - n) % n)) {
                    side.push(NodeId(c));
                }
            }
            sides.push(side);
        }
        let refs: Vec<&[NodeId]> = sides.iter().map(|s| s.as_slice()).collect();
        self.net.partition(&refs);
    }

    /// Whole-group atomic-broadcast counters plus the merged batch-size
    /// histogram (size → frame count), summed over every server's
    /// endpoint. Empty/default for techniques without group
    /// communication.
    pub fn gcs_stats(&self) -> (GcsStats, Vec<(u32, u64)>) {
        let mut total = GcsStats::default();
        let mut hist: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for &id in &self.servers {
            let s: &ReplicaServer = self.engine.actor(id);
            if let Some(g) = s.gcs() {
                total.merge(&g.stats());
                for (&size, &count) in g.batch_histogram() {
                    *hist.entry(size).or_insert(0) += count;
                }
            }
        }
        (total, hist.into_iter().collect())
    }

    /// Group `g`'s atomic-broadcast counters plus its merged batch-size
    /// histogram, summed over the group's endpoints.
    pub fn gcs_stats_of(&self, g: u32) -> (GcsStats, Vec<(u32, u64)>) {
        let mut total = GcsStats::default();
        let mut hist: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for i in self.group_server_indices(g) {
            let s: &ReplicaServer = self.engine.actor(self.servers[i as usize]);
            if let Some(e) = s.gcs() {
                total.merge(&e.stats());
                for (&size, &count) in e.batch_histogram() {
                    *hist.entry(size).or_insert(0) += count;
                }
            }
        }
        (total, hist.into_iter().collect())
    }
}
