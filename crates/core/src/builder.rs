//! The fluent system-assembly API: [`SystemBuilder`] → [`Run`] →
//! [`Report`].
//!
//! One declarative entry point replaces the three historical config
//! layers (`SystemConfig`, the workload crate's `RunConfig`, and the
//! drivers' hand-rolled warm-up / measure / stop-clients / drain loops):
//!
//! ```
//! use groupsafe_core::{Load, SafetyLevel, System};
//! use groupsafe_sim::SimDuration;
//!
//! let report = System::builder()
//!     .servers(3)
//!     .clients_per_server(2)
//!     .safety(SafetyLevel::GroupSafe)
//!     .load(Load::open_tps(10.0))
//!     .measure(SimDuration::from_secs(2))
//!     .drain(SimDuration::from_secs(1))
//!     .seed(7)
//!     .build()
//!     .expect("a valid configuration")
//!     .execute();
//! assert!(report.commits > 0);
//! assert_eq!(report.lost, 0);
//! assert_eq!(report.distinct_states, 1, "replicas converged");
//! ```
//!
//! * [`SystemBuilder`] validates the configuration ([`BuildError`]) and
//!   wires the full system exactly as [`System::build`] always has — the
//!   same seed produces the same commit count and state digests,
//! * [`Run`] owns the warm-up → measure → stop-clients → drain lifecycle
//!   and offers phase hooks ([`Run::at`], [`Run::switch_safety_at`]) for
//!   mid-run commands such as [`SwitchSafetyCmd`],
//! * [`Report`] is the structured outcome — commits, mean/p95/p99,
//!   aborts, lost transactions, convergence digests, per-phase and
//!   per-shard-group stats — with [`Display`](std::fmt::Display) and
//!   JSON renderings.
//!
//! Sharded systems thread through the same pipeline:
//! [`SystemBuilder::shards`] splits the key space over `N` independent
//! replica groups ([`crate::shard`]) and the [`Report`] gains per-group
//! and cross-group statistics.

use rand::rngs::StdRng;
use rand::Rng;

use groupsafe_db::{DbConfig, ItemId, Operation};
use groupsafe_gcs::BatchConfig;
use groupsafe_net::{NetConfig, NodeId};
use groupsafe_sim::{decompose_commits, CommitSpan, ObsConfig, Scheduler, SimDuration, SimTime};

use crate::client::{LoadModel, OpGenerator, StopClient, TxnPlan};
use crate::reads::{reads_from_env, ReadConfig, ReadLevel, ReadPath};
use crate::safety::SafetyLevel;
use crate::scenario::ScenarioPlan;
use crate::server::{ReplicaConfig, SwitchSafetyCmd, Technique};
use crate::shard::{self, ShardError, ShardSpec, ShardStrategy};
use crate::system::{System, SystemConfig};
use crate::verify::{self, LostTransaction};

// ---------------------------------------------------------------------
// Load
// ---------------------------------------------------------------------

/// How the clients generate load, expressed at the whole-system level.
///
/// Resolved against the client population at build time: `open_tps(30.0)`
/// on 36 clients becomes a per-client Poisson process at 30/36 tps.
#[derive(Debug, Clone, Copy)]
pub enum Load {
    /// Open loop at a system-wide offered rate (Poisson arrivals,
    /// independent of outstanding work).
    OpenTps(f64),
    /// Closed loop calibrated for a system-wide target rate: each client
    /// keeps one transaction outstanding and thinks between replies, with
    /// the think time chosen so that `n_clients / (think + resp) ≈ tps`
    /// at the assumed base response time. Under overload the population
    /// self-limits (the paper's client model).
    ClosedTps {
        /// Target system throughput.
        tps: f64,
        /// Assumed base response time for the think-time calibration.
        assumed_resp_ms: f64,
    },
    /// Open loop with an explicit per-client mean inter-arrival time.
    OpenInterarrival(SimDuration),
    /// Closed loop with an explicit per-client mean think time.
    ClosedThink(SimDuration),
}

/// The assumed base response time `Load::closed_tps` calibrates against
/// (the historical `RunConfig` default).
pub const DEFAULT_ASSUMED_RESP_MS: f64 = 70.0;

impl Load {
    /// Open-loop Poisson arrivals at `tps` across the whole system.
    pub fn open_tps(tps: f64) -> Load {
        Load::OpenTps(tps)
    }

    /// Closed-loop clients calibrated for `tps` across the whole system
    /// (assuming the default base response time).
    pub fn closed_tps(tps: f64) -> Load {
        Load::ClosedTps {
            tps,
            assumed_resp_ms: DEFAULT_ASSUMED_RESP_MS,
        }
    }

    /// Closed-loop clients calibrated for `tps`, assuming a base response
    /// time of `assumed_resp_ms` for the think-time computation.
    pub fn closed_tps_assuming(tps: f64, assumed_resp_ms: f64) -> Load {
        Load::ClosedTps {
            tps,
            assumed_resp_ms,
        }
    }

    /// Open loop with an explicit per-client mean inter-arrival time.
    pub fn open_interarrival(mean: SimDuration) -> Load {
        Load::OpenInterarrival(mean)
    }

    /// Closed loop with an explicit per-client mean think time.
    pub fn closed_think(mean: SimDuration) -> Load {
        Load::ClosedThink(mean)
    }

    /// The system-wide offered rate, when one is implied.
    pub fn offered_tps(&self) -> Option<f64> {
        match *self {
            Load::OpenTps(tps) | Load::ClosedTps { tps, .. } => Some(tps),
            Load::OpenInterarrival(_) | Load::ClosedThink(_) => None,
        }
    }

    /// Resolve to the per-client [`LoadModel`], mirroring the historical
    /// `workload::system_config` arithmetic exactly.
    fn resolve(&self, n_clients: u32) -> Result<LoadModel, BuildError> {
        let n = n_clients.max(1) as f64;
        match *self {
            Load::OpenTps(tps) => {
                if tps.is_nan() || tps <= 0.0 {
                    return Err(BuildError::NonPositiveLoad { tps });
                }
                Ok(LoadModel::Open {
                    mean_interarrival: SimDuration::from_secs_f64(n / tps.max(1e-9)),
                })
            }
            Load::ClosedTps {
                tps,
                assumed_resp_ms,
            } => {
                if tps.is_nan() || tps <= 0.0 {
                    return Err(BuildError::NonPositiveLoad { tps });
                }
                let cycle = n / tps.max(1e-9);
                let think = (cycle - assumed_resp_ms / 1_000.0).max(0.001);
                Ok(LoadModel::Closed {
                    mean_think: SimDuration::from_secs_f64(think),
                })
            }
            Load::OpenInterarrival(mean) => {
                if mean == SimDuration::ZERO {
                    return Err(BuildError::NonPositiveLoad { tps: f64::INFINITY });
                }
                Ok(LoadModel::Open {
                    mean_interarrival: mean,
                })
            }
            Load::ClosedThink(mean) => Ok(LoadModel::Closed { mean_think: mean }),
        }
    }
}

// ---------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------

/// The shape of the transactions the built-in generator produces
/// (Table 4 of the paper by default): `txn_len_min..=txn_len_max`
/// operations, each a write with probability `write_probability`, over
/// `n_items` items with an optional hotspot.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of items in the database.
    pub n_items: u32,
    /// Minimum operations per transaction.
    pub txn_len_min: usize,
    /// Maximum operations per transaction.
    pub txn_len_max: usize,
    /// Probability that an operation is a write.
    pub write_probability: f64,
    /// Fraction of accesses directed at the hot set (0 = uniform).
    pub hot_access_fraction: f64,
    /// Fraction of the database forming the hot set.
    pub hot_set_fraction: f64,
    /// Fraction of generated transactions that are read-only (every
    /// operation a read; the population the read path serves). 0 — the
    /// default — reproduces the historical generator draw-for-draw:
    /// reads then only occur inside mixed transactions per
    /// `write_probability`.
    pub read_fraction: f64,
    /// Fraction of generated *update* transactions that run as
    /// snapshot-isolation transactions: reads served off a consistent
    /// MVCC snapshot, certification first-committer-wins over the write
    /// set only. 0 — the default — draws no extra coin, so the classic
    /// pipeline stays bit-for-bit fingerprint-identical.
    pub txn_fraction: f64,
    /// Minimum operations per snapshot-isolation transaction.
    pub txn_ops_min: usize,
    /// Maximum operations per snapshot-isolation transaction.
    pub txn_ops_max: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec::table4()
    }
}

impl WorkloadSpec {
    /// Table 4's workload: 10 000 items, 10–20 operations, 50 % writes,
    /// plus the mild hotspot calibrated for the paper's abort rate.
    pub fn table4() -> Self {
        WorkloadSpec {
            n_items: 10_000,
            txn_len_min: 10,
            txn_len_max: 20,
            write_probability: 0.5,
            hot_access_fraction: 0.15,
            hot_set_fraction: 0.02,
            read_fraction: 0.0,
            txn_fraction: 0.0,
            txn_ops_min: 10,
            txn_ops_max: 20,
        }
    }

    fn validate(&self) -> Result<(), BuildError> {
        if self.n_items == 0 {
            return Err(BuildError::EmptyDatabase);
        }
        if self.txn_len_min > self.txn_len_max || self.txn_len_max == 0 {
            return Err(BuildError::BadTxnLength {
                min: self.txn_len_min,
                max: self.txn_len_max,
            });
        }
        if self.txn_ops_min > self.txn_ops_max || self.txn_ops_max == 0 {
            return Err(BuildError::BadTxnLength {
                min: self.txn_ops_min,
                max: self.txn_ops_max,
            });
        }
        for (name, p) in [
            ("write_probability", self.write_probability),
            ("hot_access_fraction", self.hot_access_fraction),
            ("hot_set_fraction", self.hot_set_fraction),
            ("read_fraction", self.read_fraction),
            ("txn_fraction", self.txn_fraction),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(BuildError::BadProbability { name, value: p });
            }
        }
        Ok(())
    }

    /// One transaction's operations. The draw order matches the
    /// historical `workload::generate_txn` exactly, so seeded runs
    /// reproduce the old wiring bit-for-bit.
    pub fn generate_txn(&self, rng: &mut StdRng) -> Vec<Operation> {
        // The read-mix coin is drawn only when the knob is set, so the
        // default configuration's draw sequence is untouched (the
        // reads-off ≡ seed equivalence pin depends on it).
        if self.read_fraction > 0.0 && rng.random_bool(self.read_fraction) {
            return self.generate_readonly_txn(rng);
        }
        self.generate_mixed_txn(rng)
    }

    /// One read-only transaction's operations (the population the read
    /// path serves; drawn for a `read_fraction` of transactions).
    pub fn generate_readonly_txn(&self, rng: &mut StdRng) -> Vec<Operation> {
        let len = rng.random_range(self.txn_len_min..=self.txn_len_max);
        (0..len)
            .map(|_| Operation::Read(self.draw_item(rng)))
            .collect()
    }

    /// One transaction plan: the read-mix coin first (matching
    /// [`WorkloadSpec::generate_txn`] draw-for-draw), then — only when
    /// `txn_fraction` is set — the snapshot-isolation coin over the
    /// update population. With both knobs at their defaults this is
    /// `generate_txn` with a classic wrapper: zero extra RNG draws, so
    /// seeded runs stay fingerprint-identical.
    pub fn generate_plan(&self, rng: &mut StdRng) -> TxnPlan {
        if self.read_fraction > 0.0 && rng.random_bool(self.read_fraction) {
            let ops = self.generate_readonly_txn(rng);
            // With snapshot transactions in the mix, read-only
            // transactions ride snapshots too: their reads are served
            // off the multi-version store and leave certification
            // entirely (an empty write set cannot conflict), instead of
            // holding first-writer-wins read entries that any concurrent
            // writer invalidates. With `txn_fraction == 0` the classic
            // read-set-certified plan is preserved bit-for-bit.
            return if self.txn_fraction > 0.0 {
                TxnPlan::snapshot(ops)
            } else {
                TxnPlan::new(ops)
            };
        }
        if self.txn_fraction > 0.0 && rng.random_bool(self.txn_fraction) {
            return TxnPlan::snapshot(self.generate_si_txn(rng));
        }
        TxnPlan::new(self.generate_mixed_txn(rng))
    }

    /// One snapshot-isolation transaction's operations: `txn_ops_min..=
    /// txn_ops_max` operations over the same item distribution as mixed
    /// transactions, forced to contain at least one write (a read-only
    /// snapshot transaction belongs to the read path, not here).
    pub fn generate_si_txn(&self, rng: &mut StdRng) -> Vec<Operation> {
        let len = rng.random_range(self.txn_ops_min..=self.txn_ops_max);
        let mut ops = Vec::with_capacity(len);
        for _ in 0..len {
            let item = self.draw_item(rng);
            if rng.random_bool(self.write_probability) {
                ops.push(Operation::Write(
                    item,
                    rng.random_range(-1_000_000..1_000_000),
                ));
            } else {
                ops.push(Operation::Read(item));
            }
        }
        if !ops.iter().any(|o| o.is_write()) {
            let item = self.draw_item(rng);
            ops.push(Operation::Write(
                item,
                rng.random_range(-1_000_000..1_000_000),
            ));
        }
        ops
    }

    fn generate_mixed_txn(&self, rng: &mut StdRng) -> Vec<Operation> {
        let len = rng.random_range(self.txn_len_min..=self.txn_len_max);
        let mut ops = Vec::with_capacity(len);
        for _ in 0..len {
            let item = self.draw_item(rng);
            if rng.random_bool(self.write_probability) {
                ops.push(Operation::Write(
                    item,
                    rng.random_range(-1_000_000..1_000_000),
                ));
            } else {
                ops.push(Operation::Read(item));
            }
        }
        ops
    }

    fn draw_item(&self, rng: &mut StdRng) -> ItemId {
        let hot_items = ((self.n_items as f64 * self.hot_set_fraction) as u32).max(1);
        if self.hot_access_fraction > 0.0 && rng.random_bool(self.hot_access_fraction) {
            ItemId(rng.random_range(0..hot_items))
        } else {
            ItemId(rng.random_range(0..self.n_items))
        }
    }

    /// A per-client operation generator over this spec.
    pub fn generator(&self) -> OpGenerator {
        let spec = self.clone();
        Box::new(move |rng: &mut StdRng| spec.generate_plan(rng))
    }
}

/// A parsed `GROUPSAFE_TXN` profile: the snapshot-isolation transaction
/// fraction and the optional operations-per-transaction range.
pub type TxnProfile = (f64, Option<(usize, usize)>);

/// The `GROUPSAFE_TXN` environment profile: `<fraction>[:<min>-<max>]`,
/// where `<fraction>` is the workload's snapshot-isolation transaction
/// fraction and the optional `<min>-<max>` the operations-per-transaction
/// range. `off`, the empty string or an unset variable keep the caller's
/// default.
///
/// Used by CI to run the same suites with the SI transaction mix on and
/// off without touching the test sources. Explicit builder setters win
/// over the profile.
///
/// # Errors
/// Any malformed value is a typed [`BuildError::BadEnvProfile`]: a typo
/// must fail the run loudly, not silently run the classic mix (which
/// would make a "transactions on" CI pass vacuous).
pub fn txn_from_env() -> Result<Option<TxnProfile>, BuildError> {
    let bad = |detail: String| {
        Err(BuildError::BadEnvProfile {
            var: "GROUPSAFE_TXN",
            detail,
        })
    };
    let Ok(raw) = std::env::var("GROUPSAFE_TXN") else {
        return Ok(None);
    };
    let raw = raw.trim();
    if raw.is_empty() || raw.eq_ignore_ascii_case("off") {
        return Ok(None);
    }
    let mut parts = raw.splitn(2, ':');
    let fraction = {
        let f = parts.next().unwrap_or("").trim();
        let Ok(parsed) = f.parse::<f64>() else {
            return bad(format!("cannot parse fraction {f:?}"));
        };
        if !(0.0..=1.0).contains(&parsed) {
            return bad(format!("fraction {parsed} outside [0, 1]"));
        }
        parsed
    };
    let ops = match parts.next() {
        None => None,
        Some(range) => {
            let range = range.trim();
            let Some((lo, hi)) = range.split_once('-') else {
                return bad(format!(
                    "cannot parse ops range {range:?} (expected <min>-<max>)"
                ));
            };
            let (Ok(lo), Ok(hi)) = (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) else {
                return bad(format!("cannot parse ops range {range:?}"));
            };
            if lo > hi || hi == 0 {
                return bad(format!("invalid ops range {lo}-{hi}"));
            }
            Some((lo, hi))
        }
    };
    Ok(Some((fraction, ops)))
}

// ---------------------------------------------------------------------
// Faults
// ---------------------------------------------------------------------

/// One scripted fault-schedule entry.
#[derive(Debug, Clone)]
enum FaultEvent {
    Crash { server: NodeId, at: SimTime },
    Recover { server: NodeId, at: SimTime },
    SwitchSafety { level: SafetyLevel, at: SimTime },
}

/// A declarative fault schedule applied when the run starts.
///
/// ```ignore
/// FaultPlan::crash(NodeId(2), SimTime::from_secs(5))
///     .recover(NodeId(2), SimTime::from_secs(9))
///     .switch_safety(SafetyLevel::GroupOneSafe, SimTime::from_secs(12))
/// ```
///
/// Superseded by the richer [`ScenarioPlan`] (partitions, targeted
/// sequencer kills, network bursts, slow-disk windows, operator
/// restarts); kept as convenience sugar for the crash/recover/switch
/// subset. At build time it compiles into scenario steps, so both paths
/// run on the same engine.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan starting with one crash.
    pub fn crash(server: NodeId, at: SimTime) -> Self {
        FaultPlan::none().also_crash(server, at)
    }

    /// Add a crash of `server` at `at`.
    pub fn also_crash(mut self, server: NodeId, at: SimTime) -> Self {
        self.events.push(FaultEvent::Crash { server, at });
        self
    }

    /// Add a recovery of `server` at `at`.
    pub fn recover(mut self, server: NodeId, at: SimTime) -> Self {
        self.events.push(FaultEvent::Recover { server, at });
        self
    }

    /// Switch every server's safety level at `at` (group-safe ↔
    /// group-1-safe, §5.2).
    pub fn switch_safety(mut self, level: SafetyLevel, at: SimTime) -> Self {
        self.events.push(FaultEvent::SwitchSafety { level, at });
        self
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The [`ScenarioPlan`] this fault schedule denotes.
    pub fn to_scenario(&self) -> ScenarioPlan {
        let mut plan = ScenarioPlan::new();
        for ev in &self.events {
            plan = match *ev {
                FaultEvent::Crash { server, at } => plan.crash(at, server.0),
                FaultEvent::Recover { server, at } => plan.recover(at, server.0),
                FaultEvent::SwitchSafety { level, at } => plan.switch_safety(at, level),
            };
        }
        plan
    }

    fn validate(&self, n_servers: u32) -> Result<(), BuildError> {
        for ev in &self.events {
            let server = match ev {
                FaultEvent::Crash { server, .. } | FaultEvent::Recover { server, .. } => *server,
                FaultEvent::SwitchSafety { .. } => continue,
            };
            if server.0 >= n_servers {
                return Err(BuildError::FaultTargetOutOfRange {
                    server: server.0,
                    n_servers,
                });
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a [`SystemBuilder`] refused to build.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// `servers(0)`: a replicated database needs at least one replica.
    NoServers,
    /// No clients at all: nothing would ever be submitted.
    NoClients,
    /// A rate-style [`Load`] with `tps <= 0` (or a zero inter-arrival
    /// time, reported as infinite tps).
    NonPositiveLoad {
        /// The offending rate.
        tps: f64,
    },
    /// `n_items == 0` in the workload spec.
    EmptyDatabase,
    /// Inverted or empty transaction-length range.
    BadTxnLength {
        /// Configured minimum.
        min: usize,
        /// Configured maximum.
        max: usize,
    },
    /// A probability parameter outside `[0, 1]`.
    BadProbability {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A fault plan names a server the system does not have.
    FaultTargetOutOfRange {
        /// The requested server id.
        server: u32,
        /// The system size.
        n_servers: u32,
    },
    /// A scenario step carries an out-of-range parameter.
    BadScenario {
        /// What is wrong.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The shard configuration does not partition the key space.
    Shard(ShardError),
    /// Cross-group transactions need the database state machine (the
    /// lazy baseline has no certification to vote with, and very-safe's
    /// all-logged confirmation round is not defined across groups).
    UnsupportedCrossShard {
        /// The offending technique's label.
        technique: &'static str,
    },
    /// A scenario step names a group the system does not have.
    GroupOutOfRange {
        /// The requested group.
        group: u32,
        /// The system's group count.
        n_groups: u32,
    },
    /// The read-path configuration is not defined for the chosen
    /// technique (the lazy baseline serves reads through its own local
    /// execution; stable reads need a uniform-delivery level whose
    /// endpoint tracks group stability).
    UnsupportedReads {
        /// The offending read path's label.
        path: &'static str,
        /// The technique's label.
        technique: &'static str,
    },
    /// A CI environment profile (`GROUPSAFE_READS`, `GROUPSAFE_BATCHING`)
    /// carries a malformed value. A typo must fail the build loudly —
    /// silently falling back to the default profile would make a
    /// "profile on" CI pass vacuous.
    BadEnvProfile {
        /// The offending environment variable.
        var: &'static str,
        /// What is wrong with its value.
        detail: String,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NoServers => write!(f, "a system needs at least one server"),
            BuildError::NoClients => write!(f, "a system needs at least one client"),
            BuildError::NonPositiveLoad { tps } => {
                write!(f, "offered load must be positive, got {tps} tps")
            }
            BuildError::EmptyDatabase => write!(f, "the database needs at least one item"),
            BuildError::BadTxnLength { min, max } => {
                write!(f, "invalid transaction length range {min}..={max}")
            }
            BuildError::BadProbability { name, value } => {
                write!(f, "{name} must be in [0, 1], got {value}")
            }
            BuildError::FaultTargetOutOfRange { server, n_servers } => {
                write!(
                    f,
                    "fault plan names server {server} but the system has {n_servers}"
                )
            }
            BuildError::BadScenario { what, value } => {
                write!(f, "invalid scenario: {what} (got {value})")
            }
            BuildError::Shard(e) => write!(f, "invalid shard configuration: {e}"),
            BuildError::UnsupportedCrossShard { technique } => {
                write!(
                    f,
                    "cross-group transactions require a DSM technique, not {technique}"
                )
            }
            BuildError::GroupOutOfRange { group, n_groups } => {
                write!(
                    f,
                    "scenario names group {group} but the system has {n_groups}"
                )
            }
            BuildError::UnsupportedReads { path, technique } => {
                write!(
                    f,
                    "the {path} read path is not defined for the {technique} technique"
                )
            }
            BuildError::BadEnvProfile { var, detail } => {
                write!(f, "{var}: {detail}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

// ---------------------------------------------------------------------
// SystemBuilder
// ---------------------------------------------------------------------

/// Factory for per-client operation generators (called once per client
/// with its numeric id).
pub type GeneratorFactory = Box<dyn FnMut(u32) -> OpGenerator>;

/// Fluent configuration of a full replicated-database experiment.
///
/// Obtain one with [`System::builder`]. Defaults reproduce
/// [`SystemConfig::default`] (9 servers × 4 clients, group-safe DSM,
/// Table 4 database and network, seed 42) with a 60 s measurement window
/// and 3 s drain.
pub struct SystemBuilder {
    n_servers: u32,
    clients_per_server: u32,
    replica: ReplicaConfig,
    load: Load,
    client_timeout: SimDuration,
    net: NetConfig,
    seed: u64,
    warmup: SimDuration,
    measure: SimDuration,
    drain: SimDuration,
    workload: WorkloadSpec,
    generator: Option<GeneratorFactory>,
    faults: FaultPlan,
    scenario: ScenarioPlan,
    /// An explicit [`SystemBuilder::batching`] call; takes precedence
    /// over the `GROUPSAFE_BATCHING` env profile and over whatever
    /// `batch` a [`SystemBuilder::replica`] config carries.
    batch_override: Option<BatchConfig>,
    shard: ShardSpec,
    /// True once a shard setter ran; an explicit configuration beats the
    /// `GROUPSAFE_SHARDS` env profile.
    shard_explicit: bool,
    reads: ReadConfig,
    /// True once a read-path setter ran; an explicit configuration beats
    /// the `GROUPSAFE_READS` env profile.
    reads_explicit: bool,
    /// An explicit `read_fraction` call; applied over whatever workload
    /// spec is in force (and over the env profile's optional fraction).
    read_fraction_override: Option<f64>,
    /// An explicit `txn_fraction` call; beats the `GROUPSAFE_TXN` env
    /// profile and whatever the workload spec carries.
    txn_fraction_override: Option<f64>,
    /// An explicit `txn_ops` call (min, max); same precedence.
    txn_ops_override: Option<(usize, usize)>,
    /// An explicit [`SystemBuilder::observe`] call; beats the
    /// `GROUPSAFE_OBS` env profile.
    obs_override: Option<ObsConfig>,
    /// The engine's event-queue backend (timing wheel by default).
    scheduler: Scheduler,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        let base = SystemConfig::default();
        SystemBuilder {
            n_servers: base.n_servers,
            clients_per_server: base.clients_per_server,
            replica: base.replica,
            load: Load::OpenInterarrival(SimDuration::from_millis(1_200)),
            client_timeout: base.client_timeout,
            net: base.net,
            seed: base.seed,
            warmup: SimDuration::ZERO,
            measure: SimDuration::from_secs(60),
            drain: SimDuration::from_secs(3),
            workload: WorkloadSpec::default(),
            generator: None,
            faults: FaultPlan::none(),
            scenario: ScenarioPlan::new(),
            batch_override: None,
            shard: ShardSpec::default(),
            shard_explicit: false,
            reads: ReadConfig::classic(),
            reads_explicit: false,
            read_fraction_override: None,
            txn_fraction_override: None,
            txn_ops_override: None,
            obs_override: None,
            scheduler: Scheduler::default(),
        }
    }
}

impl System {
    /// Start configuring a system fluently.
    pub fn builder() -> SystemBuilder {
        SystemBuilder::default()
    }
}

impl SystemBuilder {
    /// Number of replica servers.
    pub fn servers(mut self, n: u32) -> Self {
        self.n_servers = n;
        self
    }

    /// Clients attached to each server.
    pub fn clients_per_server(mut self, n: u32) -> Self {
        self.clients_per_server = n;
        self
    }

    /// Choose the replication technique by its client-visible safety
    /// level: [`SafetyLevel::OneSafe`] selects the lazy baseline, every
    /// other level the database state machine at that level.
    pub fn safety(mut self, level: SafetyLevel) -> Self {
        self.replica.technique = match level {
            SafetyLevel::OneSafe => Technique::Lazy,
            other => Technique::Dsm(other),
        };
        self
    }

    /// Choose the replication technique explicitly.
    pub fn technique(mut self, technique: Technique) -> Self {
        self.replica.technique = technique;
        self
    }

    /// Batching knobs of the atomic-broadcast pipeline: the sequencer
    /// packs up to `batch.max_msgs` pending broadcasts (flushed after at
    /// most `batch.max_delay`) into one ordered frame, and the replicas
    /// persist and vote per frame instead of per transaction.
    /// [`BatchConfig::unbatched`] (the default) reproduces the classic
    /// per-message pipeline bit-for-bit.
    ///
    /// Precedence at build time: an explicit call here beats the
    /// `GROUPSAFE_BATCHING` env profile, which beats the `batch` carried
    /// by a [`SystemBuilder::replica`] config.
    pub fn batching(mut self, batch: BatchConfig) -> Self {
        self.batch_override = Some(batch);
        self
    }

    /// Shard the database over `n` independent replica groups (hash
    /// routing): [`SystemBuilder::servers`] then counts servers *per
    /// group*, and every group runs its own sequencer, GCS view and
    /// stable logs. `shards(1)` is the classic unsharded system —
    /// bit-for-bit, same fingerprint.
    ///
    /// Precedence: an explicit call here (or to the other shard setters)
    /// beats the `GROUPSAFE_SHARDS`/`GROUPSAFE_CROSS_SHARD` env profile.
    pub fn shards(mut self, n: u32) -> Self {
        self.shard.groups = n;
        self.shard_explicit = true;
        self
    }

    /// Use explicit key ranges instead of hash routing: one
    /// `[start, end)` range per group, jointly covering the whole key
    /// space (gaps, overlaps and empty ranges are build errors).
    /// Implies `shards(ranges.len())`.
    pub fn shard_ranges(mut self, ranges: Vec<(u32, u32)>) -> Self {
        self.shard.groups = ranges.len() as u32;
        self.shard.strategy = ShardStrategy::Ranges(ranges);
        self.shard_explicit = true;
        self
    }

    /// Fraction of built-in-generator transactions that span two groups
    /// (committed via the ordered cross-group protocol). Only meaningful
    /// with `shards(n > 1)`; requires a DSM technique.
    pub fn cross_shard_fraction(mut self, f: f64) -> Self {
        self.shard.cross_fraction = f;
        self.shard_explicit = true;
        self
    }

    /// The full shard specification at once (see [`ShardSpec`]).
    pub fn shard(mut self, spec: ShardSpec) -> Self {
        self.shard = spec;
        self.shard_explicit = true;
        self
    }

    /// How read-only transactions travel (see [`crate::reads`]):
    /// [`ReadPath::Classic`] (the default — reads ride the transaction
    /// pipeline, bit-for-bit the pre-read-path behavior),
    /// [`ReadPath::Broadcast`] (reads are ordered and certified like
    /// updates), or [`ReadPath::Local`] (follower reads at a freshness
    /// level).
    ///
    /// Precedence: an explicit call here (or to
    /// [`SystemBuilder::read_level`] / [`SystemBuilder::reads`]) beats
    /// the `GROUPSAFE_READS` env profile.
    pub fn read_path(mut self, path: ReadPath) -> Self {
        self.reads.path = path;
        self.reads_explicit = true;
        self
    }

    /// Serve read-only transactions locally at any replica of the
    /// owning group, at freshness `level` (sugar for
    /// `read_path(ReadPath::Local(level))`).
    pub fn read_level(self, level: ReadLevel) -> Self {
        self.read_path(ReadPath::Local(level))
    }

    /// The full read-path configuration at once (path + session bounded
    /// wait).
    pub fn reads(mut self, cfg: ReadConfig) -> Self {
        self.reads = cfg;
        self.reads_explicit = true;
        self
    }

    /// Fraction of generated transactions that are read-only (the
    /// read/write mix, first-class: plumbed into the built-in and the
    /// sharded generators). 0 reproduces the historical generator
    /// draw-for-draw. Applied over whatever [`SystemBuilder::workload`]
    /// spec is in force, in either call order.
    pub fn read_fraction(mut self, f: f64) -> Self {
        self.read_fraction_override = Some(f);
        self
    }

    /// Fraction of generated update transactions that run under snapshot
    /// isolation (reads off a consistent MVCC snapshot, certification
    /// first-committer-wins over the write set). 0 reproduces the classic
    /// pipeline draw-for-draw. Applied over whatever
    /// [`SystemBuilder::workload`] spec is in force, in either call
    /// order; beats the `GROUPSAFE_TXN` env profile.
    pub fn txn_fraction(mut self, f: f64) -> Self {
        self.txn_fraction_override = Some(f);
        self
    }

    /// Operations per snapshot-isolation transaction (min..=max), applied
    /// over whatever workload spec is in force.
    pub fn txn_ops(mut self, min: usize, max: usize) -> Self {
        self.txn_ops_override = Some((min, max));
        self
    }

    /// Observability mode of the built engine (see
    /// [`ObsConfig`]): [`ObsConfig::disabled`] for the zero-cost path,
    /// [`ObsConfig::ring`] for the bounded flight recorder (the
    /// default), [`ObsConfig::stream`] for the full structured event
    /// stream the exporters and the phase decomposition consume.
    /// Recording never touches the dispatch fingerprint, the RNG or the
    /// event queue, so every mode replays bit-for-bit identically.
    ///
    /// Precedence: an explicit call here beats the `GROUPSAFE_OBS` env
    /// profile (`off` | `ring[:N]` | `full[:N]`).
    pub fn observe(mut self, obs: ObsConfig) -> Self {
        self.obs_override = Some(obs);
        self
    }

    /// The engine's event-queue backend ([`Scheduler::TimingWheel`] by
    /// default; [`Scheduler::LegacyHeap`] is the reference
    /// implementation the wheel is pinned against).
    pub fn scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The client load model.
    pub fn load(mut self, load: Load) -> Self {
        self.load = load;
        self
    }

    /// Network parameters.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Master seed (drives every random stream in the simulation).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Warm-up window; response samples before its end are discarded.
    pub fn warmup(mut self, d: SimDuration) -> Self {
        self.warmup = d;
        self
    }

    /// Measurement window (after warm-up).
    pub fn measure(mut self, d: SimDuration) -> Self {
        self.measure = d;
        self
    }

    /// Drain window after measurement: clients stop submitting, in-flight
    /// work completes, then convergence is checked.
    pub fn drain(mut self, d: SimDuration) -> Self {
        self.drain = d;
        self
    }

    /// Client request timeout (failover trigger).
    pub fn client_timeout(mut self, d: SimDuration) -> Self {
        self.client_timeout = d;
        self
    }

    /// Replace the whole server configuration.
    pub fn replica(mut self, replica: ReplicaConfig) -> Self {
        self.replica = replica;
        self
    }

    /// Local database configuration (items default to the workload spec's
    /// `n_items` unless set explicitly here).
    pub fn db(mut self, db: DbConfig) -> Self {
        self.replica.db = db;
        self
    }

    /// CPUs per server.
    pub fn cpus(mut self, cpus: usize) -> Self {
        self.replica.cpus = cpus;
        self
    }

    /// Background WAL flush period (the asynchronous-durability window
    /// group-safety exposes on total failure).
    pub fn wal_flush_interval(mut self, d: SimDuration) -> Self {
        self.replica.wal_flush_interval = d;
        self
    }

    /// Lazy propagation batching period (the 1-safe inconsistency
    /// window; only affects [`Technique::Lazy`]).
    pub fn lazy_prop_interval(mut self, d: SimDuration) -> Self {
        self.replica.lazy_prop_interval = d;
        self
    }

    /// Sequential-batch discount of the disk pool (1.0 disables write
    /// caching — the §5.1 ablation).
    pub fn disk_sequential_factor(mut self, factor: f64) -> Self {
        self.replica.disk_sequential_factor = factor;
        self
    }

    /// The transaction shape for the built-in generator.
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.workload = spec;
        self
    }

    /// Replace the built-in generator with a custom per-client factory.
    pub fn generator(mut self, factory: impl FnMut(u32) -> OpGenerator + 'static) -> Self {
        self.generator = Some(Box::new(factory));
        self
    }

    /// The scripted fault schedule (the crash/recover/switch subset;
    /// compiled into the scenario engine at build time).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// The declarative fault-scenario timeline this run replays
    /// ([`ScenarioPlan`]): crashes with scripted recovery, partitions,
    /// targeted sequencer kills, loss/duplication/reorder bursts,
    /// slow-disk windows, operator restarts. Merged after any
    /// [`SystemBuilder::faults`] schedule; repeated calls accumulate.
    pub fn scenario(mut self, plan: ScenarioPlan) -> Self {
        self.scenario = std::mem::take(&mut self.scenario).merge(plan);
        self
    }

    /// The system-wide offered rate this configuration implies, if any.
    pub fn offered_tps(&self) -> Option<f64> {
        self.load.offered_tps()
    }

    /// The shard configuration in force: an explicit setter call, else
    /// the `GROUPSAFE_SHARDS` env profile, else the single-group default.
    fn effective_shard(&self) -> ShardSpec {
        if self.shard_explicit {
            self.shard.clone()
        } else {
            ShardSpec::from_env().unwrap_or_else(|| self.shard.clone())
        }
    }

    /// The observability configuration in force: an explicit
    /// [`SystemBuilder::observe`] call, else the `GROUPSAFE_OBS` env
    /// profile, else the default bounded flight recorder.
    ///
    /// # Errors
    /// [`BuildError::BadEnvProfile`] if `GROUPSAFE_OBS` is set but
    /// malformed — a typo must fail the run loudly, not silently record
    /// nothing.
    fn effective_obs(&self) -> Result<ObsConfig, BuildError> {
        if let Some(cfg) = self.obs_override {
            return Ok(cfg);
        }
        ObsConfig::from_env()
            .map_err(|detail| BuildError::BadEnvProfile {
                var: "GROUPSAFE_OBS",
                detail,
            })
            .map(|opt| opt.unwrap_or_default())
    }

    /// True when the read path is defined for the technique: the lazy
    /// baseline serves reads through its own 2PL execution, and stable
    /// reads need an endpoint that tracks group stability (0-safe's
    /// non-uniform delivery casts no stability votes).
    fn reads_supported(technique: Technique, path: ReadPath) -> bool {
        !matches!(
            (technique, path),
            (Technique::Lazy, ReadPath::Broadcast | ReadPath::Local(_))
                | (
                    Technique::Dsm(SafetyLevel::ZeroSafe),
                    ReadPath::Local(ReadLevel::Stable)
                )
        )
    }

    /// The read configuration in force: an explicit setter call, else
    /// the `GROUPSAFE_READS` env profile, else the classic path. The
    /// env profile reruns whole suites — including lazy and 0-safe
    /// configurations the read path is not defined for — so it degrades
    /// to the classic path there instead of failing the build; an
    /// *explicit* unsupported combination is still a typed error.
    fn effective_reads(&self) -> Result<ReadConfig, BuildError> {
        if self.reads_explicit {
            return Ok(self.reads);
        }
        if let Some((cfg, _)) = reads_from_env()? {
            if Self::reads_supported(self.replica.technique, cfg.path) {
                return Ok(cfg);
            }
            return Ok(ReadConfig::classic());
        }
        // Same precedence as batching: whatever the replica config
        // carries (the classic default).
        Ok(self.replica.reads)
    }

    /// The workload spec in force: the configured spec with the
    /// read-fraction and snapshot-transaction overrides (explicit call,
    /// else the matching env profile) applied — what the built system's
    /// generator will actually draw from.
    ///
    /// # Errors
    /// [`BuildError::BadEnvProfile`] if `GROUPSAFE_READS` or
    /// `GROUPSAFE_TXN` is set but malformed.
    pub fn effective_workload(&self) -> Result<WorkloadSpec, BuildError> {
        let mut w = self.workload.clone();
        if let Some(f) = self.read_fraction_override {
            w.read_fraction = f;
        } else if !self.reads_explicit {
            if let Some((_, Some(f))) = reads_from_env()? {
                w.read_fraction = f;
            }
        }
        // SI transaction mix: explicit setters, else the `GROUPSAFE_TXN`
        // env profile, else the spec's own knobs.
        match (self.txn_fraction_override, txn_from_env()?) {
            (Some(f), _) => w.txn_fraction = f,
            (None, Some((f, ops))) => {
                w.txn_fraction = f;
                if let Some((lo, hi)) = ops {
                    w.txn_ops_min = lo;
                    w.txn_ops_max = hi;
                }
            }
            (None, None) => {}
        }
        if let Some((lo, hi)) = self.txn_ops_override {
            w.txn_ops_min = lo;
            w.txn_ops_max = hi;
        }
        Ok(w)
    }

    fn validate(&self) -> Result<(), BuildError> {
        if self.n_servers == 0 {
            return Err(BuildError::NoServers);
        }
        if self.clients_per_server == 0 {
            return Err(BuildError::NoClients);
        }
        if self.generator.is_none() {
            self.effective_workload()?.validate()?;
        }
        // Explicit (or replica-carried) read configurations the
        // technique does not define are typed errors; the env profile
        // never reaches here (`effective_reads` degrades it).
        let reads = self.effective_reads()?;
        if !Self::reads_supported(self.replica.technique, reads.path) {
            return Err(BuildError::UnsupportedReads {
                path: reads.path.label(),
                technique: self.replica.technique.label(),
            });
        }
        let shard = self.effective_shard();
        if !(0.0..=1.0).contains(&shard.cross_fraction) || shard.cross_fraction.is_nan() {
            return Err(BuildError::BadProbability {
                name: "cross_shard_fraction",
                value: shard.cross_fraction,
            });
        }
        if shard.cross_fraction > 0.0 && shard.groups > 1 {
            match self.replica.technique {
                Technique::Dsm(SafetyLevel::VerySafe) | Technique::Lazy => {
                    return Err(BuildError::UnsupportedCrossShard {
                        technique: self.replica.technique.label(),
                    });
                }
                Technique::Dsm(_) => {}
            }
        }
        let n_items = if self.generator.is_none() {
            self.workload.n_items
        } else {
            self.replica.db.n_items
        };
        shard.resolve(n_items).map_err(BuildError::Shard)?;
        let total_servers = self.n_servers * shard.groups;
        self.faults.validate(total_servers)?;
        self.scenario.validate(total_servers)?;
        self.scenario
            .validate_groups(shard.groups, self.n_servers)?;
        // Resolve eagerly so rate errors surface at build time.
        self.load
            .resolve(total_servers * self.clients_per_server)
            .map(|_| ())
    }

    /// The [`SystemConfig`] this builder denotes — the exact struct the
    /// pre-builder API consumed, kept public so the deprecated shims (and
    /// the equivalence tests) can prove the wiring is unchanged.
    pub fn to_system_config(&self) -> Result<SystemConfig, BuildError> {
        self.validate()?;
        let n_clients = self.n_servers * self.clients_per_server;
        let mut db = self.replica.db.clone();
        if self.generator.is_none() {
            // The built-in generator draws from the workload spec's item
            // space; keep the engine's catalogue in sync with it. Custom
            // generators own their item space via `.db(..)`.
            db.n_items = self.workload.n_items;
        }
        // Read-path precedence mirrors batching: explicit setter, then
        // the `GROUPSAFE_READS` env profile, then the classic default.
        // The local path serves snapshots, so it switches the engines'
        // multi-version store on (bounded; pruned at the group-stable
        // watermark).
        let reads = self.effective_reads()?;
        if reads.is_local() && db.mvcc_depth == 0 {
            db.mvcc_depth = 64;
        }
        // Snapshot-isolation transactions read from the multi-version
        // store too: switch it on whenever the effective mix contains
        // them.
        if self.generator.is_none()
            && db.mvcc_depth == 0
            && self.effective_workload()?.txn_fraction > 0.0
        {
            db.mvcc_depth = 64;
        }
        // Batching precedence: explicit `.batching(..)` call, then the
        // `GROUPSAFE_BATCHING` env profile (the CI hook that runs the
        // same suite batched and unbatched — resolved here, after every
        // setter, so a later `.replica(..)` cannot silently shed it),
        // then whatever the replica config carries.
        let batch = match self.batch_override {
            Some(b) => b,
            None => BatchConfig::from_env()
                .map_err(|detail| BuildError::BadEnvProfile {
                    var: "GROUPSAFE_BATCHING",
                    detail,
                })?
                .unwrap_or(self.replica.batch),
        };
        let shard = self.effective_shard();
        Ok(SystemConfig {
            n_servers: self.n_servers,
            clients_per_server: self.clients_per_server,
            replica: ReplicaConfig {
                db,
                batch,
                reads,
                ..self.replica.clone()
            },
            load: self.load.resolve(n_clients * shard.groups)?,
            client_timeout: self.client_timeout,
            measure_from: SimTime::ZERO + self.warmup,
            net: self.net.clone(),
            shard,
            seed: self.seed,
            obs: self.effective_obs()?,
            scheduler: self.scheduler,
        })
    }

    /// Validate, wire the system, install the fault scenario, and hand
    /// back a [`Run`] ready to [`execute`](Run::execute).
    pub fn build(mut self) -> Result<Run, BuildError> {
        let cfg = self.to_system_config()?;
        let net_baseline = cfg.net.clone();
        let offered_tps = self.load.offered_tps();
        let spec = self.effective_workload()?;
        let system = match self.generator.take() {
            Some(factory) => System::build(cfg, factory),
            None => {
                // Route the built-in generator through the shard map; a
                // single-group map delegates to the spec's own generator,
                // draw-for-draw (the sharded fingerprint-identity
                // invariant).
                let map = std::rc::Rc::new(
                    cfg.shard
                        .resolve(cfg.replica.db.n_items)
                        .map_err(BuildError::Shard)?,
                );
                let cross = cfg.shard.cross_fraction;
                System::build(cfg, move |_| {
                    shard::sharded_generator(&spec, map.clone(), cross)
                })
            }
        };
        let mut run = Run::new(system, self.warmup, self.measure, self.drain, offered_tps);
        // The fault schedule and the scenario timeline compile onto one
        // engine: every step becomes a sim-time hook that fires exactly
        // at its instant, under `execute` and the stepwise API alike.
        let plan = self
            .faults
            .to_scenario()
            .merge(std::mem::take(&mut self.scenario));
        plan.install(&mut run, &net_baseline);
        Ok(run)
    }
}

// ---------------------------------------------------------------------
// Run
// ---------------------------------------------------------------------

type Hook = Box<dyn FnOnce(&mut System)>;

/// A registered sim-time hook. Hooks fire in `(at, idx)` order — by
/// timestamp, ties broken by insertion — which is pinned by test: two
/// hooks sharing an instant must fire in the order they were registered,
/// never in registration order across different instants.
struct ScheduledHook {
    at: SimTime,
    idx: u64,
    label: &'static str,
    run: Hook,
}

/// A wired system plus its run lifecycle: warm-up → measure →
/// stop-clients → drain, with optional mid-run phase hooks.
///
/// [`Run::execute`] performs the whole lifecycle; the stepwise methods
/// ([`Run::start`], [`Run::run_until`], [`Run::stop_clients_at`],
/// [`Run::finish`]) expose the same pieces for scripted scenarios that
/// need manual control between phases. Hooks (including an installed
/// [`ScenarioPlan`]) fire at their instants under both drivers:
/// [`Run::run_until`] executes every hook whose time falls inside the
/// advance.
pub struct Run {
    system: System,
    warmup: SimDuration,
    measure: SimDuration,
    drain: SimDuration,
    offered_tps: Option<f64>,
    hooks: Vec<ScheduledHook>,
    next_hook_idx: u64,
    /// `(label, samples-so-far)` phase boundaries, in time order.
    marks: Vec<(&'static str, usize)>,
    started: bool,
}

impl Run {
    fn new(
        system: System,
        warmup: SimDuration,
        measure: SimDuration,
        drain: SimDuration,
        offered_tps: Option<f64>,
    ) -> Run {
        Run {
            system,
            warmup,
            measure,
            drain,
            offered_tps,
            hooks: Vec::new(),
            next_hook_idx: 0,
            marks: Vec::new(),
            started: false,
        }
    }

    /// Borrow the underlying system.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Mutably borrow the underlying system (escape hatch for scripted
    /// scenarios: partitions, checkpoint installs, ...).
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }

    /// When the measurement window ends (warm-up + measure).
    pub fn measure_end(&self) -> SimTime {
        SimTime::ZERO + self.warmup + self.measure
    }

    /// Register `hook` to fire at `at` (internal form of [`Run::at`];
    /// the scenario engine installs its steps through this).
    pub(crate) fn hook_at(
        &mut self,
        at: SimTime,
        label: &'static str,
        hook: impl FnOnce(&mut System) + 'static,
    ) {
        let idx = self.next_hook_idx;
        self.next_hook_idx += 1;
        self.hooks.push(ScheduledHook {
            at,
            idx,
            label,
            run: Box::new(hook),
        });
    }

    /// Extract the earliest pending hook due at or before `deadline`,
    /// ordered by (timestamp, insertion).
    fn next_due_hook(&mut self, deadline: SimTime) -> Option<ScheduledHook> {
        let pos = self
            .hooks
            .iter()
            .enumerate()
            .filter(|(_, h)| h.at <= deadline)
            .min_by_key(|(_, h)| (h.at, h.idx))
            .map(|(i, _)| i)?;
        Some(self.hooks.swap_remove(pos))
    }

    /// Advance to `deadline`, firing every due hook at its instant.
    fn advance_to(&mut self, deadline: SimTime) {
        while let Some(h) = self.next_due_hook(deadline) {
            self.system.engine.run_until(h.at);
            self.mark_phase(h.label);
            (h.run)(&mut self.system);
        }
        self.system.engine.run_until(deadline);
    }

    /// Register a phase hook: at simulated time `at`, the run pauses the
    /// event loop and hands the system to `hook`. The label names the
    /// phase that *begins* at the hook for the per-phase breakdown in
    /// the report. Hooks sharing a timestamp fire in registration order
    /// (deterministic `(timestamp, insertion)` ordering).
    pub fn at(
        mut self,
        at: SimTime,
        label: &'static str,
        hook: impl FnOnce(&mut System) + 'static,
    ) -> Self {
        self.hook_at(at, label, hook);
        self
    }

    /// Convenience hook: switch every server's safety level at `at`
    /// (group-safe ↔ group-1-safe, §5.2).
    pub fn switch_safety_at(self, at: SimTime, level: SafetyLevel) -> Self {
        let label = match level {
            SafetyLevel::GroupOneSafe => "group-1-safe",
            SafetyLevel::GroupSafe => "group-safe",
            _ => "switched",
        };
        self.at(at, label, move |system| {
            let now = system.engine.now();
            for &s in &system.servers.clone() {
                system
                    .engine
                    .schedule_resilient(now.max(at), s, SwitchSafetyCmd(level));
            }
        })
    }

    /// Start the servers and clients (idempotent; [`Run::execute`] calls
    /// it automatically).
    pub fn start(&mut self) {
        if !self.started {
            self.system.start();
            self.started = true;
        }
    }

    /// Advance simulated time (starting the system first if needed),
    /// firing every registered hook whose instant falls inside the
    /// advance — so scripted scenarios replay identically under the
    /// stepwise API and under [`Run::execute`].
    pub fn run_until(&mut self, t: SimTime) {
        self.start();
        self.advance_to(t);
    }

    /// Record a phase boundary at the current instant for the report's
    /// per-phase breakdown.
    pub fn mark_phase(&mut self, label: &'static str) {
        let samples = self
            .system
            .engine
            .metrics()
            .histogram("response_total_ms")
            .map_or(0, |h| h.count());
        self.marks.push((label, samples));
    }

    /// Stop every client at `t` (outstanding transactions still finish).
    pub fn stop_clients_at(&mut self, t: SimTime) {
        for &c in &self.system.clients.clone() {
            self.system.engine.schedule_resilient(t, c, StopClient);
        }
    }

    /// Run the complete lifecycle and report: warm-up, measurement (with
    /// any phase hooks), stop clients, drain, audit.
    pub fn execute(mut self) -> Report {
        self.start();
        let measure_start = SimTime::ZERO + self.warmup;
        let measure_end = self.measure_end();
        self.run_until(measure_start);
        self.mark_phase("measure");
        self.run_until(measure_end);
        // A hook may legitimately sit past the measurement window: run
        // the stragglers before stopping the clients, and never schedule
        // the stop into the past.
        self.advance_to(self.last_hook_at());
        self.mark_phase("drain");
        let stop_at = measure_end.max(self.system.engine.now());
        self.stop_clients_at(stop_at);
        let drain = self.drain;
        self.run_until(stop_at + drain);
        self.finish()
    }

    /// The latest registered hook instant (or the current time when no
    /// hooks are pending).
    fn last_hook_at(&self) -> SimTime {
        self.hooks
            .iter()
            .map(|h| h.at)
            .max()
            .unwrap_or(SimTime::ZERO)
            .max(self.system.engine.now())
    }

    /// Audit the system as it stands and produce the [`Report`]
    /// (stepwise-API terminal; [`Run::execute`] ends here too).
    pub fn finish(mut self) -> Report {
        // Terminator mark: closes the last open phase.
        self.mark_phase("end");
        let system = &mut self.system;
        let lost_transactions = system.lost_transactions();
        let digests = system.convergence();
        let (abort_rate, aborts, timeouts, acked, lost_updates) = {
            let oracle = system.oracle.borrow();
            (
                oracle.abort_rate(),
                oracle.aborts,
                oracle.timeouts,
                oracle.acked.len(),
                verify::check_lost_updates(&oracle).len(),
            )
        };
        let technique = system.technique().label();
        let fingerprint = system.engine.fingerprint();
        let (gcs, batch_hist) = system.gcs_stats();

        // Read-path accounting: throughput over the measurement window
        // (mirroring `commits`), staleness and redirects over the whole
        // run.
        let measure_secs = self.measure.as_secs_f64().max(1e-9);
        let measure_start = SimTime::ZERO + self.warmup;
        struct GroupReads {
            reads: usize,
            lag_sum: f64,
            lag_n: usize,
            redirects: u64,
        }
        let (reads, read_mean_ms, read_staleness, read_redirects, reads_by_group) = {
            let oracle = system.oracle.borrow();
            let mut n = 0usize;
            let mut ms = 0.0f64;
            let mut per_group: Vec<GroupReads> = (0..system.n_groups.max(1))
                .map(|g| GroupReads {
                    reads: 0,
                    lag_sum: 0.0,
                    lag_n: 0,
                    redirects: oracle.read_redirects_by_group.get(&g).copied().unwrap_or(0),
                })
                .collect();
            for a in &oracle.read_acks {
                if a.at < measure_start {
                    continue;
                }
                n += 1;
                ms += a.response_ms;
                if let Some(slot) = per_group.get_mut(a.group as usize) {
                    slot.reads += 1;
                }
            }
            let mut lag_sum = 0.0f64;
            for r in &oracle.reads {
                let lag = r.applied_seq.saturating_sub(r.snapshot_seq) as f64;
                lag_sum += lag;
                if let Some(slot) = per_group.get_mut(r.group as usize) {
                    slot.lag_sum += lag;
                    slot.lag_n += 1;
                }
            }
            let staleness = if oracle.reads.is_empty() {
                0.0
            } else {
                lag_sum / oracle.reads.len() as f64
            };
            (
                n,
                if n == 0 { 0.0 } else { ms / n as f64 },
                staleness,
                oracle.read_redirects(),
                per_group,
            )
        };

        // Snapshot-isolation accounting: certification outcomes recorded
        // by the delegates at delivery, whole run, split per group.
        let (txn_commits, txn_aborts, si_by_group) = {
            let oracle = system.oracle.borrow();
            let mut per_group = vec![(0usize, 0usize); system.n_groups.max(1) as usize];
            let mut commits = 0usize;
            let mut aborts = 0usize;
            for rec in &oracle.si_txns {
                let slot = per_group.get_mut(rec.group as usize);
                if rec.committed {
                    commits += 1;
                    if let Some(s) = slot {
                        s.0 += 1;
                    }
                } else {
                    aborts += 1;
                    if let Some(s) = slot {
                        s.1 += 1;
                    }
                }
            }
            (commits, aborts, per_group)
        };

        // Per-group breakdown (sharded systems only): acked transactions
        // attributed to their owning group — the coordinator's group for
        // a cross-group commit — plus each group's abcast counters.
        let (groups, cross_group_commits, window_acks) = if system.n_groups > 1 {
            let spg = system.servers_per_group.max(1);
            // Count acknowledgements inside the measurement window only,
            // matching the top-level `commits`/`achieved_tps` (the oracle
            // also records warm-up and drain acks).
            let mut per_group = vec![0usize; system.n_groups as usize];
            let mut cross = 0usize;
            let mut window_acks = 0usize;
            {
                let oracle = system.oracle.borrow();
                for (txn, ack) in &oracle.acked {
                    if ack.at < measure_start {
                        continue;
                    }
                    window_acks += 1;
                    let g = if let Some(xg) = oracle.xg.get(txn) {
                        cross += 1;
                        xg.coordinator_group
                    } else if let Some(c) = oracle.commits.get(txn) {
                        c.delegate.0 / spg
                    } else {
                        continue; // read-only: no durable owner
                    };
                    if let Some(slot) = per_group.get_mut(g as usize) {
                        *slot += 1;
                    }
                }
            }
            let groups = (0..system.n_groups)
                .map(|g| {
                    let (stats, hist) = system.gcs_stats_of(g);
                    let wire = system.net.domain_stats(g);
                    let gr = &reads_by_group[g as usize];
                    GroupStats {
                        group: g,
                        commits: per_group[g as usize],
                        achieved_tps: per_group[g as usize] as f64 / measure_secs,
                        reads: gr.reads,
                        read_tps: gr.reads as f64 / measure_secs,
                        read_redirects: gr.redirects,
                        read_staleness: if gr.lag_n == 0 {
                            0.0
                        } else {
                            gr.lag_sum / gr.lag_n as f64
                        },
                        txn_commits: si_by_group[g as usize].0,
                        txn_aborts: si_by_group[g as usize].1,
                        abcast_batches: stats.batches_sent,
                        mean_batch_size: stats.mean_batch_size(),
                        votes_per_delivery: stats.votes_per_delivery(),
                        batch_hist: hist,
                        wire_sent: wire.sent,
                        wire_broadcasts: wire.broadcasts,
                    }
                })
                .collect();
            (groups, cross, window_acks)
        } else {
            (Vec::new(), 0, 0)
        };

        // Per-phase stats from the sample slices between marks. Samples
        // append in simulated-time order, so index ranges captured at the
        // boundaries segment the run exactly; compute before any quantile
        // call sorts the histogram in place.
        let mut phases = Vec::new();
        {
            let all: Vec<f64> = system
                .engine
                .metrics()
                .histogram("response_total_ms")
                .map_or_else(Vec::new, |h| h.samples().to_vec());
            for w in self.marks.windows(2) {
                let (label, from) = w[0];
                let (_, to) = w[1];
                let slice = &all[from.min(all.len())..to.min(all.len())];
                phases.push(PhaseStats::from_samples(label, slice));
            }
        }

        // Pipeline-phase decomposition from the structured event stream
        // (stream mode only; the ring flight recorder and the disabled
        // mode retain no stream, so the breakdown is empty). One global
        // row, plus one per replica group for sharded systems.
        let obs_phases = {
            let spans = decompose_commits(system.engine.obs().events());
            if spans.is_empty() {
                Vec::new()
            } else {
                let mut rows = vec![ObsPhaseStats::from_spans(None, spans.iter())];
                if system.n_groups > 1 {
                    for g in 0..system.n_groups {
                        rows.push(ObsPhaseStats::from_spans(
                            Some(g),
                            spans.iter().filter(|s| s.group == g),
                        ));
                    }
                }
                rows
            }
        };

        let h = system
            .engine
            .metrics_mut()
            .histogram_mut("response_total_ms");
        let commits = h.count();
        Report {
            technique,
            offered_tps: self.offered_tps,
            achieved_tps: commits as f64 / self.measure.as_secs_f64().max(1e-9),
            commits,
            acked,
            mean_ms: h.mean(),
            p50_ms: h.quantile(0.50),
            p95_ms: h.quantile(0.95),
            p99_ms: h.quantile(0.99),
            abort_rate,
            aborts,
            timeouts,
            lost: lost_transactions.len(),
            lost_transactions,
            distinct_states: digests.len(),
            digests,
            lost_updates,
            abcast_batches: gcs.batches_sent,
            mean_batch_size: gcs.mean_batch_size(),
            votes_per_delivery: gcs.votes_per_delivery(),
            batch_hist,
            cross_group_commits,
            cross_group_ratio: if window_acks > 0 {
                cross_group_commits as f64 / window_acks as f64
            } else {
                0.0
            },
            reads,
            read_tps: reads as f64 / measure_secs,
            read_mean_ms,
            read_redirects,
            read_staleness,
            txn_commits,
            txn_aborts,
            txn_abort_rate: if txn_commits + txn_aborts == 0 {
                0.0
            } else {
                txn_aborts as f64 / (txn_commits + txn_aborts) as f64
            },
            groups,
            phases,
            obs_phases,
            fingerprint,
        }
    }

    /// Consume the run and hand the raw system back (for audits the
    /// report does not cover).
    pub fn into_system(self) -> System {
        self.system
    }
}

// ---------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------

/// Per-replica-group statistics of a sharded run.
#[derive(Debug, Clone)]
pub struct GroupStats {
    /// Group id.
    pub group: u32,
    /// Acknowledged transactions owned by this group (cross-group
    /// commits count for their coordinator's group) inside the
    /// measurement window, like the top-level `commits`.
    pub commits: usize,
    /// `commits` over the measurement window length, tps.
    pub achieved_tps: f64,
    /// Read-only transactions acknowledged from this group inside the
    /// measurement window (all read paths).
    pub reads: usize,
    /// `reads` over the measurement window length, tps.
    pub read_tps: f64,
    /// Session reads this group's replicas answered with a redirect
    /// (whole run).
    pub read_redirects: u64,
    /// Mean `applied − snapshot` gap over this group's locally served
    /// reads, in delivery sequence numbers (whole run).
    pub read_staleness: f64,
    /// Snapshot-isolation transactions certified commit by this group's
    /// delegates (whole run).
    pub txn_commits: usize,
    /// Snapshot-isolation transactions certified abort by this group's
    /// delegates (whole run).
    pub txn_aborts: usize,
    /// Batch frames flushed by this group's sequencers.
    pub abcast_batches: u64,
    /// Mean messages per flushed frame.
    pub mean_batch_size: f64,
    /// Stability votes per delivered entry within the group.
    pub votes_per_delivery: f64,
    /// Batch-size histogram of the group.
    pub batch_hist: Vec<(u32, u64)>,
    /// Point-to-point deliveries sent from this group's domain.
    pub wire_sent: u64,
    /// Multicast operations from this group's domain.
    pub wire_broadcasts: u64,
}

/// Response-time statistics for one phase of a run.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Phase label (`"measure"`, a hook label, `"drain"`, ...).
    pub label: &'static str,
    /// Commit acknowledgements recorded during the phase.
    pub commits: usize,
    /// Mean end-to-end response time, ms.
    pub mean_ms: f64,
    /// 95th-percentile response time, ms.
    pub p95_ms: f64,
}

impl PhaseStats {
    fn from_samples(label: &'static str, samples: &[f64]) -> PhaseStats {
        if samples.is_empty() {
            return PhaseStats {
                label,
                commits: 0,
                mean_ms: 0.0,
                p95_ms: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        // total_cmp: NaN-free total order, no panic path (a NaN sample
        // would sort last instead of poisoning the percentile).
        sorted.sort_by(f64::total_cmp);
        let idx = ((0.95 * sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(sorted.len() - 1);
        PhaseStats {
            label,
            commits: samples.len(),
            mean_ms: samples.iter().sum::<f64>() / samples.len() as f64,
            p95_ms: sorted[idx],
        }
    }
}

/// Mean per-phase latency decomposition of committed transactions,
/// derived from the structured observability stream ([`CommitSpan`];
/// stream mode only). The four phases are consecutive — submit (client
/// send → delegate exec start), exec (local execution), commit
/// (broadcast → reply scheduled: ordering, stability, certification,
/// apply) and reply (reply → client ack) — so the phase means sum
/// exactly to the mean end-to-end latency of the spanned commits.
#[derive(Debug, Clone)]
pub struct ObsPhaseStats {
    /// Replica group the spans belong to (`None` for the global row).
    pub group: Option<u32>,
    /// Commit spans the means are over.
    pub commits: usize,
    /// Mean client-submit → exec-start latency, ms.
    pub submit_ms: f64,
    /// Mean local-execution latency, ms.
    pub exec_ms: f64,
    /// Mean broadcast → reply latency, ms.
    pub commit_ms: f64,
    /// Mean reply → client-ack latency, ms.
    pub reply_ms: f64,
}

impl ObsPhaseStats {
    fn from_spans<'a>(
        group: Option<u32>,
        spans: impl Iterator<Item = &'a CommitSpan>,
    ) -> ObsPhaseStats {
        let (mut n, mut su, mut ex, mut co, mut re) = (0usize, 0.0, 0.0, 0.0, 0.0);
        for s in spans {
            n += 1;
            su += s.submit_ms;
            ex += s.exec_ms;
            co += s.commit_ms;
            re += s.reply_ms;
        }
        let d = n.max(1) as f64;
        ObsPhaseStats {
            group,
            commits: n,
            submit_ms: su / d,
            exec_ms: ex / d,
            commit_ms: co / d,
            reply_ms: re / d,
        }
    }

    /// Mean end-to-end latency of the spanned commits; equals the sum of
    /// the four phase means by construction (each phase ends where the
    /// next begins).
    pub fn total_ms(&self) -> f64 {
        self.submit_ms + self.exec_ms + self.commit_ms + self.reply_ms
    }
}

/// The structured outcome of a [`Run`].
#[derive(Debug, Clone)]
pub struct Report {
    /// Technique label (e.g. `"group-safe"`).
    pub technique: &'static str,
    /// Offered system load, when the [`Load`] implied one.
    pub offered_tps: Option<f64>,
    /// Committed throughput over the measurement window, tps.
    pub achieved_tps: f64,
    /// Commit acknowledgements inside the measurement window (the
    /// response-time sample count).
    pub commits: usize,
    /// All acknowledgements over the whole run (including warm-up).
    pub acked: usize,
    /// Mean end-to-end response time (submission to commit, including
    /// abort resubmissions), ms.
    pub mean_ms: f64,
    /// Median response time, ms.
    pub p50_ms: f64,
    /// 95th-percentile response time, ms.
    pub p95_ms: f64,
    /// 99th-percentile response time, ms.
    pub p99_ms: f64,
    /// Aborted attempts over answered attempts, whole run.
    pub abort_rate: f64,
    /// Total aborted attempts.
    pub aborts: u64,
    /// Client-observed timeouts (failovers).
    pub timeouts: u64,
    /// Acknowledged transactions missing from every live replica.
    pub lost: usize,
    /// The missing transactions themselves.
    pub lost_transactions: Vec<LostTransaction>,
    /// Distinct state digests across live replicas (1 = converged).
    pub distinct_states: usize,
    /// The digests themselves.
    pub digests: Vec<u64>,
    /// Lost updates among acknowledged commits (lazy anomaly, §7).
    pub lost_updates: usize,
    /// Atomic-broadcast batch frames flushed across the group (0 when
    /// batching is off or the technique uses no group communication).
    pub abcast_batches: u64,
    /// Mean messages per flushed batch frame (1.0 unbatched).
    pub mean_batch_size: f64,
    /// Stability-vote messages per delivered entry, both summed per-node
    /// over the whole group — the amortisation batching buys (1.0
    /// unbatched: one vote per node per entry; `≈ 1 / batch` batched).
    pub votes_per_delivery: f64,
    /// Batch-size histogram across the group: (size, frame count).
    pub batch_hist: Vec<(u32, u64)>,
    /// Acknowledged transactions that spanned more than one replica
    /// group, inside the measurement window (0 in unsharded runs).
    pub cross_group_commits: usize,
    /// `cross_group_commits` over the window's acknowledged
    /// transactions.
    pub cross_group_ratio: f64,
    /// Read-only transactions acknowledged inside the measurement
    /// window, over every read path (classic, broadcast and local).
    pub reads: usize,
    /// `reads` over the measurement window length, tps.
    pub read_tps: f64,
    /// Mean response time of the window's read-only transactions, ms.
    pub read_mean_ms: f64,
    /// Session reads a lagging replica answered with a redirect (whole
    /// run; local path only).
    pub read_redirects: u64,
    /// Mean `applied − snapshot` gap over locally served reads, in
    /// delivery sequence numbers (whole run; 0 when every read was
    /// served at the replica's applied head).
    pub read_staleness: f64,
    /// Snapshot-isolation transactions certified commit (whole run; 0
    /// when the mix contains none).
    pub txn_commits: usize,
    /// Snapshot-isolation transactions certified abort (whole run).
    pub txn_aborts: usize,
    /// `txn_aborts` over all certified snapshot-isolation transactions
    /// (0 when the mix contains none).
    pub txn_abort_rate: f64,
    /// Per-group breakdown (empty for unsharded systems — including the
    /// degenerate `shards(1)`, whose report matches the classic one
    /// field-for-field).
    pub groups: Vec<GroupStats>,
    /// Per-phase response-time breakdown.
    pub phases: Vec<PhaseStats>,
    /// Commit-pipeline latency decomposition from the structured
    /// observability stream (empty unless the run recorded in stream
    /// mode): one global row, then one per replica group when sharded.
    pub obs_phases: Vec<ObsPhaseStats>,
    /// The engine's dispatch fingerprint (determinism witness).
    pub fingerprint: u64,
}

impl Report {
    /// Version of the JSON rendering [`Report::to_json`] emits, bumped
    /// whenever a key is added, removed or changes meaning. Emitted as
    /// the object's first key so downstream consumers can dispatch on it
    /// before parsing the rest.
    pub const SCHEMA_VERSION: u32 = 2;

    /// True when nothing acknowledged was lost and all live replicas
    /// agree.
    pub fn is_safe_and_convergent(&self) -> bool {
        self.lost == 0 && self.distinct_states == 1
    }

    /// Render as a JSON object (hand-rolled; the workspace builds
    /// offline, without serde).
    pub fn to_json(&self) -> String {
        fn f(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.4}")
            } else {
                "null".to_string()
            }
        }
        let mut s = String::from("{");
        s.push_str(&format!("\"schema_version\":{},", Report::SCHEMA_VERSION));
        s.push_str(&format!("\"technique\":\"{}\",", self.technique));
        match self.offered_tps {
            Some(t) => s.push_str(&format!("\"offered_tps\":{},", f(t))),
            None => s.push_str("\"offered_tps\":null,"),
        }
        s.push_str(&format!("\"achieved_tps\":{},", f(self.achieved_tps)));
        s.push_str(&format!("\"commits\":{},", self.commits));
        s.push_str(&format!("\"acked\":{},", self.acked));
        s.push_str(&format!("\"mean_ms\":{},", f(self.mean_ms)));
        s.push_str(&format!("\"p50_ms\":{},", f(self.p50_ms)));
        s.push_str(&format!("\"p95_ms\":{},", f(self.p95_ms)));
        s.push_str(&format!("\"p99_ms\":{},", f(self.p99_ms)));
        s.push_str(&format!("\"abort_rate\":{},", f(self.abort_rate)));
        s.push_str(&format!("\"aborts\":{},", self.aborts));
        s.push_str(&format!("\"timeouts\":{},", self.timeouts));
        s.push_str(&format!("\"lost\":{},", self.lost));
        s.push_str(&format!("\"distinct_states\":{},", self.distinct_states));
        s.push_str(&format!("\"lost_updates\":{},", self.lost_updates));
        s.push_str(&format!("\"abcast_batches\":{},", self.abcast_batches));
        s.push_str(&format!("\"mean_batch_size\":{},", f(self.mean_batch_size)));
        s.push_str(&format!(
            "\"votes_per_delivery\":{},",
            f(self.votes_per_delivery)
        ));
        s.push_str("\"batch_hist\":[");
        for (i, (size, count)) in self.batch_hist.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("[{size},{count}]"));
        }
        s.push_str("],");
        s.push_str(&format!(
            "\"cross_group_commits\":{},",
            self.cross_group_commits
        ));
        s.push_str(&format!(
            "\"cross_group_ratio\":{},",
            f(self.cross_group_ratio)
        ));
        s.push_str(&format!("\"reads\":{},", self.reads));
        s.push_str(&format!("\"read_tps\":{},", f(self.read_tps)));
        s.push_str(&format!("\"read_mean_ms\":{},", f(self.read_mean_ms)));
        s.push_str(&format!("\"read_redirects\":{},", self.read_redirects));
        s.push_str(&format!("\"read_staleness\":{},", f(self.read_staleness)));
        s.push_str(&format!("\"txn_commits\":{},", self.txn_commits));
        s.push_str(&format!("\"txn_aborts\":{},", self.txn_aborts));
        s.push_str(&format!("\"txn_abort_rate\":{},", f(self.txn_abort_rate)));
        s.push_str("\"groups\":[");
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"group\":{},\"commits\":{},\"achieved_tps\":{},\
                 \"reads\":{},\"read_tps\":{},\"read_redirects\":{},\
                 \"read_staleness\":{},\
                 \"txn_commits\":{},\"txn_aborts\":{},\
                 \"abcast_batches\":{},\"mean_batch_size\":{},\
                 \"votes_per_delivery\":{},\"wire_sent\":{},\"wire_broadcasts\":{}}}",
                g.group,
                g.commits,
                f(g.achieved_tps),
                g.reads,
                f(g.read_tps),
                g.read_redirects,
                f(g.read_staleness),
                g.txn_commits,
                g.txn_aborts,
                g.abcast_batches,
                f(g.mean_batch_size),
                f(g.votes_per_delivery),
                g.wire_sent,
                g.wire_broadcasts
            ));
        }
        s.push_str("],");
        s.push_str("\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"label\":\"{}\",\"commits\":{},\"mean_ms\":{},\"p95_ms\":{}}}",
                p.label,
                p.commits,
                f(p.mean_ms),
                f(p.p95_ms)
            ));
        }
        s.push_str("],");
        s.push_str("\"obs_phases\":[");
        for (i, p) in self.obs_phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let group = match p.group {
                Some(g) => g.to_string(),
                None => "null".to_string(),
            };
            s.push_str(&format!(
                "{{\"group\":{},\"commits\":{},\"submit_ms\":{},\"exec_ms\":{},\
                 \"commit_ms\":{},\"reply_ms\":{},\"total_ms\":{}}}",
                group,
                p.commits,
                f(p.submit_ms),
                f(p.exec_ms),
                f(p.commit_ms),
                f(p.reply_ms),
                f(p.total_ms())
            ));
        }
        s.push_str("],");
        s.push_str(&format!("\"fingerprint\":\"{:#x}\"", self.fingerprint));
        s.push('}');
        s
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "technique              : {}", self.technique)?;
        if let Some(t) = self.offered_tps {
            writeln!(f, "offered load           : {t:.1} tps")?;
        }
        writeln!(
            f,
            "achieved throughput    : {:.2} tps ({} commits)",
            self.achieved_tps, self.commits
        )?;
        writeln!(
            f,
            "response time          : mean {:.1} ms, p50 {:.1}, p95 {:.1}, p99 {:.1}",
            self.mean_ms, self.p50_ms, self.p95_ms, self.p99_ms
        )?;
        writeln!(
            f,
            "aborts                 : {} ({:.1} % of answered attempts)",
            self.aborts,
            self.abort_rate * 100.0
        )?;
        writeln!(f, "client timeouts        : {}", self.timeouts)?;
        writeln!(f, "lost transactions      : {}", self.lost)?;
        writeln!(
            f,
            "distinct replica states: {} (1 = converged)",
            self.distinct_states
        )?;
        writeln!(f, "lost updates           : {}", self.lost_updates)?;
        if self.abcast_batches > 0 {
            writeln!(
                f,
                "abcast batching        : {} frames, mean {:.1} msgs/frame, {:.2} votes/delivery",
                self.abcast_batches, self.mean_batch_size, self.votes_per_delivery
            )?;
        }
        if self.reads > 0 {
            writeln!(
                f,
                "read-only txns         : {} ({:.1} tps, mean {:.1} ms, {} redirects, \
                 staleness {:.2} seqs)",
                self.reads,
                self.read_tps,
                self.read_mean_ms,
                self.read_redirects,
                self.read_staleness
            )?;
        }
        if self.txn_commits + self.txn_aborts > 0 {
            writeln!(
                f,
                "snapshot txns          : {} committed, {} aborted ({:.1} % abort rate)",
                self.txn_commits,
                self.txn_aborts,
                self.txn_abort_rate * 100.0
            )?;
        }
        if !self.groups.is_empty() {
            writeln!(
                f,
                "cross-group commits    : {} ({:.1} % of acks)",
                self.cross_group_commits,
                self.cross_group_ratio * 100.0
            )?;
            for g in &self.groups {
                writeln!(
                    f,
                    "  group {:<2}             : {} commits ({:.1} tps), {:.2} votes/delivery",
                    g.group, g.commits, g.achieved_tps, g.votes_per_delivery
                )?;
            }
        }
        if self.phases.len() > 1 {
            for p in &self.phases {
                writeln!(
                    f,
                    "  phase {:<14} : {} commits, mean {:.1} ms, p95 {:.1} ms",
                    p.label, p.commits, p.mean_ms, p.p95_ms
                )?;
            }
        }
        if !self.obs_phases.is_empty() {
            writeln!(f, "pipeline decomposition : (mean ms per commit span)")?;
            for p in &self.obs_phases {
                let scope = match p.group {
                    None => "all".to_string(),
                    Some(g) => format!("group {g}"),
                };
                writeln!(
                    f,
                    "  {:<21}: submit {:.2} + exec {:.2} + commit {:.2} + reply {:.2} \
                     = {:.2} ms ({} spans)",
                    scope,
                    p.submit_ms,
                    p.exec_ms,
                    p.commit_ms,
                    p.reply_ms,
                    p.total_ms(),
                    p.commits
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_system_config_default() {
        let cfg = System::builder().to_system_config().expect("valid");
        let base = SystemConfig::default();
        assert_eq!(cfg.n_servers, base.n_servers);
        assert_eq!(cfg.clients_per_server, base.clients_per_server);
        assert_eq!(cfg.seed, base.seed);
        assert_eq!(cfg.client_timeout, base.client_timeout);
        assert_eq!(cfg.measure_from, base.measure_from);
        assert_eq!(cfg.replica.technique, base.replica.technique);
        assert_eq!(cfg.replica.cpus, base.replica.cpus);
        assert_eq!(
            cfg.replica.wal_flush_interval,
            base.replica.wal_flush_interval
        );
        assert_eq!(
            cfg.replica.lazy_prop_interval,
            base.replica.lazy_prop_interval
        );
        match (cfg.load, base.load) {
            (
                LoadModel::Open {
                    mean_interarrival: a,
                },
                LoadModel::Open {
                    mean_interarrival: b,
                },
            ) => assert_eq!(a, b),
            other => panic!("load models differ: {other:?}"),
        }
    }

    #[test]
    fn zero_servers_is_a_typed_error() {
        assert_eq!(
            System::builder().servers(0).build().err(),
            Some(BuildError::NoServers)
        );
    }

    #[test]
    fn zero_clients_is_a_typed_error() {
        assert_eq!(
            System::builder().clients_per_server(0).build().err(),
            Some(BuildError::NoClients)
        );
    }

    #[test]
    fn zero_tps_is_a_typed_error() {
        let err = System::builder()
            .load(Load::open_tps(0.0))
            .build()
            .err()
            .expect("must fail");
        assert!(matches!(err, BuildError::NonPositiveLoad { .. }), "{err}");
        let err = System::builder()
            .load(Load::closed_tps(-3.0))
            .build()
            .err()
            .expect("must fail");
        assert!(matches!(err, BuildError::NonPositiveLoad { .. }), "{err}");
    }

    #[test]
    fn bad_workload_is_a_typed_error() {
        let err = System::builder()
            .workload(WorkloadSpec {
                n_items: 0,
                ..WorkloadSpec::table4()
            })
            .build()
            .err();
        assert_eq!(err, Some(BuildError::EmptyDatabase));
        let err = System::builder()
            .workload(WorkloadSpec {
                txn_len_min: 9,
                txn_len_max: 3,
                ..WorkloadSpec::table4()
            })
            .build()
            .err();
        assert_eq!(err, Some(BuildError::BadTxnLength { min: 9, max: 3 }));
        let err = System::builder()
            .workload(WorkloadSpec {
                write_probability: 1.5,
                ..WorkloadSpec::table4()
            })
            .build()
            .err();
        assert!(matches!(err, Some(BuildError::BadProbability { .. })));
    }

    #[test]
    fn fault_plan_targets_are_validated() {
        let err = System::builder()
            .servers(3)
            .faults(FaultPlan::crash(NodeId(7), SimTime::from_secs(1)))
            .build()
            .err();
        assert_eq!(
            err,
            Some(BuildError::FaultTargetOutOfRange {
                server: 7,
                n_servers: 3
            })
        );
    }

    #[test]
    fn safety_level_selects_the_technique() {
        let b = System::builder().safety(SafetyLevel::OneSafe);
        assert_eq!(b.replica.technique, Technique::Lazy);
        let b = System::builder().safety(SafetyLevel::TwoSafe);
        assert_eq!(b.replica.technique, Technique::Dsm(SafetyLevel::TwoSafe));
    }

    #[test]
    fn small_run_executes_and_reports() {
        let report = System::builder()
            .servers(3)
            .clients_per_server(2)
            .safety(SafetyLevel::GroupSafe)
            .load(Load::open_tps(10.0))
            .warmup(SimDuration::from_secs(1))
            .measure(SimDuration::from_secs(4))
            .drain(SimDuration::from_secs(2))
            .seed(7)
            .build()
            .expect("valid config")
            .execute();
        assert!(report.commits > 10, "commits {}", report.commits);
        assert!(report.is_safe_and_convergent(), "{report}");
        assert!(report.mean_ms > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"technique\":\"group-safe\""), "{json}");
        assert!(json.contains("\"phases\":["), "{json}");
    }

    #[test]
    fn identical_seeds_identical_reports() {
        let run = || {
            System::builder()
                .servers(3)
                .clients_per_server(2)
                .load(Load::open_tps(12.0))
                .measure(SimDuration::from_secs(3))
                .drain(SimDuration::from_secs(1))
                .seed(99)
                .build()
                .expect("valid")
                .execute()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.digests, b.digests);
    }

    #[test]
    fn hooks_after_the_measure_window_do_not_panic() {
        let report = System::builder()
            .servers(3)
            .clients_per_server(1)
            .load(Load::open_tps(8.0))
            .measure(SimDuration::from_secs(2))
            .drain(SimDuration::from_secs(1))
            .seed(5)
            .build()
            .expect("valid")
            // Later than warmup + measure: the lifecycle must push the
            // stop/drain window out instead of scheduling into the past.
            .at(SimTime::from_secs(4), "late", |_| {})
            .execute();
        assert!(report.commits > 0);
        assert_eq!(report.phases.last().expect("phases").label, "drain");
    }

    #[test]
    fn hooks_fire_by_timestamp_then_insertion() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        let log = |tag: &'static str| {
            let order = order.clone();
            move |_: &mut System| order.borrow_mut().push(tag)
        };
        let t1 = SimTime::from_secs(1);
        let t2 = SimTime::from_secs(2);
        // Registered out of time order, with a tie at t2: must fire as
        // (timestamp, then insertion) = late-a, early, late-b.
        let report = System::builder()
            .servers(3)
            .clients_per_server(1)
            .load(Load::open_tps(5.0))
            .measure(SimDuration::from_secs(3))
            .drain(SimDuration::from_secs(1))
            .seed(17)
            .build()
            .expect("valid")
            .at(t2, "late-a", log("late-a"))
            .at(t1, "early", log("early"))
            .at(t2, "late-b", log("late-b"))
            .execute();
        assert_eq!(*order.borrow(), vec!["early", "late-a", "late-b"]);
        assert!(report.commits > 0);
    }

    #[test]
    fn hooks_fire_under_the_stepwise_api_too() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let fired: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        let mark = |tag: &'static str| {
            let fired = fired.clone();
            move |_: &mut System| fired.borrow_mut().push(tag)
        };
        let mut run = System::builder()
            .servers(3)
            .clients_per_server(1)
            .load(Load::open_tps(5.0))
            .measure(SimDuration::from_secs(3))
            .seed(19)
            .build()
            .expect("valid")
            .at(SimTime::from_millis(1_500), "mid", mark("mid"))
            .at(SimTime::from_millis(2_500), "later", mark("later"));
        run.run_until(SimTime::from_secs(1));
        assert!(fired.borrow().is_empty(), "no hook is due yet");
        run.run_until(SimTime::from_secs(2));
        assert_eq!(*fired.borrow(), vec!["mid"], "due hooks fire in run_until");
        run.run_until(SimTime::from_secs(3));
        assert_eq!(*fired.borrow(), vec!["mid", "later"]);
    }

    #[test]
    fn scenario_plan_targets_are_validated() {
        let err = System::builder()
            .servers(3)
            .scenario(crate::scenario::ScenarioPlan::new().crash(SimTime::from_secs(1), 9))
            .build()
            .err();
        assert_eq!(
            err,
            Some(BuildError::FaultTargetOutOfRange {
                server: 9,
                n_servers: 3
            })
        );
        let err = System::builder()
            .servers(3)
            .scenario(crate::scenario::ScenarioPlan::new().loss_burst(
                SimTime::from_secs(1),
                1.5,
                SimDuration::from_millis(100),
            ))
            .build()
            .err();
        assert!(matches!(err, Some(BuildError::BadProbability { .. })));
        let err = System::builder()
            .servers(3)
            .scenario(crate::scenario::ScenarioPlan::new().slow_disk(
                SimTime::from_secs(1),
                vec![0],
                0.0,
                SimDuration::from_millis(100),
            ))
            .build()
            .err();
        assert!(matches!(err, Some(BuildError::BadScenario { .. })));
    }

    #[test]
    fn fault_plan_crash_is_applied() {
        let report = System::builder()
            .servers(3)
            .clients_per_server(2)
            .load(Load::open_tps(10.0))
            .measure(SimDuration::from_secs(5))
            .drain(SimDuration::from_secs(2))
            .faults(FaultPlan::crash(NodeId(1), SimTime::from_secs(2)))
            .seed(3)
            .build()
            .expect("valid")
            .execute();
        // The crashed minority member must not cost safety.
        assert_eq!(report.lost, 0);
        assert_eq!(report.distinct_states, 1, "survivors agree");
        assert!(report.timeouts > 0, "its clients must have failed over");
    }
}
