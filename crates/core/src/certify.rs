//! Deterministic certification (the database state machine's conflict
//! detection, §2.1).
//!
//! At delivery, every replica checks the transaction's read set against
//! the current committed versions: if any item read has since been
//! written by a committed transaction, the reader observed stale data and
//! must abort. The check is a deterministic function of (delivery order,
//! read set), so every replica reaches the same verdict without voting —
//! the defining property of the *non-voting* technique.

use groupsafe_db::{DbEngine, ItemId, Value, Version};

/// Certification verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Certification {
    /// No conflicting committed writer: commit.
    Commit,
    /// The read set is stale: abort. Carries the first conflicting item
    /// (diagnostics).
    Abort {
        /// First item whose committed version exceeds the one read.
        conflict: ItemId,
    },
}

/// Certify `readset` against the engine's committed state.
pub fn certify(engine: &DbEngine, readset: &[(ItemId, Version)]) -> Certification {
    for &(item, version) in readset {
        if engine.item(item).version > version {
            return Certification::Abort { conflict: item };
        }
    }
    Certification::Commit
}

/// Snapshot-isolation certification: first-committer-wins over the
/// *write* set only. A snapshot transaction that read from delivery
/// sequence number `snapshot` aborts iff some item it writes has been
/// committed with a version above that snapshot — a concurrent committed
/// writer won the item. Reads never conflict (they were served from the
/// multi-version store at the snapshot), which is exactly the reduction
/// in aborts snapshot isolation buys over read-set certification.
pub fn certify_snapshot(
    engine: &DbEngine,
    snapshot: Version,
    writes: &[(ItemId, Value)],
) -> Certification {
    for &(item, _) in writes {
        if engine.item(item).version > snapshot {
            return Certification::Abort { conflict: item };
        }
    }
    Certification::Commit
}

/// Pure-function variant used by property tests: certify against an
/// explicit version lookup.
pub fn certify_versions(
    current: impl Fn(ItemId) -> Version,
    readset: &[(ItemId, Version)],
) -> Certification {
    for &(item, version) in readset {
        if current(item) > version {
            return Certification::Abort { conflict: item };
        }
    }
    Certification::Commit
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsafe_db::{DbConfig, FlushPolicy, TxnId, WriteOp};
    use groupsafe_sim::{Disk, Fcfs, SimTime};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn engine() -> DbEngine {
        DbEngine::new(
            DbConfig {
                n_items: 10,
                flush_policy: FlushPolicy::Async,
                ..DbConfig::default()
            },
            Rc::new(RefCell::new(Fcfs::new(2))),
            Rc::new(RefCell::new(Disk::paper_default())),
            Rc::new(RefCell::new(Disk::paper_default())),
            StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn fresh_readset_commits() {
        let e = engine();
        let rs = vec![(ItemId(1), 0), (ItemId(2), 0)];
        assert_eq!(certify(&e, &rs), Certification::Commit);
    }

    #[test]
    fn stale_readset_aborts() {
        let mut e = engine();
        e.commit(
            SimTime::ZERO,
            TxnId { client: 0, seq: 1 },
            &[WriteOp {
                item: ItemId(2),
                value: 7,
                version: 4,
            }],
        );
        // Read version 3 < committed version 4: stale.
        let rs = vec![(ItemId(1), 0), (ItemId(2), 3)];
        assert_eq!(
            certify(&e, &rs),
            Certification::Abort {
                conflict: ItemId(2)
            }
        );
        // Reading the current version is fine.
        let rs = vec![(ItemId(2), 4)];
        assert_eq!(certify(&e, &rs), Certification::Commit);
    }

    #[test]
    fn pure_variant_matches() {
        let rs = vec![(ItemId(0), 2), (ItemId(1), 5)];
        let verdict = certify_versions(|i| if i == ItemId(1) { 6 } else { 0 }, &rs);
        assert_eq!(
            verdict,
            Certification::Abort {
                conflict: ItemId(1)
            }
        );
        let verdict = certify_versions(|_| 0, &rs);
        assert_eq!(verdict, Certification::Commit);
    }

    #[test]
    fn empty_readset_always_commits() {
        let e = engine();
        assert_eq!(certify(&e, &[]), Certification::Commit);
    }

    #[test]
    fn snapshot_certification_is_first_committer_wins_on_writes() {
        let mut e = engine();
        e.commit(
            SimTime::ZERO,
            TxnId { client: 0, seq: 1 },
            &[WriteOp {
                item: ItemId(3),
                value: 7,
                version: 6,
            }],
        );
        // Snapshot 4 predates the committed writer at version 6: the
        // write-write conflict aborts.
        assert_eq!(
            certify_snapshot(&e, 4, &[(ItemId(3), 1)]),
            Certification::Abort {
                conflict: ItemId(3)
            }
        );
        // A snapshot at (or above) the committed version wins the item.
        assert_eq!(
            certify_snapshot(&e, 6, &[(ItemId(3), 1)]),
            Certification::Commit
        );
        // Items nobody re-wrote never conflict, whatever the snapshot.
        assert_eq!(
            certify_snapshot(&e, 0, &[(ItemId(1), 5)]),
            Certification::Commit
        );
    }

    #[test]
    fn snapshot_certification_ignores_reads() {
        let mut e = engine();
        e.commit(
            SimTime::ZERO,
            TxnId { client: 0, seq: 2 },
            &[WriteOp {
                item: ItemId(2),
                value: 9,
                version: 8,
            }],
        );
        // Read-set certification would abort this interval; the snapshot
        // rule does not (the transaction writes nothing that moved).
        assert_eq!(
            certify(&e, &[(ItemId(2), 3)]),
            Certification::Abort {
                conflict: ItemId(2)
            }
        );
        assert_eq!(certify_snapshot(&e, 3, &[]), Certification::Commit);
        assert_eq!(
            certify_snapshot(&e, 3, &[(ItemId(1), 0)]),
            Certification::Commit
        );
    }
}
