//! The paper's safety criteria (§2.1, §5) and their taxonomy
//! (Tables 1–3).
//!
//! A safety criterion fixes *what the client's commit notification means*:
//! on how many replicas the transaction's message is guaranteed
//! **delivered**, and on how many the transaction is guaranteed **logged**
//! (and hence will eventually commit).

use std::fmt;

/// The safety levels of Table 1, ordered by strength of the durability
/// guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SafetyLevel {
    /// Delivered on one replica, logged nowhere. A single crash can lose
    /// the transaction.
    ZeroSafe,
    /// Delivered and logged on the delegate only (classic lazy
    /// replication). A single crash (of the delegate) can lose it.
    OneSafe,
    /// Delivered on all available replicas, logged on none (the paper's
    /// new criterion). Lost only if the whole group fails.
    GroupSafe,
    /// Delivered on all available replicas *and* logged on the delegate.
    /// Lost only if the group fails and the delegate's log is never
    /// recovered.
    GroupOneSafe,
    /// Logged on all available replicas (requires end-to-end atomic
    /// broadcast). Survives the crash of all n replicas.
    TwoSafe,
    /// Logged on all replicas, available or not. A single crash blocks
    /// commits (kept for completeness; "not very practical" — §2.1).
    VerySafe,
}

impl SafetyLevel {
    /// Table 1's vertical axis: replicas guaranteed to have *delivered*
    /// the transaction's message when the client is notified.
    pub fn delivered_on(self) -> Guarantee {
        match self {
            SafetyLevel::ZeroSafe | SafetyLevel::OneSafe => Guarantee::OneReplica,
            _ => Guarantee::AllReplicas,
        }
    }

    /// Table 1's horizontal axis: replicas guaranteed to have *logged*
    /// the transaction when the client is notified.
    pub fn logged_on(self) -> Guarantee {
        match self {
            SafetyLevel::ZeroSafe | SafetyLevel::GroupSafe => Guarantee::NoReplica,
            SafetyLevel::OneSafe | SafetyLevel::GroupOneSafe => Guarantee::OneReplica,
            SafetyLevel::TwoSafe | SafetyLevel::VerySafe => Guarantee::AllReplicas,
        }
    }

    /// Table 2: the number of simultaneous crashes (out of `n`) the level
    /// tolerates without losing an acknowledged transaction.
    ///
    /// Convention for `n = 0`: a system with no replicas tolerates no
    /// crashes at any level — the group rows saturate to 0 instead of
    /// underflowing.
    pub fn tolerated_crashes(self, n: usize) -> usize {
        match self {
            SafetyLevel::ZeroSafe | SafetyLevel::OneSafe => 0,
            SafetyLevel::GroupSafe | SafetyLevel::GroupOneSafe => n.saturating_sub(1),
            SafetyLevel::TwoSafe | SafetyLevel::VerySafe => n,
        }
    }

    /// Table 3: can an acknowledged transaction be lost under the given
    /// failure pattern? (`group_fails` = all replicas crash before the
    /// transaction is logged anywhere; `delegate_crashes` = the delegate
    /// is among them and never recovers its log.)
    pub fn can_lose(self, group_fails: bool, delegate_crashes: bool) -> bool {
        match self {
            SafetyLevel::ZeroSafe => true,
            SafetyLevel::OneSafe => delegate_crashes,
            SafetyLevel::GroupSafe => group_fails,
            SafetyLevel::GroupOneSafe => group_fails && delegate_crashes,
            SafetyLevel::TwoSafe | SafetyLevel::VerySafe => false,
        }
    }

    /// Whether the client reply may be sent before any disk write
    /// (what makes group-safe fast, §5.1).
    pub fn reply_before_logging(self) -> bool {
        matches!(self, SafetyLevel::ZeroSafe | SafetyLevel::GroupSafe)
    }
}

impl fmt::Display for SafetyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SafetyLevel::ZeroSafe => "0-safe",
            SafetyLevel::OneSafe => "1-safe",
            SafetyLevel::GroupSafe => "group-safe",
            SafetyLevel::GroupOneSafe => "group-1-safe",
            SafetyLevel::TwoSafe => "2-safe",
            SafetyLevel::VerySafe => "very-safe",
        };
        f.write_str(s)
    }
}

/// "On how many replicas" a guarantee holds (the axes of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guarantee {
    /// No replica.
    NoReplica,
    /// Exactly one replica (the delegate).
    OneReplica,
    /// Every available replica.
    AllReplicas,
}

/// Reconstruct Table 1: which safety level sits at a given
/// (delivered, logged) cell. Returns `None` for the impossible cell
/// (logged on all but delivered on one is greyed out in the paper).
pub fn table1(delivered: Guarantee, logged: Guarantee) -> Option<SafetyLevel> {
    match (delivered, logged) {
        (Guarantee::OneReplica, Guarantee::NoReplica) => Some(SafetyLevel::ZeroSafe),
        (Guarantee::OneReplica, Guarantee::OneReplica) => Some(SafetyLevel::OneSafe),
        (Guarantee::AllReplicas, Guarantee::NoReplica) => Some(SafetyLevel::GroupSafe),
        (Guarantee::AllReplicas, Guarantee::OneReplica) => Some(SafetyLevel::GroupOneSafe),
        (Guarantee::AllReplicas, Guarantee::AllReplicas) => Some(SafetyLevel::TwoSafe),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_cells_match_paper() {
        use Guarantee::*;
        assert_eq!(table1(OneReplica, NoReplica), Some(SafetyLevel::ZeroSafe));
        assert_eq!(table1(OneReplica, OneReplica), Some(SafetyLevel::OneSafe));
        assert_eq!(table1(AllReplicas, NoReplica), Some(SafetyLevel::GroupSafe));
        assert_eq!(
            table1(AllReplicas, OneReplica),
            Some(SafetyLevel::GroupOneSafe)
        );
        assert_eq!(table1(AllReplicas, AllReplicas), Some(SafetyLevel::TwoSafe));
        // Greyed-out cell: a transaction cannot be logged before delivery.
        assert_eq!(table1(OneReplica, AllReplicas), None);
    }

    #[test]
    fn table2_crash_tolerance() {
        let n = 9;
        assert_eq!(SafetyLevel::ZeroSafe.tolerated_crashes(n), 0);
        assert_eq!(SafetyLevel::OneSafe.tolerated_crashes(n), 0);
        assert_eq!(SafetyLevel::GroupSafe.tolerated_crashes(n), 8);
        assert_eq!(SafetyLevel::GroupOneSafe.tolerated_crashes(n), 8);
        assert_eq!(SafetyLevel::TwoSafe.tolerated_crashes(n), 9);
    }

    #[test]
    fn table2_degenerate_group_sizes_do_not_underflow() {
        use SafetyLevel::*;
        for level in [
            ZeroSafe,
            OneSafe,
            GroupSafe,
            GroupOneSafe,
            TwoSafe,
            VerySafe,
        ] {
            assert_eq!(level.tolerated_crashes(0), 0, "{level}: n = 0 saturates");
        }
        assert_eq!(GroupSafe.tolerated_crashes(1), 0);
        assert_eq!(TwoSafe.tolerated_crashes(1), 1);
    }

    #[test]
    fn table3_loss_matrix() {
        use SafetyLevel::*;
        // Group does not fail: neither group level loses anything.
        assert!(!GroupSafe.can_lose(false, false));
        assert!(!GroupOneSafe.can_lose(false, true));
        // Group fails, delegate survives: only group-safe is exposed.
        assert!(GroupSafe.can_lose(true, false));
        assert!(!GroupOneSafe.can_lose(true, false));
        // Group fails including the delegate: both exposed.
        assert!(GroupSafe.can_lose(true, true));
        assert!(GroupOneSafe.can_lose(true, true));
        // 2-safe never loses.
        assert!(!TwoSafe.can_lose(true, true));
        // 1-safe loses exactly when the delegate crashes.
        assert!(OneSafe.can_lose(false, true));
        assert!(!OneSafe.can_lose(false, false));
    }

    #[test]
    fn reply_points() {
        assert!(SafetyLevel::GroupSafe.reply_before_logging());
        assert!(SafetyLevel::ZeroSafe.reply_before_logging());
        assert!(!SafetyLevel::GroupOneSafe.reply_before_logging());
        assert!(!SafetyLevel::TwoSafe.reply_before_logging());
    }

    #[test]
    fn ordering_reflects_strength() {
        assert!(SafetyLevel::ZeroSafe < SafetyLevel::OneSafe);
        assert!(SafetyLevel::OneSafe < SafetyLevel::GroupSafe);
        assert!(SafetyLevel::GroupSafe < SafetyLevel::GroupOneSafe);
        assert!(SafetyLevel::GroupOneSafe < SafetyLevel::TwoSafe);
        assert!(SafetyLevel::TwoSafe < SafetyLevel::VerySafe);
    }
}
