//! The local read path: safety-level-aware follower reads.
//!
//! Every update transaction pays the group's atomic-broadcast round, but
//! a read-only transaction has no durability footprint — serving it
//! *locally* at any replica is the classic deferred-update optimisation
//! and the biggest throughput lever the system has (coordination
//! avoidance: an invariant-safe read needs no ordering). The price is
//! freshness, and the paper's safety spectrum names the exact lines a
//! read can be served at:
//!
//! * [`ReadLevel::Stable`] — serve only state at or below the
//!   **group-stable watermark** exported by the group communication
//!   layer ([`GcsEndpoint::stable_watermark`]): every observed value is
//!   held by a majority of the group, so no failure the safety level
//!   tolerates can un-commit it. A stable read never observes a value
//!   that the claimed level's loss rules would later allow to disappear
//!   (whole-group failure excepted — exactly the case the level itself
//!   excuses).
//! * [`ReadLevel::Session`] — the client carries a per-group **session
//!   token** (the highest commit sequence number it has written or
//!   read); a replica serves the read once its applied state has caught
//!   up to the token, giving read-your-writes and monotonic reads. A
//!   replica that stays behind the token past a bounded wait answers
//!   with a redirect carrying its applied sequence number, and the
//!   client retries at another group member.
//! * [`ReadLevel::Latest`] — the freshest state the serving replica has
//!   applied, with no cross-replica guarantee (the delegate-local
//!   semantics the classic path always had, now available at any
//!   follower).
//!
//! [`ReadPath`] selects how read-only transactions travel:
//! [`ReadPath::Classic`] (the pre-read-path behavior: reads ride the
//! normal transaction pipeline and commit locally at their delegate),
//! [`ReadPath::Broadcast`] (reads are atomically broadcast and certified
//! like updates — the strongest, strictly serializable semantics and the
//! bench baseline the local path is measured against), and
//! [`ReadPath::Local`] (the follower-read subsystem of this module).
//!
//! The replica serves local reads from a bounded multi-version store in
//! the database engine (versions keyed by delivery sequence number,
//! pruned at the stable watermark — see `groupsafe_db::DbEngine`), so a
//! snapshot read never blocks write application.
//!
//! [`audit_reads`] is the read-freshness oracle: it replays the recorded
//! reads against the invariants each level promises and returns the
//! violations ([`ReadViolation`]). The scenario oracle
//! ([`crate::audit_scenario`]) folds these into its per-level verdict.
//!
//! [`GcsEndpoint::stable_watermark`]: groupsafe_gcs::GcsEndpoint::stable_watermark

use groupsafe_db::{ItemId, TxnId, Value, Version};
use groupsafe_net::NodeId;
use groupsafe_sim::SimDuration;

use crate::builder::BuildError;
use crate::verify::{LostTransaction, Oracle};

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Freshness level of a locally served read (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReadLevel {
    /// Serve only state at or below the group-stable watermark.
    Stable,
    /// Serve once caught up to the client's per-group session token
    /// (read-your-writes + monotonic reads), redirecting after a bounded
    /// wait.
    Session,
    /// Serve the replica's freshest applied state.
    Latest,
}

impl ReadLevel {
    /// Short label for reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            ReadLevel::Stable => "stable",
            ReadLevel::Session => "session",
            ReadLevel::Latest => "latest",
        }
    }
}

impl std::fmt::Display for ReadLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How read-only transactions travel through the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPath {
    /// The pre-read-path pipeline: a read-only transaction executes at
    /// its delegate and commits locally without interaction (bit-for-bit
    /// the seed behavior; the default).
    Classic,
    /// Read-only transactions are atomically broadcast and certified at
    /// delivery like updates: strictly serializable reads that pay the
    /// full ordering round (the baseline the `reads` bench measures the
    /// local path against).
    Broadcast,
    /// Serve read-only transactions locally at any replica of the owning
    /// group, at the given freshness level — no broadcast.
    Local(ReadLevel),
}

impl ReadPath {
    /// Short label for reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            ReadPath::Classic => "classic",
            ReadPath::Broadcast => "broadcast",
            ReadPath::Local(ReadLevel::Stable) => "local-stable",
            ReadPath::Local(ReadLevel::Session) => "local-session",
            ReadPath::Local(ReadLevel::Latest) => "local-latest",
        }
    }
}

/// Configuration of the read path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadConfig {
    /// How read-only transactions travel.
    pub path: ReadPath,
    /// How long a replica parks a [`ReadLevel::Session`] read while its
    /// applied state is behind the client's token before answering with
    /// a redirect.
    pub max_wait: SimDuration,
}

impl Default for ReadConfig {
    fn default() -> Self {
        ReadConfig::classic()
    }
}

impl ReadConfig {
    /// The seed behavior: reads ride the classic transaction pipeline.
    pub fn classic() -> Self {
        ReadConfig {
            path: ReadPath::Classic,
            max_wait: SimDuration::from_millis(50),
        }
    }

    /// Follower reads at `level` with the default bounded wait.
    pub fn local(level: ReadLevel) -> Self {
        ReadConfig {
            path: ReadPath::Local(level),
            ..ReadConfig::classic()
        }
    }

    /// Broadcast (strictly serializable) reads — the bench baseline.
    pub fn broadcast() -> Self {
        ReadConfig {
            path: ReadPath::Broadcast,
            ..ReadConfig::classic()
        }
    }

    /// True when the local read path is in force.
    pub fn is_local(&self) -> bool {
        matches!(self.path, ReadPath::Local(_))
    }
}

/// The `GROUPSAFE_READS` environment profile: `<path>[:<fraction>]`,
/// where `<path>` is `classic`, `broadcast`, `stable`, `session` or
/// `latest` and the optional `<fraction>` is the workload's read-only
/// transaction fraction. `off`, the empty string or an unset variable
/// keep the caller's default.
///
/// Used by CI to run the same suites with the read path on and off
/// without touching the test sources. Explicit builder setters win over
/// the profile.
///
/// # Errors
/// Any malformed value is a typed [`BuildError::BadEnvProfile`]: a typo
/// must fail the run loudly, not silently select the classic path
/// (which would make a "reads on" CI pass vacuous).
pub fn reads_from_env() -> Result<Option<(ReadConfig, Option<f64>)>, BuildError> {
    let bad = |detail: String| {
        Err(BuildError::BadEnvProfile {
            var: "GROUPSAFE_READS",
            detail,
        })
    };
    let Ok(raw) = std::env::var("GROUPSAFE_READS") else {
        return Ok(None);
    };
    let raw = raw.trim();
    if raw.is_empty() || raw.eq_ignore_ascii_case("off") {
        return Ok(None);
    }
    let mut parts = raw.splitn(2, ':');
    let path = match parts
        .next()
        .unwrap_or("")
        .trim()
        .to_ascii_lowercase()
        .as_str()
    {
        "classic" => ReadPath::Classic,
        "broadcast" => ReadPath::Broadcast,
        "stable" => ReadPath::Local(ReadLevel::Stable),
        "session" => ReadPath::Local(ReadLevel::Session),
        "latest" => ReadPath::Local(ReadLevel::Latest),
        other => {
            return bad(format!(
                "unknown read path {other:?} (expected \
                 off | classic | broadcast | stable | session | latest, got {raw:?})"
            ))
        }
    };
    let fraction = match parts.next() {
        None => None,
        Some(f) => {
            let Ok(parsed) = f.trim().parse::<f64>() else {
                return bad(format!("cannot parse fraction {f:?}"));
            };
            if !(0.0..=1.0).contains(&parsed) {
                return bad(format!("fraction {parsed} outside [0, 1]"));
            }
            Some(parsed)
        }
    };
    Ok(Some((
        ReadConfig {
            path,
            ..ReadConfig::classic()
        },
        fraction,
    )))
}

// ---------------------------------------------------------------------
// Protocol messages
// ---------------------------------------------------------------------

/// A read-only transaction submitted on the local read path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadRequest {
    /// Stable identity (kept across resubmissions and redirects).
    pub id: TxnId,
    /// The items to read.
    pub items: Vec<ItemId>,
    /// Where to send the reply.
    pub client: NodeId,
    /// Freshness level requested.
    pub level: ReadLevel,
    /// Session token: the lowest applied sequence number of the target
    /// group the serving replica must have reached ([`ReadLevel::Session`];
    /// 0 otherwise).
    pub token: u64,
    /// Resubmission attempt number (0 = first try).
    pub attempt: u32,
}

/// Server → client answer to a [`ReadRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadReply {
    /// The read was served at `snapshot_seq`.
    Served {
        /// Transaction id.
        txn: TxnId,
        /// Attempt being answered.
        attempt: u32,
        /// The serving replica's group.
        group: u32,
        /// The delivery sequence number the snapshot corresponds to
        /// (the serving replica's applied head for `Session`/`Latest`,
        /// the stable watermark for `Stable`).
        snapshot_seq: u64,
        /// The values observed, with their committed versions.
        values: Vec<(ItemId, Value, Version)>,
    },
    /// The replica could not serve within the bounded wait (its applied
    /// state is behind the session token): try another group member.
    Redirect {
        /// Transaction id.
        txn: TxnId,
        /// Attempt being answered.
        attempt: u32,
        /// The serving replica's group.
        group: u32,
        /// How far the replica had applied when it gave up (diagnostic;
        /// lets the client observe the lag it is redirecting around).
        applied_seq: u64,
    },
}

// ---------------------------------------------------------------------
// The read-freshness oracle
// ---------------------------------------------------------------------

/// A violation of the read path's per-level freshness invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadViolation {
    /// A [`ReadLevel::Session`] read was served below its token: the
    /// session saw state older than its own writes or earlier reads.
    StaleSessionRead {
        /// The read transaction.
        txn: TxnId,
        /// The serving group.
        group: u32,
        /// The token the client carried.
        token: u64,
        /// The (too old) snapshot it was served at.
        snapshot_seq: u64,
    },
    /// A session observed snapshots moving backwards within one group
    /// (monotonic-reads violation in client-acknowledgement order).
    SessionRegression {
        /// The session (client id).
        client: u32,
        /// The group read from.
        group: u32,
        /// The read that went backwards.
        txn: TxnId,
        /// The snapshot a previous read of the session already saw.
        prev_seq: u64,
        /// The older snapshot this read returned.
        snapshot_seq: u64,
    },
    /// A [`ReadLevel::Stable`] read was served above the group-stable
    /// watermark the serving replica exported.
    UnstableRead {
        /// The read transaction.
        txn: TxnId,
        /// The serving group.
        group: u32,
        /// The snapshot served.
        snapshot_seq: u64,
        /// The watermark at serve time.
        stable_seq: u64,
    },
    /// A read returned an item version newer than the snapshot it
    /// claimed (the snapshot was not actually consistent).
    ValueAboveSnapshot {
        /// The read transaction.
        txn: TxnId,
        /// The offending item.
        item: ItemId,
        /// The too-new version observed.
        version: Version,
        /// The snapshot the read claimed.
        snapshot_seq: u64,
    },
    /// A [`ReadLevel::Stable`] read observed a value whose transaction
    /// the loss audit later declared lost — the read leaked state that
    /// durability never covered, in a situation the level's own loss
    /// rules do not excuse.
    LostValueObserved {
        /// The read transaction.
        txn: TxnId,
        /// The item whose value leaked.
        item: ItemId,
        /// The observed version.
        version: Version,
        /// The lost transaction that wrote it.
        lost_txn: TxnId,
    },
}

impl std::fmt::Display for ReadViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadViolation::StaleSessionRead {
                txn,
                group,
                token,
                snapshot_seq,
            } => write!(
                f,
                "session read {txn:?} in group {group} served at seq {snapshot_seq} \
                 below its token {token}"
            ),
            ReadViolation::SessionRegression {
                client,
                group,
                txn,
                prev_seq,
                snapshot_seq,
            } => write!(
                f,
                "session {client} went backwards in group {group}: read {txn:?} \
                 returned seq {snapshot_seq} after the session already saw {prev_seq}"
            ),
            ReadViolation::UnstableRead {
                txn,
                group,
                snapshot_seq,
                stable_seq,
            } => write!(
                f,
                "stable read {txn:?} in group {group} served at seq {snapshot_seq} \
                 above the stable watermark {stable_seq}"
            ),
            ReadViolation::ValueAboveSnapshot {
                txn,
                item,
                version,
                snapshot_seq,
            } => write!(
                f,
                "read {txn:?} observed {item:?} at version {version} beyond its \
                 claimed snapshot {snapshot_seq}"
            ),
            ReadViolation::LostValueObserved {
                txn,
                item,
                version,
                lost_txn,
            } => write!(
                f,
                "stable read {txn:?} observed {item:?}@{version} written by \
                 {lost_txn:?}, which was later lost"
            ),
        }
    }
}

/// Audit every recorded read against its level's freshness invariants.
///
/// `lost` is the post-run loss audit's output ([`crate::check_no_loss`])
/// and `group_excused(g)` reports whether group `g` suffered the
/// whole-group failure its loss rules excuse (a stable read of a value
/// that only a total group failure could lose is not a read-path bug —
/// it is the level's own documented window).
pub fn audit_reads(
    oracle: &Oracle,
    lost: &[LostTransaction],
    group_excused: &dyn Fn(u32) -> bool,
) -> Vec<ReadViolation> {
    let mut violations = Vec::new();

    // (item, version) → lost transaction, for the stable-durability rule.
    let mut lost_writes: std::collections::BTreeMap<(ItemId, Version), TxnId> =
        std::collections::BTreeMap::new();
    for lt in lost {
        if let Some(c) = oracle.commits.get(&lt.txn) {
            for w in &c.writes {
                lost_writes.insert((w.item, w.version), lt.txn);
            }
        }
    }

    // Server-side records: per-read invariants at serve time.
    for r in &oracle.reads {
        if r.level == ReadLevel::Session && r.snapshot_seq < r.token {
            violations.push(ReadViolation::StaleSessionRead {
                txn: r.txn,
                group: r.group,
                token: r.token,
                snapshot_seq: r.snapshot_seq,
            });
        }
        if r.level == ReadLevel::Stable && r.snapshot_seq > r.stable_seq {
            violations.push(ReadViolation::UnstableRead {
                txn: r.txn,
                group: r.group,
                snapshot_seq: r.snapshot_seq,
                stable_seq: r.stable_seq,
            });
        }
        for &(item, version) in &r.items {
            if version > r.snapshot_seq {
                violations.push(ReadViolation::ValueAboveSnapshot {
                    txn: r.txn,
                    item,
                    version,
                    snapshot_seq: r.snapshot_seq,
                });
            }
            if r.level == ReadLevel::Stable && !group_excused(r.group) {
                if let Some(&lost_txn) = lost_writes.get(&(item, version)) {
                    violations.push(ReadViolation::LostValueObserved {
                        txn: r.txn,
                        item,
                        version,
                        lost_txn,
                    });
                }
            }
        }
    }

    // Client-side acknowledgements: monotonic reads per (session, group)
    // in the order the session accepted them. Only the session level
    // promises monotonicity; `Latest` explicitly trades it away.
    let mut seen: std::collections::BTreeMap<(u32, u32), u64> = std::collections::BTreeMap::new();
    for a in &oracle.read_acks {
        if a.level != Some(ReadLevel::Session) {
            continue;
        }
        let key = (a.client, a.group);
        let prev = seen.entry(key).or_insert(0);
        if a.snapshot_seq < *prev {
            violations.push(ReadViolation::SessionRegression {
                client: a.client,
                group: a.group,
                txn: a.txn,
                prev_seq: *prev,
                snapshot_seq: a.snapshot_seq,
            });
        } else {
            *prev = a.snapshot_seq;
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{ReadAckRecord, ReadRecord};
    use groupsafe_sim::SimTime;

    fn t(seq: u64) -> TxnId {
        TxnId { client: 7, seq }
    }

    fn rec(level: ReadLevel, token: u64, snapshot: u64, stable: u64) -> ReadRecord {
        ReadRecord {
            txn: t(snapshot + 100),
            client: 7,
            group: 0,
            level,
            token,
            snapshot_seq: snapshot,
            stable_seq: stable,
            applied_seq: snapshot.max(stable),
            at: SimTime::ZERO,
            items: vec![(ItemId(1), snapshot.min(stable))],
        }
    }

    #[test]
    fn clean_reads_audit_clean() {
        let mut o = Oracle::default();
        o.reads.push(rec(ReadLevel::Session, 3, 5, 5));
        o.reads.push(rec(ReadLevel::Stable, 0, 4, 4));
        o.reads.push(rec(ReadLevel::Latest, 0, 9, 4));
        assert!(audit_reads(&o, &[], &|_| false).is_empty());
    }

    #[test]
    fn stale_session_read_is_flagged() {
        let mut o = Oracle::default();
        o.reads.push(rec(ReadLevel::Session, 9, 5, 5));
        let v = audit_reads(&o, &[], &|_| false);
        assert!(
            matches!(
                v.as_slice(),
                [ReadViolation::StaleSessionRead { token: 9, .. }]
            ),
            "{v:?}"
        );
    }

    #[test]
    fn read_above_watermark_is_flagged() {
        let mut o = Oracle::default();
        o.reads.push(rec(ReadLevel::Stable, 0, 8, 5));
        let v = audit_reads(&o, &[], &|_| false);
        assert!(
            v.iter()
                .any(|v| matches!(v, ReadViolation::UnstableRead { stable_seq: 5, .. })),
            "{v:?}"
        );
    }

    #[test]
    fn value_beyond_snapshot_is_flagged() {
        let mut o = Oracle::default();
        let mut r = rec(ReadLevel::Latest, 0, 5, 5);
        r.items = vec![(ItemId(2), 12)];
        o.reads.push(r);
        let v = audit_reads(&o, &[], &|_| false);
        assert!(
            matches!(
                v.as_slice(),
                [ReadViolation::ValueAboveSnapshot { version: 12, .. }]
            ),
            "{v:?}"
        );
    }

    #[test]
    fn session_regression_is_flagged_in_ack_order() {
        let mut o = Oracle::default();
        let ack = |seq: u64, txn: u64| ReadAckRecord {
            txn: t(txn),
            client: 3,
            group: 1,
            level: Some(ReadLevel::Session),
            snapshot_seq: seq,
            at: SimTime::ZERO,
            response_ms: 1.0,
        };
        o.read_acks.push(ack(5, 1));
        o.read_acks.push(ack(7, 2));
        o.read_acks.push(ack(6, 3));
        let v = audit_reads(&o, &[], &|_| false);
        assert!(
            matches!(
                v.as_slice(),
                [ReadViolation::SessionRegression {
                    prev_seq: 7,
                    snapshot_seq: 6,
                    ..
                }]
            ),
            "{v:?}"
        );
    }

    #[test]
    fn env_profile_parses() {
        // Parsed shapes only (the env var itself is process-global and
        // pinned by the root `reads_env_profile` test).
        assert_eq!(
            ReadConfig::local(ReadLevel::Session).path.label(),
            "local-session"
        );
        assert_eq!(ReadConfig::broadcast().path, ReadPath::Broadcast);
        assert!(ReadConfig::default().path == ReadPath::Classic);
    }
}
