//! Key-routed sharding: partition the database over several independent
//! group-safe replication groups.
//!
//! The paper argues group-safety for a single replica group; scaling past
//! one group's sequencer means *partitioning* the key space across `N`
//! groups, each running its own batched group-safe atomic-broadcast
//! pipeline with its own sequencer, GCS view and stable logs (the
//! direction of Sutra & Shapiro's fault-tolerant partial replication).
//! This module owns the routing layer:
//!
//! * [`ShardMap`] — a deterministic key → group router with two
//!   strategies: [`ShardStrategy::Hash`] (modulo striping) and
//!   [`ShardStrategy::Ranges`] (explicit contiguous key ranges), both
//!   validated at build time ([`ShardError`]: empty groups, unowned or
//!   overlapping ranges are rejected before any actor is wired),
//! * [`ShardSpec`] — the builder-facing configuration
//!   ([`SystemBuilder::shards`](crate::SystemBuilder::shards),
//!   [`SystemBuilder::cross_shard_fraction`](crate::SystemBuilder::cross_shard_fraction)),
//!   resolved against the database size when the system is built,
//! * [`sharded_generator`] — a [`WorkloadSpec`] wrapper that draws
//!   single-group transactions (all keys from one group) and, with a
//!   configurable probability, cross-group transactions spanning two
//!   groups.
//!
//! Transactions that touch one group pay only that group's abcast cost;
//! transactions that span groups commit through an ordered two-phase
//! protocol layered on the per-group broadcasts (certify in every touched
//! group, then a coordinator-group decision broadcast — see the
//! cross-group section of `ARCHITECTURE.md` and the `XgPrepare` /
//! `XgDecision` messages in [`crate::msg`]).
//!
//! # Example
//!
//! ```
//! use groupsafe_core::shard::{ShardMap, ShardStrategy};
//! use groupsafe_db::ItemId;
//!
//! // 10 000 keys striped over 4 groups.
//! let map = ShardMap::hash(4, 10_000).unwrap();
//! assert_eq!(map.group_of(ItemId(5)), 1);
//! assert_eq!(map.group_of(ItemId(8)), 0);
//!
//! // The same space as explicit ranges; gaps and overlaps are rejected.
//! let map = ShardMap::ranges(vec![(0, 2_500), (2_500, 10_000)], 10_000).unwrap();
//! assert_eq!(map.n_groups(), 2);
//! assert_eq!(map.group_of(ItemId(2_499)), 0);
//! assert_eq!(map.group_of(ItemId(2_500)), 1);
//! assert!(ShardMap::ranges(vec![(0, 2_500), (5_000, 10_000)], 10_000).is_err());
//! ```

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

use groupsafe_db::{ItemId, Operation};

use crate::builder::WorkloadSpec;
use crate::client::{OpGenerator, TxnPlan};

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a shard configuration was rejected at build time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// Zero groups: the router needs at least one.
    NoGroups,
    /// A group owns no keys (hash striping with more groups than keys, or
    /// an empty/inverted range).
    EmptyGroup {
        /// The group that owns nothing.
        group: u32,
    },
    /// Keys in `[from, to)` belong to no group (a gap between ranges, or
    /// a tail past the last range).
    UnownedKeys {
        /// First unowned key.
        from: u32,
        /// One past the last unowned key.
        to: u32,
    },
    /// Two ranges both claim `key`.
    OverlappingRanges {
        /// The doubly-owned key.
        key: u32,
    },
    /// A range reaches past the key space.
    OutOfRange {
        /// The offending bound.
        key: u32,
        /// The key-space size.
        n_items: u32,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::NoGroups => write!(f, "a shard map needs at least one group"),
            ShardError::EmptyGroup { group } => {
                write!(f, "shard group {group} owns no keys")
            }
            ShardError::UnownedKeys { from, to } => {
                write!(f, "keys {from}..{to} are owned by no shard group")
            }
            ShardError::OverlappingRanges { key } => {
                write!(f, "key {key} is claimed by more than one shard range")
            }
            ShardError::OutOfRange { key, n_items } => {
                write!(
                    f,
                    "shard range bound {key} exceeds the key space ({n_items} items)"
                )
            }
        }
    }
}

impl std::error::Error for ShardError {}

// ---------------------------------------------------------------------
// ShardMap
// ---------------------------------------------------------------------

/// How keys map onto groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Modulo striping: key `k` belongs to group `k % n_groups`. Spreads
    /// any hotspot evenly and needs no configuration.
    Hash,
    /// Explicit contiguous ranges, one `[start, end)` per group in group
    /// order. Must cover the whole key space with no gaps or overlaps.
    Ranges(Vec<(u32, u32)>),
}

/// A validated, deterministic key → group router over a fixed key space.
///
/// Construction validates the full partition: every key must belong to
/// exactly one group and every group must own at least one key
/// ([`ShardError`] otherwise).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    n_groups: u32,
    n_items: u32,
    strategy: ShardStrategy,
}

impl ShardMap {
    /// Modulo ("hash") striping of `n_items` keys over `n_groups` groups.
    pub fn hash(n_groups: u32, n_items: u32) -> Result<ShardMap, ShardError> {
        if n_groups == 0 {
            return Err(ShardError::NoGroups);
        }
        if n_groups > n_items {
            // Some group would own nothing.
            return Err(ShardError::EmptyGroup { group: n_items });
        }
        Ok(ShardMap {
            n_groups,
            n_items,
            strategy: ShardStrategy::Hash,
        })
    }

    /// Explicit `[start, end)` ranges, one per group. The ranges must be
    /// non-empty and must jointly cover `0..n_items` exactly.
    pub fn ranges(ranges: Vec<(u32, u32)>, n_items: u32) -> Result<ShardMap, ShardError> {
        if ranges.is_empty() {
            return Err(ShardError::NoGroups);
        }
        for (g, &(start, end)) in ranges.iter().enumerate() {
            if start >= end {
                return Err(ShardError::EmptyGroup { group: g as u32 });
            }
            if end > n_items {
                return Err(ShardError::OutOfRange { key: end, n_items });
            }
        }
        // Coverage: sort by start, check for gaps/overlaps.
        let mut sorted: Vec<(u32, u32)> = ranges.clone();
        sorted.sort_unstable();
        let mut cursor = 0u32;
        for &(start, end) in &sorted {
            if start > cursor {
                return Err(ShardError::UnownedKeys {
                    from: cursor,
                    to: start,
                });
            }
            if start < cursor {
                return Err(ShardError::OverlappingRanges { key: start });
            }
            cursor = end;
        }
        if cursor < n_items {
            return Err(ShardError::UnownedKeys {
                from: cursor,
                to: n_items,
            });
        }
        Ok(ShardMap {
            n_groups: ranges.len() as u32,
            n_items,
            strategy: ShardStrategy::Ranges(ranges),
        })
    }

    /// The degenerate single-group map (the unsharded system).
    pub fn single(n_items: u32) -> ShardMap {
        ShardMap {
            n_groups: 1,
            n_items: n_items.max(1),
            strategy: ShardStrategy::Hash,
        }
    }

    /// Number of groups.
    pub fn n_groups(&self) -> u32 {
        self.n_groups
    }

    /// Size of the key space.
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// The strategy in use.
    pub fn strategy(&self) -> &ShardStrategy {
        &self.strategy
    }

    /// The group owning `item`.
    pub fn group_of(&self, item: ItemId) -> u32 {
        debug_assert!(item.0 < self.n_items, "key outside the shard map's space");
        match &self.strategy {
            ShardStrategy::Hash => item.0 % self.n_groups,
            ShardStrategy::Ranges(ranges) => ranges
                .iter()
                .position(|&(s, e)| s <= item.0 && item.0 < e)
                .map(|g| g as u32)
                .unwrap_or(0),
        }
    }

    /// The distinct groups touched by `ops`, in ascending group order.
    pub fn groups_of(&self, ops: &[Operation]) -> Vec<u32> {
        let mut gs: Vec<u32> = ops.iter().map(|o| self.group_of(o.item())).collect();
        gs.sort_unstable();
        gs.dedup();
        gs
    }

    /// Number of keys group `g` owns.
    pub fn group_len(&self, g: u32) -> u32 {
        match &self.strategy {
            ShardStrategy::Hash => {
                let n = self.n_items / self.n_groups;
                n + u32::from(g < self.n_items % self.n_groups)
            }
            ShardStrategy::Ranges(ranges) => {
                let (s, e) = ranges[g as usize];
                e - s
            }
        }
    }

    /// The `j`-th key of group `g` (closed-form uniform sampling over a
    /// group's key set; `j < group_len(g)`).
    pub fn nth_key(&self, g: u32, j: u32) -> ItemId {
        match &self.strategy {
            ShardStrategy::Hash => ItemId(g + j * self.n_groups),
            ShardStrategy::Ranges(ranges) => ItemId(ranges[g as usize].0 + j),
        }
    }

    /// Number of keys of group `g` below `limit` (the hot-set prefix a
    /// workload's hotspot targets).
    pub fn group_len_below(&self, g: u32, limit: u32) -> u32 {
        let limit = limit.min(self.n_items);
        match &self.strategy {
            ShardStrategy::Hash => {
                if limit == 0 {
                    0
                } else {
                    let full = limit / self.n_groups;
                    full + u32::from(g < limit % self.n_groups)
                }
            }
            ShardStrategy::Ranges(ranges) => {
                let (s, e) = ranges[g as usize];
                e.min(limit).saturating_sub(s)
            }
        }
    }
}

// ---------------------------------------------------------------------
// ShardSpec (builder-facing configuration)
// ---------------------------------------------------------------------

/// The sharding configuration a [`SystemBuilder`](crate::SystemBuilder)
/// carries: group count and routing strategy (resolved into a validated
/// [`ShardMap`] against the database size at build time) plus the
/// built-in generator's cross-group transaction fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    /// Number of replica groups (1 = the classic unsharded system).
    pub groups: u32,
    /// Key → group routing strategy.
    pub strategy: ShardStrategy,
    /// Fraction of generated transactions that span two groups (built-in
    /// generator only; 0.0 = every transaction stays within one group).
    pub cross_fraction: f64,
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec {
            groups: 1,
            strategy: ShardStrategy::Hash,
            cross_fraction: 0.0,
        }
    }
}

impl ShardSpec {
    /// Resolve into a validated [`ShardMap`] over `n_items` keys.
    pub fn resolve(&self, n_items: u32) -> Result<ShardMap, ShardError> {
        match &self.strategy {
            ShardStrategy::Hash => ShardMap::hash(self.groups, n_items),
            ShardStrategy::Ranges(r) => {
                let map = ShardMap::ranges(r.clone(), n_items)?;
                if map.n_groups() != self.groups {
                    // `.shards(n)` and an explicit range list disagree.
                    return Err(ShardError::EmptyGroup { group: self.groups });
                }
                Ok(map)
            }
        }
    }

    /// True for the degenerate unsharded configuration.
    pub fn is_single(&self) -> bool {
        self.groups == 1 && self.cross_fraction == 0.0
    }

    /// The `GROUPSAFE_SHARDS` environment profile (the CI hook that runs
    /// the same suite sharded and unsharded): `GROUPSAFE_SHARDS=3` runs
    /// every builder-assembled system as 3 hash-routed groups, and
    /// `GROUPSAFE_CROSS_SHARD=0.1` adds a 10 % cross-group transaction
    /// fraction. Explicit shard setters on the builder win over the
    /// profile. Returns `None` when the variable is unset or not a
    /// number (e.g. `off`).
    pub fn from_env() -> Option<ShardSpec> {
        let groups: u32 = std::env::var("GROUPSAFE_SHARDS")
            .ok()?
            .trim()
            .parse()
            .ok()?;
        let cross_fraction = std::env::var("GROUPSAFE_CROSS_SHARD")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0.0);
        Some(ShardSpec {
            groups,
            strategy: ShardStrategy::Hash,
            cross_fraction,
        })
    }
}

// ---------------------------------------------------------------------
// Sharded workload generation
// ---------------------------------------------------------------------

/// Draw one key of group `g`, honouring the spec's hotspot: with
/// probability `hot_access_fraction` the key comes from the group's
/// share of the hot prefix (when the group owns any of it).
fn draw_group_item(spec: &WorkloadSpec, map: &ShardMap, g: u32, rng: &mut StdRng) -> ItemId {
    let hot_limit = ((spec.n_items as f64 * spec.hot_set_fraction) as u32).max(1);
    let hot_len = map.group_len_below(g, hot_limit);
    if spec.hot_access_fraction > 0.0 && hot_len > 0 && rng.random_bool(spec.hot_access_fraction) {
        map.nth_key(g, rng.random_range(0..hot_len))
    } else {
        map.nth_key(g, rng.random_range(0..map.group_len(g)))
    }
}

/// One transaction routed within `groups` (one entry = single-group, two
/// entries = cross-group with at least one operation in each). With
/// `force_reads` every operation is a read (the routed form of the
/// spec's read-only fraction).
fn generate_routed_txn(
    spec: &WorkloadSpec,
    map: &ShardMap,
    groups: &[u32],
    force_reads: bool,
    rng: &mut StdRng,
) -> Vec<Operation> {
    let len = rng.random_range(spec.txn_len_min..=spec.txn_len_max);
    let mut ops = Vec::with_capacity(len);
    for i in 0..len {
        // The first `groups.len()` operations pin one op per touched
        // group (so a "cross" transaction really crosses); the rest coin-
        // flip between them.
        let g = if i < groups.len() {
            groups[i]
        } else {
            groups[rng.random_range(0..groups.len())]
        };
        let item = draw_group_item(spec, map, g, rng);
        if !force_reads && rng.random_bool(spec.write_probability) {
            ops.push(Operation::Write(
                item,
                rng.random_range(-1_000_000..1_000_000),
            ));
        } else {
            ops.push(Operation::Read(item));
        }
    }
    ops
}

/// A per-client generator over `spec`, routed through `map`: each
/// transaction's keys come from a single randomly-chosen group, except a
/// `cross_fraction` of transactions which span two distinct groups.
///
/// With a single-group map this delegates to
/// [`WorkloadSpec::generate_txn`] unchanged — the draw sequence (and thus
/// any seeded run) is bit-for-bit identical to the unsharded system.
pub fn sharded_generator(
    spec: &WorkloadSpec,
    map: Rc<ShardMap>,
    cross_fraction: f64,
) -> OpGenerator {
    let spec = spec.clone();
    Box::new(move |rng: &mut StdRng| {
        let n = map.n_groups();
        if n <= 1 {
            return spec.generate_plan(rng);
        }
        // The read-mix coin is drawn only when the knob is set, so the
        // historical draw sequence — and every seeded sharded run —
        // replays identically at the default.
        let readonly = spec.read_fraction > 0.0 && rng.random_bool(spec.read_fraction);
        let cross =
            cross_fraction > 0.0 && spec.txn_len_max >= 2 && rng.random_bool(cross_fraction);
        if cross {
            let a = rng.random_range(0..n);
            let b = (a + 1 + rng.random_range(0..n - 1)) % n;
            let mut spec2 = spec.clone();
            spec2.txn_len_min = spec.txn_len_min.max(2);
            TxnPlan::new(generate_routed_txn(&spec2, &map, &[a, b], readonly, rng))
        } else {
            let g = rng.random_range(0..n);
            // The SI coin is drawn only for single-group update
            // transactions (cross-group slices certify classically) and
            // only when the knob is set — same fingerprint discipline as
            // the read-mix coin.
            if !readonly && spec.txn_fraction > 0.0 && rng.random_bool(spec.txn_fraction) {
                let mut spec2 = spec.clone();
                spec2.txn_len_min = spec.txn_ops_min;
                spec2.txn_len_max = spec.txn_ops_max;
                let mut ops = generate_routed_txn(&spec2, &map, &[g], false, rng);
                if !ops.iter().any(|o| o.is_write()) {
                    let item = draw_group_item(&spec, &map, g, rng);
                    ops.push(Operation::Write(
                        item,
                        rng.random_range(-1_000_000..1_000_000),
                    ));
                }
                return TxnPlan::snapshot(ops);
            }
            let ops = generate_routed_txn(&spec, &map, &[g], readonly, rng);
            // Read-only transactions ride snapshots whenever the mix
            // contains snapshot transactions (no extra coin — the flag
            // is deterministic), mirroring the unsharded generator: an
            // empty write set never conflicts at certification.
            if readonly && spec.txn_fraction > 0.0 {
                return TxnPlan::snapshot(ops);
            }
            TxnPlan::new(ops)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn hash_map_routes_by_modulo_and_samples_in_group() {
        let map = ShardMap::hash(3, 10).unwrap();
        assert_eq!(map.group_of(ItemId(0)), 0);
        assert_eq!(map.group_of(ItemId(4)), 1);
        assert_eq!(map.group_of(ItemId(8)), 2);
        // Sizes: 10 = 4 + 3 + 3.
        assert_eq!(map.group_len(0), 4);
        assert_eq!(map.group_len(1), 3);
        assert_eq!(map.group_len(2), 3);
        for g in 0..3 {
            for j in 0..map.group_len(g) {
                assert_eq!(map.group_of(map.nth_key(g, j)), g);
            }
        }
    }

    #[test]
    fn range_map_validates_coverage() {
        assert!(ShardMap::ranges(vec![], 10).is_err());
        assert_eq!(
            ShardMap::ranges(vec![(0, 5), (5, 5), (5, 10)], 10).err(),
            Some(ShardError::EmptyGroup { group: 1 })
        );
        assert_eq!(
            ShardMap::ranges(vec![(0, 4), (6, 10)], 10).err(),
            Some(ShardError::UnownedKeys { from: 4, to: 6 })
        );
        assert_eq!(
            ShardMap::ranges(vec![(0, 6), (4, 10)], 10).err(),
            Some(ShardError::OverlappingRanges { key: 4 })
        );
        assert_eq!(
            ShardMap::ranges(vec![(0, 6)], 10).err(),
            Some(ShardError::UnownedKeys { from: 6, to: 10 })
        );
        assert_eq!(
            ShardMap::ranges(vec![(0, 12)], 10).err(),
            Some(ShardError::OutOfRange {
                key: 12,
                n_items: 10
            })
        );
        let map = ShardMap::ranges(vec![(0, 4), (4, 10)], 10).unwrap();
        assert_eq!(map.group_of(ItemId(3)), 0);
        assert_eq!(map.group_of(ItemId(4)), 1);
        assert_eq!(map.group_len_below(0, 2), 2);
        assert_eq!(map.group_len_below(1, 2), 0);
    }

    #[test]
    fn hash_with_more_groups_than_keys_is_rejected() {
        assert!(ShardMap::hash(11, 10).is_err());
        assert!(ShardMap::hash(0, 10).is_err());
        assert!(ShardMap::hash(10, 10).is_ok());
    }

    #[test]
    fn hot_prefix_splits_by_modulo() {
        let map = ShardMap::hash(4, 100).unwrap();
        // Hot prefix [0, 10): keys 0..10 → groups 0,1,2,3,0,1,2,3,0,1.
        assert_eq!(map.group_len_below(0, 10), 3);
        assert_eq!(map.group_len_below(1, 10), 3);
        assert_eq!(map.group_len_below(2, 10), 2);
        assert_eq!(map.group_len_below(3, 10), 2);
        assert_eq!(map.group_len_below(0, 0), 0);
    }

    #[test]
    fn single_group_generator_is_bit_for_bit_the_spec() {
        let spec = WorkloadSpec::table4();
        let map = Rc::new(ShardMap::single(spec.n_items));
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut gen = sharded_generator(&spec, map, 0.0);
        for _ in 0..50 {
            assert_eq!(gen(&mut a), spec.generate_plan(&mut b));
        }
    }

    #[test]
    fn routed_txns_stay_in_their_groups() {
        let spec = WorkloadSpec::table4();
        let map = Rc::new(ShardMap::hash(4, spec.n_items).unwrap());
        let mut rng = StdRng::seed_from_u64(11);
        let mut gen = sharded_generator(&spec, map.clone(), 0.25);
        let mut single = 0;
        let mut cross = 0;
        for _ in 0..400 {
            let ops = gen(&mut rng).ops;
            let gs = map.groups_of(&ops);
            match gs.len() {
                1 => single += 1,
                2 => cross += 1,
                n => panic!("a generated transaction touched {n} groups"),
            }
        }
        assert!(single > 200, "single-group majority expected, got {single}");
        assert!(
            (40..=180).contains(&cross),
            "~25% cross-group expected, got {cross}/400"
        );
    }
}
