//! Messages of the replicated database component.

use groupsafe_db::{ItemId, Operation, TxnId, Value, Version, WriteOp};
use groupsafe_net::NodeId;

/// A transaction as submitted by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnRequest {
    /// Stable identity (kept across resubmissions of the same logical
    /// transaction — the testable-transaction key).
    pub id: TxnId,
    /// The operations, executed in order.
    pub ops: Vec<Operation>,
    /// Where to send the reply.
    pub client: NodeId,
    /// Resubmission attempt number (0 = first try; metrics only).
    pub attempt: u32,
    /// True for a snapshot-isolation transaction: the delegate executes
    /// the read phase against a consistent snapshot of the multi-version
    /// store and certification is first-committer-wins over the write
    /// set only (see [`crate::certify::certify_snapshot`]). False keeps
    /// the classic read-set-certified pipeline bit-for-bit.
    pub snapshot: bool,
    /// Session token for snapshot transactions: the client's highest
    /// acknowledged commit sequence number in the target group. The
    /// delegate pins a snapshot at least this fresh (read-your-writes
    /// across transactions), waiting bounded time if its applied state
    /// is behind. 0 for classic transactions.
    pub token: u64,
}

impl TxnRequest {
    /// True if the transaction contains at least one write.
    pub fn is_update(&self) -> bool {
        self.ops.iter().any(|o| o.is_write())
    }
}

/// Client → server network message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientMsg {
    /// Execute this transaction (the receiving server is the delegate).
    Request(TxnRequest),
}

/// Server → client network message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerReply {
    /// The transaction committed (per the technique's safety criterion).
    Committed {
        /// Transaction id.
        txn: TxnId,
        /// Attempt number being answered.
        attempt: u32,
        /// The delivery sequence number the commit was applied at in the
        /// replying group (0 when the path carries none: read-only
        /// transactions on the classic path, the lazy baseline). Clients
        /// fold it into their per-group session tokens so follower reads
        /// at [`ReadLevel::Session`](crate::reads::ReadLevel::Session)
        /// observe their own writes.
        commit_seq: u64,
    },
    /// The transaction was aborted (certification conflict or deadlock
    /// victim); the client may resubmit.
    Aborted {
        /// Transaction id.
        txn: TxnId,
        /// Attempt number being answered.
        attempt: u32,
    },
}

/// The payload atomically broadcast by the database state machine
/// technique: the transaction's read set (with observed versions, for
/// certification) and its write set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsmMsg {
    /// Transaction id.
    pub txn: TxnId,
    /// Attempt number (echoed in the delegate's reply).
    pub attempt: u32,
    /// The delegate that executed the read phase.
    pub delegate: NodeId,
    /// The client awaiting the reply.
    pub client: NodeId,
    /// Items read, with the committed versions observed.
    pub readset: Vec<(ItemId, Version)>,
    /// Items written, with the new values (versions are assigned from the
    /// delivery sequence number at certification time).
    pub writes: Vec<(ItemId, Value)>,
    /// The delivery sequence number the delegate's read phase executed
    /// against, for snapshot-isolation transactions: certification at
    /// every replica is first-committer-wins over `writes` against this
    /// snapshot ([`crate::certify::certify_snapshot`]). `None` selects
    /// classic read-set certification.
    pub snapshot: Option<u64>,
}

/// What a replica group atomically broadcasts: ordinary single-group
/// transactions, or one of the two phases of the cross-group commit
/// protocol (certify-everywhere, then a coordinator decision broadcast).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupMsg {
    /// A single-group transaction (the classic database-state-machine
    /// broadcast).
    Txn(DsmMsg),
    /// Phase 1 of a cross-group commit: certify this group's slice and
    /// vote to the coordinator.
    XgPrepare(XgPrepare),
    /// Phase 2 of a cross-group commit: the coordinator's decision,
    /// ordered by this group's broadcast so every replica applies (or
    /// discards) the slice at the same point of the delivery sequence.
    XgDecision(XgDecision),
}

/// Phase 1 of the cross-group protocol, broadcast within one touched
/// group: the group's slice of the transaction (read set for
/// certification, write set for the reservation). At delivery every
/// replica of the group reaches the same verdict (certification plus a
/// reservation-conflict check) and the broadcasting delegate sends an
/// [`XgVote`] to the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XgPrepare {
    /// Transaction id.
    pub txn: TxnId,
    /// Attempt number (echoed through votes and the final reply).
    pub attempt: u32,
    /// The server that executed this slice's read phase and broadcast the
    /// prepare (this group's gateway, or the coordinator itself for its
    /// home slice).
    pub delegate: NodeId,
    /// The coordinator server awaiting the votes.
    pub coordinator: NodeId,
    /// The client awaiting the final reply (carried for failover
    /// diagnostics; the reply is sent by the coordinator).
    pub client: NodeId,
    /// This group's id (sanity/diagnostics).
    pub group: u32,
    /// Items read by this slice, with observed versions.
    pub readset: Vec<(ItemId, Version)>,
    /// Items this slice writes, with the new values.
    pub writes: Vec<(ItemId, Value)>,
}

/// A group's certification vote for a cross-group transaction, sent by
/// the group's prepare delegate to the coordinator after the prepare's
/// (uniform) delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XgVote {
    /// Transaction id.
    pub txn: TxnId,
    /// Attempt the vote answers.
    pub attempt: u32,
    /// The voting group.
    pub group: u32,
    /// True = this group certifies its slice.
    pub commit: bool,
}

/// Phase 2 of the cross-group protocol: the coordinator's decision. One
/// copy is broadcast in every touched group; each group applies only its
/// own slice of `writes_by_group`. The decision is self-contained (it
/// carries the writes) so replicas that joined mid-protocol via state
/// transfer apply it without any prepare-side bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XgDecision {
    /// Transaction id.
    pub txn: TxnId,
    /// Attempt being decided.
    pub attempt: u32,
    /// True = every touched group voted commit.
    pub commit: bool,
    /// The coordinator that decided (and replies to the client).
    pub coordinator: NodeId,
    /// The client awaiting the reply.
    pub client: NodeId,
    /// Every touched group (the cross-group atomicity oracle audits
    /// all-or-nothing over exactly this set).
    pub groups: Vec<u32>,
    /// Per-group write slices, aligned with `groups`.
    pub writes_by_group: Vec<Vec<(ItemId, Value)>>,
}

impl XgDecision {
    /// The write slice of `group`, if it is touched.
    pub fn writes_of(&self, group: u32) -> Option<&[(ItemId, Value)]> {
        self.groups
            .iter()
            .position(|&g| g == group)
            .map(|i| self.writes_by_group[i].as_slice())
    }
}

/// Coordinator → remote-group gateway: execute the read phase for this
/// slice and broadcast its [`XgPrepare`] in your group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XgSubRequest {
    /// Transaction id.
    pub txn: TxnId,
    /// Attempt number.
    pub attempt: u32,
    /// The coordinator to vote to.
    pub coordinator: NodeId,
    /// The client (diagnostics; the coordinator replies).
    pub client: NodeId,
    /// This group's slice of the transaction's operations.
    pub ops: Vec<Operation>,
}

/// Coordinator → remote-group gateway: broadcast this decision in your
/// group (phase 2 fan-out).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XgDecisionFwd(pub XgDecision);

/// A participant's liveness probe: a group delivered a prepare but no
/// decision after a timeout (lost forward, crashed coordinator). Any
/// replica that has the decision answers with an [`XgDecisionFwd`];
/// probes rotate through the coordinator's group until one does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XgStatusQuery {
    /// The undecided transaction.
    pub txn: TxnId,
}

/// Very-safe confirmation: a replica tells the delegate that `txn`'s
/// commit record reached its disk. The delegate answers the client only
/// once every group member confirmed (§2.1: "logged on all servers" —
/// which is why a single crash blocks commits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoggedConfirm {
    /// The transaction now durable at the sender.
    pub txn: TxnId,
}

/// Lazy propagation message: write sets shipped asynchronously from the
/// delegate to the other replicas (no ordering, no certification).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LazyPropagation {
    /// Write sets, each with the versions the delegate assigned at its
    /// local commit (origin timestamps; Thomas write rule applies them).
    pub writesets: Vec<(TxnId, Vec<WriteOp>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_detection() {
        let ro = TxnRequest {
            id: TxnId { client: 0, seq: 1 },
            ops: vec![Operation::Read(ItemId(1))],
            client: NodeId(9),
            attempt: 0,
            snapshot: false,
            token: 0,
        };
        assert!(!ro.is_update());
        let rw = TxnRequest {
            ops: vec![Operation::Read(ItemId(1)), Operation::Write(ItemId(2), 5)],
            ..ro.clone()
        };
        assert!(rw.is_update());
    }
}
