//! Messages of the replicated database component.

use groupsafe_db::{ItemId, Operation, TxnId, Value, Version, WriteOp};
use groupsafe_net::NodeId;

/// A transaction as submitted by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnRequest {
    /// Stable identity (kept across resubmissions of the same logical
    /// transaction — the testable-transaction key).
    pub id: TxnId,
    /// The operations, executed in order.
    pub ops: Vec<Operation>,
    /// Where to send the reply.
    pub client: NodeId,
    /// Resubmission attempt number (0 = first try; metrics only).
    pub attempt: u32,
}

impl TxnRequest {
    /// True if the transaction contains at least one write.
    pub fn is_update(&self) -> bool {
        self.ops.iter().any(|o| o.is_write())
    }
}

/// Client → server network message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientMsg {
    /// Execute this transaction (the receiving server is the delegate).
    Request(TxnRequest),
}

/// Server → client network message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerReply {
    /// The transaction committed (per the technique's safety criterion).
    Committed {
        /// Transaction id.
        txn: TxnId,
        /// Attempt number being answered.
        attempt: u32,
    },
    /// The transaction was aborted (certification conflict or deadlock
    /// victim); the client may resubmit.
    Aborted {
        /// Transaction id.
        txn: TxnId,
        /// Attempt number being answered.
        attempt: u32,
    },
}

/// The payload atomically broadcast by the database state machine
/// technique: the transaction's read set (with observed versions, for
/// certification) and its write set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsmMsg {
    /// Transaction id.
    pub txn: TxnId,
    /// Attempt number (echoed in the delegate's reply).
    pub attempt: u32,
    /// The delegate that executed the read phase.
    pub delegate: NodeId,
    /// The client awaiting the reply.
    pub client: NodeId,
    /// Items read, with the committed versions observed.
    pub readset: Vec<(ItemId, Version)>,
    /// Items written, with the new values (versions are assigned from the
    /// delivery sequence number at certification time).
    pub writes: Vec<(ItemId, Value)>,
}

/// Very-safe confirmation: a replica tells the delegate that `txn`'s
/// commit record reached its disk. The delegate answers the client only
/// once every group member confirmed (§2.1: "logged on all servers" —
/// which is why a single crash blocks commits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoggedConfirm {
    /// The transaction now durable at the sender.
    pub txn: TxnId,
}

/// Lazy propagation message: write sets shipped asynchronously from the
/// delegate to the other replicas (no ordering, no certification).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LazyPropagation {
    /// Write sets, each with the versions the delegate assigned at its
    /// local commit (origin timestamps; Thomas write rule applies them).
    pub writesets: Vec<(TxnId, Vec<WriteOp>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_detection() {
        let ro = TxnRequest {
            id: TxnId { client: 0, seq: 1 },
            ops: vec![Operation::Read(ItemId(1))],
            client: NodeId(9),
            attempt: 0,
        };
        assert!(!ro.is_update());
        let rw = TxnRequest {
            ops: vec![Operation::Read(ItemId(1)), Operation::Write(ItemId(2), 5)],
            ..ro.clone()
        };
        assert!(rw.is_update());
    }
}
