//! Client actors: submit transactions to a delegate, measure response
//! times, resubmit after aborts and timeouts (update-everywhere: a
//! timeout switches to another delegate; testable transactions make the
//! retry safe).
//!
//! In a sharded system each transaction is routed to the group owning its
//! first key (the coordinator group of a cross-group transaction);
//! failover rotates through that group's members.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

use groupsafe_db::{Operation, TxnId};
use groupsafe_net::{Incoming, Network, NodeId};
use groupsafe_sim::{Actor, Ctx, ObsEvent, Payload, SimDuration, SimTime};

use crate::msg::{ClientMsg, ServerReply, TxnRequest};
use crate::obs_txn;
use crate::reads::{ReadConfig, ReadLevel, ReadPath, ReadReply, ReadRequest};
use crate::shard::ShardMap;
use crate::verify::{Oracle, ReadAckRecord};

/// How a client generates load.
#[derive(Debug, Clone, Copy)]
pub enum LoadModel {
    /// Open loop: Poisson arrivals with the given mean inter-arrival
    /// time, independent of outstanding requests.
    Open {
        /// Mean inter-arrival time.
        mean_interarrival: SimDuration,
    },
    /// Closed loop: one outstanding transaction; after each reply, think
    /// (exponentially distributed) before the next submission.
    Closed {
        /// Mean think time.
        mean_think: SimDuration,
    },
}

/// One generated transaction: its operations plus how it travels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnPlan {
    /// The operations, executed in order.
    pub ops: Vec<Operation>,
    /// True = submit as a snapshot-isolation transaction (snapshot read
    /// phase, write-set-only certification); false = the classic
    /// read-set-certified pipeline.
    pub snapshot: bool,
}

impl TxnPlan {
    /// A classic (non-snapshot) transaction over these operations.
    pub fn new(ops: Vec<Operation>) -> Self {
        TxnPlan {
            ops,
            snapshot: false,
        }
    }

    /// A snapshot-isolation transaction over these operations.
    pub fn snapshot(ops: Vec<Operation>) -> Self {
        TxnPlan {
            ops,
            snapshot: true,
        }
    }
}

impl From<Vec<Operation>> for TxnPlan {
    fn from(ops: Vec<Operation>) -> Self {
        TxnPlan::new(ops)
    }
}

/// Generates each new transaction (operations + how it travels).
pub type OpGenerator = Box<dyn FnMut(&mut StdRng) -> TxnPlan>;

/// Client configuration.
pub struct ClientConfig {
    /// This client's network node.
    pub node: NodeId,
    /// Numeric client id (first component of its transaction ids).
    pub id: u32,
    /// Preferred delegate server (the routing fallback for an empty
    /// transaction; normal routing targets the owning group).
    pub home: NodeId,
    /// Total number of servers across all groups.
    pub n_servers: u32,
    /// Servers per replica group (timeout failover rotates within the
    /// coordinator group; equals `n_servers` when unsharded).
    pub servers_per_group: u32,
    /// The key → group router transactions are routed by.
    pub shard: Rc<ShardMap>,
    /// Load model.
    pub load: LoadModel,
    /// Give up waiting for a reply after this long and resubmit elsewhere.
    pub timeout: SimDuration,
    /// Discard response samples recorded before this instant (warm-up).
    pub measure_from: SimTime,
    /// How read-only transactions travel (classic pipeline, broadcast,
    /// or the local follower-read path — see [`crate::reads`]).
    pub reads: ReadConfig,
}

enum ClientTimer {
    Arrival,
    Timeout {
        txn: TxnId,
        attempt: u32,
    },
    /// Deferred abort-resubmission (contention backoff).
    Resubmit {
        txn: TxnId,
        attempt: u32,
    },
}

struct Outstanding {
    ops: Vec<Operation>,
    attempt: u32,
    sent_at: SimTime,
    first_sent_at: SimTime,
    target: NodeId,
    /// `Some(level)` when the transaction travels on the local read
    /// path (read-only, single-group, path = `Local`).
    read_level: Option<ReadLevel>,
    /// Read-only transaction on any path (classifies the ack).
    readonly: bool,
    /// Snapshot-isolation transaction (carries the session token so the
    /// delegate pins a read-your-writes snapshot).
    snapshot: bool,
}

/// The client actor.
pub struct Client {
    cfg: ClientConfig,
    net: Network,
    oracle: Rc<RefCell<Oracle>>,
    rng: StdRng,
    gen: OpGenerator,
    next_seq: u64,
    outstanding: std::collections::BTreeMap<TxnId, Outstanding>,
    done: BTreeSet<TxnId>,
    /// Per-group session tokens: the highest commit/read sequence number
    /// this session has observed in each group (read-your-writes +
    /// monotonic reads on the local read path).
    tokens: std::collections::BTreeMap<u32, u64>,
    stopped: bool,
}

/// Driver command: start generating load.
#[derive(Debug, Clone, Copy)]
pub struct StartClient;

/// Driver command: stop generating new transactions (outstanding ones
/// still complete — used to drain the system before verification).
#[derive(Debug, Clone, Copy)]
pub struct StopClient;

impl Client {
    /// Build a client.
    pub fn new(
        cfg: ClientConfig,
        net: Network,
        oracle: Rc<RefCell<Oracle>>,
        rng: StdRng,
        gen: OpGenerator,
    ) -> Self {
        Client {
            cfg,
            net,
            oracle,
            rng,
            gen,
            next_seq: 0,
            outstanding: std::collections::BTreeMap::new(),
            done: BTreeSet::new(),
            tokens: std::collections::BTreeMap::new(),
            stopped: false,
        }
    }

    /// Transactions completed (committed acks received).
    pub fn completed(&self) -> usize {
        self.done.len()
    }

    fn exp_sample(&mut self, mean: SimDuration) -> SimDuration {
        let u: f64 = self.rng.random_range(1e-12..1.0);
        SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }

    fn schedule_next_arrival(&mut self, ctx: &mut Ctx<'_>) {
        let delay = match self.cfg.load {
            LoadModel::Open { mean_interarrival } => self.exp_sample(mean_interarrival),
            LoadModel::Closed { mean_think } => self.exp_sample(mean_think),
        };
        ctx.timer(delay, ClientTimer::Arrival);
    }

    /// The server a transaction is first sent to: this client's rank
    /// within the group owning the transaction's first key (its
    /// coordinator group when it spans several). Reduces to the fixed
    /// home server in an unsharded system.
    fn coordinator_for(&self, ops: &[Operation]) -> NodeId {
        let spg = self.cfg.servers_per_group.max(1);
        let group = ops
            .first()
            .map(|op| self.cfg.shard.group_of(op.item()))
            .unwrap_or(self.cfg.home.0 / spg);
        NodeId(group * spg + self.cfg.id % spg)
    }

    /// The group a server belongs to.
    fn group_of(&self, server: NodeId) -> u32 {
        server.0 / self.cfg.servers_per_group.max(1)
    }

    /// This session's token for `group` (0 until it observes a commit or
    /// read there).
    fn token(&self, group: u32) -> u64 {
        self.tokens.get(&group).copied().unwrap_or(0)
    }

    fn advance_token(&mut self, group: u32, seq: u64) {
        if seq > 0 {
            let slot = self.tokens.entry(group).or_insert(0);
            *slot = (*slot).max(seq);
        }
    }

    fn submit_new(&mut self, ctx: &mut Ctx<'_>) {
        self.next_seq += 1;
        let id = TxnId {
            client: self.cfg.id,
            seq: self.next_seq,
        };
        let plan = (self.gen)(&mut self.rng);
        let ops = plan.ops;
        let now = ctx.now();
        let target = self.coordinator_for(&ops);
        let readonly = !ops.is_empty() && ops.iter().all(|o| !o.is_write());
        // The local read path serves read-only single-group transactions
        // at any replica of the owning group; everything else (updates,
        // cross-group reads) keeps the classic pipeline.
        let read_level = match self.cfg.reads.path {
            ReadPath::Local(level) if readonly && self.cfg.shard.groups_of(&ops).len() == 1 => {
                Some(level)
            }
            // Exhaustive on purpose: a new read path must decide here
            // whether it is served locally or through the pipeline.
            ReadPath::Local(_) | ReadPath::Classic | ReadPath::Broadcast => None,
        };
        self.outstanding.insert(
            id,
            Outstanding {
                ops: ops.clone(),
                attempt: 0,
                sent_at: now,
                first_sent_at: now,
                target,
                read_level,
                readonly,
                snapshot: plan.snapshot,
            },
        );
        self.send_request(ctx, id);
    }

    fn send_request(&mut self, ctx: &mut Ctx<'_>, id: TxnId) {
        let o = self.outstanding.get(&id).expect("outstanding");
        let target = o.target;
        let attempt = o.attempt;
        if let Some(level) = o.read_level {
            let token = if level == ReadLevel::Session {
                self.token(self.group_of(target))
            } else {
                0
            };
            let req = ReadRequest {
                id,
                items: o.ops.iter().map(|op| op.item()).collect(),
                client: self.cfg.node,
                level,
                token,
                attempt,
            };
            ctx.emit(|| ObsEvent::ReadSubmit { read: obs_txn(id) });
            self.net.send(ctx, self.cfg.node, target, req);
        } else {
            // Snapshot transactions carry the session token so the
            // delegate's snapshot observes this session's prior commits
            // (read-your-writes across transactions).
            let token = if o.snapshot {
                self.token(self.group_of(target))
            } else {
                0
            };
            let req = TxnRequest {
                id,
                ops: o.ops.clone(),
                client: self.cfg.node,
                attempt,
                snapshot: o.snapshot,
                token,
            };
            ctx.emit(|| ObsEvent::ClientSubmit {
                txn: obs_txn(id),
                attempt,
            });
            self.net
                .send(ctx, self.cfg.node, target, ClientMsg::Request(req));
        }
        ctx.timer(self.cfg.timeout, ClientTimer::Timeout { txn: id, attempt });
    }

    fn resubmit(&mut self, ctx: &mut Ctx<'_>, id: TxnId, rotate: bool) {
        let spg = self.cfg.servers_per_group.max(1);
        let Some(o) = self.outstanding.get_mut(&id) else {
            return;
        };
        o.attempt += 1;
        o.sent_at = ctx.now();
        if rotate {
            // Update-everywhere within the owning group: any of its
            // servers can act as the delegate/coordinator.
            let base = (o.target.0 / spg) * spg;
            o.target = NodeId(base + (o.target.0 - base + 1) % spg);
            let to = o.target.0;
            ctx.emit(|| ObsEvent::Forward {
                txn: obs_txn(id),
                to,
            });
        }
        self.send_request(ctx, id);
    }

    fn on_reply(&mut self, ctx: &mut Ctx<'_>, reply: ServerReply) {
        match reply {
            ServerReply::Committed {
                txn,
                attempt,
                commit_seq,
            } => {
                let Some(o) = self.outstanding.get(&txn) else {
                    return; // duplicate reply after failover
                };
                if attempt != o.attempt {
                    return; // stale attempt
                }
                ctx.emit(|| ObsEvent::ClientAck {
                    txn: obs_txn(txn),
                    attempt,
                    committed: true,
                });
                let now = ctx.now();
                let resp_ms = (now - o.sent_at).as_millis_f64();
                let total_ms = (now - o.first_sent_at).as_millis_f64();
                let group = self.group_of(o.target);
                let readonly = o.readonly;
                if now >= self.cfg.measure_from {
                    ctx.metrics().record("response_ms", resp_ms);
                    ctx.metrics().record("response_total_ms", total_ms);
                }
                let mut oracle = self.oracle.borrow_mut();
                oracle.record_ack(txn, now, resp_ms);
                if readonly {
                    // Classic/broadcast-path read-only commit: recorded
                    // so the read throughput accounting sees it (no
                    // snapshot travels on these paths).
                    oracle.record_read_ack(ReadAckRecord {
                        txn,
                        client: self.cfg.id,
                        group,
                        level: None,
                        snapshot_seq: commit_seq,
                        at: now,
                        response_ms: resp_ms,
                    });
                }
                drop(oracle);
                // Fold the commit point into the session token: follower
                // reads at the session level will observe this write.
                self.advance_token(group, commit_seq);
                self.outstanding.remove(&txn);
                self.done.insert(txn);
                if matches!(self.cfg.load, LoadModel::Closed { .. }) {
                    self.schedule_next_arrival(ctx);
                }
            }
            ServerReply::Aborted { txn, attempt } => {
                let Some(o) = self.outstanding.get(&txn) else {
                    return;
                };
                if attempt != o.attempt {
                    return;
                }
                ctx.emit(|| ObsEvent::ClientAck {
                    txn: obs_txn(txn),
                    attempt,
                    committed: false,
                });
                if ctx.now() >= self.cfg.measure_from {
                    ctx.metrics().incr("client_aborts_seen");
                }
                // Resubmit to the same delegate: a fresh execution reads
                // fresh versions and will usually pass certification. A
                // transaction that keeps aborting (hot contention, a
                // cross-group reservation it keeps colliding with, or a
                // stale-readset loop under delivery backlog) backs off
                // exponentially, so a conflict storm drains the backlog
                // that feeds it instead of sustaining it at the
                // pipeline's capacity forever.
                if o.attempt == 0 {
                    self.resubmit(ctx, txn, false);
                } else {
                    let backoff =
                        SimDuration::from_millis(5) * (1u64 << u64::from(o.attempt.min(8)));
                    let attempt = o.attempt;
                    ctx.timer(backoff, ClientTimer::Resubmit { txn, attempt });
                }
            }
        }
    }

    fn on_read_reply(&mut self, ctx: &mut Ctx<'_>, reply: ReadReply) {
        match reply {
            ReadReply::Served {
                txn,
                attempt,
                group,
                snapshot_seq,
                values: _,
            } => {
                let Some(o) = self.outstanding.get(&txn) else {
                    return; // duplicate reply after a redirect race
                };
                if attempt != o.attempt {
                    return; // stale attempt
                }
                let Some(level) = o.read_level else {
                    // A read reply for a transaction the client no longer
                    // tracks as a read (a resubmission switched paths):
                    // drop it rather than panic — the classic reply wins.
                    return;
                };
                if level == ReadLevel::Session && snapshot_seq < self.token(group) {
                    // The session already observed a newer snapshot (a
                    // concurrent commit or read advanced the token while
                    // this reply was in flight): accepting it would break
                    // monotonic reads. Retry at another member with the
                    // current token.
                    ctx.metrics().incr("read_stale_replies");
                    self.resubmit(ctx, txn, true);
                    return;
                }
                ctx.emit(|| ObsEvent::ReadReply { read: obs_txn(txn) });
                let now = ctx.now();
                let resp_ms = (now - o.sent_at).as_millis_f64();
                let total_ms = (now - o.first_sent_at).as_millis_f64();
                if now >= self.cfg.measure_from {
                    ctx.metrics().record("response_ms", resp_ms);
                    ctx.metrics().record("response_total_ms", total_ms);
                }
                let mut oracle = self.oracle.borrow_mut();
                oracle.record_ack(txn, now, resp_ms);
                oracle.record_read_ack(ReadAckRecord {
                    txn,
                    client: self.cfg.id,
                    group,
                    level: Some(level),
                    snapshot_seq,
                    at: now,
                    response_ms: resp_ms,
                });
                drop(oracle);
                self.advance_token(group, snapshot_seq);
                self.outstanding.remove(&txn);
                self.done.insert(txn);
                if matches!(self.cfg.load, LoadModel::Closed { .. }) {
                    self.schedule_next_arrival(ctx);
                }
            }
            ReadReply::Redirect { txn, attempt, .. } => {
                let Some(o) = self.outstanding.get(&txn) else {
                    return;
                };
                if attempt != o.attempt {
                    return;
                }
                // The replica could not catch up to the session within
                // its bounded wait: rotate to the next group member.
                ctx.metrics().incr("read_redirects_followed");
                self.resubmit(ctx, txn, true);
            }
        }
    }

    fn on_timeout(&mut self, ctx: &mut Ctx<'_>, txn: TxnId, attempt: u32) {
        let Some(o) = self.outstanding.get(&txn) else {
            return; // already answered
        };
        if o.attempt != attempt {
            return; // answered and resubmitted since
        }
        self.oracle.borrow_mut().timeouts += 1;
        ctx.metrics().incr("client_timeouts");
        // Update-everywhere: any server can act as the delegate.
        self.resubmit(ctx, txn, true);
    }
}

impl Actor for Client {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        let payload = match payload.downcast::<StartClient>() {
            Ok(_) => {
                self.schedule_next_arrival(ctx);
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<StopClient>() {
            Ok(_) => {
                self.stopped = true;
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<Incoming<ServerReply>>() {
            Ok(inc) => {
                self.on_reply(ctx, inc.msg);
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<Incoming<ReadReply>>() {
            Ok(inc) => {
                self.on_read_reply(ctx, inc.msg);
                return;
            }
            Err(p) => p,
        };
        match payload.downcast::<ClientTimer>() {
            Ok(t) => match *t {
                ClientTimer::Arrival => {
                    if self.stopped {
                        return;
                    }
                    self.submit_new(ctx);
                    if matches!(self.cfg.load, LoadModel::Open { .. }) {
                        self.schedule_next_arrival(ctx);
                    }
                }
                ClientTimer::Timeout { txn, attempt } => self.on_timeout(ctx, txn, attempt),
                ClientTimer::Resubmit { txn, attempt } => {
                    let still = self
                        .outstanding
                        .get(&txn)
                        .is_some_and(|o| o.attempt == attempt);
                    if still {
                        self.resubmit(ctx, txn, false);
                    }
                }
            },
            Err(_) => panic!("client: unhandled event payload"),
        }
    }

    fn name(&self) -> &str {
        "client"
    }
}
