//! The deterministic fault-scenario engine: one declarative timeline for
//! every fault a run can suffer, a per-safety-level oracle that audits
//! the outcome against the paper's Tables 2–3, and a seeded fuzzer that
//! generates random scenarios and runs the oracle over them.
//!
//! # The plan
//!
//! A [`ScenarioPlan`] is a timeline of typed [`ScenarioEvent`]s — crash
//! (with optional scripted recovery), partition/heal, targeted sequencer
//! kill, loss/duplication/reorder bursts, slow-disk windows, runtime
//! safety switches and operator-style group restarts. It subsumes both
//! the historical `FaultPlan` (crash/recover/switch only) and the
//! workload crate's imperative `CrashScenario` (which is now a thin shim
//! compiling to a plan).
//!
//! Plans execute through the [`Run`] lifecycle: every step becomes a
//! sim-time hook that fires exactly at its instant — also under the
//! stepwise API ([`Run::run_until`]), so any bench, test or example can
//! replay any fault interleaving from a seed.
//!
//! # The oracle
//!
//! [`audit_scenario`] checks, after the run, what the claimed
//! [`SafetyLevel`] promises under the faults the plan injected:
//!
//! * **no lost transactions** for levels whose crash tolerance covers
//!   the plan (group-safe under a partial failure, 2-safe/very-safe
//!   always),
//! * **loss accounting**: when a level *may* lose (1-safe, group-1-safe
//!   after a group failure), every lost transaction must be attributable
//!   to a delegate-crash window,
//! * **convergence and total-order digests** across survivors once the
//!   plan quiesces.
//!
//! # The fuzzer
//!
//! [`fuzz::run_fuzz_case`] derives a random plan from a seed
//! ([`fuzz::generate_plan`]), runs it on a small system and audits it.
//! Same seed, same plan, same fingerprint — a failing seed is a complete
//! reproduction recipe (see `ScenarioPlan::render`). Sharded specs
//! ([`fuzz::FuzzSpec::sharded`]) draw group-targeted faults — including
//! whole-group failures with operator restarts — and additionally audit
//! the cross-group atomicity digest.
//!
//! # Example
//!
//! ```
//! use groupsafe_core::{ScenarioPlan, SafetyLevel};
//! use groupsafe_sim::{SimDuration, SimTime};
//!
//! let plan = ScenarioPlan::new()
//!     // crash server 2 at t = 2 s, recover it 600 ms later
//!     .crash_for(SimTime::from_secs(2), 2, SimDuration::from_millis(600))
//!     // isolate servers {0, 1} (and their clients) for 1.5 s
//!     .partition(SimTime::from_secs(3), vec![vec![0, 1]])
//!     .heal(SimTime::from_millis(4_500))
//!     // kill whichever server is the sequencer at that moment
//!     .kill_sequencer(SimTime::from_secs(5), Some(SimDuration::from_millis(700)));
//! assert_eq!(plan.len(), 4);
//! assert!(plan.any_crash());
//! assert!(plan.fully_healed());
//! assert!(plan.validate(5).is_ok(), "all targets exist on 5 servers");
//! assert!(plan.validate(2).is_err(), "server 2 does not exist on 2");
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use groupsafe_net::{NetConfig, NodeId};
use groupsafe_sim::{SimDuration, SimTime};

use crate::builder::{BuildError, Run};
use crate::safety::SafetyLevel;
use crate::server::{InstallCheckpointCmd, ReplicaServer, RestartServerCmd, SwitchSafetyCmd};
use crate::system::System;

// ---------------------------------------------------------------------
// Plan
// ---------------------------------------------------------------------

/// One typed fault event on the scenario timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioEvent {
    /// Crash a server. The step fires at its instant and *then* strikes
    /// after `after` (zero for an immediate crash; non-zero models a
    /// pre-announced delayed strike, e.g. "the delegate outlives the
    /// group"). With `recover_after`, recovery is scripted at
    /// `at + after + recover_after` when the step fires — matching how
    /// an operator schedules downtime ahead of time.
    Crash {
        /// Target server id.
        server: u32,
        /// Delay between the step firing and the crash striking.
        after: SimDuration,
        /// Downtime before the scripted recovery (None = stays down).
        recover_after: Option<SimDuration>,
    },
    /// Recover a (previously crashed) server at the step's instant.
    Recover {
        /// Target server id.
        server: u32,
    },
    /// Switch every server's safety level (group-safe ↔ group-1-safe,
    /// §5.2).
    SwitchSafety {
        /// The level to switch to.
        level: SafetyLevel,
    },
    /// Split the network into the given server groups (each group takes
    /// its home clients along; unlisted servers form an implicit final
    /// component).
    Partition {
        /// Server-id groups.
        groups: Vec<Vec<u32>>,
    },
    /// Heal all partitions.
    Heal,
    /// Crash whichever live server currently acts as the sequencer
    /// (resolved at fire time — after a previous kill this targets the
    /// *successor*). No-op if no live sequencer exists.
    KillSequencer {
        /// Downtime before the scripted recovery (None = stays down).
        recover_after: Option<SimDuration>,
    },
    /// Probabilistic message loss for a window.
    LossBurst {
        /// Per-delivery drop probability during the burst.
        probability: f64,
        /// Burst length.
        duration: SimDuration,
    },
    /// Probabilistic message duplication for a window.
    DuplicationBurst {
        /// Per-delivery duplication probability during the burst.
        probability: f64,
        /// Burst length.
        duration: SimDuration,
    },
    /// Probabilistic bounded reordering for a window.
    ReorderBurst {
        /// Per-delivery deferral probability during the burst.
        probability: f64,
        /// Upper bound of the deferral (and duplicate spread).
        window: SimDuration,
        /// Burst length.
        duration: SimDuration,
    },
    /// Scale the disk service times of the given servers for a window
    /// (a degraded device; affects WAL flushes and the GC stable log).
    SlowDisk {
        /// Target server ids.
        servers: Vec<u32>,
        /// Service-time multiplier (> 1 slows the device down).
        factor: f64,
        /// Window length.
        duration: SimDuration,
    },
    /// Operator-style restart after a *total* failure in the dynamic
    /// model: the listed (recovered) servers reconcile to the most
    /// advanced recovered state and rejoin as a fresh group.
    RestartGroup {
        /// The servers forming the fresh group.
        servers: Vec<u32>,
    },
    /// Whole-group failure in a sharded system: crash every server of
    /// one replica group at the same instant (the fault the group-safe
    /// loss rule is about, scoped to one shard).
    GroupCrash {
        /// The group to take down.
        group: u32,
        /// Downtime before every member's scripted recovery (None = the
        /// group stays down).
        recover_after: Option<SimDuration>,
    },
    /// Crash whichever live server currently acts as *group `group`'s*
    /// sequencer (resolved at fire time). No-op if the group has no live
    /// sequencer.
    KillGroupSequencer {
        /// The targeted group.
        group: u32,
        /// Downtime before the scripted recovery (None = stays down).
        recover_after: Option<SimDuration>,
    },
    /// Partition scoped to one group of a sharded system: isolate the
    /// given member *ranks* (0-based within the group) — and their home
    /// clients — from everyone else. Healed by [`ScenarioEvent::Heal`].
    GroupPartition {
        /// The targeted group.
        group: u32,
        /// Member ranks to isolate (0-based within the group).
        ranks: Vec<u32>,
    },
}

impl ScenarioEvent {
    /// Short static label for phase marks and progress dumps.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioEvent::Crash { .. } => "crash",
            ScenarioEvent::Recover { .. } => "recover",
            ScenarioEvent::SwitchSafety { .. } => "switch-safety",
            ScenarioEvent::Partition { .. } => "partition",
            ScenarioEvent::Heal => "heal",
            ScenarioEvent::KillSequencer { .. } => "kill-sequencer",
            ScenarioEvent::LossBurst { .. } => "loss-burst",
            ScenarioEvent::DuplicationBurst { .. } => "dup-burst",
            ScenarioEvent::ReorderBurst { .. } => "reorder-burst",
            ScenarioEvent::SlowDisk { .. } => "slow-disk",
            ScenarioEvent::RestartGroup { .. } => "restart-group",
            ScenarioEvent::GroupCrash { .. } => "group-crash",
            ScenarioEvent::KillGroupSequencer { .. } => "kill-group-sequencer",
            ScenarioEvent::GroupPartition { .. } => "group-partition",
        }
    }
}

/// A [`ScenarioEvent`] at an instant of the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioStep {
    /// When the step fires.
    pub at: SimTime,
    /// What it does.
    pub event: ScenarioEvent,
}

/// A declarative timeline of fault events, executed by the [`Run`]
/// lifecycle as sim-time hooks. Steps sharing an instant fire in plan
/// order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioPlan {
    /// The timeline (kept in insertion order; ties resolve by it).
    pub steps: Vec<ScenarioStep>,
}

impl ScenarioPlan {
    /// The empty plan.
    pub fn new() -> Self {
        ScenarioPlan::default()
    }

    /// Append an explicit step.
    pub fn then(mut self, step: ScenarioStep) -> Self {
        self.steps.push(step);
        self
    }

    /// Append every step of `other` after this plan's steps.
    pub fn merge(mut self, other: ScenarioPlan) -> Self {
        self.steps.extend(other.steps);
        self
    }

    /// Crash `server` at `at` (stays down).
    pub fn crash(self, at: SimTime, server: u32) -> Self {
        self.then(ScenarioStep {
            at,
            event: ScenarioEvent::Crash {
                server,
                after: SimDuration::ZERO,
                recover_after: None,
            },
        })
    }

    /// Crash `server` at `at` and recover it after `downtime`.
    pub fn crash_for(self, at: SimTime, server: u32, downtime: SimDuration) -> Self {
        self.then(ScenarioStep {
            at,
            event: ScenarioEvent::Crash {
                server,
                after: SimDuration::ZERO,
                recover_after: Some(downtime),
            },
        })
    }

    /// Recover `server` at `at`.
    pub fn recover(self, at: SimTime, server: u32) -> Self {
        self.then(ScenarioStep {
            at,
            event: ScenarioEvent::Recover { server },
        })
    }

    /// Switch every server's safety level at `at`.
    pub fn switch_safety(self, at: SimTime, level: SafetyLevel) -> Self {
        self.then(ScenarioStep {
            at,
            event: ScenarioEvent::SwitchSafety { level },
        })
    }

    /// Partition the network into the given server groups at `at`.
    pub fn partition(self, at: SimTime, groups: Vec<Vec<u32>>) -> Self {
        self.then(ScenarioStep {
            at,
            event: ScenarioEvent::Partition { groups },
        })
    }

    /// Heal all partitions at `at`.
    pub fn heal(self, at: SimTime) -> Self {
        self.then(ScenarioStep {
            at,
            event: ScenarioEvent::Heal,
        })
    }

    /// Crash the current sequencer at `at` (optionally recovering it).
    pub fn kill_sequencer(self, at: SimTime, recover_after: Option<SimDuration>) -> Self {
        self.then(ScenarioStep {
            at,
            event: ScenarioEvent::KillSequencer { recover_after },
        })
    }

    /// Drop deliveries with `probability` during `[at, at + duration)`.
    pub fn loss_burst(self, at: SimTime, probability: f64, duration: SimDuration) -> Self {
        self.then(ScenarioStep {
            at,
            event: ScenarioEvent::LossBurst {
                probability,
                duration,
            },
        })
    }

    /// Duplicate deliveries with `probability` during the window.
    pub fn duplication_burst(self, at: SimTime, probability: f64, duration: SimDuration) -> Self {
        self.then(ScenarioStep {
            at,
            event: ScenarioEvent::DuplicationBurst {
                probability,
                duration,
            },
        })
    }

    /// Defer deliveries with `probability` by up to `window` during the
    /// burst.
    pub fn reorder_burst(
        self,
        at: SimTime,
        probability: f64,
        window: SimDuration,
        duration: SimDuration,
    ) -> Self {
        self.then(ScenarioStep {
            at,
            event: ScenarioEvent::ReorderBurst {
                probability,
                window,
                duration,
            },
        })
    }

    /// Slow the disks of `servers` by `factor` during the window.
    pub fn slow_disk(
        self,
        at: SimTime,
        servers: Vec<u32>,
        factor: f64,
        duration: SimDuration,
    ) -> Self {
        self.then(ScenarioStep {
            at,
            event: ScenarioEvent::SlowDisk {
                servers,
                factor,
                duration,
            },
        })
    }

    /// Reconcile-and-restart the listed servers as a fresh group at `at`.
    pub fn restart_group(self, at: SimTime, servers: Vec<u32>) -> Self {
        self.then(ScenarioStep {
            at,
            event: ScenarioEvent::RestartGroup { servers },
        })
    }

    /// Crash every server of replica group `group` at `at` (a sharded
    /// whole-group failure), optionally recovering them all after
    /// `recover_after`.
    pub fn crash_whole_group(
        self,
        at: SimTime,
        group: u32,
        recover_after: Option<SimDuration>,
    ) -> Self {
        self.then(ScenarioStep {
            at,
            event: ScenarioEvent::GroupCrash {
                group,
                recover_after,
            },
        })
    }

    /// Crash group `group`'s current sequencer at `at` (optionally
    /// recovering it).
    pub fn kill_sequencer_in(
        self,
        at: SimTime,
        group: u32,
        recover_after: Option<SimDuration>,
    ) -> Self {
        self.then(ScenarioStep {
            at,
            event: ScenarioEvent::KillGroupSequencer {
                group,
                recover_after,
            },
        })
    }

    /// Isolate the given member ranks of group `group` (plus their home
    /// clients) at `at`; heal with [`ScenarioPlan::heal`].
    pub fn partition_group(self, at: SimTime, group: u32, ranks: Vec<u32>) -> Self {
        self.then(ScenarioStep {
            at,
            event: ScenarioEvent::GroupPartition { group, ranks },
        })
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of scheduled steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Validate against a system of `n_servers` replicas.
    pub fn validate(&self, n_servers: u32) -> Result<(), BuildError> {
        let check_server = |s: u32| {
            if s >= n_servers {
                Err(BuildError::FaultTargetOutOfRange {
                    server: s,
                    n_servers,
                })
            } else {
                Ok(())
            }
        };
        let check_p = |name: &'static str, p: f64| {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                Err(BuildError::BadProbability { name, value: p })
            } else {
                Ok(())
            }
        };
        for step in &self.steps {
            match &step.event {
                ScenarioEvent::Crash { server, .. } | ScenarioEvent::Recover { server } => {
                    check_server(*server)?
                }
                ScenarioEvent::Partition { groups } => {
                    for g in groups {
                        for &s in g {
                            check_server(s)?;
                        }
                    }
                }
                ScenarioEvent::LossBurst { probability, .. }
                | ScenarioEvent::DuplicationBurst { probability, .. } => {
                    check_p("burst probability", *probability)?
                }
                ScenarioEvent::ReorderBurst { probability, .. } => {
                    check_p("burst probability", *probability)?
                }
                ScenarioEvent::SlowDisk {
                    servers, factor, ..
                } => {
                    for &s in servers {
                        check_server(s)?;
                    }
                    if !factor.is_finite() || *factor <= 0.0 {
                        return Err(BuildError::BadScenario {
                            what: "slow-disk factor must be positive",
                            value: *factor,
                        });
                    }
                }
                ScenarioEvent::RestartGroup { servers } => {
                    for &s in servers {
                        check_server(s)?;
                    }
                }
                ScenarioEvent::SwitchSafety { .. }
                | ScenarioEvent::Heal
                | ScenarioEvent::KillSequencer { .. }
                // Group-scoped events are validated against the group
                // topology by `validate_groups`.
                | ScenarioEvent::GroupCrash { .. }
                | ScenarioEvent::KillGroupSequencer { .. }
                | ScenarioEvent::GroupPartition { .. } => {}
            }
        }
        Ok(())
    }

    /// Validate the group-scoped events against a topology of `n_groups`
    /// groups of `servers_per_group` members each.
    pub fn validate_groups(&self, n_groups: u32, servers_per_group: u32) -> Result<(), BuildError> {
        let check_group = |g: u32| {
            if g >= n_groups {
                Err(BuildError::GroupOutOfRange { group: g, n_groups })
            } else {
                Ok(())
            }
        };
        for step in &self.steps {
            match &step.event {
                ScenarioEvent::GroupCrash { group, .. }
                | ScenarioEvent::KillGroupSequencer { group, .. } => check_group(*group)?,
                ScenarioEvent::GroupPartition { group, ranks } => {
                    check_group(*group)?;
                    for &r in ranks {
                        if r >= servers_per_group {
                            return Err(BuildError::FaultTargetOutOfRange {
                                server: group * servers_per_group + r,
                                n_servers: n_groups * servers_per_group,
                            });
                        }
                    }
                }
                // Exhaustive on purpose: a new event variant must be
                // routed here explicitly, not silently skip validation.
                ScenarioEvent::Crash { .. }
                | ScenarioEvent::Recover { .. }
                | ScenarioEvent::SwitchSafety { .. }
                | ScenarioEvent::Partition { .. }
                | ScenarioEvent::Heal
                | ScenarioEvent::KillSequencer { .. }
                | ScenarioEvent::LossBurst { .. }
                | ScenarioEvent::DuplicationBurst { .. }
                | ScenarioEvent::ReorderBurst { .. }
                | ScenarioEvent::SlowDisk { .. }
                | ScenarioEvent::RestartGroup { .. } => {}
            }
        }
        Ok(())
    }

    /// Install the plan on a [`Run`]: one hook per step (bursts and
    /// slow-disk windows add a second hook restoring the baseline at the
    /// window's end). `baseline` is the network configuration bursts
    /// reset to.
    pub(crate) fn install(self, run: &mut Run, baseline: &NetConfig) {
        for step in self.steps {
            let at = step.at;
            let label = step.event.label();
            match step.event {
                ScenarioEvent::Crash {
                    server,
                    after,
                    recover_after,
                } => {
                    run.hook_at(at, label, move |sys: &mut System| {
                        let actor = sys.servers[server as usize];
                        let strike = sys.engine.now().max(at) + after;
                        sys.engine.schedule_crash(strike, actor);
                        if let Some(downtime) = recover_after {
                            sys.engine.schedule_recover(strike + downtime, actor);
                        }
                    });
                }
                ScenarioEvent::Recover { server } => {
                    run.hook_at(at, label, move |sys: &mut System| {
                        let actor = sys.servers[server as usize];
                        let now = sys.engine.now().max(at);
                        sys.engine.schedule_recover(now, actor);
                    });
                }
                ScenarioEvent::SwitchSafety { level } => {
                    run.hook_at(at, label, move |sys: &mut System| {
                        let now = sys.engine.now().max(at);
                        for &s in &sys.servers.clone() {
                            sys.engine
                                .schedule_resilient(now, s, SwitchSafetyCmd(level));
                        }
                    });
                }
                ScenarioEvent::Partition { groups } => {
                    run.hook_at(at, label, move |sys: &mut System| {
                        sys.apply_partition(&groups);
                    });
                }
                ScenarioEvent::Heal => {
                    run.hook_at(at, label, move |sys: &mut System| {
                        sys.net.heal();
                    });
                }
                ScenarioEvent::KillSequencer { recover_after } => {
                    run.hook_at(at, label, move |sys: &mut System| {
                        let Some(i) = sys.current_sequencer() else {
                            return;
                        };
                        let actor = sys.servers[i as usize];
                        let now = sys.engine.now().max(at);
                        sys.engine.schedule_crash(now, actor);
                        if let Some(downtime) = recover_after {
                            sys.engine.schedule_recover(now + downtime, actor);
                        }
                    });
                }
                ScenarioEvent::LossBurst {
                    probability,
                    duration,
                } => {
                    run.hook_at(at, label, move |sys: &mut System| {
                        sys.net.set_loss_probability(probability);
                    });
                    let base = baseline.loss_probability;
                    run.hook_at(at + duration, "loss-burst-end", move |sys: &mut System| {
                        sys.net.set_loss_probability(base);
                    });
                }
                ScenarioEvent::DuplicationBurst {
                    probability,
                    duration,
                } => {
                    run.hook_at(at, label, move |sys: &mut System| {
                        sys.net.set_duplicate_probability(probability);
                    });
                    let base = baseline.duplicate_probability;
                    run.hook_at(at + duration, "dup-burst-end", move |sys: &mut System| {
                        sys.net.set_duplicate_probability(base);
                    });
                }
                ScenarioEvent::ReorderBurst {
                    probability,
                    window,
                    duration,
                } => {
                    run.hook_at(at, label, move |sys: &mut System| {
                        sys.net.set_reorder(probability, window);
                    });
                    let (bp, bw) = (baseline.reorder_probability, baseline.reorder_window);
                    run.hook_at(
                        at + duration,
                        "reorder-burst-end",
                        move |sys: &mut System| {
                            sys.net.set_reorder(bp, bw);
                        },
                    );
                }
                ScenarioEvent::SlowDisk {
                    servers,
                    factor,
                    duration,
                } => {
                    let ends = servers.clone();
                    run.hook_at(at, label, move |sys: &mut System| {
                        for &i in &servers {
                            let id = sys.servers[i as usize];
                            sys.engine
                                .actor_mut::<ReplicaServer>(id)
                                .set_disk_slowdown(factor);
                        }
                    });
                    run.hook_at(at + duration, "slow-disk-end", move |sys: &mut System| {
                        for &i in &ends {
                            let id = sys.servers[i as usize];
                            sys.engine
                                .actor_mut::<ReplicaServer>(id)
                                .set_disk_slowdown(1.0);
                        }
                    });
                }
                ScenarioEvent::RestartGroup { servers } => {
                    run.hook_at(at, label, move |sys: &mut System| {
                        reconcile_restart(sys, &servers);
                    });
                }
                ScenarioEvent::GroupCrash {
                    group,
                    recover_after,
                } => {
                    run.hook_at(at, label, move |sys: &mut System| {
                        let strike = sys.engine.now().max(at);
                        for i in sys.group_server_indices(group) {
                            let actor = sys.servers[i as usize];
                            sys.engine.schedule_crash(strike, actor);
                            if let Some(downtime) = recover_after {
                                sys.engine.schedule_recover(strike + downtime, actor);
                            }
                        }
                    });
                }
                ScenarioEvent::KillGroupSequencer {
                    group,
                    recover_after,
                } => {
                    run.hook_at(at, label, move |sys: &mut System| {
                        let Some(i) = sys.current_sequencer_of(group) else {
                            return;
                        };
                        let actor = sys.servers[i as usize];
                        let now = sys.engine.now().max(at);
                        sys.engine.schedule_crash(now, actor);
                        if let Some(downtime) = recover_after {
                            sys.engine.schedule_recover(now + downtime, actor);
                        }
                    });
                }
                ScenarioEvent::GroupPartition { group, ranks } => {
                    run.hook_at(at, label, move |sys: &mut System| {
                        let spg = sys.servers_per_group;
                        let side: Vec<u32> = ranks.iter().map(|&r| group * spg + r).collect();
                        sys.apply_partition(&[side]);
                    });
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Introspection (what the oracle derives from the timeline)
    // -----------------------------------------------------------------

    /// Down-interval per fault: `(key, from, to)` with `to =
    /// SimTime::MAX` when the target never recovers. Explicit crashes
    /// (and [`ScenarioEvent::GroupCrash`] expansions over a group of
    /// `spg` members) carry their server id; sequencer kills — whose
    /// victim is resolved at runtime — get pseudo ids above the real
    /// range.
    fn down_intervals(&self, spg: u32, n_groups: u32) -> Vec<(u32, SimTime, SimTime)> {
        let total = spg * n_groups.max(1);
        let mut out = Vec::new();
        let mut pseudo = total;
        for step in &self.steps {
            match &step.event {
                ScenarioEvent::Crash {
                    server,
                    after,
                    recover_after,
                } => {
                    let from = step.at + *after;
                    let to = recover_after.map_or(SimTime::MAX, |d| from + d);
                    out.push((*server, from, to));
                }
                ScenarioEvent::GroupCrash {
                    group,
                    recover_after,
                } => {
                    let from = step.at;
                    let to = recover_after.map_or(SimTime::MAX, |d| from + d);
                    for member in group * spg..(group + 1) * spg {
                        out.push((member, from, to));
                    }
                }
                ScenarioEvent::KillSequencer { recover_after }
                | ScenarioEvent::KillGroupSequencer { recover_after, .. } => {
                    let from = step.at;
                    let to = recover_after.map_or(SimTime::MAX, |d| from + d);
                    out.push((pseudo, from, to));
                    pseudo += 1;
                }
                ScenarioEvent::Recover { server } => {
                    // Close the target's latest open interval.
                    if let Some(iv) = out
                        .iter_mut()
                        .rev()
                        .find(|(s, _, to)| s == server && *to > step.at)
                    {
                        iv.2 = step.at;
                    }
                }
                // Exhaustive on purpose: a new event variant that takes
                // servers down must extend the interval accounting.
                ScenarioEvent::SwitchSafety { .. }
                | ScenarioEvent::Partition { .. }
                | ScenarioEvent::Heal
                | ScenarioEvent::LossBurst { .. }
                | ScenarioEvent::DuplicationBurst { .. }
                | ScenarioEvent::ReorderBurst { .. }
                | ScenarioEvent::SlowDisk { .. }
                | ScenarioEvent::RestartGroup { .. }
                | ScenarioEvent::GroupPartition { .. } => {}
            }
        }
        out
    }

    /// The maximum number of servers simultaneously down under this plan
    /// (conservative: kill-sequencer events count as one extra server).
    pub fn max_simultaneous_down(&self, n_servers: u32) -> u32 {
        let intervals = self.down_intervals(n_servers, 1);
        let mut worst = 0;
        for &(_, from, _) in &intervals {
            let overlap = intervals
                .iter()
                .filter(|&&(_, f, t)| f <= from && from < t)
                .map(|(s, _, _)| *s)
                .collect::<std::collections::BTreeSet<_>>()
                .len() as u32;
            worst = worst.max(overlap);
        }
        worst
    }

    /// True when the plan may crash the whole (single-group) system at
    /// once. Sharded audits use [`ScenarioPlan::group_failure_of`] per
    /// group instead.
    pub fn group_failure(&self, n_servers: u32) -> bool {
        n_servers > 0 && self.max_simultaneous_down(n_servers) >= n_servers
    }

    /// True when the plan may take *all* of group `g`'s members (out of
    /// `n_groups` groups of `spg` servers) down at once. Sequencer kills
    /// targeting the group — or untargeted ones, whose victim could be
    /// anywhere — conservatively count as one member each.
    pub fn group_failure_of(&self, spg: u32, n_groups: u32, g: u32) -> bool {
        if spg == 0 {
            return false;
        }
        let members = g * spg..(g + 1) * spg;
        let intervals = self.down_intervals(spg, n_groups);
        let total = spg * n_groups.max(1);
        let relevant = |&(s, _, _): &(u32, SimTime, SimTime)| {
            members.contains(&s) || s >= total // pseudo: a sequencer kill
        };
        let mut worst = 0u32;
        for iv in intervals.iter().filter(|iv| relevant(iv)) {
            let from = iv.1;
            let mut down = std::collections::BTreeSet::new();
            let mut seq_kills = 0u32;
            for &(s, f, t) in intervals.iter().filter(|iv| relevant(iv)) {
                if f <= from && from < t {
                    if s >= total {
                        seq_kills += 1;
                    } else {
                        down.insert(s);
                    }
                }
            }
            let covered = (down.len() as u32 + seq_kills).min(spg);
            worst = worst.max(covered);
        }
        worst >= spg
    }

    /// True when some [`ScenarioEvent::RestartGroup`] step covers every
    /// member of group `g` (the operator repair the view-based levels
    /// need after that group's total failure).
    pub fn has_restart_of(&self, spg: u32, g: u32) -> bool {
        let members: Vec<u32> = (g * spg..(g + 1) * spg).collect();
        self.steps.iter().any(|s| match &s.event {
            ScenarioEvent::RestartGroup { servers } => members.iter().all(|m| servers.contains(m)),
            // Exhaustive on purpose: only an operator restart repairs a
            // total failure; new variants must opt in here explicitly.
            ScenarioEvent::Crash { .. }
            | ScenarioEvent::Recover { .. }
            | ScenarioEvent::SwitchSafety { .. }
            | ScenarioEvent::Partition { .. }
            | ScenarioEvent::Heal
            | ScenarioEvent::KillSequencer { .. }
            | ScenarioEvent::LossBurst { .. }
            | ScenarioEvent::DuplicationBurst { .. }
            | ScenarioEvent::ReorderBurst { .. }
            | ScenarioEvent::SlowDisk { .. }
            | ScenarioEvent::GroupCrash { .. }
            | ScenarioEvent::KillGroupSequencer { .. }
            | ScenarioEvent::GroupPartition { .. } => false,
        })
    }

    /// True when any server crashes at some point.
    pub fn any_crash(&self) -> bool {
        self.steps.iter().any(|s| {
            matches!(
                s.event,
                ScenarioEvent::Crash { .. }
                    | ScenarioEvent::KillSequencer { .. }
                    | ScenarioEvent::GroupCrash { .. }
                    | ScenarioEvent::KillGroupSequencer { .. }
            )
        })
    }

    /// True when the plan contains runtime-targeted sequencer kills
    /// (whose victim the plan cannot name statically).
    pub fn has_kill_sequencer(&self) -> bool {
        self.steps.iter().any(|s| {
            matches!(
                s.event,
                ScenarioEvent::KillSequencer { .. } | ScenarioEvent::KillGroupSequencer { .. }
            )
        })
    }

    /// The instants at which the plan's explicit crashes of `server`
    /// strike (kill-sequencer events are excluded — their target is
    /// resolved at runtime).
    pub fn crash_strikes(&self, server: u32) -> Vec<SimTime> {
        self.steps
            .iter()
            .filter_map(|step| match &step.event {
                ScenarioEvent::Crash {
                    server: s, after, ..
                } if *s == server => Some(step.at + *after),
                // Exhaustive on purpose: a new variant that crashes a
                // statically named server must be attributed here (the
                // 1-safe loss-window audit depends on it).
                ScenarioEvent::Crash { .. }
                | ScenarioEvent::Recover { .. }
                | ScenarioEvent::SwitchSafety { .. }
                | ScenarioEvent::Partition { .. }
                | ScenarioEvent::Heal
                | ScenarioEvent::KillSequencer { .. }
                | ScenarioEvent::LossBurst { .. }
                | ScenarioEvent::DuplicationBurst { .. }
                | ScenarioEvent::ReorderBurst { .. }
                | ScenarioEvent::SlowDisk { .. }
                | ScenarioEvent::RestartGroup { .. }
                | ScenarioEvent::GroupCrash { .. }
                | ScenarioEvent::KillGroupSequencer { .. }
                | ScenarioEvent::GroupPartition { .. } => None,
            })
            .collect()
    }

    /// True when the plan injects probabilistic message loss.
    pub fn uses_loss(&self) -> bool {
        self.steps
            .iter()
            .any(|s| matches!(s.event, ScenarioEvent::LossBurst { .. }))
    }

    /// True when the plan can drop deliveries at all (crash, kill,
    /// partition or loss) — the faults a 0-safe run may lose under.
    pub fn any_delivery_fault(&self) -> bool {
        self.any_crash()
            || self.uses_loss()
            || self.steps.iter().any(|s| {
                matches!(
                    s.event,
                    ScenarioEvent::Partition { .. } | ScenarioEvent::GroupPartition { .. }
                )
            })
    }

    /// True when every partition is followed by a heal. Steps fire in
    /// `(timestamp, insertion)` order, so the comparison uses that key —
    /// a heal inserted earlier but firing later still heals.
    pub fn fully_healed(&self) -> bool {
        let mut last_partition: Option<(SimTime, usize)> = None;
        let mut last_heal: Option<(SimTime, usize)> = None;
        for (i, step) in self.steps.iter().enumerate() {
            match step.event {
                ScenarioEvent::Partition { .. } | ScenarioEvent::GroupPartition { .. } => {
                    last_partition = last_partition.max(Some((step.at, i)))
                }
                ScenarioEvent::Heal => last_heal = last_heal.max(Some((step.at, i))),
                // Exhaustive on purpose: a new variant that splits the
                // network must register as a partition here.
                ScenarioEvent::Crash { .. }
                | ScenarioEvent::Recover { .. }
                | ScenarioEvent::SwitchSafety { .. }
                | ScenarioEvent::KillSequencer { .. }
                | ScenarioEvent::LossBurst { .. }
                | ScenarioEvent::DuplicationBurst { .. }
                | ScenarioEvent::ReorderBurst { .. }
                | ScenarioEvent::SlowDisk { .. }
                | ScenarioEvent::RestartGroup { .. }
                | ScenarioEvent::GroupCrash { .. }
                | ScenarioEvent::KillGroupSequencer { .. } => {}
            }
        }
        match (last_partition, last_heal) {
            (None, _) => true,
            (Some(p), Some(h)) => h > p,
            (Some(_), None) => false,
        }
    }

    /// True when the plan contains an operator restart.
    pub fn has_restart(&self) -> bool {
        self.steps
            .iter()
            .any(|s| matches!(s.event, ScenarioEvent::RestartGroup { .. }))
    }

    /// The last instant at which the plan still disturbs the system
    /// (crash strikes, recoveries, heals, burst/window ends).
    pub fn last_disturbance(&self) -> SimTime {
        let mut last = SimTime::ZERO;
        for step in &self.steps {
            let end = match &step.event {
                ScenarioEvent::Crash {
                    after,
                    recover_after,
                    ..
                } => step.at + *after + recover_after.unwrap_or(SimDuration::ZERO),
                ScenarioEvent::KillSequencer { recover_after }
                | ScenarioEvent::KillGroupSequencer { recover_after, .. }
                | ScenarioEvent::GroupCrash { recover_after, .. } => {
                    step.at + recover_after.unwrap_or(SimDuration::ZERO)
                }
                ScenarioEvent::LossBurst { duration, .. }
                | ScenarioEvent::DuplicationBurst { duration, .. }
                | ScenarioEvent::ReorderBurst { duration, .. } => step.at + *duration,
                // A slow-disk window keeps disturbing the system after it
                // ends: accesses queued at `factor`× service time form a
                // backlog that drains at roughly `factor × duration` wall
                // time (plus slack for recovery catch-up writes competing
                // for the same spindles).
                ScenarioEvent::SlowDisk {
                    duration, factor, ..
                } => {
                    step.at
                        + *duration * (factor.ceil().max(1.0) as u64)
                        + SimDuration::from_secs(1)
                }
                // Exhaustive on purpose: a new variant with an
                // after-effect window must extend the disturbance
                // horizon, or the oracle audits a still-moving system.
                ScenarioEvent::Recover { .. }
                | ScenarioEvent::SwitchSafety { .. }
                | ScenarioEvent::Partition { .. }
                | ScenarioEvent::Heal
                | ScenarioEvent::RestartGroup { .. }
                | ScenarioEvent::GroupPartition { .. } => step.at,
            };
            last = last.max(end);
        }
        last
    }

    /// A human-readable dump of the timeline (the reproduction recipe a
    /// failing fuzz seed prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            out.push_str(&format!(
                "  t={:>10.3}ms  {:?}\n",
                step.at.as_millis_f64(),
                step.event
            ));
        }
        if out.is_empty() {
            out.push_str("  (empty plan)\n");
        }
        out
    }
}

/// Operator-driven restart after a total failure in the dynamic model:
/// the listed (recovered) servers rejoin a fresh group, all adopting the
/// most advanced recovered state (all states are durable prefixes of the
/// same delivery history, so the maximum is their union).
pub fn reconcile_restart(system: &mut System, servers: &[u32]) {
    let now = system.engine.now();
    let (best, seq_base) = {
        let mut best = 0u32;
        let mut best_v = 0;
        for &i in servers {
            let v = system.server(i).db().max_version();
            if v >= best_v {
                best_v = v;
                best = i;
            }
        }
        (best, best_v)
    };
    let ckpt = system.server(best).db().checkpoint();
    let members: Vec<NodeId> = servers.iter().map(|&i| NodeId(i)).collect();
    for &i in servers {
        let actor = system.servers[i as usize];
        if i != best {
            system
                .engine
                .schedule_resilient(now, actor, InstallCheckpointCmd(ckpt.clone()));
        }
        system.engine.schedule_resilient(
            now,
            actor,
            RestartServerCmd {
                members: members.clone(),
                seq_base,
            },
        );
    }
}

// ---------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------

use groupsafe_db::TxnId;

/// One invariant the run violated.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleViolation {
    /// An acknowledged transaction is missing from every live replica in
    /// a situation the claimed safety level forbids.
    UnexpectedLoss {
        /// The claimed level.
        level: SafetyLevel,
        /// The lost transaction.
        txn: TxnId,
        /// Its delegate.
        delegate: NodeId,
        /// Why the level forbids this loss.
        reason: &'static str,
    },
    /// Live replicas disagree on committed state after quiescence.
    Divergence {
        /// The distinct state digests observed.
        digests: Vec<u64>,
    },
    /// Never-crashed replicas processed different delivery sequences.
    OrderDivergence {
        /// `(server, order digest)` per audited replica.
        digests: Vec<(u32, u64)>,
    },
    /// A cross-group transaction was acknowledged but one of its touched
    /// groups holds no commit for it, in a situation the claimed level's
    /// per-group loss rules do not excuse (the all-or-nothing digest of
    /// the sharded system).
    AtomicityViolation {
        /// The half-committed transaction.
        txn: TxnId,
        /// The touched group missing its slice.
        group: u32,
        /// Every group the transaction touched.
        groups: Vec<u32>,
    },
    /// The read path violated one of its per-level freshness invariants
    /// (see [`crate::reads::audit_reads`]).
    Read(crate::reads::ReadViolation),
    /// Never-crashed replicas of one group reached different
    /// certification verdicts for the same delivery sequence — the
    /// determinism the snapshot-isolation pipeline (and the classic one)
    /// rests on.
    CertificationDivergence {
        /// The diverging group.
        group: u32,
        /// `(server, certification digest)` per audited replica.
        digests: Vec<(u32, u64)>,
    },
    /// Two committed snapshot-isolation transactions both wrote `item`
    /// although the second's snapshot predates the first's commit —
    /// first-committer-wins certification must have aborted one of them.
    SiLostUpdate {
        /// The first committer.
        first: TxnId,
        /// The transaction that should have been aborted.
        second: TxnId,
        /// The contended item.
        item: groupsafe_db::ItemId,
    },
    /// A snapshot-isolation transaction observed a version above its
    /// snapshot, or one no committed transaction ever wrote.
    SiDirtyRead {
        /// The reading transaction.
        txn: TxnId,
        /// The item read.
        item: groupsafe_db::ItemId,
        /// The version observed.
        version: u64,
    },
}

impl std::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleViolation::UnexpectedLoss {
                level,
                txn,
                delegate,
                reason,
            } => write!(
                f,
                "{level}: acknowledged {txn:?} (delegate {delegate:?}) lost — {reason}"
            ),
            OracleViolation::Divergence { digests } => {
                write!(
                    f,
                    "live replicas diverged: {} distinct states",
                    digests.len()
                )
            }
            OracleViolation::OrderDivergence { digests } => {
                write!(f, "survivors disagree on delivery order: {digests:?}")
            }
            OracleViolation::AtomicityViolation { txn, group, groups } => {
                write!(
                    f,
                    "cross-group {txn:?} (touched {groups:?}) acknowledged but group {group} \
                     holds no commit for it"
                )
            }
            OracleViolation::Read(v) => write!(f, "read path: {v}"),
            OracleViolation::CertificationDivergence { group, digests } => {
                write!(
                    f,
                    "group {group}: survivors disagree on certification verdicts: {digests:?}"
                )
            }
            OracleViolation::SiLostUpdate {
                first,
                second,
                item,
            } => {
                write!(
                    f,
                    "snapshot isolation lost update: {second:?} committed a write of {item:?} \
                     although its snapshot predates {first:?}'s commit"
                )
            }
            OracleViolation::SiDirtyRead { txn, item, version } => {
                write!(
                    f,
                    "snapshot transaction {txn:?} read {item:?} at version {version}, which its \
                     snapshot cannot contain"
                )
            }
        }
    }
}

/// The oracle's verdict over one finished scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioAudit {
    /// The claimed safety level the invariants were checked against.
    pub level: SafetyLevel,
    /// Violations found (empty = the run honoured the level).
    pub violations: Vec<OracleViolation>,
    /// Acknowledged transactions missing from every live replica.
    pub lost: usize,
    /// Whether the plan crashed a whole replica group at once (any group
    /// of a sharded system).
    pub group_failed: bool,
    /// Whether the convergence/order checks applied everywhere (every
    /// group quiesced: partitions healed, no loss bursts, disturbances
    /// settled, total failures repaired).
    pub quiescent: bool,
    /// Acknowledged cross-group transactions audited for all-or-nothing
    /// (0 for unsharded runs).
    pub cross_group_audited: usize,
    /// Locally served reads audited against the read-freshness
    /// invariants (0 when the local read path was off).
    pub reads_audited: usize,
    /// Snapshot-isolation transactions audited against the SI anomaly
    /// invariants (0 when the mix contained none).
    pub si_audited: usize,
}

impl ScenarioAudit {
    /// True when no invariant was violated.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// How long after the plan's last disturbance the oracle requires before
/// it trusts convergence checks.
const SETTLE: SimDuration = SimDuration::from_secs(2);

/// Check the paper's per-level invariants over a finished run.
///
/// `level` is the *claimed* safety level — normally the one the system
/// ran at; passing a stronger claim than the system honours is how the
/// negative tests prove the oracle catches violations.
pub fn audit_scenario(plan: &ScenarioPlan, system: &System, level: SafetyLevel) -> ScenarioAudit {
    let n = system.n_servers;
    let spg = system.servers_per_group.max(1);
    let n_groups = system.n_groups.max(1);
    let sharded = n_groups > 1;
    // Whole-group failure, per group: the single-group system keeps the
    // historical whole-system check; a sharded one applies the loss rules
    // group by group.
    let group_failed_of: Vec<bool> = if sharded {
        (0..n_groups)
            .map(|g| plan.group_failure_of(spg, n_groups, g))
            .collect()
    } else {
        vec![plan.group_failure(n)]
    };
    let group_failed = group_failed_of.iter().any(|&b| b);
    let lost = system.lost_transactions();
    let mut violations = Vec::new();

    for lt in &lost {
        let Some(delegate) = system
            .oracle
            .borrow()
            .commits
            .get(&lt.txn)
            .map(|c| c.delegate)
        else {
            continue; // no commit record: check_no_loss never reports these
        };
        // The groups whose durability the transaction depended on: every
        // touched group of a cross-group commit, else its delegate's.
        let owning: Vec<u32> = system
            .oracle
            .borrow()
            .xg
            .get(&lt.txn)
            .map(|r| r.groups.clone())
            .unwrap_or_else(|| vec![delegate.0 / spg]);
        let owners_failed = owning
            .iter()
            .all(|&g| group_failed_of.get(g as usize).copied().unwrap_or(false));
        let delegate_crashed = system.server(delegate.0).crash_count() > 0;
        let delegate_dead = !system.engine.is_alive(system.servers[delegate.index()]);
        let allowed = match level {
            // Table 3: 0-safe may lose under any delivery fault.
            SafetyLevel::ZeroSafe => plan.any_delivery_fault(),
            // 1-safe loses exactly in delegate-crash windows: the
            // transaction must have been acknowledged at or before some
            // crash of its delegate (the un-propagated window). A crash
            // that fully precedes the acknowledgement explains nothing.
            // Runtime-targeted sequencer kills cannot be attributed
            // statically, so their presence falls back to the coarse
            // delegate-crashed check.
            SafetyLevel::OneSafe => {
                delegate_crashed
                    && (plan.has_kill_sequencer() || {
                        let ack_at = system.oracle.borrow().acked.get(&lt.txn).map(|a| a.at);
                        ack_at.is_some_and(|at| {
                            plan.crash_strikes(delegate.0)
                                .iter()
                                .any(|&strike| at <= strike)
                        })
                    })
            }
            // Group-safe loses only if the whole owning group failed
            // (every touched group, for a cross-group commit).
            SafetyLevel::GroupSafe => owners_failed,
            // Group-1-safe additionally requires the delegate's log to
            // never return.
            SafetyLevel::GroupOneSafe => owners_failed && delegate_dead,
            // 2-safe and very-safe never lose.
            SafetyLevel::TwoSafe | SafetyLevel::VerySafe => false,
        };
        if !allowed {
            let reason = match level {
                SafetyLevel::ZeroSafe => "the plan injected no delivery fault",
                SafetyLevel::OneSafe => "no delegate-crash window covers it",
                SafetyLevel::GroupSafe => "a majority of its group survived the whole run",
                SafetyLevel::GroupOneSafe => {
                    if owners_failed {
                        "the delegate's log returned"
                    } else {
                        "a majority of its group survived the whole run"
                    }
                }
                SafetyLevel::TwoSafe | SafetyLevel::VerySafe => "this level never loses",
            };
            violations.push(OracleViolation::UnexpectedLoss {
                level,
                txn: lt.txn,
                delegate,
                reason,
            });
        }
    }

    // The cross-group atomicity digest: every acknowledged cross-group
    // transaction must be committed in *each* of its touched groups —
    // all-or-nothing — unless that group's own loss rules (or the
    // coordinator group's death before the decision could spread) excuse
    // the missing slice.
    let mut cross_group_audited = 0usize;
    if sharded {
        let oracle = system.oracle.borrow();
        for (txn, xg) in &oracle.xg {
            if !oracle.acked.contains_key(txn) {
                continue;
            }
            cross_group_audited += 1;
            for &g in &xg.groups {
                let states = system.replica_states_of(g);
                let committed = states
                    .iter()
                    .any(|(db, live)| *live && db.is_committed(*txn));
                if committed {
                    continue;
                }
                let any_live = states.iter().any(|(_, live)| *live);
                let g_failed = group_failed_of.get(g as usize).copied().unwrap_or(false);
                let coord_failed = group_failed_of
                    .get(xg.coordinator_group as usize)
                    .copied()
                    .unwrap_or(false);
                let allowed = !any_live // group unavailable, not provably lost
                    || match level {
                        SafetyLevel::ZeroSafe => plan.any_delivery_fault(),
                        SafetyLevel::OneSafe => true, // lazy never runs the protocol
                        SafetyLevel::GroupSafe | SafetyLevel::GroupOneSafe => {
                            g_failed || coord_failed
                        }
                        SafetyLevel::TwoSafe | SafetyLevel::VerySafe => false,
                    };
                if !allowed {
                    violations.push(OracleViolation::AtomicityViolation {
                        txn: *txn,
                        group: g,
                        groups: xg.groups.clone(),
                    });
                }
            }
        }
    }

    // Convergence applies once the plan quiesced: partitions healed, no
    // loss bursts (a lost multicast can gap a live view member until the
    // next view change), disturbances settled, and — for the view-based
    // levels — no unrepaired total failure. The lazy baseline replicates
    // remote writes unlogged, so any crash voids its convergence claim.
    // In a sharded system each group is judged on its own: a repaired or
    // untouched group is audited even while another is still down.
    let view_based = matches!(
        level,
        SafetyLevel::ZeroSafe | SafetyLevel::GroupSafe | SafetyLevel::GroupOneSafe
    );
    let base_quiet = plan.fully_healed()
        && !plan.uses_loss()
        && system.engine.now() >= plan.last_disturbance() + SETTLE
        // The weak levels promise nothing under delivery faults
        // (Table 2: they tolerate zero crashes): a 0-safe minority view
        // legitimately diverges during a partition, and the lazy
        // baseline's fire-and-forget propagation has no retransmission,
        // so writes dropped by any fault stay missing.
        && (!matches!(level, SafetyLevel::ZeroSafe | SafetyLevel::OneSafe)
            || !plan.any_delivery_fault());

    let mut quiescent_groups = 0u32;
    for g in 0..n_groups {
        let g_failed = group_failed_of.get(g as usize).copied().unwrap_or(false);
        let repaired = if sharded {
            plan.has_restart_of(spg, g)
        } else {
            plan.has_restart()
        };
        let group_quiet = base_quiet && (!g_failed || !view_based || repaired);
        if !group_quiet {
            continue;
        }
        quiescent_groups += 1;
        let digests = if sharded {
            crate::verify::check_convergence(&system.replica_states_of(g))
        } else {
            system.convergence()
        };
        if digests.len() > 1 {
            violations.push(OracleViolation::Divergence { digests });
        }
        // Total order: replicas that never crashed and never installed a
        // peer checkpoint processed every delivery themselves — their
        // decision digests must agree (per group: different groups order
        // different histories by design).
        let members: Vec<u32> = if sharded {
            system.group_server_indices(g)
        } else {
            (0..n).collect()
        };
        let mut order: Vec<(u32, u64)> = members
            .iter()
            .copied()
            .filter(|&i| {
                let s = system.server(i);
                s.crash_count() == 0 && s.transfer_count() == 0
            })
            .map(|i| (i, system.server(i).order_digest()))
            .collect();
        order.dedup_by_key(|(_, d)| *d);
        if order.len() > 1 {
            violations.push(OracleViolation::OrderDivergence { digests: order });
        }
        // Certification determinism: the same replicas must also agree
        // on every verdict (commit vs abort, classic and snapshot alike)
        // — the digest folds the verdict and the shipped snapshot per
        // delivery.
        let mut cert: Vec<(u32, u64)> = members
            .into_iter()
            .filter(|&i| {
                let s = system.server(i);
                s.crash_count() == 0 && s.transfer_count() == 0
            })
            .map(|i| (i, system.server(i).cert_digest()))
            .collect();
        cert.dedup_by_key(|(_, d)| *d);
        if cert.len() > 1 {
            violations.push(OracleViolation::CertificationDivergence {
                group: g,
                digests: cert,
            });
        }
    }
    let quiescent = quiescent_groups == n_groups;

    // The read-freshness audit: every locally served read must honour
    // its level's invariants (session floors and monotonicity, stable
    // reads at or below the watermark and never observing a value the
    // loss audit later declared lost — the whole-group-failure window
    // the level itself excuses excepted).
    let reads_audited = {
        let oracle = system.oracle.borrow();
        let read_violations = crate::reads::audit_reads(&oracle, &lost, &|g| {
            group_failed_of.get(g as usize).copied().unwrap_or(false)
        });
        violations.extend(read_violations.into_iter().map(OracleViolation::Read));
        oracle.reads.len()
    };

    // The SI anomaly audits over the delegates' certification records:
    // first-committer-wins (two committed snapshot transactions must not
    // both win an item across a stale-snapshot interval) and snapshot
    // containment (a snapshot read never observes a version above its
    // snapshot, nor one no committed transaction wrote). Delivery
    // sequence numbers anchor both checks, so they are skipped where the
    // numbering itself is suspect: groups that wholly failed (a restart
    // from a survivor's log can reuse a lost suffix's sequence numbers)
    // and the weak levels under delivery faults (0-safe minority views
    // deliver divergent sequences by design).
    let si_trustworthy = !matches!(level, SafetyLevel::ZeroSafe | SafetyLevel::OneSafe)
        || !plan.any_delivery_fault();
    let si_audited = {
        let oracle = system.oracle.borrow();
        let mut audited = 0usize;
        let mut committed_versions: std::collections::BTreeSet<(groupsafe_db::ItemId, u64)> =
            std::collections::BTreeSet::new();
        for rec in oracle.commits.values() {
            for w in &rec.writes {
                committed_versions.insert((w.item, w.version));
            }
        }
        type SiEntry = (u64, u64, TxnId);
        let mut by_item: std::collections::BTreeMap<(u32, groupsafe_db::ItemId), Vec<SiEntry>> =
            std::collections::BTreeMap::new();
        for rec in &oracle.si_txns {
            let g_failed = group_failed_of
                .get(rec.group as usize)
                .copied()
                .unwrap_or(false);
            if !si_trustworthy || g_failed {
                continue;
            }
            audited += 1;
            for &(item, v) in &rec.readset {
                if v > rec.snapshot || (v != 0 && !committed_versions.contains(&(item, v))) {
                    violations.push(OracleViolation::SiDirtyRead {
                        txn: rec.txn,
                        item,
                        version: v,
                    });
                }
            }
            if rec.committed {
                for &item in &rec.writes {
                    by_item.entry((rec.group, item)).or_default().push((
                        rec.commit_seq,
                        rec.snapshot,
                        rec.txn,
                    ));
                }
            }
        }
        for ((_, item), entries) in &mut by_item {
            entries.sort_unstable();
            for i in 0..entries.len() {
                for j in i + 1..entries.len() {
                    let (first_commit, _, first) = entries[i];
                    let (_, second_snapshot, second) = entries[j];
                    if first != second && second_snapshot < first_commit {
                        violations.push(OracleViolation::SiLostUpdate {
                            first,
                            second,
                            item: *item,
                        });
                    }
                }
            }
        }
        audited
    };

    ScenarioAudit {
        level,
        violations,
        lost: lost.len(),
        group_failed,
        quiescent,
        cross_group_audited,
        reads_audited,
        si_audited,
    }
}

// ---------------------------------------------------------------------
// Fuzzer
// ---------------------------------------------------------------------

/// Seeded random-scenario fuzzing: generate a plan, run it, audit it.
pub mod fuzz {
    use super::*;
    use crate::builder::Load;

    /// The envelope the generator draws scenarios from.
    #[derive(Debug, Clone)]
    pub struct FuzzSpec {
        /// Safety level under test (selects the technique).
        pub level: SafetyLevel,
        /// Replica count.
        pub n_servers: u32,
        /// Clients per replica.
        pub clients_per_server: u32,
        /// Offered open-loop load, tps.
        pub load_tps: f64,
        /// Measurement window (faults land in its first half).
        pub measure: SimDuration,
        /// Drain window after the clients stop.
        pub drain: SimDuration,
        /// Maximum fault events per plan.
        pub max_events: usize,
        /// Allow loss bursts (generated only in crash-free plans: with
        /// no crash, every delivered copy lives on a live replica, so
        /// the no-loss invariant stays checkable under arbitrary loss).
        pub allow_loss: bool,
        /// Replica groups (1 = the classic unsharded envelope;
        /// `n_servers` then counts servers per group and the generator
        /// draws group-targeted faults, including whole-group failures
        /// with operator restarts).
        pub shards: u32,
        /// Cross-group transaction fraction of the generated workload.
        pub cross_fraction: f64,
        /// Local read path under test (`None` = the classic pipeline,
        /// the historical envelopes — plans and fingerprints replay
        /// identically).
        pub read_level: Option<crate::reads::ReadLevel>,
        /// Read-only transaction fraction of the generated workload
        /// (only meaningful with `read_level`).
        pub read_fraction: f64,
        /// Snapshot-isolation transaction fraction of the generated
        /// update transactions (0 = the classic pipeline, the
        /// historical envelopes — plans and fingerprints replay
        /// identically).
        pub txn_fraction: f64,
    }

    impl FuzzSpec {
        /// The CI smoke envelope: 5 servers × 2 clients at a moderate
        /// open-loop load, 6 s of measurement, up to 3 fault events.
        pub fn smoke(level: SafetyLevel) -> FuzzSpec {
            FuzzSpec {
                level,
                n_servers: 5,
                clients_per_server: 2,
                load_tps: 25.0,
                measure: SimDuration::from_secs(6),
                drain: SimDuration::from_secs(3),
                max_events: 3,
                allow_loss: true,
                shards: 1,
                cross_fraction: 0.0,
                read_level: None,
                read_fraction: 0.0,
                txn_fraction: 0.0,
            }
        }

        /// The sharded envelope: `shards` groups of 3 servers × 2
        /// clients each, 10 % cross-group transactions, group-targeted
        /// faults (crash / partition / sequencer kill scoped to one
        /// group, occasional whole-group failure with an operator
        /// restart). The offered load matches the smoke envelope's
        /// ~5 tps per server — above it, the logging levels' per-entry
        /// disk costs put the retry churn of a fault window past the
        /// saturation knee, and the run never quiesces within the
        /// audit's drain budget.
        pub fn sharded(level: SafetyLevel, shards: u32) -> FuzzSpec {
            // The lazy baseline (1-safe) and very-safe cannot commit
            // across groups (the builder rejects the combination), so
            // their sharded envelopes run independent groups without
            // cross traffic.
            let cross_fraction = match level {
                SafetyLevel::OneSafe | SafetyLevel::VerySafe => 0.0,
                _ => 0.1,
            };
            FuzzSpec {
                level,
                n_servers: 3,
                clients_per_server: 2,
                load_tps: 15.0 * shards.max(1) as f64,
                measure: SimDuration::from_secs(6),
                drain: SimDuration::from_secs(3),
                max_events: 3,
                allow_loss: true,
                shards: shards.max(1),
                cross_fraction,
                read_level: None,
                read_fraction: 0.0,
                txn_fraction: 0.0,
            }
        }

        /// This envelope with read clients mixed in: a `fraction` of the
        /// generated transactions are read-only and travel the local
        /// read path at `level`, so every fault plan also stresses the
        /// follower-read machinery and the read-freshness oracle audits
        /// the outcome. Stable reads are not defined for 0-safe
        /// (non-uniform delivery casts no stability votes); that
        /// combination falls back to session reads.
        pub fn with_reads(mut self, level: crate::reads::ReadLevel, fraction: f64) -> FuzzSpec {
            use crate::reads::ReadLevel;
            let level = if self.level == SafetyLevel::ZeroSafe && level == ReadLevel::Stable {
                ReadLevel::Session
            } else {
                level
            };
            self.read_level = Some(level);
            self.read_fraction = fraction.clamp(0.0, 1.0);
            self
        }

        /// This envelope with snapshot-isolation transactions mixed in:
        /// a `fraction` of the generated update transactions run under
        /// SI (MVCC read phase, first-committer-wins certification), so
        /// every fault plan also stresses the snapshot machinery and the
        /// SI anomaly audits check the outcome. The lazy baseline
        /// (1-safe) executes them through its classic 2PL path, so the
        /// fraction is zeroed there.
        pub fn with_txns(mut self, fraction: f64) -> FuzzSpec {
            self.txn_fraction = if self.level == SafetyLevel::OneSafe {
                0.0
            } else {
                fraction.clamp(0.0, 1.0)
            };
            self
        }
    }

    /// The outcome of one fuzz case.
    #[derive(Debug, Clone)]
    pub struct FuzzOutcome {
        /// The generating seed.
        pub seed: u64,
        /// The plan it produced.
        pub plan: ScenarioPlan,
        /// The oracle's verdict.
        pub audit: ScenarioAudit,
        /// Client-acknowledged commits over the whole run.
        pub commits: usize,
        /// The engine's dispatch fingerprint (replay witness).
        pub fingerprint: u64,
        /// The flight recorder's tail at the end of the run: the last
        /// ring of structured pipeline events, rendered one per line
        /// (empty when observability was disabled). Recording never
        /// touches the fingerprint, so a repro replays identically with
        /// or without it.
        pub flight: String,
    }

    impl FuzzOutcome {
        /// True when the oracle found nothing.
        pub fn ok(&self) -> bool {
            self.audit.clean()
        }

        /// The loud failure report: seed, plan dump, violations, and the
        /// flight recorder's tail — the last structured pipeline events
        /// before the audit, so a violation dump carries the pipeline's
        /// final moments alongside the replay seed.
        pub fn describe(&self) -> String {
            let mut out = format!(
                "seed {} ({}, {} commits, lost {}, fingerprint {:#018x})\nplan:\n{}",
                self.seed,
                self.audit.level,
                self.commits,
                self.audit.lost,
                self.fingerprint,
                self.plan.render()
            );
            for v in &self.audit.violations {
                out.push_str(&format!("  VIOLATION: {v}\n"));
            }
            if !self.flight.is_empty() {
                out.push_str("flight recorder tail:\n");
                for line in self.flight.lines() {
                    out.push_str("  ");
                    out.push_str(line);
                    out.push('\n');
                }
            }
            out
        }
    }

    /// Derive a random scenario plan from `seed` within `spec`'s
    /// envelope. Deterministic: same seed, same plan. Sharded specs
    /// (`shards > 1`) draw from the group-targeted palette; the
    /// single-group path is unchanged, so historical seeds replay
    /// identically.
    pub fn generate_plan(seed: u64, spec: &FuzzSpec) -> ScenarioPlan {
        if spec.shards > 1 {
            return generate_sharded_plan(seed, spec);
        }
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let n = spec.n_servers;
        let view_based = matches!(
            spec.level,
            SafetyLevel::ZeroSafe | SafetyLevel::GroupSafe | SafetyLevel::GroupOneSafe
        );
        // Faults land in [500 ms, measure/2 + 500 ms]; every event is
        // over at most ~1.5 s later, leaving the rest of the window plus
        // the drain to quiesce (the oracle's settle margin is 2 s).
        let window_start = 500u64;
        let window_end = (window_start + spec.measure.as_nanos() / 2_000_000).max(window_start + 1);
        fn at_ms(rng: &mut StdRng, start: u64, end: u64) -> SimTime {
            SimTime::from_millis(rng.random_range(start..=end))
        }

        let n_events = rng.random_range(1..=spec.max_events.max(1));
        // Loss-only plans: under message loss the no-loss invariant is
        // only airtight while nothing crashes (see `FuzzSpec::allow_loss`),
        // so a plan draws either from the crash palette or the loss one.
        let loss_plan = spec.allow_loss && rng.random_range(0..5) == 0;
        let mut plan = ScenarioPlan::new();
        // Cap concurrent crash victims: view-based groups must keep a
        // majority to stay live, static (crash-recovery) groups tolerate
        // everyone going down at once.
        let max_down = if view_based { (n - 1) / 2 } else { n };
        let mut down_budget = max_down;
        // Overlapping same-type bursts would truncate each other (the
        // first window's end hook restores the baseline while the second
        // still runs), so the executed faults would silently diverge
        // from the plan dump. Track a busy-until horizon per type and
        // skip draws that would overlap.
        let mut busy_until = [SimTime::ZERO; 4]; // loss, dup, reorder, slow-disk
        let claim = |slot: &mut SimTime, at: SimTime, d: SimDuration| -> bool {
            if at < *slot {
                return false;
            }
            *slot = at + d;
            true
        };

        for _ in 0..n_events {
            let at = at_ms(&mut rng, window_start, window_end);
            let kind = if loss_plan {
                rng.random_range(0..4)
            } else {
                4 + rng.random_range(0..5)
            };
            match kind {
                // ---- loss palette (crash-free) ----
                0 | 1 => {
                    let p = rng.random_range(0.01..0.08);
                    let d = SimDuration::from_millis(rng.random_range(300..1_200));
                    if claim(&mut busy_until[0], at, d) {
                        plan = plan.loss_burst(at, p, d);
                    }
                }
                2 => {
                    let p = rng.random_range(0.05..0.3);
                    let d = SimDuration::from_millis(rng.random_range(300..1_500));
                    if claim(&mut busy_until[1], at, d) {
                        plan = plan.duplication_burst(at, p, d);
                    }
                }
                3 => {
                    let hold = SimDuration::from_millis(rng.random_range(300..1_200));
                    let k = rng.random_range(1..=((n - 1) / 2).max(1));
                    let minority = sample_servers(&mut rng, n, k);
                    plan = plan.partition(at, vec![minority]).heal(at + hold);
                }
                // ---- crash palette ----
                4 => {
                    let k = rng.random_range(1..=down_budget.max(1)).min(down_budget);
                    if k == 0 {
                        continue;
                    }
                    down_budget -= k;
                    let downtime = SimDuration::from_millis(rng.random_range(300..=900));
                    for server in sample_servers(&mut rng, n, k) {
                        plan = plan.crash_for(at, server, downtime);
                    }
                }
                5 => {
                    if down_budget == 0 {
                        continue;
                    }
                    down_budget -= 1;
                    let downtime = SimDuration::from_millis(rng.random_range(300..=900));
                    plan = plan.kill_sequencer(at, Some(downtime));
                }
                6 => {
                    let hold = SimDuration::from_millis(rng.random_range(300..1_200));
                    let k = rng.random_range(1..=((n - 1) / 2).max(1));
                    let minority = sample_servers(&mut rng, n, k);
                    plan = plan.partition(at, vec![minority]).heal(at + hold);
                }
                7 => {
                    let p = rng.random_range(0.05..0.3);
                    let d = SimDuration::from_millis(rng.random_range(300..1_500));
                    if claim(&mut busy_until[1], at, d) {
                        plan = plan.duplication_burst(at, p, d);
                    }
                }
                _ => {
                    let p = rng.random_range(0.05..0.3);
                    let window = SimDuration::from_micros(rng.random_range(50..1_000));
                    let d = SimDuration::from_millis(rng.random_range(300..1_500));
                    if claim(&mut busy_until[2], at, d) {
                        plan = plan.reorder_burst(at, p, window, d);
                    }
                }
            }
            // An occasional slow-disk window rides along with anything.
            if rng.random_range(0..4) == 0 {
                let k = rng.random_range(1..=n.div_ceil(2));
                let servers = sample_servers(&mut rng, n, k);
                let factor = rng.random_range(2.0..5.0);
                let d = SimDuration::from_millis(rng.random_range(300..900));
                let slow_at = at_ms(&mut rng, window_start, window_end);
                if claim(&mut busy_until[3], slow_at, d) {
                    plan = plan.slow_disk(slow_at, servers, factor, d);
                }
            }
        }
        plan
    }

    /// The sharded generator: every fault is scoped to one group —
    /// member crashes bounded by the group's majority, group-targeted
    /// sequencer kills, intra-group minority partitions, loss/dup/reorder
    /// bursts, and (in one plan out of four) a *whole-group failure*
    /// followed by the operator restart the view-based levels require.
    fn generate_sharded_plan(seed: u64, spec: &FuzzSpec) -> ScenarioPlan {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5A5A);
        let spg = spec.n_servers;
        let n_groups = spec.shards;
        let view_based = matches!(
            spec.level,
            SafetyLevel::ZeroSafe | SafetyLevel::GroupSafe | SafetyLevel::GroupOneSafe
        );
        let window_start = 500u64;
        let window_end = (window_start + spec.measure.as_nanos() / 2_000_000).max(window_start + 1);
        let at_ms =
            |rng: &mut StdRng| SimTime::from_millis(rng.random_range(window_start..=window_end));

        let mut plan = ScenarioPlan::new();
        // One plan in four stages a whole-group failure; the remaining
        // events draw from the partial-fault palette. In the dynamic
        // (view-based) model the operator must repair the dead group
        // (reconcile + fresh group); the static crash-recovery model
        // recovers by stable-log redelivery on its own.
        if rng.random_range(0..4) == 0 {
            let g = rng.random_range(0..n_groups);
            let at = SimTime::from_millis(rng.random_range(window_start..=window_start + 500));
            let downtime = SimDuration::from_millis(rng.random_range(400..=800));
            plan = plan.crash_whole_group(at, g, Some(downtime));
            if view_based {
                let members: Vec<u32> = (g * spg..(g + 1) * spg).collect();
                plan = plan.restart_group(at + downtime + SimDuration::from_millis(300), members);
            }
        }
        // Per-group budget of concurrent member crashes: view-based
        // groups must keep their majority to stay live.
        let mut down_budget: Vec<u32> = (0..n_groups)
            .map(|_| if view_based { (spg - 1) / 2 } else { spg })
            .collect();
        let n_events = rng.random_range(1..=spec.max_events.max(1));
        let loss_plan = spec.allow_loss && plan.is_empty() && rng.random_range(0..5) == 0;
        // Overlapping windows of the same type would corrupt each other
        // (a later `partition` recolours the whole network, implicitly
        // healing the earlier one; a burst's end hook restores the
        // baseline under a still-running second burst), so the executed
        // faults would silently diverge from the plan dump. One busy
        // horizon per type; draws that would overlap are skipped.
        let mut busy_until = [SimTime::ZERO; 4]; // loss, dup, reorder, partition
        let claim = |slot: &mut SimTime, at: SimTime, d: SimDuration| -> bool {
            if at < *slot {
                return false;
            }
            *slot = at + d;
            true
        };
        for _ in 0..n_events {
            let at = at_ms(&mut rng);
            let g = rng.random_range(0..n_groups);
            let kind = if loss_plan {
                rng.random_range(0..3)
            } else {
                3 + rng.random_range(0..4)
            };
            match kind {
                // ---- loss palette (crash-free) ----
                0 => {
                    let p = rng.random_range(0.01..0.08);
                    let d = SimDuration::from_millis(rng.random_range(300..1_200));
                    if claim(&mut busy_until[0], at, d) {
                        plan = plan.loss_burst(at, p, d);
                    }
                }
                1 => {
                    let p = rng.random_range(0.05..0.3);
                    let d = SimDuration::from_millis(rng.random_range(300..1_500));
                    if claim(&mut busy_until[1], at, d) {
                        plan = plan.duplication_burst(at, p, d);
                    }
                }
                2 => {
                    let p = rng.random_range(0.05..0.3);
                    let window = SimDuration::from_micros(rng.random_range(50..1_000));
                    let d = SimDuration::from_millis(rng.random_range(300..1_500));
                    if claim(&mut busy_until[2], at, d) {
                        plan = plan.reorder_burst(at, p, window, d);
                    }
                }
                // ---- group-targeted crash palette ----
                3 => {
                    let budget = down_budget[g as usize];
                    if budget == 0 {
                        continue;
                    }
                    let k = rng.random_range(1..=budget);
                    down_budget[g as usize] -= k;
                    let downtime = SimDuration::from_millis(rng.random_range(300..=900));
                    for rank in sample_servers(&mut rng, spg, k) {
                        plan = plan.crash_for(at, g * spg + rank, downtime);
                    }
                }
                4 => {
                    if down_budget[g as usize] == 0 {
                        continue;
                    }
                    down_budget[g as usize] -= 1;
                    let downtime = SimDuration::from_millis(rng.random_range(300..=900));
                    plan = plan.kill_sequencer_in(at, g, Some(downtime));
                }
                5 => {
                    let hold = SimDuration::from_millis(rng.random_range(300..1_200));
                    let k = rng.random_range(1..=((spg - 1) / 2).max(1));
                    let ranks = sample_servers(&mut rng, spg, k);
                    if claim(&mut busy_until[3], at, hold) {
                        plan = plan.partition_group(at, g, ranks).heal(at + hold);
                    }
                }
                _ => {
                    let p = rng.random_range(0.05..0.3);
                    let d = SimDuration::from_millis(rng.random_range(300..1_500));
                    if claim(&mut busy_until[1], at, d) {
                        plan = plan.duplication_burst(at, p, d);
                    }
                }
            }
        }
        plan
    }

    fn sample_servers(rng: &mut StdRng, n: u32, k: u32) -> Vec<u32> {
        let mut pool: Vec<u32> = (0..n).collect();
        let mut out = Vec::with_capacity(k as usize);
        for _ in 0..k.min(n) {
            let i = rng.random_range(0..pool.len());
            out.push(pool.swap_remove(i));
        }
        out
    }

    /// Generate, run and audit one fuzz case.
    pub fn run_fuzz_case(seed: u64, spec: &FuzzSpec) -> FuzzOutcome {
        let plan = generate_plan(seed, spec);
        let mut builder = System::builder()
            .servers(spec.n_servers)
            .clients_per_server(spec.clients_per_server)
            .safety(spec.level)
            .shards(spec.shards.max(1))
            .cross_shard_fraction(spec.cross_fraction)
            .load(Load::open_tps(spec.load_tps))
            .measure(spec.measure)
            .drain(spec.drain)
            .seed(seed ^ 0x5EED_CAFE)
            .scenario(plan.clone());
        if let Some(level) = spec.read_level {
            // The lazy baseline has no local read path (the builder
            // rejects it); its read-mixed envelope still carries the
            // read-only fraction through the classic pipeline.
            if spec.level != SafetyLevel::OneSafe {
                builder = builder.read_level(level);
            }
            builder = builder.read_fraction(spec.read_fraction);
        }
        if spec.txn_fraction > 0.0 {
            builder = builder.txn_fraction(spec.txn_fraction);
        }
        let mut run = builder
            .build()
            .expect("a generated scenario always denotes a valid system");
        let end = SimTime::ZERO + spec.measure;
        run.run_until(end);
        run.stop_clients_at(end);
        run.run_until(end + spec.drain);
        // Convergence is an *eventually* property: a replica that spent a
        // fault window accumulating disk backlog (slow-disk, recovery
        // catch-up, a logging level's per-entry stable writes) may still
        // be draining it at the nominal end of the run. Extend the drain
        // in bounded steps while live replicas still disagree — the
        // oracle then audits a quiesced system, and a genuinely diverged
        // run stops making progress and fails all the same.
        let mut extra = end + spec.drain;
        let cap = extra + SimDuration::from_secs(30);
        while (run.system().convergence().len() > 1
            || run.system().delivery_backlog() > 0
            || run.system().xg_unresolved() > 0)
            && extra < cap
        {
            extra += SimDuration::from_secs(1);
            run.run_until(extra);
        }
        let system = run.into_system();
        let audit = audit_scenario(&plan, &system, spec.level);
        let commits = system.oracle.borrow().acked.len();
        let flight = system.engine.obs().render_tail();
        FuzzOutcome {
            seed,
            plan,
            audit,
            commits,
            fingerprint: system.engine.fingerprint(),
            flight,
        }
    }
}
