//! Wire messages and message identities for the group communication layer.

use groupsafe_net::NodeId;

use crate::view::View;

/// Globally unique message identity: origin node plus an origin-local
/// counter. Survives reordering and resends (dedup key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId {
    /// The node that A-broadcast the message.
    pub origin: NodeId,
    /// Origin-local sequence number.
    pub counter: u64,
}

/// A totally-ordered log entry: global sequence number, identity, payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry<P> {
    /// Position in the global total order (1-based).
    pub seq: u64,
    /// Message identity.
    pub id: MsgId,
    /// Application payload.
    pub payload: P,
    /// The sequencer incarnation that assigned this entry's sequence
    /// number (static crash-recovery model; always 0 in the view-based
    /// model, whose view-change flush already serialises reassignment).
    /// A crashed sequencer can lose the log tail for entries it ordered
    /// but that never stabilised; its next incarnation then reassigns
    /// those sequence numbers to different messages. The era makes the
    /// supersession explicit: holders replace an *undelivered* entry
    /// when a higher-era assignment for its seq arrives, and stability
    /// votes only count for the era they were cast for.
    pub era: u64,
}

/// Wire protocol of the group communication component.
///
/// `P` is the application payload, `S` the application checkpoint type
/// (used by state transfer in the dynamic crash no-recovery model).
#[derive(Debug, Clone)]
pub enum Wire<P, S> {
    /// Sender → sequencer: please order this message.
    Forward {
        /// Message identity (dedup key for resends).
        id: MsgId,
        /// Payload.
        payload: P,
    },
    /// Sequencer → all: the message got position `seq` in the total order.
    Ordered {
        /// View (or era) in which the order was assigned.
        view: u64,
        /// The ordered entry.
        entry: Entry<P>,
    },
    /// Sequencer → all: one frame carrying a contiguous run of ordered
    /// entries (batched pipeline). Semantically equivalent to one
    /// [`Wire::Ordered`] per entry, but accounted as a single
    /// transmission and acknowledged with one [`Wire::AckRange`].
    OrderedBatch {
        /// View (or era) in which the order was assigned.
        view: u64,
        /// The entries, in ascending contiguous `seq` order.
        entries: Vec<Entry<P>>,
    },
    /// All → all: "I have (and, in the crash-recovery model, have
    /// persisted) the entry at `seq`". Majority of acks ⇒ stability.
    Ack {
        /// Acknowledged sequence number.
        seq: u64,
        /// Era of the entry being acknowledged (see [`Entry::era`]):
        /// votes for a superseded incarnation of the seq must not count
        /// toward its replacement's stability.
        era: u64,
    },
    /// All → all: aggregated stability vote — one message covering every
    /// sequence number in `lo..=hi` (batched pipeline; equivalent to
    /// `hi - lo + 1` individual [`Wire::Ack`]s).
    AckRange {
        /// First acknowledged sequence number.
        lo: u64,
        /// Last acknowledged sequence number (inclusive).
        hi: u64,
        /// Era of the acknowledged frame (all its entries share it).
        era: u64,
    },
    /// Failure-detector heartbeat.
    Heartbeat,
    /// Coordinator → proposed members: start synchronising for a new view.
    ViewStart {
        /// Monotone epoch of this view-change attempt.
        epoch: u64,
        /// Proposed member set.
        proposed: Vec<NodeId>,
    },
    /// Member → coordinator: my ordering state for the view change.
    SyncReply {
        /// Epoch being answered.
        epoch: u64,
        /// Highest sequence number I have seen an entry for.
        max_seq: u64,
        /// My next undelivered sequence number.
        next_deliver: u64,
    },
    /// Coordinator → member: send me entries above `have_up_to` so I can
    /// complete the flush (answered with [`Wire::SyncEntries`]).
    SyncFetch {
        /// Epoch of the running view change.
        epoch: u64,
        /// Highest contiguous sequence number the coordinator holds.
        have_up_to: u64,
    },
    /// Member → coordinator: entries the coordinator asked for.
    SyncEntries {
        /// Epoch being answered.
        epoch: u64,
        /// The requested entries.
        entries: Vec<Entry<P>>,
    },
    /// Coordinator → member: entries you may be missing (flush).
    Retransmit {
        /// Entries in ascending `seq` order.
        entries: Vec<Entry<P>>,
    },
    /// Coordinator → members: install this view; all entries up to
    /// `watermark` must be delivered in it (virtual-synchrony flush).
    NewView {
        /// The new view.
        view: View,
        /// Every member delivers up to here before switching.
        watermark: u64,
    },
    /// Member → non-member: "you are not in my (newer) view". Sent in
    /// response to a heartbeat from a process the receiver's view does
    /// not list — after a healed partition, the excluded minority keeps
    /// heartbeating its stale membership and would otherwise block
    /// forever without learning the group moved on. A receiver whose
    /// view is older demotes itself and rejoins via [`Wire::JoinReq`].
    NotInView {
        /// The sender's current view id.
        view_id: u64,
        /// The sender's current membership. Breaks ties between forked
        /// same-id views: the fork with fewer members (then the
        /// lexicographically larger one) demotes.
        members: Vec<NodeId>,
    },
    /// Recovered process (new incarnation) → all: let me join.
    JoinReq {
        /// Joiner's incarnation generation (dedup across retries).
        generation: u64,
    },
    /// Coordinator → joiner: application checkpoint plus the entries the
    /// checkpoint does not yet cover.
    StateTransfer {
        /// View the joiner becomes part of.
        view: View,
        /// The checkpoint covers all deliveries up to this sequence number.
        applied_seq: u64,
        /// Entries in `(applied_seq, watermark]`, redelivered at the joiner.
        tail: Vec<Entry<P>>,
        /// Application checkpoint.
        state: S,
        /// Watermark of the flush that accompanied the join.
        watermark: u64,
    },
    /// Recovering process (crash-recovery model) → all: send me entries
    /// with `seq > have_up_to`.
    CatchUpReq {
        /// Highest sequence number present in the requester's stable log.
        have_up_to: u64,
    },
    /// Reply to [`Wire::CatchUpReq`].
    CatchUp {
        /// Entries in ascending `seq` order.
        entries: Vec<Entry<P>>,
        /// Everything at or below this sequence number is stable at the
        /// responder (it delivered them under the uniform guarantee), so
        /// the requester may treat them as stable too.
        stable_up_to: u64,
    },
}

/// Timers the endpoint schedules on its host actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcsTimer {
    /// Emit a heartbeat and check peers for silence.
    Heartbeat,
    /// A stable-log write finished for `seq` (crash-recovery model).
    Persisted {
        /// The sequence number whose entry is now on disk.
        seq: u64,
    },
    /// The "delivered" flag write finished for `seq` (write-ahead delivery,
    /// crash-recovery model without end-to-end guarantees).
    DeliveredMarked {
        /// The sequence number now marked delivered on disk.
        seq: u64,
    },
    /// A view-change attempt timed out; retry.
    ViewChangeRetry {
        /// Epoch of the timed-out attempt.
        epoch: u64,
    },
    /// A join attempt timed out; retry.
    JoinRetry {
        /// Generation of the timed-out attempt.
        generation: u64,
    },
    /// Re-send not-yet-ordered broadcasts to the sequencer (static
    /// crash-recovery model, where there is no view change to trigger it).
    ResendPending,
    /// A sequence hole persisted (static crash-recovery model, where no
    /// view-change flush exists to refill it): ask the group for the
    /// entries above the contiguous prefix.
    GapRepair,
    /// The recovering sequencer's resumption grace elapsed: enough
    /// catch-up confirmations arrived, and every reply of the same wave
    /// has landed — resume assigning above everything seen.
    SeqResume,
    /// The recovering sequencer is still short of its majority of
    /// catch-up confirmations: re-multicast the request (the first wave
    /// may have been lost to a partition or burst — without a retry the
    /// whole group would stay sequencer-less forever).
    ResumeRetry,
    /// The sequencer's batch accumulator hit its `max_delay` deadline.
    /// Carries the batch epoch at arming time: a flush armed before a
    /// crash or view change must not flush the next incarnation's
    /// accumulator.
    BatchFlush {
        /// Batch epoch the timer belongs to.
        epoch: u64,
    },
    /// The single stable-log write covering a whole batch frame finished
    /// (crash-recovery model, batched pipeline).
    BatchPersisted {
        /// First sequence number of the frame.
        lo: u64,
        /// Last sequence number of the frame (inclusive).
        hi: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_id_orders_by_origin_then_counter() {
        let a = MsgId {
            origin: NodeId(0),
            counter: 5,
        };
        let b = MsgId {
            origin: NodeId(1),
            counter: 1,
        };
        assert!(a < b);
        let c = MsgId {
            origin: NodeId(0),
            counter: 6,
        };
        assert!(a < c);
    }

    #[test]
    fn entries_carry_payloads() {
        let e = Entry {
            seq: 3,
            id: MsgId {
                origin: NodeId(2),
                counter: 1,
            },
            payload: "txn".to_string(),
            era: 0,
        };
        let w: Wire<String, ()> = Wire::Ordered { view: 0, entry: e };
        match w {
            Wire::Ordered { entry, .. } => assert_eq!(entry.payload, "txn"),
            _ => unreachable!(),
        }
    }
}
