//! Group communication configuration.

use groupsafe_sim::SimDuration;

/// Sequencer-side batching of the ordering pipeline.
///
/// With `max_msgs > 1` the sequencer accumulates pending broadcasts and
/// ships them as one `OrderedBatch` frame carrying a contiguous sequence
/// range; receivers persist the whole frame with a single stable-log
/// write and acknowledge it with one aggregated `AckRange` vote instead
/// of one message per sequence number. Sequence numbers are assigned at
/// forward-receipt time exactly as in the unbatched path, so the total
/// order a run produces is independent of the knobs — only the framing
/// (and therefore the per-transaction message and CPU cost) changes.
///
/// A batch is flushed as soon as *any* trigger fires:
/// * it holds `max_msgs` messages,
/// * its estimated payload volume reaches `max_bytes` (0 disables the
///   byte trigger; payload sizes are estimated as `size_of::<P>()` —
///   an in-memory proxy, adequate for the simulation),
/// * `max_delay` elapsed since the first message entered the
///   accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Flush when this many messages accumulated. `1` disables batching
    /// (the endpoint runs the classic per-message path bit-for-bit).
    pub max_msgs: usize,
    /// Flush when the accumulated payload estimate reaches this many
    /// bytes (0 = no byte trigger).
    pub max_bytes: usize,
    /// Flush when the oldest accumulated message has waited this long.
    pub max_delay: SimDuration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::unbatched()
    }
}

impl BatchConfig {
    /// One message per frame: the classic unbatched pipeline.
    pub fn unbatched() -> Self {
        BatchConfig {
            max_msgs: 1,
            max_bytes: 0,
            max_delay: SimDuration::ZERO,
        }
    }

    /// Batch up to `max_msgs` messages, flushing after at most
    /// `max_delay` (no byte trigger).
    pub fn of(max_msgs: usize, max_delay: SimDuration) -> Self {
        assert!(max_msgs >= 1, "a batch holds at least one message");
        BatchConfig {
            max_msgs,
            max_bytes: 0,
            max_delay,
        }
    }

    /// True when the batched pipeline is in force.
    pub fn enabled(&self) -> bool {
        self.max_msgs > 1 || self.max_bytes > 0
    }

    /// The profile selected by the `GROUPSAFE_BATCHING` environment
    /// variable, if any. Recognised values:
    ///
    /// * unset, empty, or `off` → `None` (callers keep their default),
    /// * `on` → `Some(BatchConfig::of(8, 500 µs))`,
    /// * `msgs=N[,delay_us=D][,bytes=B]` → the explicit knobs.
    ///
    /// Used by CI to run the same integration suite with batching on and
    /// off without touching the test sources.
    ///
    /// # Errors
    /// Any malformed value is an `Err` describing the problem: a typo
    /// must fail the run loudly, not silently select the unbatched
    /// profile (which would make a "batching on" CI pass vacuous).
    /// The caller (the system builder) turns it into its typed build
    /// error.
    pub fn from_env() -> Result<Option<Self>, String> {
        let Ok(raw) = std::env::var("GROUPSAFE_BATCHING") else {
            return Ok(None);
        };
        let raw = raw.trim();
        if raw.is_empty() || raw.eq_ignore_ascii_case("off") {
            return Ok(None);
        }
        if raw.eq_ignore_ascii_case("on") {
            return Ok(Some(BatchConfig::of(8, SimDuration::from_micros(500))));
        }
        let bad = |part: &str| -> Result<Option<BatchConfig>, String> {
            Err(format!(
                "cannot parse {part:?} (expected \
                 off | on | msgs=N[,delay_us=D][,bytes=B], got {raw:?})"
            ))
        };
        let mut cfg = BatchConfig::of(8, SimDuration::from_micros(500));
        for part in raw.split(',') {
            let mut kv = part.splitn(2, '=');
            let (Some(key), Some(value)) = (kv.next(), kv.next()) else {
                return bad(part);
            };
            let Ok(value) = value.trim().parse::<u64>() else {
                return bad(part);
            };
            match key.trim() {
                "msgs" if value >= 1 => cfg.max_msgs = value as usize,
                "delay_us" => cfg.max_delay = SimDuration::from_micros(value),
                "bytes" => cfg.max_bytes = value as usize,
                _ => return bad(part),
            }
        }
        Ok(Some(cfg))
    }
}

/// Which of the paper's two system models the endpoint runs in (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcsModel {
    /// Dynamic crash no-recovery (Isis-style, view based): crashed
    /// processes rejoin with a new identity via state transfer; no group
    /// communication state on stable storage. Cannot tolerate the crash of
    /// all members.
    ViewBased,
    /// Static crash-recovery: fixed group, processes keep their identity
    /// across crashes, the GC component logs entries to stable storage.
    /// Tolerates the simultaneous crash of all processes.
    CrashRecovery,
}

/// Delivery guarantee strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryGuarantee {
    /// Deliver as soon as the entry arrives in order (no stability wait).
    /// Uniform agreement does NOT hold: a process may deliver and crash
    /// before anyone else receives the entry. This is what 0-safe
    /// replication runs on.
    NonUniform,
    /// Deliver only once a majority of the view/group has acknowledged the
    /// entry (uniform agreement; "safe delivery"). Group-safe replication
    /// requires this.
    Uniform,
}

/// Configuration of a [`crate::endpoint::GcsEndpoint`].
#[derive(Debug, Clone)]
pub struct GcsConfig {
    /// System model.
    pub model: GcsModel,
    /// Delivery guarantee.
    pub guarantee: DeliveryGuarantee,
    /// End-to-end atomic broadcast (paper §4): track application-level
    /// `ack(m)` in the stable log and redeliver unacknowledged messages on
    /// recovery. Only meaningful in the crash-recovery model.
    pub end_to_end: bool,
    /// Heartbeat period of the failure detector.
    pub hb_interval: SimDuration,
    /// Silence threshold after which a peer is suspected.
    pub hb_timeout: SimDuration,
    /// Timeout for view-change and join attempts before retrying.
    pub change_timeout: SimDuration,
    /// Sequencer-side batching of the ordering pipeline.
    pub batch: BatchConfig,
}

impl GcsConfig {
    /// This configuration with the given batching knobs.
    pub fn with_batching(self, batch: BatchConfig) -> Self {
        GcsConfig { batch, ..self }
    }
}

impl GcsConfig {
    /// Classic view-based uniform atomic broadcast (what group-safe and
    /// group-1-safe replication use).
    pub fn view_based_uniform() -> Self {
        GcsConfig {
            model: GcsModel::ViewBased,
            guarantee: DeliveryGuarantee::Uniform,
            end_to_end: false,
            hb_interval: SimDuration::from_millis(10),
            hb_timeout: SimDuration::from_millis(35),
            change_timeout: SimDuration::from_millis(50),
            batch: BatchConfig::unbatched(),
        }
    }

    /// View-based non-uniform atomic broadcast (0-safe replication).
    pub fn view_based_non_uniform() -> Self {
        GcsConfig {
            guarantee: DeliveryGuarantee::NonUniform,
            ..GcsConfig::view_based_uniform()
        }
    }

    /// Static crash-recovery atomic broadcast *without* end-to-end
    /// guarantees (persists entries, cannot redeliver — §3's second
    /// problem).
    pub fn crash_recovery() -> Self {
        GcsConfig {
            model: GcsModel::CrashRecovery,
            end_to_end: false,
            ..GcsConfig::view_based_uniform()
        }
    }

    /// End-to-end atomic broadcast (paper §4): crash-recovery model plus
    /// application acknowledgements and redelivery. The primitive 2-safe
    /// replication needs.
    pub fn end_to_end() -> Self {
        GcsConfig {
            model: GcsModel::CrashRecovery,
            end_to_end: true,
            ..GcsConfig::view_based_uniform()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let v = GcsConfig::view_based_uniform();
        assert_eq!(v.model, GcsModel::ViewBased);
        assert_eq!(v.guarantee, DeliveryGuarantee::Uniform);
        assert!(!v.end_to_end);

        let nu = GcsConfig::view_based_non_uniform();
        assert_eq!(nu.guarantee, DeliveryGuarantee::NonUniform);

        let cr = GcsConfig::crash_recovery();
        assert_eq!(cr.model, GcsModel::CrashRecovery);
        assert!(!cr.end_to_end);

        let e2e = GcsConfig::end_to_end();
        assert_eq!(e2e.model, GcsModel::CrashRecovery);
        assert!(e2e.end_to_end);
        assert_eq!(e2e.guarantee, DeliveryGuarantee::Uniform);
    }

    #[test]
    fn heartbeat_timeout_exceeds_interval() {
        let c = GcsConfig::view_based_uniform();
        assert!(c.hb_timeout > c.hb_interval);
    }

    #[test]
    fn presets_default_to_unbatched() {
        for cfg in [
            GcsConfig::view_based_uniform(),
            GcsConfig::view_based_non_uniform(),
            GcsConfig::crash_recovery(),
            GcsConfig::end_to_end(),
        ] {
            assert!(!cfg.batch.enabled());
        }
        let batched = GcsConfig::end_to_end()
            .with_batching(BatchConfig::of(16, SimDuration::from_micros(300)));
        assert!(batched.batch.enabled());
        assert_eq!(batched.batch.max_msgs, 16);
    }

    // `BatchConfig::from_env` parse/panic behavior is pinned in
    // `tests/batching_env_profile.rs` (root package): the env var is
    // process-global, so the test must live alone in its own binary
    // rather than race this crate's parallel unit tests.

    #[test]
    fn batch_config_triggers() {
        assert!(!BatchConfig::unbatched().enabled());
        assert!(BatchConfig::of(2, SimDuration::ZERO).enabled());
        assert!(
            BatchConfig {
                max_msgs: 1,
                max_bytes: 4096,
                max_delay: SimDuration::ZERO,
            }
            .enabled(),
            "a byte trigger alone enables the batched pipeline"
        );
    }
}
