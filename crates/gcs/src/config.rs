//! Group communication configuration.

use groupsafe_sim::SimDuration;

/// Which of the paper's two system models the endpoint runs in (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcsModel {
    /// Dynamic crash no-recovery (Isis-style, view based): crashed
    /// processes rejoin with a new identity via state transfer; no group
    /// communication state on stable storage. Cannot tolerate the crash of
    /// all members.
    ViewBased,
    /// Static crash-recovery: fixed group, processes keep their identity
    /// across crashes, the GC component logs entries to stable storage.
    /// Tolerates the simultaneous crash of all processes.
    CrashRecovery,
}

/// Delivery guarantee strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryGuarantee {
    /// Deliver as soon as the entry arrives in order (no stability wait).
    /// Uniform agreement does NOT hold: a process may deliver and crash
    /// before anyone else receives the entry. This is what 0-safe
    /// replication runs on.
    NonUniform,
    /// Deliver only once a majority of the view/group has acknowledged the
    /// entry (uniform agreement; "safe delivery"). Group-safe replication
    /// requires this.
    Uniform,
}

/// Configuration of a [`crate::endpoint::GcsEndpoint`].
#[derive(Debug, Clone)]
pub struct GcsConfig {
    /// System model.
    pub model: GcsModel,
    /// Delivery guarantee.
    pub guarantee: DeliveryGuarantee,
    /// End-to-end atomic broadcast (paper §4): track application-level
    /// `ack(m)` in the stable log and redeliver unacknowledged messages on
    /// recovery. Only meaningful in the crash-recovery model.
    pub end_to_end: bool,
    /// Heartbeat period of the failure detector.
    pub hb_interval: SimDuration,
    /// Silence threshold after which a peer is suspected.
    pub hb_timeout: SimDuration,
    /// Timeout for view-change and join attempts before retrying.
    pub change_timeout: SimDuration,
}

impl GcsConfig {
    /// Classic view-based uniform atomic broadcast (what group-safe and
    /// group-1-safe replication use).
    pub fn view_based_uniform() -> Self {
        GcsConfig {
            model: GcsModel::ViewBased,
            guarantee: DeliveryGuarantee::Uniform,
            end_to_end: false,
            hb_interval: SimDuration::from_millis(10),
            hb_timeout: SimDuration::from_millis(35),
            change_timeout: SimDuration::from_millis(50),
        }
    }

    /// View-based non-uniform atomic broadcast (0-safe replication).
    pub fn view_based_non_uniform() -> Self {
        GcsConfig {
            guarantee: DeliveryGuarantee::NonUniform,
            ..GcsConfig::view_based_uniform()
        }
    }

    /// Static crash-recovery atomic broadcast *without* end-to-end
    /// guarantees (persists entries, cannot redeliver — §3's second
    /// problem).
    pub fn crash_recovery() -> Self {
        GcsConfig {
            model: GcsModel::CrashRecovery,
            end_to_end: false,
            ..GcsConfig::view_based_uniform()
        }
    }

    /// End-to-end atomic broadcast (paper §4): crash-recovery model plus
    /// application acknowledgements and redelivery. The primitive 2-safe
    /// replication needs.
    pub fn end_to_end() -> Self {
        GcsConfig {
            model: GcsModel::CrashRecovery,
            end_to_end: true,
            ..GcsConfig::view_based_uniform()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let v = GcsConfig::view_based_uniform();
        assert_eq!(v.model, GcsModel::ViewBased);
        assert_eq!(v.guarantee, DeliveryGuarantee::Uniform);
        assert!(!v.end_to_end);

        let nu = GcsConfig::view_based_non_uniform();
        assert_eq!(nu.guarantee, DeliveryGuarantee::NonUniform);

        let cr = GcsConfig::crash_recovery();
        assert_eq!(cr.model, GcsModel::CrashRecovery);
        assert!(!cr.end_to_end);

        let e2e = GcsConfig::end_to_end();
        assert_eq!(e2e.model, GcsModel::CrashRecovery);
        assert!(e2e.end_to_end);
        assert_eq!(e2e.guarantee, DeliveryGuarantee::Uniform);
    }

    #[test]
    fn heartbeat_timeout_exceeds_interval() {
        let c = GcsConfig::view_based_uniform();
        assert!(c.hb_timeout > c.hb_interval);
    }
}
