//! Process classes (paper §2.3, Fig. 3).
//!
//! The paper classifies processes by their crash behaviour:
//!
//! * **green** — never crashes,
//! * **yellow** — crashes one or more times but is eventually forever up,
//! * **red** — crashes forever, or is unstable (crashes and recovers
//!   indefinitely).
//!
//! Green/yellow correspond to Aguilera et al.'s *good* processes, red to
//! *bad* ones. The dynamic crash no-recovery model only has green and red
//! processes; the static crash-recovery model also has yellow ones.

use groupsafe_net::NodeId;
use groupsafe_sim::SimTime;

/// The paper's process classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessClass {
    /// Never crashes.
    Green,
    /// Crashes at least once but is eventually forever up.
    Yellow,
    /// Crashes forever, or keeps crashing without staying up.
    Red,
}

impl ProcessClass {
    /// Good processes (Aguilera et al. terminology) are green or yellow.
    pub fn is_good(self) -> bool {
        matches!(self, ProcessClass::Green | ProcessClass::Yellow)
    }
}

/// A crash/recover event observed for a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// The node went down.
    Crash(SimTime),
    /// The node came back up.
    Recover(SimTime),
}

/// Classify a node from its lifecycle history over a finite run.
///
/// The run is observed up to `horizon`; a process whose last event is a
/// crash is treated as crashed-forever (red), one that recovered and stayed
/// up is yellow, and one with no events at all is green. This is the
/// finite-run projection of the paper's asymptotic definitions and is what
/// the fault-injection experiments report.
pub fn classify(history: &[LifecycleEvent], _horizon: SimTime) -> ProcessClass {
    match history.last() {
        None => ProcessClass::Green,
        Some(LifecycleEvent::Crash(_)) => ProcessClass::Red,
        Some(LifecycleEvent::Recover(_)) => ProcessClass::Yellow,
    }
}

/// A node together with its classification (reporting convenience).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassifiedNode {
    /// The node.
    pub node: NodeId,
    /// Its class over the observed run.
    pub class: ProcessClass,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn no_events_is_green() {
        assert_eq!(classify(&[], t(100)), ProcessClass::Green);
    }

    #[test]
    fn crash_without_recovery_is_red() {
        assert_eq!(
            classify(&[LifecycleEvent::Crash(t(10))], t(100)),
            ProcessClass::Red
        );
    }

    #[test]
    fn crash_then_recover_is_yellow() {
        let h = [LifecycleEvent::Crash(t(10)), LifecycleEvent::Recover(t(20))];
        assert_eq!(classify(&h, t(100)), ProcessClass::Yellow);
    }

    #[test]
    fn repeated_crashes_ending_down_is_red() {
        let h = [
            LifecycleEvent::Crash(t(10)),
            LifecycleEvent::Recover(t(20)),
            LifecycleEvent::Crash(t(30)),
        ];
        assert_eq!(classify(&h, t(100)), ProcessClass::Red);
    }

    #[test]
    fn goodness() {
        assert!(ProcessClass::Green.is_good());
        assert!(ProcessClass::Yellow.is_good());
        assert!(!ProcessClass::Red.is_good());
    }
}
