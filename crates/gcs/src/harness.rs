//! A minimal host application for exercising the group communication
//! endpoint: used by this crate's scenario tests, by benchmarks, and by
//! the Fig. 5 / Fig. 7 reproductions.
//!
//! The application is deliberately simple — it appends delivered `u64`
//! payloads to a state vector — but it faithfully models the paper's
//! crucial distinction between *delivery* and *processing*: a delivered
//! message is only applied to the (stable) application state after a
//! configurable processing delay, and a crash inside that window loses the
//! message at this replica unless the end-to-end primitive replays it.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use groupsafe_net::{Incoming, NetConfig, Network, NodeId};
use groupsafe_sim::{Actor, ActorId, Ctx, Disk, Engine, Payload, SimDuration, SimTime};

use crate::config::GcsConfig;
use crate::endpoint::GcsEndpoint;
use crate::message::{GcsTimer, MsgId, Wire};
use crate::output::GcsOutput;
use crate::properties::RunObservation;

/// Application checkpoint used by state transfer in the harness.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AppCheckpoint {
    /// Processed payloads in processing order.
    pub values: Vec<u64>,
    /// Identities of processed messages (testable-transaction dedup).
    pub processed_ids: BTreeSet<MsgId>,
    /// Sequence number of the last processed delivery.
    pub applied_seq: u64,
}

type HostEndpoint = GcsEndpoint<u64, AppCheckpoint>;
type HostWire = Wire<u64, AppCheckpoint>;
type HostOutput = GcsOutput<u64, AppCheckpoint>;

/// Driver-injected request: A-broadcast `value`.
#[derive(Debug, Clone, Copy)]
pub struct BroadcastCmd(pub u64);

/// Driver-injected: start the endpoint.
#[derive(Debug, Clone, Copy)]
pub struct InitCmd;

/// Driver-injected (dynamic model, total failure): form a fresh group.
#[derive(Debug, Clone)]
pub struct RestartGroupCmd(pub Vec<NodeId>);

/// Internal: processing of a delivered message finished.
#[derive(Debug, Clone, Copy)]
struct ProcessDone {
    seq: u64,
    id: MsgId,
    value: u64,
}

/// Host actor embedding a [`GcsEndpoint`] and the toy application.
pub struct GcsHost {
    node: NodeId,
    endpoint: HostEndpoint,
    net: Network,
    obs: Rc<RefCell<RunObservation>>,
    /// Time between `A-deliver` and the application finishing processing.
    process_delay: SimDuration,

    // Volatile application state.
    volatile_seen: Vec<u64>,

    // Stable application state (the application's own "disk").
    stable_values: Vec<u64>,
    processed_ids: BTreeSet<MsgId>,
    applied_seq: u64,
}

impl GcsHost {
    /// Create a host; `process_delay` models the §3 window between
    /// delivery and successful delivery.
    pub fn new(
        node: NodeId,
        endpoint: HostEndpoint,
        net: Network,
        obs: Rc<RefCell<RunObservation>>,
        process_delay: SimDuration,
    ) -> Self {
        GcsHost {
            node,
            endpoint,
            net,
            obs,
            process_delay,
            volatile_seen: Vec::new(),
            stable_values: Vec::new(),
            processed_ids: BTreeSet::new(),
            applied_seq: 0,
        }
    }

    /// The application's stable (processed) state.
    pub fn stable_values(&self) -> &[u64] {
        &self.stable_values
    }

    /// Read access to the embedded endpoint.
    pub fn endpoint(&self) -> &HostEndpoint {
        &self.endpoint
    }

    fn handle_outputs(&mut self, ctx: &mut Ctx<'_>, outputs: Vec<HostOutput>) {
        for o in outputs {
            match o {
                GcsOutput::Deliver {
                    seq, id, payload, ..
                } => {
                    self.volatile_seen.push(payload);
                    let now = ctx.now();
                    self.obs
                        .borrow_mut()
                        .record_delivery(self.node, seq, id, false, now);
                    ctx.timer(
                        self.process_delay,
                        ProcessDone {
                            seq,
                            id,
                            value: payload,
                        },
                    );
                }
                GcsOutput::CheckpointRequest { joiner, generation } => {
                    let ckpt = AppCheckpoint {
                        values: self.stable_values.clone(),
                        processed_ids: self.processed_ids.clone(),
                        applied_seq: self.applied_seq,
                    };
                    let applied = self.applied_seq;
                    self.endpoint
                        .checkpoint_ready(ctx, joiner, generation, ckpt, applied);
                }
                GcsOutput::InstallState { state, applied_seq } => {
                    self.stable_values = state.values;
                    self.processed_ids = state.processed_ids;
                    self.applied_seq = applied_seq.max(state.applied_seq);
                    self.volatile_seen.clear();
                }
                GcsOutput::ViewInstalled { .. }
                | GcsOutput::Joined { .. }
                | GcsOutput::GroupFailed => {}
            }
        }
    }
}

impl Actor for GcsHost {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        let mut outputs = Vec::new();
        let payload = match payload.downcast::<InitCmd>() {
            Ok(_) => {
                self.endpoint.start(ctx);
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<BroadcastCmd>() {
            Ok(cmd) => {
                let id = self.endpoint.broadcast(ctx, cmd.0);
                self.obs.borrow_mut().broadcast.insert(id);
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<RestartGroupCmd>() {
            Ok(cmd) => {
                self.endpoint.restart_group(ctx, cmd.0, 0);
                // Application-level local recovery: volatile state is
                // rebuilt from the stable state.
                self.volatile_seen = self.stable_values.clone();
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<Incoming<HostWire>>() {
            Ok(inc) => {
                self.endpoint.on_net(ctx, inc.from, inc.msg, &mut outputs);
                self.handle_outputs(ctx, outputs);
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<GcsTimer>() {
            Ok(t) => {
                self.endpoint.on_timer(ctx, *t, &mut outputs);
                self.handle_outputs(ctx, outputs);
                return;
            }
            Err(p) => p,
        };
        match payload.downcast::<ProcessDone>() {
            Ok(done) => {
                // Testable transactions: process each message at most once.
                if self.processed_ids.insert(done.id) {
                    self.stable_values.push(done.value);
                    self.applied_seq = self.applied_seq.max(done.seq);
                    self.obs.borrow_mut().mark_processed(self.node, done.id);
                }
                self.endpoint.app_ack(ctx, done.seq);
            }
            Err(_) => panic!("gcs harness: unhandled event payload"),
        }
    }

    fn on_crash(&mut self, _ctx: &mut Ctx<'_>) {
        self.endpoint.on_crash();
        self.volatile_seen.clear();
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_>) {
        let mut outputs = Vec::new();
        self.endpoint.on_recover(ctx, &mut outputs);
        self.volatile_seen = self.stable_values.clone();
        self.handle_outputs(ctx, outputs);
    }

    fn name(&self) -> &str {
        "gcs-host"
    }
}

/// A fully wired group for scenario tests and benches.
pub struct Cluster {
    /// The simulation engine.
    pub engine: Engine,
    /// The shared network.
    pub net: Network,
    /// Host actor ids, indexed by node.
    pub hosts: Vec<ActorId>,
    /// Shared observation for the property checkers.
    pub obs: Rc<RefCell<RunObservation>>,
}

impl Cluster {
    /// Build `n` hosts with the given GC configuration. Each node gets its
    /// own simulated log disk. All endpoints are started at t = 0.
    pub fn new(n: u32, cfg: GcsConfig, seed: u64) -> Self {
        Self::with_process_delay(n, cfg, seed, SimDuration::from_millis(5))
    }

    /// As [`Cluster::new`] with an explicit delivery→processing delay.
    pub fn with_process_delay(
        n: u32,
        cfg: GcsConfig,
        seed: u64,
        process_delay: SimDuration,
    ) -> Self {
        let mut engine = Engine::new(seed);
        let net = Network::new(NetConfig::default());
        let obs = Rc::new(RefCell::new(RunObservation::default()));
        let group: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut hosts = Vec::with_capacity(n as usize);
        for i in 0..n {
            let node = NodeId(i);
            let disk = Rc::new(RefCell::new(Disk::paper_default()));
            let endpoint = HostEndpoint::new(
                cfg.clone(),
                node,
                group.clone(),
                net.clone(),
                Some(disk),
                StdRng::seed_from_u64(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1))),
            );
            let host = GcsHost::new(node, endpoint, net.clone(), obs.clone(), process_delay);
            let id = engine.add_actor(Box::new(host));
            net.register(node, id);
            hosts.push(id);
        }
        for &h in &hosts {
            engine.schedule(SimTime::ZERO, h, InitCmd);
        }
        Cluster {
            engine,
            net,
            hosts,
            obs,
        }
    }

    /// Schedule a broadcast of `value` from `node` at `at`. Delivered as
    /// long as the node is up at `at` (scripted scenarios inject work
    /// after planned recoveries).
    pub fn broadcast_at(&mut self, at: SimTime, node: NodeId, value: u64) {
        let host = self.hosts[node.index()];
        self.engine
            .schedule_resilient(at, host, BroadcastCmd(value));
    }

    /// The stable application state of `node`.
    pub fn stable_values(&self, node: NodeId) -> Vec<u64> {
        let host: &GcsHost = self.engine.actor(self.hosts[node.index()]);
        host.stable_values().to_vec()
    }

    /// Read access to `node`'s endpoint (stats, accumulator inspection).
    pub fn endpoint(&self, node: NodeId) -> &HostEndpoint {
        let host: &GcsHost = self.engine.actor(self.hosts[node.index()]);
        host.endpoint()
    }

    /// A 64-bit FNV-1a digest of the run's group-safety outcome: for
    /// every node, the final *processed* payload sequence. Two runs that
    /// hand the application the same histories — whatever the framing on
    /// the wire (batched or not) — produce the same fingerprint; any
    /// reordering, loss or duplication diverges it.
    pub fn group_safety_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for i in 0..self.hosts.len() as u32 {
            let values = self.stable_values(NodeId(i));
            mix(0x6e6f_6465 ^ u64::from(i));
            mix(values.len() as u64);
            for v in values {
                mix(v);
            }
        }
        h
    }
}

// The `net` field is kept so drivers can partition/heal mid-run even
// though the harness itself only reads it during construction.
impl GcsHost {
    /// The network handle (drivers occasionally need it).
    pub fn network(&self) -> &Network {
        &self.net
    }
}
