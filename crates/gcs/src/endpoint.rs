//! The group communication endpoint: a fixed-sequencer atomic broadcast
//! with optional uniformity, view-based membership (dynamic crash
//! no-recovery model), persistent logging (static crash-recovery model)
//! and the paper's end-to-end extension.
//!
//! The endpoint is a *passive state machine* embedded in a host actor (a
//! replicated-database server, or the test harness). The host feeds it
//! network messages and timers; the endpoint sends protocol messages
//! itself through the shared [`Network`] and returns application-facing
//! effects as [`GcsOutput`] values.
//!
//! # Protocol sketch
//!
//! * `A-broadcast(m)`: send `Forward(m)` to the sequencer (the smallest
//!   member of the current view). The sequencer assigns the next global
//!   sequence number and broadcasts `Ordered(seq, m)`.
//! * *Non-uniform* delivery: deliver in sequence order on receipt.
//! * *Uniform* delivery ("safe delivery"): on receiving `Ordered`, each
//!   process acknowledges to all; an entry is *stable* — and deliverable —
//!   once a majority of the view has acknowledged it. Group-safety rests
//!   on exactly this guarantee.
//! * *Crash-recovery model*: the endpoint persists each entry to its log
//!   disk before acknowledging, marks entries `delivered` (write-ahead)
//!   before handing them up, and on recovery rebuilds from the stable log
//!   and catches up from peers. Without the end-to-end extension it must
//!   not redeliver entries marked `delivered` (uniform integrity) — the
//!   paper's §3 gap. With `end_to_end = true` it instead tracks the
//!   application's `ack(m)` and redelivers everything unacknowledged
//!   (§4.2), closing the gap.
//! * *View changes* (dynamic model): a heartbeat failure detector drives a
//!   coordinator-led flush: collect ordering state from surviving members,
//!   fill gaps, retransmit, then install the new view with a watermark
//!   that everyone delivers up to first (virtual synchrony).
//!
//! Partitionable membership is out of scope (as in the paper, §8): the
//! view-change rule follows the crash-chain (survivors of the old view),
//! which is single-partition-safe only. Partition experiments use the
//! static crash-recovery model, where a minority side blocks naturally.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;
use std::rc::Rc;

use rand::rngs::StdRng;

use groupsafe_net::{Network, NodeId};
use groupsafe_sim::{Ctx, Disk, ObsEvent, SimTime};

use crate::config::{DeliveryGuarantee, GcsConfig, GcsModel};
use crate::message::{Entry, GcsTimer, MsgId, Wire};
use crate::output::GcsOutput;
use crate::view::View;

/// Counters exposed by an endpoint.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcsStats {
    /// Messages A-broadcast by this endpoint.
    pub broadcasts: u64,
    /// Entries delivered to the application (first deliveries).
    pub delivered: u64,
    /// Redeliveries after recovery (end-to-end mode only).
    pub redelivered: u64,
    /// Stable-log writes performed (crash-recovery model). A batched
    /// frame persists with ONE write covering all its entries.
    pub persists: u64,
    /// Stability-vote messages sent. An aggregated [`Wire::AckRange`]
    /// covering a whole batch counts once.
    pub acks_sent: u64,
    /// View changes completed (coordinator or member side).
    pub view_changes: u64,
    /// Batch frames flushed by this endpoint as sequencer.
    pub batches_sent: u64,
    /// Application messages carried in those frames.
    pub batch_msgs_sent: u64,
    /// Times this endpoint demoted itself to rejoin after learning it
    /// was excluded from a newer view (stale-member re-merge).
    pub demotions: u64,
}

impl GcsStats {
    /// Fold another endpoint's counters into this one (whole-group
    /// aggregation for reports).
    pub fn merge(&mut self, other: &GcsStats) {
        self.broadcasts += other.broadcasts;
        self.delivered += other.delivered;
        self.redelivered += other.redelivered;
        self.persists += other.persists;
        self.acks_sent += other.acks_sent;
        self.view_changes += other.view_changes;
        self.batches_sent += other.batches_sent;
        self.batch_msgs_sent += other.batch_msgs_sent;
        self.demotions += other.demotions;
    }

    /// Mean messages per flushed batch (1.0 when nothing was batched).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches_sent == 0 {
            1.0
        } else {
            self.batch_msgs_sent as f64 / self.batches_sent as f64
        }
    }

    /// Stability-vote messages per delivered entry. Both counters sum
    /// per-node over the group, so the unbatched pipeline measures 1.0
    /// (each node sends one vote for each entry it delivers); the
    /// batched pipeline measures ≈ `1 / batch`.
    pub fn votes_per_delivery(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.acks_sent as f64 / self.delivered as f64
        }
    }
}

/// One entry of the crash-recovery stable log.
#[derive(Debug, Clone)]
struct StableEntry<P> {
    id: MsgId,
    payload: P,
    /// Sequencer era that assigned this entry (see [`Entry::era`]).
    era: u64,
    /// Write-ahead delivery mark (set before the entry is handed up).
    delivered: bool,
    /// Application-level `ack(m)` received (end-to-end mode).
    acked: bool,
}

/// Coordinator-side state of a view-change attempt.
struct ViewChange {
    epoch: u64,
    proposed: Vec<NodeId>,
    joiners: Vec<(NodeId, u64)>,
    /// member -> (max_seq, next_deliver)
    replies: BTreeMap<NodeId, (u64, u64)>,
    /// Waiting for entries from this member to fill our own gaps.
    fetching_from: Option<NodeId>,
}

/// Joiner-side state while waiting for a state transfer.
struct JoinState {
    generation: u64,
}

/// The group communication endpoint. See the module docs.
///
/// `P`: application payload (a replicated transaction). `S`: application
/// checkpoint handed over during state transfer.
pub struct GcsEndpoint<P, S> {
    cfg: GcsConfig,
    me: NodeId,
    group: Vec<NodeId>,
    net: Network,
    log_disk: Option<Rc<RefCell<Disk>>>,
    rng: StdRng,

    // ---- volatile state (cleared by `on_crash`) ----
    started: bool,
    joined: bool,
    view: View,
    epoch: u64,
    next_counter: u64,
    /// My broadcasts not yet seen ordered (resent on view change).
    pending: BTreeMap<MsgId, P>,
    /// Sequencer state: next sequence number to assign (if I am sequencer).
    seq_assign: Option<u64>,
    /// Ids already ordered and the sequence number each was assigned
    /// (sequencer dedup; the seq lets a resent forward be answered with
    /// a retransmission of the original assignment).
    ordered_ids: BTreeMap<MsgId, u64>,
    /// Ordered entries received, by sequence number.
    ordered: BTreeMap<u64, (MsgId, P)>,
    /// Sequencer era of each stored entry (see [`Entry::era`]).
    entry_era: BTreeMap<u64, u64>,
    /// Stability votes per sequence number, tagged with the era they
    /// were cast for: a vote for a superseded incarnation of a sequence
    /// number must not count toward its replacement.
    acks: BTreeMap<u64, (u64, BTreeSet<NodeId>)>,
    /// Sequence numbers persisted locally (crash-recovery model).
    persisted: BTreeSet<u64>,
    /// Next sequence number to deliver.
    next_deliver: u64,
    /// Every sequence number at or below this is known stable (learned
    /// from peers during catch-up; rebuilt after crashes).
    stable_floor: u64,
    /// Cached head of the contiguous known-stable prefix (advanced as
    /// stability votes land; see [`GcsEndpoint::stable_watermark`]).
    stable_mark: u64,
    /// Highest sequence number seen in any entry.
    max_seq_seen: u64,
    /// Failure detector bookkeeping.
    last_heard: BTreeMap<NodeId, SimTime>,
    suspected: BTreeSet<NodeId>,
    /// In-flight coordinator-side view change.
    vc: Option<ViewChange>,
    /// Joiners waiting for the next view change (coordinator side).
    waiting_joiners: Vec<(NodeId, u64)>,
    /// Joiner-side state.
    join: Option<JoinState>,
    /// State transfers awaiting an application checkpoint:
    /// (joiner, generation, view to install, flush watermark).
    pending_state_transfers: Vec<(NodeId, u64, View, u64)>,
    /// Sequence numbers already handed to the application in this
    /// incarnation (guards against duplicate emission when recovery
    /// replays overlap with normal delivery).
    already_emitted: BTreeSet<u64>,
    /// Sequencer-side batch accumulator: entries with assigned sequence
    /// numbers not yet multicast (batched pipeline only).
    batch_acc: Vec<Entry<P>>,
    /// Estimated payload volume of the accumulator (byte trigger).
    batch_acc_bytes: usize,
    /// Bumped on every flush, crash and view change; a `BatchFlush`
    /// timer is honoured only if its epoch still matches, so stale
    /// deadlines can never flush a later incarnation's accumulator.
    batch_epoch: u64,
    /// A `BatchFlush` deadline is outstanding for the current epoch.
    batch_timer_armed: bool,
    /// seq → number of messages in the frame that carried it (absent =
    /// 1, the unbatched path). Hosts use this to amortise per-delivery
    /// CPU accounting over the frame.
    frame_spans: BTreeMap<u64, u32>,
    /// Batch size → flush count (sequencer side).
    batch_hist: BTreeMap<u32, u64>,
    /// A `ResendPending` timer is outstanding (static model).
    resend_armed: bool,
    /// A `GapRepair` timer is outstanding.
    gap_repair_armed: bool,
    /// The delivery head when the outstanding `GapRepair` timer was
    /// armed: the repair only fires if the head has not moved for a
    /// whole timeout (a true stall, not normal in-flight stability).
    gap_repair_head: u64,
    /// The recovering sequencer may not assign sequence numbers until it
    /// has heard catch-up replies from a majority (static model).
    seq_resume_votes: Option<BTreeSet<NodeId>>,
    stats: GcsStats,

    // ---- survives crashes ----
    /// Incarnation generation (bumped by `on_recover`).
    generation: u64,
    /// The stable log (crash-recovery model only; empty otherwise).
    stable: BTreeMap<u64, StableEntry<P>>,
    /// Marker for the checkpoint type used in state transfer.
    _state: PhantomData<S>,
}

impl<P, S> GcsEndpoint<P, S>
where
    P: Clone + 'static,
    S: Clone + 'static,
{
    /// Create an endpoint for `me` over the static `group`.
    ///
    /// `log_disk` must be `Some` in the crash-recovery model (stable-log
    /// writes are charged to it).
    pub fn new(
        cfg: GcsConfig,
        me: NodeId,
        mut group: Vec<NodeId>,
        net: Network,
        log_disk: Option<Rc<RefCell<Disk>>>,
        rng: StdRng,
    ) -> Self {
        group.sort_unstable();
        group.dedup();
        assert!(
            cfg.model == GcsModel::ViewBased || log_disk.is_some(),
            "the crash-recovery model needs a log disk"
        );
        let view = View::initial(group.clone());
        GcsEndpoint {
            cfg,
            me,
            group,
            net,
            log_disk,
            rng,
            started: false,
            joined: true,
            view,
            epoch: 0,
            next_counter: 0,
            pending: BTreeMap::new(),
            seq_assign: None,
            ordered_ids: BTreeMap::new(),
            ordered: BTreeMap::new(),
            entry_era: BTreeMap::new(),
            acks: BTreeMap::new(),
            persisted: BTreeSet::new(),
            next_deliver: 1,
            stable_floor: 0,
            stable_mark: 0,
            max_seq_seen: 0,
            last_heard: BTreeMap::new(),
            suspected: BTreeSet::new(),
            vc: None,
            waiting_joiners: Vec::new(),
            join: None,
            pending_state_transfers: Vec::new(),
            already_emitted: BTreeSet::new(),
            batch_acc: Vec::new(),
            batch_acc_bytes: 0,
            batch_epoch: 0,
            batch_timer_armed: false,
            frame_spans: BTreeMap::new(),
            batch_hist: BTreeMap::new(),
            resend_armed: false,
            gap_repair_armed: false,
            gap_repair_head: 0,
            seq_resume_votes: None,
            stats: GcsStats::default(),
            generation: 0,
            stable: BTreeMap::new(),
            _state: PhantomData,
        }
    }

    /// This endpoint's node id.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// The current view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// True if this endpoint currently acts as the sequencer.
    pub fn is_sequencer(&self) -> bool {
        self.sequencer() == Some(self.me)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> GcsStats {
        self.stats
    }

    /// Number of messages in the frame that carried `seq` (1 when it
    /// arrived on the unbatched path or via catch-up/retransmit).
    pub fn frame_span(&self, seq: u64) -> u32 {
        self.frame_spans.get(&seq).copied().unwrap_or(1).max(1)
    }

    /// Batch-size histogram of the frames this endpoint flushed as
    /// sequencer: size → count.
    pub fn batch_histogram(&self) -> &BTreeMap<u32, u64> {
        &self.batch_hist
    }

    /// Entries currently waiting in the sequencer's batch accumulator
    /// (inspection/test helper).
    pub fn accumulator_len(&self) -> usize {
        self.batch_acc.len()
    }

    /// Next sequence number this endpoint would deliver.
    pub fn next_deliver(&self) -> u64 {
        self.next_deliver
    }

    /// Debug: the delivery head's state `(next_deliver, have_entry,
    /// persisted, stable)` (inspection helper for scenario forensics).
    pub fn head_state(&self) -> (u64, bool, bool, bool, usize, u64, u64) {
        (
            self.next_deliver,
            self.ordered.contains_key(&self.next_deliver),
            self.persisted.contains(&self.next_deliver),
            self.is_stable(self.next_deliver),
            self.acks.get(&self.next_deliver).map_or(0, |v| v.1.len()),
            self.max_seq_seen,
            self.stable_floor,
        )
    }

    /// Entries this endpoint knows exist but has not delivered yet (the
    /// distance between the highest sequence number seen and the
    /// delivery head). Zero once the endpoint is fully drained.
    pub fn backlog(&self) -> u64 {
        self.max_seq_seen
            .saturating_sub(self.next_deliver.saturating_sub(1))
    }

    /// True if this endpoint is a functioning group member (not mid-join).
    pub fn is_joined(&self) -> bool {
        self.joined
    }

    /// The node this endpoint currently believes is the sequencer:
    /// the fixed first group member in the static model, the view
    /// coordinator in the dynamic one. Scenario drivers use this to aim
    /// targeted faults (kill-the-sequencer) at whoever holds the role
    /// *now*, not at a hard-coded id.
    pub fn sequencer(&self) -> Option<NodeId> {
        match self.cfg.model {
            // Static model: fixed sequencer (liveness requires it to be a
            // yellow process — it eventually recovers, see module docs).
            GcsModel::CrashRecovery => self.group.first().copied(),
            GcsModel::ViewBased => self.view.coordinator(),
        }
    }

    fn majority(&self) -> usize {
        match self.cfg.model {
            GcsModel::CrashRecovery => self.group.len() / 2 + 1,
            GcsModel::ViewBased => self.view.majority(),
        }
    }

    /// Start protocol activity (heartbeats, sequencer duty). Call once from
    /// the host's initialisation event.
    pub fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.started = true;
        if self.sequencer() == Some(self.me) {
            self.seq_assign = Some(1);
        }
        let now = ctx.now();
        for &p in &self.group {
            self.last_heard.insert(p, now);
        }
        if self.cfg.model == GcsModel::ViewBased {
            ctx.timer(self.cfg.hb_interval, GcsTimer::Heartbeat);
        }
    }

    /// `A-broadcast(m)`: submit `payload` to the total order. Returns the
    /// message id. Resent automatically across view changes until ordered.
    pub fn broadcast(&mut self, ctx: &mut Ctx<'_>, payload: P) -> MsgId {
        self.next_counter += 1;
        let id = MsgId {
            origin: self.me,
            counter: self.next_counter,
        };
        self.stats.broadcasts += 1;
        self.pending.insert(id, payload.clone());
        if let Some(seq_node) = self.sequencer() {
            self.net.send(
                ctx,
                self.me,
                seq_node,
                Wire::<P, S>::Forward { id, payload },
            );
        }
        if !self.resend_armed {
            // Retry until the sequencer orders the message. The static
            // model has no view change to trigger resends at all; the
            // view model resends on view changes, but a loss burst can
            // eat an Ordered multicast without any view changing.
            self.resend_armed = true;
            ctx.timer(self.cfg.change_timeout, GcsTimer::ResendPending);
        }
        id
    }

    /// Application-level `ack(m)` (end-to-end mode, §4.2): the message at
    /// `seq` was processed (successfully delivered). Idempotent.
    pub fn app_ack(&mut self, _ctx: &mut Ctx<'_>, seq: u64) {
        if let Some(e) = self.stable.get_mut(&seq) {
            e.acked = true;
        }
    }

    /// Handle an incoming network message.
    pub fn on_net(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        wire: Wire<P, S>,
        out: &mut Vec<GcsOutput<P, S>>,
    ) {
        self.last_heard.insert(from, ctx.now());
        // A suspected process that demonstrably speaks is alive again:
        // retract the suspicion. Without this, a partition that split the
        // view below quorum on every side (no view change could complete)
        // leaves permanent mutual suspicion after the heal, and the group
        // never regains a coordinator quorum. A genuinely-stale
        // incarnation is re-suspected where it matters (`on_join_req`),
        // and a silent peer is re-suspected one heartbeat timeout later.
        self.suspected.remove(&from);
        match wire {
            Wire::Forward { id, payload } => self.on_forward(ctx, id, payload),
            Wire::Ordered { view, entry } => self.on_ordered(ctx, view, entry, out),
            Wire::OrderedBatch { view, entries } => self.on_ordered_batch(ctx, view, entries, out),
            Wire::Ack { seq, era } => {
                self.record_ack(from, seq, era);
                self.try_deliver(ctx, out);
            }
            Wire::AckRange { lo, hi, era } => {
                for seq in lo..=hi {
                    self.record_ack(from, seq, era);
                }
                self.try_deliver(ctx, out);
            }
            Wire::Heartbeat => {
                // A heartbeat from a process outside the current view:
                // a stale member that was excluded (e.g. a healed
                // partition's minority) and still believes in its old
                // membership. Tell it, so it can rejoin instead of
                // blocking forever on a view the group abandoned.
                if self.cfg.model == GcsModel::ViewBased && self.joined && !self.view.contains(from)
                {
                    let view_id = self.view.id;
                    let members = self.view.members.clone();
                    self.net.send(
                        ctx,
                        self.me,
                        from,
                        Wire::<P, S>::NotInView { view_id, members },
                    );
                }
            }
            Wire::NotInView { view_id, members } => {
                self.on_not_in_view(ctx, from, view_id, &members)
            }
            Wire::ViewStart { epoch, proposed } => self.on_view_start(ctx, from, epoch, proposed),
            Wire::SyncReply {
                epoch,
                max_seq,
                next_deliver,
            } => self.on_sync_reply(ctx, from, epoch, max_seq, next_deliver, out),
            Wire::SyncFetch { epoch, have_up_to } => {
                self.on_view_change_fetch(ctx, from, have_up_to, epoch)
            }
            Wire::SyncEntries { epoch, entries } => self.on_sync_entries(ctx, epoch, entries, out),
            Wire::Retransmit { entries } => {
                for e in entries {
                    self.store_entry(ctx, e);
                }
                self.try_deliver(ctx, out);
            }
            Wire::NewView { view, watermark } => self.on_new_view(ctx, view, watermark, out),
            Wire::JoinReq { generation } => self.on_join_req(ctx, from, generation, out),
            Wire::StateTransfer {
                view,
                applied_seq,
                tail,
                state,
                watermark,
            } => self.on_state_transfer(ctx, view, applied_seq, tail, state, watermark, out),
            Wire::CatchUpReq { have_up_to } => self.on_catch_up_req(ctx, from, have_up_to),
            Wire::CatchUp {
                entries,
                stable_up_to,
            } => {
                self.stable_floor = self.stable_floor.max(stable_up_to);
                for e in entries {
                    self.store_entry(ctx, e);
                }
                // A recovering sequencer resumes assigning only after a
                // majority of peers confirmed what they hold, so it can
                // never reuse a sequence number it lost in the crash.
                if let Some(votes) = &mut self.seq_resume_votes {
                    votes.insert(from);
                    if votes.len() + 1 >= self.majority() {
                        self.seq_resume_votes = None;
                        // Defer the actual resumption by one timeout: the
                        // reply that tripped the threshold travelled in a
                        // wave with its peers', and a same-wave straggler
                        // may carry entries this sequencer must not
                        // reassign. Any *stable* entry is guaranteed to
                        // be in some reply of the wave (two majorities
                        // always intersect), so after the grace the
                        // resume point sits above everything stable.
                        ctx.timer(self.cfg.change_timeout, GcsTimer::SeqResume);
                    }
                }
                self.try_deliver(ctx, out);
            }
        }
    }

    /// Handle a timer previously scheduled by this endpoint.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: GcsTimer, out: &mut Vec<GcsOutput<P, S>>) {
        match timer {
            GcsTimer::Heartbeat => self.on_heartbeat_timer(ctx, out),
            GcsTimer::Persisted { seq } => self.on_persisted(ctx, seq, out),
            GcsTimer::DeliveredMarked { seq } => {
                // The write-ahead "delivered" mark is modelled as free in
                // time (piggybacked metadata) — the timer fires immediately
                // and exists so the semantics stay explicit in the code.
                let _ = seq;
            }
            GcsTimer::ViewChangeRetry { epoch } => {
                if self.vc.as_ref().is_some_and(|vc| vc.epoch == epoch) {
                    let vc = self.vc.take().expect("checked");
                    // The abandoned change took its joiners out of
                    // `waiting_joiners`; put them back or their (deduped)
                    // retries would never reach another view change.
                    for (n, g) in vc.joiners {
                        if !self.waiting_joiners.iter().any(|&(m, _)| m == n) {
                            self.waiting_joiners.push((n, g));
                        }
                    }
                    self.maybe_start_view_change(ctx, out);
                }
            }
            GcsTimer::JoinRetry { generation } => {
                if self
                    .join
                    .as_ref()
                    .is_some_and(|j| j.generation == generation)
                {
                    self.send_join_req(ctx);
                }
            }
            GcsTimer::BatchFlush { epoch } => {
                // Honour the deadline only if nothing flushed, crashed or
                // changed view since it was armed: a stale deadline must
                // never flush a later incarnation's accumulator.
                if self.started && epoch == self.batch_epoch {
                    self.flush_batch(ctx);
                }
            }
            GcsTimer::BatchPersisted { lo, hi } => self.on_batch_persisted(ctx, lo, hi, out),
            GcsTimer::SeqResume => {
                if self.cfg.model == GcsModel::CrashRecovery
                    && self.sequencer() == Some(self.me)
                    && self.seq_assign.is_none()
                    && self.seq_resume_votes.is_none()
                {
                    self.seq_assign = Some(self.max_seq_seen + 1);
                }
            }
            GcsTimer::ResumeRetry => {
                if self.seq_resume_votes.is_some() {
                    let targets: Vec<NodeId> = self
                        .group
                        .iter()
                        .copied()
                        .filter(|&p| p != self.me)
                        .collect();
                    let have = self.contiguous_persisted();
                    self.net.multicast(
                        ctx,
                        self.me,
                        &targets,
                        Wire::<P, S>::CatchUpReq { have_up_to: have },
                    );
                    ctx.timer(self.cfg.change_timeout, GcsTimer::ResumeRetry);
                }
            }
            GcsTimer::GapRepair => {
                self.gap_repair_armed = false;
                if self.joined && self.next_deliver <= self.max_seq_seen {
                    if self.next_deliver == self.gap_repair_head {
                        // The head has not moved for a whole timeout: a
                        // true stall (a hole in the sequence, or votes
                        // that circulated while this node was down or
                        // partitioned away), not in-flight stability.
                        let targets: Vec<NodeId> = self
                            .group
                            .iter()
                            .copied()
                            .filter(|&p| p != self.me)
                            .collect();
                        let have_up_to = self.next_deliver - 1;
                        self.net.multicast(
                            ctx,
                            self.me,
                            &targets,
                            Wire::<P, S>::CatchUpReq { have_up_to },
                        );
                    }
                    // Keep watching while entries remain undelivered
                    // (the head may stall again, and repair replies may
                    // themselves be lost).
                    self.gap_repair_armed = true;
                    self.gap_repair_head = self.next_deliver;
                    ctx.timer(self.cfg.change_timeout, GcsTimer::GapRepair);
                }
            }
            GcsTimer::ResendPending => {
                self.resend_armed = false;
                if !self.pending.is_empty() {
                    if let Some(seq_node) = self.sequencer() {
                        let pending: Vec<(MsgId, P)> =
                            self.pending.iter().map(|(k, v)| (*k, v.clone())).collect();
                        for (id, payload) in pending {
                            self.net.send(
                                ctx,
                                self.me,
                                seq_node,
                                Wire::<P, S>::Forward { id, payload },
                            );
                        }
                    }
                    self.resend_armed = true;
                    ctx.timer(self.cfg.change_timeout, GcsTimer::ResendPending);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Ordering fast path
    // ------------------------------------------------------------------

    fn on_forward(&mut self, ctx: &mut Ctx<'_>, id: MsgId, payload: P) {
        let Some(next) = self.seq_assign else {
            return; // not the sequencer (stale forward); sender will resend
        };
        if let Some(&seq) = self.ordered_ids.get(&id) {
            // Duplicate (resend after a view change or a retry timer). A
            // resend means the broadcaster has not seen its message
            // ordered: the original Ordered multicast may have been lost
            // on every wire at once (a loss burst can eat all copies,
            // including this sequencer's own loopback — nothing else
            // retransmits an assignment). Re-multicast the entry at its
            // original number, rebuilding it from the resent payload if
            // even the local copy is gone.
            if self.batch_acc.iter().any(|e| e.id == id) {
                return; // still in the accumulator: its flush will carry it
            }
            let era = self
                .entry_era
                .get(&seq)
                .copied()
                .unwrap_or(match self.cfg.model {
                    GcsModel::CrashRecovery => self.generation,
                    GcsModel::ViewBased => 0,
                });
            let entry = match self.ordered.get(&seq) {
                Some((eid, p)) if *eid == id => Entry {
                    seq,
                    id,
                    payload: p.clone(),
                    era,
                },
                Some(_) => return, // superseded meanwhile: let it die
                None => Entry {
                    seq,
                    id,
                    payload,
                    era,
                },
            };
            let members = self.ordering_targets();
            let view = self.view.id;
            self.net.multicast(
                ctx,
                self.me,
                &members,
                Wire::<P, S>::Ordered { view, entry },
            );
            return;
        }
        // Record immediately: a duplicate forward arriving before our own
        // Ordered loops back must not get a second sequence number.
        self.ordered_ids.insert(id, next);
        self.seq_assign = Some(next + 1);
        ctx.emit(|| ObsEvent::Sequence { seq: next });
        let entry = Entry {
            seq: next,
            id,
            payload,
            // Static model: tag the assignment with this incarnation so a
            // post-crash reassignment of the same seq supersedes it
            // cleanly. The view-based model serialises reassignment via
            // the view-change flush and keeps era 0.
            era: match self.cfg.model {
                GcsModel::CrashRecovery => self.generation,
                GcsModel::ViewBased => 0,
            },
        };
        if self.cfg.batch.enabled() {
            self.accumulate(ctx, entry);
            return;
        }
        // The assignment is committed to the wire here: reflect it in
        // max_seq_seen immediately. Waiting for the self-delivery loopback
        // leaves a window in which a finishing view change snapshots a
        // watermark BELOW this entry — the next sequencer would then
        // reuse its sequence number for a different message.
        self.max_seq_seen = self.max_seq_seen.max(next);
        let members = self.ordering_targets();
        let view = self.view.id;
        let fanout = members.len() as u32;
        ctx.emit(|| ObsEvent::MulticastSend { fanout });
        self.net.multicast(
            ctx,
            self.me,
            &members,
            Wire::<P, S>::Ordered { view, entry },
        );
    }

    /// The nodes an ordering frame goes to (the whole view or group,
    /// including the sequencer itself — self-delivery through the
    /// loopback keeps both pipelines symmetric).
    fn ordering_targets(&self) -> Vec<NodeId> {
        match self.cfg.model {
            GcsModel::ViewBased => self.view.members.clone(),
            GcsModel::CrashRecovery => self.group.clone(),
        }
    }

    /// Sequencer side of the batched pipeline: hold the freshly ordered
    /// entry until a flush trigger fires (size, bytes or deadline). The
    /// sequence number is already assigned, so accumulation changes the
    /// framing of the total order, never the order itself.
    fn accumulate(&mut self, ctx: &mut Ctx<'_>, entry: Entry<P>) {
        self.batch_acc_bytes += std::mem::size_of::<P>();
        self.batch_acc.push(entry);
        let full = self.batch_acc.len() >= self.cfg.batch.max_msgs
            || (self.cfg.batch.max_bytes > 0 && self.batch_acc_bytes >= self.cfg.batch.max_bytes);
        if full {
            self.flush_batch(ctx);
        } else if !self.batch_timer_armed {
            self.batch_timer_armed = true;
            ctx.timer(
                self.cfg.batch.max_delay,
                GcsTimer::BatchFlush {
                    epoch: self.batch_epoch,
                },
            );
        }
    }

    /// Ship the accumulator as one `OrderedBatch` frame.
    fn flush_batch(&mut self, ctx: &mut Ctx<'_>) {
        if self.batch_acc.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.batch_acc);
        self.batch_acc_bytes = 0;
        self.batch_timer_armed = false;
        self.batch_epoch += 1; // invalidate any armed deadline
        let n = entries.len() as u64;
        // As in the unbatched path: the frame's sequence numbers are
        // committed to the wire now (never rolled back after this point),
        // so max_seq_seen must cover them before any concurrent view
        // change snapshots its watermark.
        if let Some(last) = entries.last() {
            self.max_seq_seen = self.max_seq_seen.max(last.seq);
        }
        self.stats.batches_sent += 1;
        self.stats.batch_msgs_sent += n;
        *self.batch_hist.entry(n as u32).or_insert(0) += 1;
        ctx.emit(|| ObsEvent::BatchFlush { size: n as u32 });
        let members = self.ordering_targets();
        let view = self.view.id;
        let fanout = members.len() as u32;
        ctx.emit(|| ObsEvent::MulticastSend { fanout });
        self.net.multicast_frame(
            ctx,
            self.me,
            &members,
            Wire::<P, S>::OrderedBatch { view, entries },
            n,
        );
    }

    /// Throw the accumulator away and return its sequence numbers to the
    /// assigner (view changes). Nothing in the accumulator was ever
    /// multicast, so the rollback is invisible: the senders still hold
    /// the payloads in `pending` and re-forward them to the sequencer of
    /// the new view, where they are ordered afresh.
    fn rollback_accumulator(&mut self) {
        if self.batch_acc.is_empty() {
            return;
        }
        let first = self.batch_acc.first().map(|e| e.seq);
        for e in self.batch_acc.drain(..) {
            self.ordered_ids.remove(&e.id);
        }
        self.batch_acc_bytes = 0;
        self.batch_timer_armed = false;
        self.batch_epoch += 1;
        if self.seq_assign.is_some() {
            self.seq_assign = first;
        }
    }

    /// Record an ordered entry locally without the delivery-path side
    /// effects (ack/persist). Returns true if the entry was new.
    fn store_entry_raw(&mut self, entry: Entry<P>) -> bool {
        if entry.seq < self.next_deliver {
            return false;
        }
        if let Some(&(old_id, _)) = self.ordered.get(&entry.seq) {
            let old_era = self.entry_era.get(&entry.seq).copied().unwrap_or(0);
            // A *higher-era* assignment supersedes an undelivered entry:
            // the old sequencer died before this seq stabilised anywhere
            // (otherwise its successor would have resumed above it), and
            // its next incarnation reassigned the number. Everything
            // attached to the dead incarnation — id registration, votes,
            // local persistence — is discarded with it.
            if self.cfg.model != GcsModel::CrashRecovery || entry.era <= old_era {
                return false;
            }
            if old_id != entry.id {
                self.ordered_ids.remove(&old_id);
            }
            self.acks.remove(&entry.seq);
            self.persisted.remove(&entry.seq);
            self.stable.remove(&entry.seq);
        }
        self.max_seq_seen = self.max_seq_seen.max(entry.seq);
        self.entry_era.insert(entry.seq, entry.era);
        self.ordered_ids.insert(entry.id, entry.seq);
        self.pending.remove(&entry.id);
        self.ordered.insert(entry.seq, (entry.id, entry.payload));
        true
    }

    /// Record an ordered entry locally; in the view model also acknowledge.
    fn store_entry(&mut self, ctx: &mut Ctx<'_>, entry: Entry<P>) {
        let seq = entry.seq;
        if !self.store_entry_raw(entry) {
            return;
        }
        match self.cfg.model {
            GcsModel::ViewBased => {
                if self.cfg.guarantee == DeliveryGuarantee::Uniform {
                    self.send_ack(ctx, seq);
                }
            }
            GcsModel::CrashRecovery => {
                // Persist before acknowledging: stability is backed by
                // stable storage in this model.
                let disk = self.log_disk.as_ref().expect("checked in new").clone();
                let done = disk.borrow_mut().access(ctx.now(), &mut self.rng);
                self.stats.persists += 1;
                ctx.timer(done - ctx.now(), GcsTimer::Persisted { seq });
            }
        }
    }

    /// Receiver side of a batch frame: store every entry, then run the
    /// per-frame (instead of per-entry) side effects — ONE stable-log
    /// write covering the whole frame, ONE aggregated stability vote.
    fn on_ordered_batch(
        &mut self,
        ctx: &mut Ctx<'_>,
        _view: u64,
        entries: Vec<Entry<P>>,
        out: &mut Vec<GcsOutput<P, S>>,
    ) {
        if !self.joined || entries.is_empty() {
            return; // mid-join: the state transfer will cover these entries
        }
        let span = entries.len() as u32;
        let lo = entries.first().expect("non-empty").seq;
        let hi = entries.last().expect("non-empty").seq;
        let mut fresh = false;
        for e in entries {
            self.frame_spans.insert(e.seq, span);
            fresh |= self.store_entry_raw(e);
        }
        if fresh {
            match self.cfg.model {
                GcsModel::ViewBased => {
                    if self.cfg.guarantee == DeliveryGuarantee::Uniform {
                        self.send_ack_range(ctx, lo, hi);
                    }
                }
                GcsModel::CrashRecovery => {
                    // One sequential stable-log write for the whole frame;
                    // the aggregated vote follows once it is on disk.
                    let disk = self.log_disk.as_ref().expect("checked in new").clone();
                    let done = disk.borrow_mut().access(ctx.now(), &mut self.rng);
                    self.stats.persists += 1;
                    ctx.timer(done - ctx.now(), GcsTimer::BatchPersisted { lo, hi });
                }
            }
        }
        self.try_deliver(ctx, out);
    }

    /// The frame-wide stable-log write finished: mark everything in the
    /// window persisted and send one aggregated vote for it.
    fn on_batch_persisted(
        &mut self,
        ctx: &mut Ctx<'_>,
        lo: u64,
        hi: u64,
        out: &mut Vec<GcsOutput<P, S>>,
    ) {
        let mut any = false;
        for seq in lo..=hi {
            if self.persisted.contains(&seq) {
                continue;
            }
            let Some((id, payload)) = self.ordered.get(&seq).cloned() else {
                continue;
            };
            self.persisted.insert(seq);
            let era = self.entry_era.get(&seq).copied().unwrap_or(0);
            self.stable.insert(
                seq,
                StableEntry {
                    id,
                    payload,
                    era,
                    delivered: false,
                    acked: false,
                },
            );
            any = true;
        }
        if any {
            // One frame-wide stable-log write covered the whole window.
            ctx.emit(|| ObsEvent::StableWrite { seq: hi });
            self.send_ack_range(ctx, lo, hi);
            self.try_deliver(ctx, out);
        }
    }

    fn on_ordered(
        &mut self,
        ctx: &mut Ctx<'_>,
        _view: u64,
        entry: Entry<P>,
        out: &mut Vec<GcsOutput<P, S>>,
    ) {
        if !self.joined {
            return; // mid-join: the state transfer will cover this entry
        }
        self.store_entry(ctx, entry);
        self.try_deliver(ctx, out);
    }

    fn on_persisted(&mut self, ctx: &mut Ctx<'_>, seq: u64, out: &mut Vec<GcsOutput<P, S>>) {
        let Some((id, payload)) = self.ordered.get(&seq).cloned() else {
            return;
        };
        ctx.emit(|| ObsEvent::StableWrite { seq });
        self.persisted.insert(seq);
        let era = self.entry_era.get(&seq).copied().unwrap_or(0);
        self.stable.insert(
            seq,
            StableEntry {
                id,
                payload,
                era,
                delivered: false,
                acked: false,
            },
        );
        self.send_ack(ctx, seq);
        self.try_deliver(ctx, out);
    }

    fn send_ack(&mut self, ctx: &mut Ctx<'_>, seq: u64) {
        ctx.emit(|| ObsEvent::Vote { seq });
        let era = self.entry_era.get(&seq).copied().unwrap_or(0);
        self.record_ack(self.me, seq, era);
        let targets: Vec<NodeId> = self
            .ordering_targets()
            .into_iter()
            .filter(|&p| p != self.me)
            .collect();
        self.stats.acks_sent += 1;
        self.net
            .multicast(ctx, self.me, &targets, Wire::<P, S>::Ack { seq, era });
    }

    /// One aggregated stability vote covering `lo..=hi` (batched
    /// pipeline): semantically `hi - lo + 1` acks, one message.
    fn send_ack_range(&mut self, ctx: &mut Ctx<'_>, lo: u64, hi: u64) {
        // One aggregated vote: the window's head stands for the frame.
        ctx.emit(|| ObsEvent::Vote { seq: hi });
        let era = self.entry_era.get(&lo).copied().unwrap_or(0);
        for seq in lo..=hi {
            self.record_ack(self.me, seq, era);
        }
        let targets: Vec<NodeId> = self
            .ordering_targets()
            .into_iter()
            .filter(|&p| p != self.me)
            .collect();
        self.stats.acks_sent += 1;
        self.net.multicast_frame(
            ctx,
            self.me,
            &targets,
            Wire::<P, S>::AckRange { lo, hi, era },
            hi - lo + 1,
        );
    }

    fn record_ack(&mut self, from: NodeId, seq: u64, era: u64) {
        let slot = self
            .acks
            .entry(seq)
            .or_insert_with(|| (era, BTreeSet::new()));
        if era > slot.0 {
            // Votes for a newer incarnation of the seq supersede the old.
            *slot = (era, BTreeSet::new());
        } else if era < slot.0 {
            return; // stale vote for a superseded incarnation
        }
        slot.1.insert(from);
        self.bump_stable_mark();
    }

    /// Advance the cached contiguous-stable head past every sequence
    /// number whose stability is now known (amortised O(1) per vote).
    fn bump_stable_mark(&mut self) {
        let mut s = self.stable_mark.max(self.stable_floor);
        while self.is_stable(s + 1) {
            s += 1;
        }
        self.stable_mark = s;
    }

    /// The group-stable watermark: the highest sequence number `S` such
    /// that every entry at or below `S` is known stable — held by a
    /// majority of the view/group (and, in the crash-recovery model,
    /// persisted before the vote). This is the paper's group-stability
    /// line: no failure the configured guarantee tolerates can lose an
    /// entry at or below it, which is exactly what the read path's
    /// `ReadLevel::Stable` serves under. May briefly exceed the delivery
    /// head (stable entries not yet handed up) or trail it (entries
    /// flushed by a view change before their votes were counted — the
    /// view agreement makes those stable too, and the accessor reflects
    /// it as soon as the install raises the floor).
    pub fn stable_watermark(&self) -> u64 {
        self.stable_mark.max(self.stable_floor)
    }

    fn is_stable(&self, seq: u64) -> bool {
        if seq <= self.stable_floor {
            return true;
        }
        let Some((vote_era, votes)) = self.acks.get(&seq) else {
            return false;
        };
        // Votes must be for the incarnation of the entry actually held.
        if *vote_era != self.entry_era.get(&seq).copied().unwrap_or(0) {
            return false;
        }
        let voters: &[NodeId] = match self.cfg.model {
            GcsModel::ViewBased => &self.view.members,
            GcsModel::CrashRecovery => &self.group,
        };
        let count = votes.iter().filter(|v| voters.contains(v)).count();
        count >= self.majority()
    }

    fn try_deliver(&mut self, ctx: &mut Ctx<'_>, out: &mut Vec<GcsOutput<P, S>>) {
        if !self.joined {
            return;
        }
        loop {
            let seq = self.next_deliver;
            if !self.ordered.contains_key(&seq) {
                self.maybe_arm_gap_repair(ctx);
                return;
            }
            let deliverable = match self.cfg.guarantee {
                DeliveryGuarantee::NonUniform => true,
                DeliveryGuarantee::Uniform => {
                    // In the crash-recovery model an entry must additionally
                    // be persisted locally before delivery (otherwise a
                    // crash right after delivery leaves no local record).
                    let local_ok =
                        self.cfg.model == GcsModel::ViewBased || self.persisted.contains(&seq);
                    local_ok && self.is_stable(seq)
                }
            };
            if !deliverable {
                // A head entry stuck behind stability can be as final as
                // a hole: its votes may have circulated while this node
                // was down. The repair's CatchUp reply carries the
                // responder's stable floor, unsticking it.
                self.maybe_arm_gap_repair(ctx);
                return;
            }
            self.deliver_one(ctx, seq, false, out);
        }
    }

    /// Gap repair: a member whose delivery head is stuck — a hole in
    /// the sequence, or an entry whose stability votes circulated while
    /// this node was down or partitioned away — would stall forever
    /// without help. The crash-recovery model has no view-change flush
    /// to refill it at all; the view-based model refills on view
    /// changes, but a short partition whose suspicions are retracted at
    /// the heal never changes the view, leaving the healed member with
    /// a permanent hole. Arm a timer; if the head has not moved when it
    /// fires, ask the group for everything above the contiguous prefix
    /// (the reply also carries the responder's stable floor).
    fn maybe_arm_gap_repair(&mut self, ctx: &mut Ctx<'_>) {
        if self.gap_repair_armed || self.next_deliver > self.max_seq_seen {
            return;
        }
        self.gap_repair_armed = true;
        self.gap_repair_head = self.next_deliver;
        ctx.timer(self.cfg.change_timeout, GcsTimer::GapRepair);
    }

    fn deliver_one(
        &mut self,
        ctx: &mut Ctx<'_>,
        seq: u64,
        redelivery: bool,
        out: &mut Vec<GcsOutput<P, S>>,
    ) {
        let (id, payload) = self.ordered.get(&seq).cloned().expect("entry present");
        // Entries already handed up in this incarnation, or already
        // *successfully* delivered in a previous one (end-to-end mode),
        // advance the cursor without a second emission (refined uniform
        // integrity: successful delivery at most once).
        let already_done = self.already_emitted.contains(&seq)
            || (self.cfg.end_to_end && self.stable.get(&seq).is_some_and(|e| e.acked));
        if self.cfg.model == GcsModel::CrashRecovery {
            // Write-ahead delivery mark (see module docs). The mark itself
            // is free in time (piggybacked metadata write).
            if let Some(e) = self.stable.get_mut(&seq) {
                e.delivered = true;
            }
        }
        self.next_deliver = self.next_deliver.max(seq + 1);
        if already_done {
            return;
        }
        self.already_emitted.insert(seq);
        ctx.emit(|| ObsEvent::UniformDeliver { seq });
        if redelivery {
            self.stats.redelivered += 1;
        } else {
            self.stats.delivered += 1;
        }
        out.push(GcsOutput::Deliver {
            seq,
            id,
            payload,
            redelivery,
        });
    }

    /// Deliver everything up to `watermark` unconditionally (view-change
    /// flush: all members of the incoming view hold these entries).
    fn flush_up_to(&mut self, ctx: &mut Ctx<'_>, watermark: u64, out: &mut Vec<GcsOutput<P, S>>) {
        while self.next_deliver <= watermark {
            let seq = self.next_deliver;
            if self.ordered.contains_key(&seq) {
                self.deliver_one(ctx, seq, false, out);
            } else {
                debug_assert!(false, "flush gap at seq {seq} (missing retransmit)");
                self.next_deliver += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Failure detection and view changes (dynamic model)
    // ------------------------------------------------------------------

    fn on_heartbeat_timer(&mut self, ctx: &mut Ctx<'_>, out: &mut Vec<GcsOutput<P, S>>) {
        if !self.joined {
            ctx.timer(self.cfg.hb_interval, GcsTimer::Heartbeat);
            return;
        }
        let targets: Vec<NodeId> = self
            .view
            .members
            .iter()
            .copied()
            .filter(|&p| p != self.me)
            .collect();
        self.net
            .multicast(ctx, self.me, &targets, Wire::<P, S>::Heartbeat);
        let now = ctx.now();
        let mut newly = false;
        for &p in &self.view.members {
            if p == self.me || self.suspected.contains(&p) {
                continue;
            }
            let heard = self.last_heard.get(&p).copied().unwrap_or(SimTime::ZERO);
            if now.since(heard) > self.cfg.hb_timeout {
                self.suspected.insert(p);
                newly = true;
            }
        }
        if newly {
            // A running attempt that still counts a now-suspected member
            // must be restarted.
            if let Some(vc) = &self.vc {
                if vc.proposed.iter().any(|p| self.suspected.contains(p)) {
                    self.vc = None;
                }
            }
            if self.suspected.len() == self.view.members.len() - 1 && self.view.len() > 1 {
                // Everyone else looks down: from this process's vantage
                // point the group has failed (it may still continue alone,
                // but durability-by-the-group is gone).
                out.push(GcsOutput::GroupFailed);
            }
            self.maybe_start_view_change(ctx, out);
        }
        ctx.timer(self.cfg.hb_interval, GcsTimer::Heartbeat);
    }

    /// The coordinator among un-suspected members starts the view change.
    fn maybe_start_view_change(&mut self, ctx: &mut Ctx<'_>, out: &mut Vec<GcsOutput<P, S>>) {
        if self.vc.is_some() || !self.joined {
            return;
        }
        let survivors: Vec<NodeId> = self
            .view
            .members
            .iter()
            .copied()
            .filter(|p| !self.suspected.contains(p))
            .collect();
        let need_change =
            survivors.len() != self.view.members.len() || !self.waiting_joiners.is_empty();
        if !need_change {
            return;
        }
        if survivors.first() != Some(&self.me) {
            return; // not the coordinator
        }
        // Primary-partition rule: the next view must contain a majority of
        // the current view's members (rejoining incarnations of old
        // members count). A minority side stays blocked — it keeps the old
        // view, cannot reach stability, and therefore cannot acknowledge
        // anything (this is what makes uniform delivery group-safe under
        // partitions, unlike non-uniform delivery).
        if self.cfg.guarantee == DeliveryGuarantee::Uniform {
            // A rejoining old member only counts if we heard from it
            // recently (a JoinReq retry arrives every change_timeout):
            // a parked joiner on the far side of a fresh partition must
            // not be credited as "present" toward the majority, or an
            // isolated minority could complete a solo view change and
            // fork the lineage.
            let now = ctx.now();
            let fresh = self.cfg.change_timeout + self.cfg.hb_timeout;
            let rejoining = self
                .waiting_joiners
                .iter()
                .filter(|(n, _)| {
                    self.view.contains(*n)
                        && !survivors.contains(n)
                        && self
                            .last_heard
                            .get(n)
                            .is_some_and(|&heard| now.since(heard) <= fresh)
                })
                .count();
            if survivors.len() + rejoining < self.view.majority() {
                return;
            }
        }
        // A non-empty accumulator holds sequence numbers nobody else has
        // seen; return them to the assigner so the view change cannot
        // reassign them underneath us. The senders re-forward after the
        // new view installs.
        self.rollback_accumulator();
        self.epoch += 1;
        let epoch = self.epoch;
        let mut vc = ViewChange {
            epoch,
            proposed: survivors.clone(),
            joiners: std::mem::take(&mut self.waiting_joiners),
            replies: BTreeMap::new(),
            fetching_from: None,
        };
        vc.replies
            .insert(self.me, (self.max_seq_seen, self.next_deliver));
        self.vc = Some(vc);
        let others: Vec<NodeId> = survivors
            .iter()
            .copied()
            .filter(|&p| p != self.me)
            .collect();
        self.net.multicast(
            ctx,
            self.me,
            &others,
            Wire::<P, S>::ViewStart {
                epoch,
                proposed: survivors,
            },
        );
        ctx.timer(self.cfg.change_timeout, GcsTimer::ViewChangeRetry { epoch });
        self.check_view_change_done(ctx, out);
    }

    fn on_view_start(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        epoch: u64,
        _proposed: Vec<NodeId>,
    ) {
        if epoch < self.epoch || !self.joined {
            return;
        }
        self.epoch = epoch;
        // A deposed sequencer must not keep sequence numbers the new
        // coordinator never heard of (see maybe_start_view_change).
        self.rollback_accumulator();
        self.net.send(
            ctx,
            self.me,
            from,
            Wire::<P, S>::SyncReply {
                epoch,
                max_seq: self.max_seq_seen,
                next_deliver: self.next_deliver,
            },
        );
    }

    fn on_sync_reply(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        epoch: u64,
        max_seq: u64,
        next_deliver: u64,
        out: &mut Vec<GcsOutput<P, S>>,
    ) {
        let Some(vc) = &mut self.vc else {
            return;
        };
        if vc.epoch != epoch {
            return;
        }
        vc.replies.insert(from, (max_seq, next_deliver));
        self.check_view_change_done(ctx, out);
    }

    /// If every proposed member replied, fill our gaps then finish.
    fn check_view_change_done(&mut self, ctx: &mut Ctx<'_>, out: &mut Vec<GcsOutput<P, S>>) {
        let Some(vc) = &self.vc else {
            return;
        };
        if vc.fetching_from.is_some() {
            return;
        }
        if !vc.proposed.iter().all(|p| vc.replies.contains_key(p)) {
            return;
        }
        // The members' SyncReplies are snapshots; this coordinator — who
        // is normally also the sequencer — may have committed further
        // sequence numbers to the wire while the change ran (they may
        // even still be in flight back to itself). The watermark must
        // cover them: a lower one would let the next view's sequencer
        // REUSE those numbers for different messages (total-order
        // collision), while the `have_all` check below keeps the change
        // open until every covered entry has actually landed here.
        let watermark = vc
            .replies
            .values()
            .map(|r| r.0)
            .max()
            .unwrap_or(0)
            .max(self.max_seq_seen);
        // Do we hold every entry up to the watermark?
        let have_all = (self.next_deliver..=watermark).all(|s| self.ordered.contains_key(&s));
        if !have_all {
            // Fetch from the other member holding the most.
            let holder = vc
                .replies
                .iter()
                .filter(|(n, _)| **n != self.me)
                .max_by_key(|(_, r)| r.0)
                .map(|(n, _)| *n);
            if let Some(holder) = holder {
                let epoch = vc.epoch;
                self.vc.as_mut().expect("checked").fetching_from = Some(holder);
                let have = self.next_deliver.saturating_sub(1);
                self.net.send(
                    ctx,
                    self.me,
                    holder,
                    Wire::<P, S>::SyncFetch {
                        epoch,
                        have_up_to: have,
                    },
                );
                return;
            }
        }
        self.finish_view_change(ctx, watermark, out);
    }

    fn on_sync_entries(
        &mut self,
        ctx: &mut Ctx<'_>,
        epoch: u64,
        entries: Vec<Entry<P>>,
        out: &mut Vec<GcsOutput<P, S>>,
    ) {
        for e in entries {
            self.store_entry(ctx, e);
        }
        if let Some(vc) = &mut self.vc {
            if vc.epoch == epoch {
                vc.fetching_from = None;
            }
        }
        self.try_deliver(ctx, out);
        self.check_view_change_done(ctx, out);
    }

    fn finish_view_change(
        &mut self,
        ctx: &mut Ctx<'_>,
        watermark: u64,
        out: &mut Vec<GcsOutput<P, S>>,
    ) {
        let vc = self.vc.take().expect("called with vc");
        let min_nd = vc.replies.values().map(|r| r.1).min().unwrap_or(1);
        // Retransmit everything any member might miss.
        let entries: Vec<Entry<P>> = (min_nd..=watermark)
            .filter_map(|s| {
                self.ordered.get(&s).map(|(id, p)| Entry {
                    seq: s,
                    id: *id,
                    payload: p.clone(),
                    era: self.entry_era.get(&s).copied().unwrap_or(0),
                })
            })
            .collect();
        let joiner_nodes: Vec<NodeId> = vc.joiners.iter().map(|(n, _)| *n).collect();
        let new_view = View {
            id: self.view.id + 1,
            members: {
                let mut m = vc.proposed.clone();
                m.extend(joiner_nodes.iter().copied());
                m.sort_unstable();
                m.dedup();
                m
            },
        };
        let old_members: Vec<NodeId> = vc
            .proposed
            .iter()
            .copied()
            .filter(|&p| p != self.me)
            .collect();
        if !entries.is_empty() {
            self.net.multicast(
                ctx,
                self.me,
                &old_members,
                Wire::<P, S>::Retransmit {
                    entries: entries.clone(),
                },
            );
        }
        self.net.multicast(
            ctx,
            self.me,
            &old_members,
            Wire::<P, S>::NewView {
                view: new_view.clone(),
                watermark,
            },
        );
        // Joiners are served via state transfer; ask the application for a
        // checkpoint (the host answers through `checkpoint_ready`).
        self.pending_state_transfers = vc
            .joiners
            .iter()
            .map(|&(n, g)| (n, g, new_view.clone(), watermark))
            .collect();
        // Install locally (this also flushes up to the watermark).
        self.install_view(ctx, new_view, watermark, out);
        for &(joiner, generation) in &vc.joiners {
            out.push(GcsOutput::CheckpointRequest { joiner, generation });
        }
        // Joiners whose requests arrived while this change was running
        // were parked in `waiting_joiners`; their retries are deduplicated
        // away, so nothing else would ever pick them up — start the next
        // change for them immediately.
        if !self.waiting_joiners.is_empty() {
            self.maybe_start_view_change(ctx, out);
        }
    }

    fn on_new_view(
        &mut self,
        ctx: &mut Ctx<'_>,
        view: View,
        watermark: u64,
        out: &mut Vec<GcsOutput<P, S>>,
    ) {
        if view.id <= self.view.id || !self.joined {
            return;
        }
        self.install_view(ctx, view, watermark, out);
    }

    fn install_view(
        &mut self,
        ctx: &mut Ctx<'_>,
        view: View,
        watermark: u64,
        out: &mut Vec<GcsOutput<P, S>>,
    ) {
        // Defensive: the accumulator was already rolled back when the
        // view change started; anything left would collide with the
        // recomputed sequence assignment below.
        self.rollback_accumulator();
        self.flush_up_to(ctx, watermark, out);
        if self.cfg.guarantee == DeliveryGuarantee::Uniform {
            // Every member of the incoming view holds the flushed prefix
            // (the view-change agreement), so it is group-stable even
            // where the per-seq votes never completed.
            self.stable_floor = self.stable_floor.max(watermark);
        }
        self.view = view.clone();
        self.vc = None;
        // Joiners the new view already contains joined through another
        // coordinator's change; a stale parked entry would otherwise be
        // counted as "rejoining" by some later majority computation.
        self.waiting_joiners.retain(|&(n, _)| !view.contains(n));
        self.stats.view_changes += 1;
        // Reset suspicion wholesale: members that are genuinely still down
        // are re-suspected after one heartbeat timeout, and a node that
        // rejoined under a fresh incarnation must not inherit suspicion.
        self.suspected.clear();
        // Fresh members must not be instantly re-suspected.
        let now = ctx.now();
        for &p in &self.view.members {
            self.last_heard.insert(p, now);
        }
        self.seq_assign = if self.view.coordinator() == Some(self.me) {
            Some(self.max_seq_seen.max(watermark) + 1)
        } else {
            None
        };
        // Resend un-ordered broadcasts to the new sequencer.
        if let Some(seq_node) = self.sequencer() {
            let pending: Vec<(MsgId, P)> =
                self.pending.iter().map(|(k, v)| (*k, v.clone())).collect();
            for (id, payload) in pending {
                self.net.send(
                    ctx,
                    self.me,
                    seq_node,
                    Wire::<P, S>::Forward { id, payload },
                );
            }
        }
        out.push(GcsOutput::ViewInstalled { view });
        self.try_deliver(ctx, out);
    }

    // ------------------------------------------------------------------
    // Join / state transfer (dynamic model)
    // ------------------------------------------------------------------

    /// A member of another view told us we are not part of it: this
    /// process was excluded (healed-partition minority, false suspicion)
    /// while still up. Demote to joiner and rejoin via state transfer
    /// when the peer's view wins: strictly newer id, or — for forked
    /// same-id views — more members, then the lexicographically smaller
    /// member list. Exactly one side of any fork loses the comparison,
    /// so the fork heals with a single surviving lineage.
    fn on_not_in_view(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        view_id: u64,
        members: &[NodeId],
    ) {
        if self.cfg.model != GcsModel::ViewBased || !self.joined {
            return;
        }
        let same_id_theirs_wins = members.len() > self.view.members.len()
            || (members.len() == self.view.members.len() && members < self.view.members.as_slice());
        let theirs_wins = view_id > self.view.id
            || (view_id == self.view.id && members != self.view.members && same_id_theirs_wins);
        if !theirs_wins {
            // The SENDER holds the older view (it can happen to be a
            // member that missed a later install — e.g. its own state
            // transfer raced a follow-up view change). Counter-inform it
            // so the staleness heals in one round trip.
            if view_id < self.view.id {
                let reply_id = self.view.id;
                let reply_members = self.view.members.clone();
                self.net.send(
                    ctx,
                    self.me,
                    from,
                    Wire::<P, S>::NotInView {
                        view_id: reply_id,
                        members: reply_members,
                    },
                );
            }
            return;
        }
        // Sequence numbers this stale member accumulated but never got
        // into the surviving lineage must be released for re-forwarding.
        self.rollback_accumulator();
        self.seq_assign = None;
        self.vc = None;
        self.waiting_joiners.clear();
        self.suspected.clear();
        self.generation += 1;
        self.next_counter = self.next_counter.max(self.generation << 32);
        self.joined = false;
        self.join = Some(JoinState {
            generation: self.generation,
        });
        self.stats.demotions += 1;
        self.send_join_req(ctx);
    }

    fn send_join_req(&mut self, ctx: &mut Ctx<'_>) {
        let generation = self.generation;
        let targets: Vec<NodeId> = self
            .group
            .iter()
            .copied()
            .filter(|&p| p != self.me)
            .collect();
        self.net
            .multicast(ctx, self.me, &targets, Wire::<P, S>::JoinReq { generation });
        ctx.timer(self.cfg.change_timeout, GcsTimer::JoinRetry { generation });
    }

    fn on_join_req(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        generation: u64,
        out: &mut Vec<GcsOutput<P, S>>,
    ) {
        if !self.joined {
            return;
        }
        if self.view.contains(from) {
            // A process only sends JoinReq after recovering, so its old
            // incarnation — still listed in the view — must be gone.
            // Suspect it so the view change drops the stale incarnation
            // while the join adds the fresh one.
            self.suspected.insert(from);
        }
        let transfer_in_flight = self
            .pending_state_transfers
            .iter()
            .any(|&(n, g, _, _)| n == from && g >= generation);
        let already_waiting = self
            .waiting_joiners
            .iter()
            .any(|&(n, g)| n == from && g >= generation);
        if !transfer_in_flight && !already_waiting {
            self.waiting_joiners.retain(|&(n, _)| n != from);
            self.waiting_joiners.push((from, generation));
        }
        // Even a deduplicated retry re-attempts the view change: an
        // earlier attempt may have been blocked (no coordinator quorum at
        // the time) with nothing else scheduled to retry it.
        if !transfer_in_flight {
            self.maybe_start_view_change(ctx, out);
        }
    }

    /// The host answers a [`GcsOutput::CheckpointRequest`] with the
    /// application state: `state` covers all deliveries up to
    /// `applied_seq`.
    pub fn checkpoint_ready(
        &mut self,
        ctx: &mut Ctx<'_>,
        joiner: NodeId,
        generation: u64,
        state: S,
        applied_seq: u64,
    ) {
        let Some(pos) = self
            .pending_state_transfers
            .iter()
            .position(|(n, g, _, _)| *n == joiner && *g == generation)
        else {
            return;
        };
        let (_, _, view, watermark) = self.pending_state_transfers.remove(pos);
        // Another view change may have completed between the join's
        // finish and this reply; a joiner installing the stale view would
        // sequence (or listen) against an outdated membership. Ship the
        // current view instead, as long as it still lists the joiner.
        let (view, watermark) = if self.view.id > view.id && self.view.contains(joiner) {
            (self.view.clone(), watermark.max(self.max_seq_seen))
        } else {
            (view, watermark)
        };
        let tail: Vec<Entry<P>> = (applied_seq + 1..=watermark)
            .filter_map(|s| {
                self.ordered.get(&s).map(|(id, p)| Entry {
                    seq: s,
                    id: *id,
                    payload: p.clone(),
                    era: self.entry_era.get(&s).copied().unwrap_or(0),
                })
            })
            .collect();
        self.net.send(
            ctx,
            self.me,
            joiner,
            Wire::<P, S>::StateTransfer {
                view,
                applied_seq,
                tail,
                state,
                watermark,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn on_state_transfer(
        &mut self,
        ctx: &mut Ctx<'_>,
        view: View,
        applied_seq: u64,
        tail: Vec<Entry<P>>,
        state: S,
        watermark: u64,
        out: &mut Vec<GcsOutput<P, S>>,
    ) {
        if self.join.is_none() {
            return; // not joining (duplicate transfer)
        }
        self.join = None;
        self.joined = true;
        self.view = view.clone();
        self.waiting_joiners.retain(|&(n, _)| !view.contains(n));
        self.next_deliver = applied_seq + 1;
        self.max_seq_seen = watermark;
        self.ordered.clear();
        self.entry_era.clear();
        self.acks.clear();
        for e in &tail {
            self.ordered.insert(e.seq, (e.id, e.payload.clone()));
            self.entry_era.insert(e.seq, e.era);
            self.ordered_ids.insert(e.id, e.seq);
        }
        let now = ctx.now();
        for &p in &view.members {
            self.last_heard.insert(p, now);
        }
        out.push(GcsOutput::InstallState { state, applied_seq });
        // The join's view change may have made this joiner the view
        // coordinator (it rejoins with its old — possibly smallest — id).
        // Every other member already ceded sequencing duty to it when
        // installing the view, so the joiner must pick the duty up here
        // or nobody holds it and ordering stalls group-wide.
        self.seq_assign = if view.coordinator() == Some(self.me) {
            Some(self.max_seq_seen.max(watermark) + 1)
        } else {
            None
        };
        // Deliver the tail (checkpoint gap) immediately: these entries were
        // flushed, so every member of the view holds them.
        self.flush_up_to(ctx, watermark, out);
        if self.cfg.guarantee == DeliveryGuarantee::Uniform {
            // The transferred prefix is held by every member of the view
            // (it was flushed into the checkpoint): group-stable.
            self.stable_floor = self.stable_floor.max(watermark);
        }
        // A live member that demoted and rejoined may still hold
        // broadcasts the abandoned lineage never ordered; re-forward
        // them to the surviving sequencer (no-op for freshly recovered
        // joiners, whose pending set died with the crash).
        if let Some(seq_node) = self.sequencer() {
            let pending: Vec<(MsgId, P)> =
                self.pending.iter().map(|(k, v)| (*k, v.clone())).collect();
            for (id, payload) in pending {
                self.net.send(
                    ctx,
                    self.me,
                    seq_node,
                    Wire::<P, S>::Forward { id, payload },
                );
            }
        }
        out.push(GcsOutput::Joined { view });
        self.stats.view_changes += 1;
    }

    // ------------------------------------------------------------------
    // Catch-up (crash-recovery model and view-change gap fill)
    // ------------------------------------------------------------------

    /// Compress an ascending sequence list into contiguous `(lo, hi)`
    /// runs (aggregated-vote framing).
    fn contiguous_runs(seqs: &[u64]) -> Vec<(u64, u64)> {
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for &s in seqs {
            match runs.last_mut() {
                Some((_, hi)) if *hi + 1 == s => *hi = s,
                _ => runs.push((s, s)),
            }
        }
        runs
    }

    /// Highest sequence number with the whole prefix persisted locally.
    fn contiguous_persisted(&self) -> u64 {
        let mut k = 0;
        while self.persisted.contains(&(k + 1)) {
            k += 1;
        }
        k
    }

    fn on_catch_up_req(&mut self, ctx: &mut Ctx<'_>, from: NodeId, have_up_to: u64) {
        // View model: answering a non-member would leak this view's
        // stable floor into the requester's abandoned fork — a healed
        // minority could then uniformly deliver entries the group never
        // ordered. Tell it it was excluded instead (the same re-merge
        // path a stale heartbeat takes: demote, rejoin, state transfer).
        if self.cfg.model == GcsModel::ViewBased && self.joined && !self.view.contains(from) {
            let view_id = self.view.id;
            let members = self.view.members.clone();
            self.net.send(
                ctx,
                self.me,
                from,
                Wire::<P, S>::NotInView { view_id, members },
            );
            return;
        }
        let entries: Vec<Entry<P>> = self
            .ordered
            .range(have_up_to + 1..)
            .map(|(s, (id, p))| Entry {
                seq: *s,
                id: *id,
                payload: p.clone(),
                era: self.entry_era.get(s).copied().unwrap_or(0),
            })
            .collect();
        // A peer recovering at the same time is a fresh source: if this
        // endpoint is itself waiting to resume sequencing, re-request a
        // catch-up from that peer (the original request may have been sent
        // while the peer was still down).
        if self.seq_resume_votes.is_some() {
            let have = self.contiguous_persisted();
            self.net.send(
                ctx,
                self.me,
                from,
                Wire::<P, S>::CatchUpReq { have_up_to: have },
            );
        }
        // Everything this endpoint has delivered under the uniform
        // guarantee is stable; let the requester skip re-collecting votes.
        let stable_up_to = match self.cfg.guarantee {
            DeliveryGuarantee::Uniform => self.next_deliver.saturating_sub(1),
            DeliveryGuarantee::NonUniform => 0,
        };
        self.net.send(
            ctx,
            self.me,
            from,
            Wire::<P, S>::CatchUp {
                entries,
                stable_up_to,
            },
        );
        // Re-send this endpoint's stability votes. Acks are normally
        // multicast once, at persist time; every ack that flew while the
        // requester was down is gone, and entries the responder has not
        // *delivered* yet (so `stable_up_to` does not cover them) would
        // otherwise never reach majority at the requester, stalling its
        // delivery cursor forever.
        let persisted: Vec<u64> = self
            .persisted
            .iter()
            .copied()
            .filter(|&s| s > stable_up_to)
            .collect();
        if self.cfg.batch.enabled() {
            // Compress into contiguous runs: one aggregated vote per run
            // (split further wherever the era changes inside a run).
            for (lo, hi) in Self::contiguous_runs(&persisted) {
                let mut start = lo;
                while start <= hi {
                    let era = self.entry_era.get(&start).copied().unwrap_or(0);
                    let mut end = start;
                    while end < hi && self.entry_era.get(&(end + 1)).copied().unwrap_or(0) == era {
                        end += 1;
                    }
                    self.net.send_frame(
                        ctx,
                        self.me,
                        from,
                        Wire::<P, S>::AckRange {
                            lo: start,
                            hi: end,
                            era,
                        },
                        end - start + 1,
                    );
                    start = end + 1;
                }
            }
        } else {
            for seq in persisted {
                let era = self.entry_era.get(&seq).copied().unwrap_or(0);
                self.net
                    .send(ctx, self.me, from, Wire::<P, S>::Ack { seq, era });
            }
        }
    }

    /// A coordinator mid-view-change asks a member for entries it misses.
    fn on_view_change_fetch(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        have_up_to: u64,
        epoch: u64,
    ) {
        let entries: Vec<Entry<P>> = self
            .ordered
            .range(have_up_to + 1..)
            .map(|(s, (id, p))| Entry {
                seq: *s,
                id: *id,
                payload: p.clone(),
                era: self.entry_era.get(s).copied().unwrap_or(0),
            })
            .collect();
        self.net.send(
            ctx,
            self.me,
            from,
            Wire::<P, S>::SyncEntries { epoch, entries },
        );
    }

    // ------------------------------------------------------------------
    // Crash / recovery
    // ------------------------------------------------------------------

    /// The host actor crashed: wipe volatile state. The stable log and the
    /// generation counter survive.
    pub fn on_crash(&mut self) {
        self.started = false;
        self.joined = false;
        self.view = View::initial(self.group.clone());
        self.pending.clear();
        self.seq_assign = None;
        self.ordered_ids.clear();
        self.ordered.clear();
        self.entry_era.clear();
        self.acks.clear();
        self.persisted.clear();
        self.next_deliver = 1;
        self.stable_floor = 0;
        self.stable_mark = 0;
        self.max_seq_seen = 0;
        self.last_heard.clear();
        self.suspected.clear();
        self.vc = None;
        self.waiting_joiners.clear();
        self.join = None;
        self.pending_state_transfers.clear();
        self.already_emitted.clear();
        self.batch_acc.clear();
        self.batch_acc_bytes = 0;
        self.batch_epoch += 1; // any armed flush deadline is now stale
        self.batch_timer_armed = false;
        self.frame_spans.clear();
        self.resend_armed = false;
        self.gap_repair_armed = false;
        self.seq_resume_votes = None;
    }

    /// The host actor recovered. In the dynamic model this starts a join
    /// (new identity, state transfer). In the crash-recovery model it
    /// rebuilds from the stable log, redelivers per the end-to-end rules
    /// and catches up from peers.
    pub fn on_recover(&mut self, ctx: &mut Ctx<'_>, out: &mut Vec<GcsOutput<P, S>>) {
        // Drain anything still sitting in the batch accumulator (a host
        // that recovers without a preceding `on_crash`): the entries were
        // never multicast, so their ids must be released for the senders'
        // resends to be re-ordered — otherwise those broadcasts would be
        // silently dropped by the sequencer's dedup.
        self.rollback_accumulator();
        self.generation += 1;
        self.started = true;
        // MsgId counters must never repeat across incarnations.
        self.next_counter = self.generation << 32;
        match self.cfg.model {
            GcsModel::ViewBased => {
                self.joined = false;
                self.join = Some(JoinState {
                    generation: self.generation,
                });
                self.send_join_req(ctx);
                ctx.timer(self.cfg.hb_interval, GcsTimer::Heartbeat);
            }
            GcsModel::CrashRecovery => {
                self.joined = true;
                // Rebuild the ordering state from the stable log.
                let mut delivered_prefix = 0;
                for (&seq, e) in &self.stable {
                    self.ordered.insert(seq, (e.id, e.payload.clone()));
                    self.entry_era.insert(seq, e.era);
                    self.ordered_ids.insert(e.id, seq);
                    self.persisted.insert(seq);
                    self.max_seq_seen = self.max_seq_seen.max(seq);
                    if e.delivered && seq == delivered_prefix + 1 {
                        delivered_prefix = seq;
                    }
                }
                // Highest sequence number such that the whole prefix is in
                // the log (persist completions can have holes).
                let contiguous = self.contiguous_persisted();
                if self.cfg.end_to_end {
                    // §4.2: replay, in order, every logged entry that was
                    // handed up before the crash but never acknowledged by
                    // the application. Acked entries are skipped (refined
                    // uniform integrity: successful delivery at most once).
                    // Entries persisted but never delivered flow through the
                    // normal ordered path below.
                    let to_redeliver: Vec<u64> = self
                        .stable
                        .iter()
                        .filter(|(_, e)| e.delivered && !e.acked)
                        .map(|(s, _)| *s)
                        .collect();
                    for seq in to_redeliver {
                        self.deliver_one(ctx, seq, true, out);
                    }
                    self.next_deliver = delivered_prefix + 1;
                } else {
                    // Classic integrity: entries marked delivered must not
                    // be delivered again — even if the application never
                    // processed them. This is the paper's §3 gap.
                    self.next_deliver = delivered_prefix + 1;
                }
                // Help others' stability and catch up on what we missed.
                let persisted: Vec<u64> = self.persisted.iter().copied().collect();
                if self.cfg.batch.enabled() {
                    // Aggregated votes, as on the fast path: one range
                    // message per contiguous run of the stable log.
                    for (lo, hi) in Self::contiguous_runs(&persisted) {
                        self.send_ack_range(ctx, lo, hi);
                    }
                } else {
                    for seq in persisted {
                        self.send_ack(ctx, seq);
                    }
                }
                let targets: Vec<NodeId> = self
                    .group
                    .iter()
                    .copied()
                    .filter(|&p| p != self.me)
                    .collect();
                self.net.multicast(
                    ctx,
                    self.me,
                    &targets,
                    Wire::<P, S>::CatchUpReq {
                        have_up_to: contiguous,
                    },
                );
                if self.sequencer() == Some(self.me) {
                    // Do not resume sequencing yet: entries this sequencer
                    // ordered just before the crash may exist only on other
                    // nodes. Wait for catch-up replies from a majority
                    // first (`seq_resume_votes`), unless the group is a
                    // singleton. The request is retried until the majority
                    // answers — the first wave may be lost to a partition
                    // (e.g. a sequencer that recovers while isolated after
                    // a whole-group failure).
                    if self.group.len() == 1 {
                        self.seq_assign = Some(self.max_seq_seen + 1);
                    } else {
                        self.seq_resume_votes = Some(BTreeSet::new());
                        ctx.timer(self.cfg.change_timeout, GcsTimer::ResumeRetry);
                    }
                }
                self.try_deliver(ctx, out);
            }
        }
    }

    /// Driver-orchestrated restart after a *total* group failure in the
    /// dynamic model (Fig. 5): the surviving processes form a brand-new
    /// group; all group-communication history is gone. The application
    /// recovers from its own local stable state — any transaction that was
    /// delivered but never processed is lost, which is exactly the
    /// scenario the paper uses to show classic GC is not 2-safe.
    pub fn restart_group(&mut self, ctx: &mut Ctx<'_>, members: Vec<NodeId>, seq_base: u64) {
        assert_eq!(
            self.cfg.model,
            GcsModel::ViewBased,
            "restart_group is a dynamic-model operation"
        );
        self.on_crash();
        self.generation += 1;
        self.started = true;
        self.joined = true;
        self.next_counter = self.generation << 32;
        self.view = View {
            id: (self.generation + 1) * 1_000_000, // fresh group: view ids restart above old ones
            members: {
                let mut m = members;
                m.sort_unstable();
                m.dedup();
                m
            },
        };
        // Sequence numbers continue above `seq_base` so versions derived
        // from them never regress below the recovered application state.
        self.next_deliver = seq_base + 1;
        self.max_seq_seen = seq_base;
        // The operator-reconciled state is the fresh group's baseline:
        // every member restarts from it, so it is stable by construction.
        self.stable_floor = seq_base;
        if self.view.coordinator() == Some(self.me) {
            self.seq_assign = Some(seq_base + 1);
        }
        let now = ctx.now();
        for &p in &self.view.members {
            self.last_heard.insert(p, now);
        }
        ctx.timer(self.cfg.hb_interval, GcsTimer::Heartbeat);
    }

    /// Entries currently in the stable log (inspection/test helper).
    pub fn stable_log_seqs(&self) -> Vec<u64> {
        self.stable.keys().copied().collect()
    }

    /// Whether the stable-log entry at `seq` carries the application ack.
    pub fn stable_entry_acked(&self, seq: u64) -> Option<bool> {
        self.stable.get(&seq).map(|e| e.acked)
    }
}
