//! Effects the group communication endpoint hands back to its host.
//!
//! The endpoint is a passive state machine embedded in a server actor. It
//! sends network messages itself (through the shared [`groupsafe_net::Network`])
//! but everything directed at the *application* is returned as a
//! [`GcsOutput`] for the host to interpret — this is the paper's
//! inter-component message boundary (`⟨m, A-deliver⟩` etc., Figs. 4 and 6).

use groupsafe_net::NodeId;

use crate::message::MsgId;
use crate::view::View;

/// Application-facing effects produced by the endpoint.
///
/// `P` is the payload type, `S` the application checkpoint type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GcsOutput<P, S> {
    /// `⟨m, A-deliver⟩`: hand `payload` to the application. In end-to-end
    /// mode the application must eventually call
    /// [`crate::endpoint::GcsEndpoint::app_ack`] with `seq` once the
    /// message is *processed* (successful delivery, §4.2).
    Deliver {
        /// Global total-order position.
        seq: u64,
        /// Message identity.
        id: MsgId,
        /// The payload.
        payload: P,
        /// True if this is a redelivery after recovery (end-to-end mode).
        redelivery: bool,
    },
    /// A new view was installed (dynamic model).
    ViewInstalled {
        /// The view.
        view: View,
    },
    /// The coordinator needs an application checkpoint to serve a state
    /// transfer to `joiner`. The host must call
    /// [`crate::endpoint::GcsEndpoint::checkpoint_ready`].
    CheckpointRequest {
        /// Node that is joining.
        joiner: NodeId,
        /// Join generation (echo back in `checkpoint_ready`).
        generation: u64,
    },
    /// State transfer received: replace the application state with `state`
    /// (a checkpoint covering deliveries up to `applied_seq`); entries
    /// after it arrive as ordinary `Deliver` outputs.
    InstallState {
        /// The checkpoint to adopt.
        state: S,
        /// The sequence number the checkpoint covers.
        applied_seq: u64,
    },
    /// This endpoint joined (or re-joined) the group.
    Joined {
        /// The view joined.
        view: View,
    },
    /// The group has failed: every member of the view is down or
    /// unreachable. Durability-by-the-group is lost (Tables 2 and 3).
    GroupFailed,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_compare() {
        let a: GcsOutput<u32, ()> = GcsOutput::Deliver {
            seq: 1,
            id: MsgId {
                origin: NodeId(0),
                counter: 1,
            },
            payload: 9,
            redelivery: false,
        };
        assert_eq!(a.clone(), a);
        assert_ne!(a, GcsOutput::GroupFailed);
    }
}
