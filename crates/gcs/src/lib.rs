//! # groupsafe-gcs — group communication for the group-safety reproduction
//!
//! Implements the paper's group communication component (Wiesmann &
//! Schiper, EDBT 2004, §2.3–§4):
//!
//! * fixed-sequencer **atomic broadcast** with uniform ("safe") or
//!   non-uniform delivery, with an optional **batched pipeline**
//!   ([`BatchConfig`]): the sequencer packs pending broadcasts into one
//!   `OrderedBatch` frame per flush, receivers persist the frame with a
//!   single stable-log write and vote with one aggregated `AckRange`,
//!   amortising the per-transaction ordering cost without changing the
//!   total order,
//! * the **dynamic crash no-recovery** model: views, heartbeat failure
//!   detection, virtual-synchrony flush on view changes, join with
//!   checkpoint **state transfer**,
//! * the **static crash-recovery** model: persistent entry log, write-ahead
//!   delivery marks, catch-up after recovery,
//! * the paper's proposed **end-to-end atomic broadcast** (§4): application
//!   `ack(m)` tracking and redelivery of unacknowledged messages after
//!   recovery, with the refined uniform integrity property,
//! * runtime **property checkers** for validity, uniform agreement,
//!   uniform integrity (both flavours), uniform total order and the
//!   end-to-end property,
//! * the green/yellow/red **process classes** of §2.3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod endpoint;
pub mod harness;
pub mod message;
pub mod output;
pub mod process;
pub mod properties;
pub mod view;

pub use config::{BatchConfig, DeliveryGuarantee, GcsConfig, GcsModel};
pub use endpoint::{GcsEndpoint, GcsStats};
pub use message::{Entry, GcsTimer, MsgId, Wire};
pub use output::GcsOutput;
pub use process::{classify, LifecycleEvent, ProcessClass};
pub use properties::{DeliveryRecord, RunObservation, Violation};
pub use view::View;
