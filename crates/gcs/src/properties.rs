//! Checkers for the atomic broadcast properties (paper §2.3 and §4.2).
//!
//! Tests and fault-injection experiments record, per process, the sequence
//! of deliveries the *application* observed. These functions verify the
//! specification against those records:
//!
//! * **Validity** — every delivered message was A-broadcast by someone.
//! * **Uniform Agreement** — if any process delivered `m`, every process
//!   that is not red at the end of the run delivered `m`.
//! * **Uniform Integrity** — no process delivered the same message twice
//!   (end-to-end refinement: no process *successfully* delivered a message
//!   twice; plain redeliveries are allowed).
//! * **Uniform Total Order** — any two processes deliver common messages
//!   in the same relative order.
//! * **End-to-End** — every non-red process that delivered `m` eventually
//!   successfully delivered (processed) `m`.

use std::collections::{BTreeMap, BTreeSet};

use groupsafe_net::NodeId;
use groupsafe_sim::SimTime;

use crate::message::MsgId;
use crate::process::ProcessClass;

/// One application-observed delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Global sequence number reported by the GC layer.
    pub seq: u64,
    /// Message identity.
    pub id: MsgId,
    /// True if the application finished processing it (`ack(m)` sent).
    pub processed: bool,
    /// When the delivery reached the application.
    pub at: SimTime,
}

/// The full observation of a run, fed to the checkers.
#[derive(Debug, Default, Clone)]
pub struct RunObservation {
    /// Messages A-broadcast during the run.
    pub broadcast: BTreeSet<MsgId>,
    /// Per process: deliveries in the order the application saw them.
    pub deliveries: BTreeMap<NodeId, Vec<DeliveryRecord>>,
    /// Final classification of each process.
    pub classes: BTreeMap<NodeId, ProcessClass>,
}

/// A property violation, with enough context to debug the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which property failed.
    pub property: &'static str,
    /// Human-readable details.
    pub details: String,
}

impl RunObservation {
    /// Record a delivery at `node` at instant `at`.
    pub fn record_delivery(
        &mut self,
        node: NodeId,
        seq: u64,
        id: MsgId,
        processed: bool,
        at: SimTime,
    ) {
        self.deliveries
            .entry(node)
            .or_default()
            .push(DeliveryRecord {
                seq,
                id,
                processed,
                at,
            });
    }

    /// Mark the latest delivery of `id` at `node` as processed.
    pub fn mark_processed(&mut self, node: NodeId, id: MsgId) {
        if let Some(recs) = self.deliveries.get_mut(&node) {
            if let Some(r) = recs.iter_mut().rev().find(|r| r.id == id) {
                r.processed = true;
            }
        }
    }

    /// Run every checker; returns all violations found.
    pub fn check_all(&self, end_to_end: bool) -> Vec<Violation> {
        let mut v = Vec::new();
        v.extend(self.check_validity());
        v.extend(self.check_uniform_agreement());
        v.extend(self.check_uniform_integrity(end_to_end));
        v.extend(self.check_total_order());
        if end_to_end {
            v.extend(self.check_end_to_end());
        }
        v
    }

    /// Validity: delivered ⇒ broadcast.
    pub fn check_validity(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for (node, recs) in &self.deliveries {
            for r in recs {
                if !self.broadcast.contains(&r.id) {
                    out.push(Violation {
                        property: "validity",
                        details: format!("{node} delivered {:?} which was never broadcast", r.id),
                    });
                }
            }
        }
        out
    }

    /// Uniform agreement: if any process delivered `m`, every non-red
    /// process delivered `m`.
    pub fn check_uniform_agreement(&self) -> Vec<Violation> {
        let mut delivered_anywhere: BTreeSet<MsgId> = BTreeSet::new();
        for recs in self.deliveries.values() {
            delivered_anywhere.extend(recs.iter().map(|r| r.id));
        }
        let mut out = Vec::new();
        for (node, class) in &self.classes {
            if *class == ProcessClass::Red {
                continue;
            }
            let have: BTreeSet<MsgId> = self
                .deliveries
                .get(node)
                .map(|r| r.iter().map(|d| d.id).collect())
                .unwrap_or_default();
            for m in &delivered_anywhere {
                if !have.contains(m) {
                    out.push(Violation {
                        property: "uniform agreement",
                        details: format!("{node} (non-red) missed delivery of {m:?}"),
                    });
                }
            }
        }
        out
    }

    /// Uniform integrity. Classic: at most one delivery of each message per
    /// process. End-to-end refinement: at most one *successful* delivery;
    /// unprocessed deliveries may repeat.
    pub fn check_uniform_integrity(&self, end_to_end: bool) -> Vec<Violation> {
        let mut out = Vec::new();
        for (node, recs) in &self.deliveries {
            let mut counts: BTreeMap<MsgId, (usize, usize)> = BTreeMap::new();
            for r in recs {
                let e = counts.entry(r.id).or_default();
                e.0 += 1;
                if r.processed {
                    e.1 += 1;
                }
            }
            for (id, (total, processed)) in counts {
                if end_to_end {
                    if processed > 1 {
                        out.push(Violation {
                            property: "uniform integrity (end-to-end)",
                            details: format!(
                                "{node} successfully delivered {id:?} {processed} times"
                            ),
                        });
                    }
                } else if total > 1 {
                    out.push(Violation {
                        property: "uniform integrity",
                        details: format!("{node} delivered {id:?} {total} times"),
                    });
                }
            }
        }
        out
    }

    /// Uniform total order: common messages appear in the same relative
    /// order at every pair of processes.
    pub fn check_total_order(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        // Use the first delivery of each message per process.
        let orders: BTreeMap<NodeId, Vec<MsgId>> = self
            .deliveries
            .iter()
            .map(|(n, recs)| {
                let mut seen = BTreeSet::new();
                let order: Vec<MsgId> = recs
                    .iter()
                    .filter(|r| seen.insert(r.id))
                    .map(|r| r.id)
                    .collect();
                (*n, order)
            })
            .collect();
        let nodes: Vec<NodeId> = orders.keys().copied().collect();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in nodes.iter().skip(i + 1) {
                let oa = &orders[&a];
                let ob = &orders[&b];
                let pos_b: BTreeMap<MsgId, usize> =
                    ob.iter().enumerate().map(|(i, m)| (*m, i)).collect();
                let common: Vec<(usize, MsgId)> = oa
                    .iter()
                    .filter_map(|m| pos_b.get(m).map(|p| (*p, *m)))
                    .collect();
                for w in common.windows(2) {
                    if w[0].0 > w[1].0 {
                        out.push(Violation {
                            property: "uniform total order",
                            details: format!(
                                "{a} and {b} disagree on the order of {:?} and {:?}",
                                w[0].1, w[1].1
                            ),
                        });
                    }
                }
            }
        }
        out
    }

    /// End-to-end: a non-red process that delivered `m` must have
    /// successfully delivered `m` by the end of the run.
    pub fn check_end_to_end(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for (node, class) in &self.classes {
            if *class == ProcessClass::Red {
                continue;
            }
            let Some(recs) = self.deliveries.get(node) else {
                continue;
            };
            let mut processed: BTreeSet<MsgId> = BTreeSet::new();
            let mut delivered: BTreeSet<MsgId> = BTreeSet::new();
            for r in recs {
                delivered.insert(r.id);
                if r.processed {
                    processed.insert(r.id);
                }
            }
            for m in delivered.difference(&processed) {
                out.push(Violation {
                    property: "end-to-end",
                    details: format!("{node} delivered {m:?} but never processed it"),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid(o: u32, c: u64) -> MsgId {
        MsgId {
            origin: NodeId(o),
            counter: c,
        }
    }

    fn obs_two_nodes() -> RunObservation {
        let mut obs = RunObservation::default();
        obs.broadcast.insert(mid(0, 1));
        obs.broadcast.insert(mid(1, 1));
        obs.classes.insert(NodeId(0), ProcessClass::Green);
        obs.classes.insert(NodeId(1), ProcessClass::Green);
        obs
    }

    #[test]
    fn clean_run_passes() {
        let mut obs = obs_two_nodes();
        for n in [0, 1] {
            obs.record_delivery(NodeId(n), 1, mid(0, 1), true, SimTime::ZERO);
            obs.record_delivery(NodeId(n), 2, mid(1, 1), true, SimTime::ZERO);
        }
        assert!(obs.check_all(true).is_empty());
    }

    #[test]
    fn validity_catches_spurious_delivery() {
        let mut obs = obs_two_nodes();
        obs.record_delivery(NodeId(0), 1, mid(9, 9), true, SimTime::ZERO);
        let v = obs.check_validity();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].property, "validity");
    }

    #[test]
    fn agreement_catches_missing_delivery() {
        let mut obs = obs_two_nodes();
        obs.record_delivery(NodeId(0), 1, mid(0, 1), true, SimTime::ZERO);
        // Node 1 is green but never delivered.
        let v = obs.check_uniform_agreement();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].property, "uniform agreement");
    }

    #[test]
    fn agreement_excuses_red_processes() {
        let mut obs = obs_two_nodes();
        obs.classes.insert(NodeId(1), ProcessClass::Red);
        obs.record_delivery(NodeId(0), 1, mid(0, 1), true, SimTime::ZERO);
        assert!(obs.check_uniform_agreement().is_empty());
    }

    #[test]
    fn integrity_classic_rejects_redelivery() {
        let mut obs = obs_two_nodes();
        obs.record_delivery(NodeId(0), 1, mid(0, 1), false, SimTime::ZERO);
        obs.record_delivery(NodeId(0), 1, mid(0, 1), true, SimTime::ZERO);
        assert_eq!(obs.check_uniform_integrity(false).len(), 1);
        // The end-to-end refinement allows it (only one was successful).
        assert!(obs.check_uniform_integrity(true).is_empty());
    }

    #[test]
    fn integrity_e2e_rejects_double_success() {
        let mut obs = obs_two_nodes();
        obs.record_delivery(NodeId(0), 1, mid(0, 1), true, SimTime::ZERO);
        obs.record_delivery(NodeId(0), 1, mid(0, 1), true, SimTime::ZERO);
        assert_eq!(obs.check_uniform_integrity(true).len(), 1);
    }

    #[test]
    fn total_order_catches_swap() {
        let mut obs = obs_two_nodes();
        obs.record_delivery(NodeId(0), 1, mid(0, 1), true, SimTime::ZERO);
        obs.record_delivery(NodeId(0), 2, mid(1, 1), true, SimTime::ZERO);
        obs.record_delivery(NodeId(1), 1, mid(1, 1), true, SimTime::ZERO);
        obs.record_delivery(NodeId(1), 2, mid(0, 1), true, SimTime::ZERO);
        assert_eq!(obs.check_total_order().len(), 1);
    }

    #[test]
    fn end_to_end_catches_unprocessed() {
        let mut obs = obs_two_nodes();
        obs.record_delivery(NodeId(0), 1, mid(0, 1), true, SimTime::ZERO);
        obs.record_delivery(NodeId(1), 1, mid(0, 1), false, SimTime::ZERO);
        let v = obs.check_end_to_end();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].property, "end-to-end");
    }

    #[test]
    fn mark_processed_updates_latest() {
        let mut obs = obs_two_nodes();
        obs.record_delivery(NodeId(0), 1, mid(0, 1), false, SimTime::ZERO);
        obs.mark_processed(NodeId(0), mid(0, 1));
        assert!(obs.check_end_to_end().is_empty());
    }
}
