//! Group views (paper §2.3, dynamic crash no-recovery model).
//!
//! The history of a dynamic group is a sequence of views `v0, v1, ...`;
//! a new view is installed whenever a process joins or leaves.

use groupsafe_net::NodeId;

/// A group view: an identifier plus the member list, sorted by node id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    /// Monotonically increasing view number.
    pub id: u64,
    /// Members, sorted ascending.
    pub members: Vec<NodeId>,
}

impl View {
    /// Create the initial view (id 0) over `members`.
    pub fn initial(mut members: Vec<NodeId>) -> Self {
        members.sort_unstable();
        members.dedup();
        View { id: 0, members }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the view has no members (a dead group).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// True if `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.binary_search(&node).is_ok()
    }

    /// The view coordinator/sequencer: the smallest member id.
    pub fn coordinator(&self) -> Option<NodeId> {
        self.members.first().copied()
    }

    /// Majority threshold of this view (⌊len/2⌋ + 1).
    pub fn majority(&self) -> usize {
        self.len() / 2 + 1
    }

    /// The successor view without `leavers` and with `joiners` added.
    pub fn successor(&self, leavers: &[NodeId], joiners: &[NodeId]) -> View {
        let mut members: Vec<NodeId> = self
            .members
            .iter()
            .copied()
            .filter(|m| !leavers.contains(m))
            .collect();
        for j in joiners {
            if !members.contains(j) {
                members.push(*j);
            }
        }
        members.sort_unstable();
        View {
            id: self.id + 1,
            members,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn initial_sorts_and_dedups() {
        let v = View::initial(vec![n(2), n(0), n(1), n(2)]);
        assert_eq!(v.id, 0);
        assert_eq!(v.members, vec![n(0), n(1), n(2)]);
        assert_eq!(v.coordinator(), Some(n(0)));
        assert_eq!(v.majority(), 2);
    }

    #[test]
    fn successor_removes_and_adds() {
        let v = View::initial(vec![n(0), n(1), n(2)]);
        let v1 = v.successor(&[n(0)], &[]);
        assert_eq!(v1.id, 1);
        assert_eq!(v1.members, vec![n(1), n(2)]);
        assert_eq!(v1.coordinator(), Some(n(1)));
        let v2 = v1.successor(&[], &[n(0)]);
        assert_eq!(v2.members, vec![n(0), n(1), n(2)]);
        assert!(v2.contains(n(0)));
    }

    #[test]
    fn empty_view_is_dead() {
        let v = View::initial(vec![n(0)]);
        let v1 = v.successor(&[n(0)], &[]);
        assert!(v1.is_empty());
        assert_eq!(v1.coordinator(), None);
    }

    #[test]
    fn majority_thresholds() {
        assert_eq!(View::initial((0..3).map(NodeId).collect()).majority(), 2);
        assert_eq!(View::initial((0..4).map(NodeId).collect()).majority(), 3);
        assert_eq!(View::initial((0..9).map(NodeId).collect()).majority(), 5);
    }
}
