//! Equivalence properties of the batched abcast pipeline.
//!
//! The batching knobs change the *framing* of the total order — how many
//! entries travel per frame, how persistence is amortised, how stability
//! votes aggregate — but must never change the histories the application
//! observes. For random workloads, fault schedules and batch knobs these
//! properties pin a batched run against the `max_msgs = 1` (unbatched)
//! run of the same schedule and seed:
//!
//! * the per-node *processed* payload sequences are bit-for-bit equal,
//! * the group-safety fingerprint (an FNV digest over every node's final
//!   stable state) is bit-for-bit equal,
//! * the batched run on its own keeps validity, uniform total order and
//!   the end-to-end properties.
//!
//! Fault schedules crash non-sequencer nodes: the fixed sequencer then
//! assigns the identical total order whatever the framing. (A *crashing
//! sequencer* re-orders its resent backlog depending on what was still
//! in the accumulator, which legitimately yields a different — equally
//! correct — order; that case is covered by a set-equality property and
//! by the deterministic scenario corpus.)

use groupsafe_gcs::harness::Cluster;
use groupsafe_gcs::{BatchConfig, GcsConfig, ProcessClass};
use groupsafe_net::NodeId;
use groupsafe_sim::{SimDuration, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Schedule {
    broadcasts: Vec<(u64, u32, u64)>, // (at_ms, origin, value)
    crash: Option<(u32, u64, u64)>,   // (node, crash_ms, recover_ms)
}

/// Random broadcast schedule; the optional crash hits nodes `1..n` only
/// (node 0 is the fixed sequencer in the crash-recovery model).
fn schedule(n: u32) -> impl Strategy<Value = Schedule> {
    let bcasts = proptest::collection::vec((10u64..1_200, 0..n, 0u64..1_000_000), 1..30);
    let crash = proptest::option::of((1..n, 100u64..700, 800u64..1_500));
    (bcasts, crash).prop_map(|(mut broadcasts, crash)| {
        // Distinct values so histories are comparable element-wise.
        for (i, b) in broadcasts.iter_mut().enumerate() {
            b.2 = b.2 * 100 + i as u64;
        }
        Schedule { broadcasts, crash }
    })
}

/// Random batching knobs, including the byte trigger (payloads are `u64`,
/// so `max_bytes = 32` flushes every fourth message).
fn knobs() -> impl Strategy<Value = BatchConfig> {
    (2usize..32, 0u64..3_000, 0usize..3).prop_map(|(max_msgs, delay_us, byte_mode)| BatchConfig {
        max_msgs,
        max_bytes: [0, 32, 128][byte_mode],
        max_delay: SimDuration::from_micros(delay_us),
    })
}

struct Outcome {
    fingerprint: u64,
    /// Final processed payload sequence per node.
    histories: Vec<Vec<u64>>,
}

fn run(cfg: GcsConfig, sched: &Schedule, n: u32, seed: u64, e2e: bool) -> Outcome {
    let mut cluster = Cluster::new(n, cfg, seed);
    for &(at, origin, value) in &sched.broadcasts {
        cluster.broadcast_at(SimTime::from_millis(at), NodeId(origin), value);
    }
    if let Some((node, crash_ms, recover_ms)) = sched.crash {
        cluster
            .engine
            .schedule_crash(SimTime::from_millis(crash_ms), cluster.hosts[node as usize]);
        cluster.engine.schedule_recover(
            SimTime::from_millis(recover_ms),
            cluster.hosts[node as usize],
        );
    }
    cluster.engine.run_until(SimTime::from_secs(20));

    // The run must satisfy the broadcast specification on its own.
    {
        let mut obs = cluster.obs.borrow_mut();
        for i in 0..n {
            let class = if sched.crash.map(|(c, _, _)| c) == Some(i) {
                ProcessClass::Yellow
            } else {
                ProcessClass::Green
            };
            obs.classes.insert(NodeId(i), class);
        }
    }
    let violations: Vec<_> = {
        let obs = cluster.obs.borrow();
        let mut v = obs.check_validity();
        v.extend(obs.check_total_order());
        if e2e {
            v.extend(obs.check_uniform_integrity(true));
            v.extend(obs.check_end_to_end());
        }
        v
    };
    assert!(violations.is_empty(), "{violations:?}");

    Outcome {
        fingerprint: cluster.group_safety_fingerprint(),
        histories: (0..n).map(|i| cluster.stable_values(NodeId(i))).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// End-to-end atomic broadcast, crash-recovery model: batched runs
    /// (random knobs, random non-sequencer crash/recovery) produce the
    /// same per-node histories and the same group-safety fingerprint as
    /// the unbatched run of the identical schedule and seed.
    #[test]
    fn batched_e2e_equals_unbatched(sched in schedule(4), batch in knobs(), seed in 0u64..50) {
        let batched = run(
            GcsConfig::end_to_end().with_batching(batch),
            &sched, 4, seed, true,
        );
        let unbatched = run(GcsConfig::end_to_end(), &sched, 4, seed, true);
        prop_assert_eq!(
            &batched.histories,
            &unbatched.histories,
            "histories diverged (batch={:?} crash={:?})",
            batch,
            sched.crash
        );
        prop_assert_eq!(batched.fingerprint, unbatched.fingerprint);
    }

    /// View-based uniform atomic broadcast without faults: same
    /// equivalence on the dynamic model's fast path.
    #[test]
    fn batched_view_uniform_equals_unbatched(sched in schedule(4), batch in knobs()) {
        let mut sched = sched;
        sched.crash = None;
        let batched = run(
            GcsConfig::view_based_uniform().with_batching(batch),
            &sched, 4, 7, false,
        );
        let unbatched = run(GcsConfig::view_based_uniform(), &sched, 4, 7, false);
        prop_assert_eq!(&batched.histories, &unbatched.histories);
        prop_assert_eq!(batched.fingerprint, unbatched.fingerprint);
    }

    /// A crashing *sequencer* mid-accumulation may legitimately renumber
    /// its backlog, but never lose or duplicate anything: the processed
    /// value *sets* match the unbatched run and all replicas agree.
    #[test]
    fn sequencer_crash_preserves_the_processed_set(
        sched in schedule(4),
        batch in knobs(),
        crash_ms in 100u64..700,
    ) {
        let mut sched = sched;
        sched.crash = Some((0, crash_ms, crash_ms + 800));
        let batched = run(
            GcsConfig::end_to_end().with_batching(batch),
            &sched, 4, 11, true,
        );
        let unbatched = run(GcsConfig::end_to_end(), &sched, 4, 11, true);
        let set = |o: &Outcome| {
            let mut v = o.histories[1].clone();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(set(&batched), set(&unbatched), "processed sets diverged");
        // All batched-run replicas hold the identical history.
        for i in 1..4 {
            prop_assert_eq!(
                &batched.histories[0],
                &batched.histories[i],
                "batched replica {} diverged",
                i
            );
        }
    }
}
