//! Membership edge cases: primary-partition blocking, healed partitions,
//! coordinator crashes during view changes, and fast crash-recover cycles.

use groupsafe_gcs::harness::{Cluster, GcsHost};
use groupsafe_gcs::GcsConfig;
use groupsafe_net::NodeId;
use groupsafe_sim::SimTime;

fn ms(v: u64) -> SimTime {
    SimTime::from_millis(v)
}

/// A partitioned minority under uniform delivery must block: no new
/// deliveries on the minority side, so nothing it cannot guarantee.
#[test]
fn minority_partition_blocks_under_uniform_delivery() {
    let n = 5;
    let mut cluster = Cluster::new(n, GcsConfig::view_based_uniform(), 61);
    for i in 0..5u64 {
        cluster.broadcast_at(ms(10 + i * 5), NodeId(0), 100 + i);
    }
    cluster.engine.run_until(ms(200));
    // Isolate nodes 0 and 1 (node 0 is the sequencer).
    cluster
        .net
        .partition(&[&[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3), NodeId(4)]]);
    // Broadcasts submitted on the minority side must NOT be delivered
    // there (no majority => no stability => no delivery).
    cluster.broadcast_at(ms(250), NodeId(1), 900);
    cluster.engine.run_until(ms(1_500));
    let minority_state = cluster.stable_values(NodeId(1));
    assert!(
        !minority_state.contains(&900),
        "minority must not deliver: {minority_state:?}"
    );
    // The majority side elects a new sequencer and keeps going.
    cluster.broadcast_at(ms(1_600), NodeId(3), 901);
    cluster.engine.run_until(ms(3_000));
    assert!(
        cluster.stable_values(NodeId(3)).contains(&901),
        "majority side must continue"
    );
    // Heal: the minority side rejoins the primary view and converges.
    cluster.net.heal();
    cluster.engine.run_until(ms(8_000));
    let host1: &GcsHost = cluster.engine.actor(cluster.hosts[1]);
    assert!(
        host1.endpoint().view().len() >= 3,
        "healed member must be back in the primary view: {:?}",
        host1.endpoint().view()
    );
}

/// The coordinator crashing *during* a view change must not wedge the
/// group: the next coordinator restarts the change.
#[test]
fn coordinator_crash_during_view_change() {
    let n = 4;
    let mut cluster = Cluster::new(n, GcsConfig::view_based_uniform(), 67);
    for i in 0..5u64 {
        cluster.broadcast_at(ms(10 + i * 5), NodeId(1), 200 + i);
    }
    // Crash node 3 to trigger a view change; crash node 0 (the
    // coordinator) in the middle of the detection/sync window.
    cluster.engine.schedule_crash(ms(100), cluster.hosts[3]);
    cluster.engine.schedule_crash(ms(140), cluster.hosts[0]);
    // The remaining pair {1, 2} must finish a view change and keep
    // ordering new messages (2 of 4 = majority boundary: survivors of the
    // last installed view).
    for i in 0..5u64 {
        cluster.broadcast_at(ms(1_000 + i * 10), NodeId(2), 300 + i);
    }
    cluster.engine.run_until(ms(5_000));
    let s1 = cluster.stable_values(NodeId(1));
    let s2 = cluster.stable_values(NodeId(2));
    assert_eq!(s1, s2, "survivors diverged");
    for v in 300..305 {
        assert!(
            s1.contains(&v),
            "post-failover broadcast {v} missing: {s1:?}"
        );
    }
}

/// A node that crashes and recovers faster than the failure detector
/// notices must still be able to rejoin (its stale incarnation is
/// replaced).
#[test]
fn fast_crash_recover_cycle_rejoins() {
    let n = 3;
    let mut cluster = Cluster::new(n, GcsConfig::view_based_uniform(), 71);
    for i in 0..4u64 {
        cluster.broadcast_at(ms(10 + i * 5), NodeId(0), 400 + i);
    }
    // Down for only 10 ms — well under the 35 ms detection timeout.
    cluster.engine.schedule_crash(ms(100), cluster.hosts[2]);
    cluster.engine.schedule_recover(ms(110), cluster.hosts[2]);
    for i in 0..4u64 {
        cluster.broadcast_at(ms(1_500 + i * 5), NodeId(1), 500 + i);
    }
    cluster.engine.run_until(ms(6_000));
    let s0 = cluster.stable_values(NodeId(0));
    let s2 = cluster.stable_values(NodeId(2));
    assert_eq!(s0, s2, "rejoined replica diverged");
    for v in 500..504 {
        assert!(s2.contains(&v), "post-rejoin broadcast {v} missing");
    }
    let host2: &GcsHost = cluster.engine.actor(cluster.hosts[2]);
    assert_eq!(host2.endpoint().view().len(), 3);
}

/// Repeated crash/recover cycles of the same node (an unstable process)
/// must not corrupt the survivors' order or state.
#[test]
fn unstable_node_does_not_corrupt_survivors() {
    let n = 3;
    let mut cluster = Cluster::new(n, GcsConfig::view_based_uniform(), 73);
    for round in 0..3u64 {
        let base = 1_000 + round * 2_000;
        for i in 0..3u64 {
            cluster.broadcast_at(ms(base + i * 10), NodeId(0), round * 10 + i);
        }
        cluster
            .engine
            .schedule_crash(ms(base + 100), cluster.hosts[2]);
        cluster
            .engine
            .schedule_recover(ms(base + 700), cluster.hosts[2]);
    }
    cluster.engine.run_until(ms(10_000));
    let s0 = cluster.stable_values(NodeId(0));
    let s1 = cluster.stable_values(NodeId(1));
    assert_eq!(s0, s1, "stable members diverged");
    assert_eq!(s0.len(), 9, "all broadcasts delivered: {s0:?}");
}
