//! Property-based tests for the atomic broadcast stack: random broadcast
//! schedules and random (minority) crash/recovery schedules must preserve
//! the specification properties and converge.

use groupsafe_gcs::harness::Cluster;
use groupsafe_gcs::{GcsConfig, ProcessClass};
use groupsafe_net::NodeId;
use groupsafe_sim::SimTime;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Schedule {
    broadcasts: Vec<(u64, u32, u64)>, // (at_ms, origin, value)
    crash: Option<(u32, u64, u64)>,   // (node, crash_ms, recover_ms)
}

fn schedule(n: u32) -> impl Strategy<Value = Schedule> {
    let bcasts = proptest::collection::vec((10u64..1_500, 0..n, 0u64..1_000_000), 1..25);
    let crash = proptest::option::of((0..n, 100u64..800, 900u64..1_600));
    (bcasts, crash).prop_map(|(mut broadcasts, crash)| {
        // Distinct values so states are comparable as multisets.
        for (i, b) in broadcasts.iter_mut().enumerate() {
            b.2 = b.2 * 100 + i as u64;
        }
        Schedule { broadcasts, crash }
    })
}

fn run(
    cfg: GcsConfig,
    sched: &Schedule,
    n: u32,
    seed: u64,
    e2e: bool,
) -> Result<(), TestCaseError> {
    let mut cluster = Cluster::new(n, cfg, seed);
    for &(at, origin, value) in &sched.broadcasts {
        cluster.broadcast_at(SimTime::from_millis(at), NodeId(origin), value);
    }
    let crashed_node = if let Some((node, crash_ms, recover_ms)) = sched.crash {
        cluster
            .engine
            .schedule_crash(SimTime::from_millis(crash_ms), cluster.hosts[node as usize]);
        cluster.engine.schedule_recover(
            SimTime::from_millis(recover_ms),
            cluster.hosts[node as usize],
        );
        Some(node)
    } else {
        None
    };
    cluster.engine.run_until(SimTime::from_secs(20));

    // Broadcasts from a node while it was down are legitimately lost
    // (A-send with no delivery guarantee for red windows); everything
    // else must appear everywhere, in the same order.
    let reference = cluster.stable_values(NodeId(0));
    for i in 1..n {
        let other = cluster.stable_values(NodeId(i));
        prop_assert_eq!(
            &reference,
            &other,
            "replica {} diverged (crash={:?})",
            i,
            sched.crash
        );
    }
    // Property checkers over the observation.
    {
        let mut obs = cluster.obs.borrow_mut();
        for i in 0..n {
            let class = if Some(i) == crashed_node {
                ProcessClass::Yellow
            } else {
                ProcessClass::Green
            };
            obs.classes.insert(NodeId(i), class);
        }
    }
    let violations: Vec<_> = {
        let obs = cluster.obs.borrow();
        // Total order and validity always hold. Agreement/integrity need
        // the per-incarnation caveat in the dynamic model, so restrict the
        // full check to runs whose crashed node is classified yellow and
        // the model handles identity (crash-recovery).
        let mut v = obs.check_validity();
        v.extend(obs.check_total_order());
        if e2e {
            v.extend(obs.check_uniform_integrity(true));
            v.extend(obs.check_end_to_end());
        }
        v
    };
    prop_assert!(violations.is_empty(), "{violations:?}");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// View-based uniform atomic broadcast: random schedules without
    /// crashes keep every property and all replicas identical.
    #[test]
    fn view_based_uniform_random_schedules(sched in schedule(4)) {
        let mut s = sched;
        s.crash = None;
        run(GcsConfig::view_based_uniform(), &s, 4, 1, false)?;
    }

    /// End-to-end atomic broadcast: random schedules *with* a random
    /// single crash/recovery still converge and keep the end-to-end
    /// properties.
    #[test]
    fn end_to_end_random_crash_schedules(sched in schedule(4), seed in 0u64..50) {
        run(GcsConfig::end_to_end(), &sched, 4, seed, true)?;
    }

    /// Crash-recovery model without end-to-end: no divergence among
    /// replicas is *created* by the protocol when no crash occurs.
    #[test]
    fn crash_recovery_no_crash_schedules(sched in schedule(3)) {
        let mut s = sched;
        s.crash = None;
        run(GcsConfig::crash_recovery(), &s, 3, 2, false)?;
    }
}
