//! End-to-end scenarios for the group communication stack, including the
//! paper's Fig. 5 (classic atomic broadcast loses a delivered-but-
//! unprocessed message on total failure) and Fig. 7 (end-to-end atomic
//! broadcast replays it).

use groupsafe_gcs::harness::{Cluster, GcsHost, RestartGroupCmd};
use groupsafe_gcs::{GcsConfig, ProcessClass};
use groupsafe_net::NodeId;
use groupsafe_sim::{SimDuration, SimTime};

fn ms(v: u64) -> SimTime {
    SimTime::from_millis(v)
}

/// Broadcast `count` values from rotating origins starting at `from_ms`,
/// 5 ms apart.
fn broadcast_round(cluster: &mut Cluster, n: u32, from_ms: u64, count: u64) {
    for i in 0..count {
        let node = NodeId((i % n as u64) as u32);
        cluster.broadcast_at(ms(from_ms + i * 5), node, 100 + i);
    }
}

fn assert_all_equal_and_complete(cluster: &Cluster, n: u32, expected: &[u64]) {
    let reference = cluster.stable_values(NodeId(0));
    let mut sorted = reference.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, expected, "node 0 state incomplete");
    for i in 1..n {
        assert_eq!(
            cluster.stable_values(NodeId(i)),
            reference,
            "replica {i} diverged"
        );
    }
}

fn mark_all_green(cluster: &Cluster, n: u32) {
    let mut obs = cluster.obs.borrow_mut();
    for i in 0..n {
        obs.classes.insert(NodeId(i), ProcessClass::Green);
    }
}

fn mark_all_yellow(cluster: &Cluster, n: u32) {
    let mut obs = cluster.obs.borrow_mut();
    for i in 0..n {
        obs.classes.insert(NodeId(i), ProcessClass::Yellow);
    }
}

#[test]
fn view_based_uniform_total_order_without_crashes() {
    let n = 3;
    let mut cluster = Cluster::new(n, GcsConfig::view_based_uniform(), 11);
    broadcast_round(&mut cluster, n, 10, 20);
    cluster.engine.run_until(ms(1_000));
    let expected: Vec<u64> = (100..120).collect();
    assert_all_equal_and_complete(&cluster, n, &expected);
    mark_all_green(&cluster, n);
    let violations = cluster.obs.borrow().check_all(false);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn nine_nodes_paper_group_size() {
    // Table 4: nine servers.
    let n = 9;
    let mut cluster = Cluster::new(n, GcsConfig::view_based_uniform(), 13);
    broadcast_round(&mut cluster, n, 10, 45);
    cluster.engine.run_until(ms(2_000));
    let expected: Vec<u64> = (100..145).collect();
    assert_all_equal_and_complete(&cluster, n, &expected);
    mark_all_green(&cluster, n);
    let violations = cluster.obs.borrow().check_all(false);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn non_uniform_delivery_is_faster_but_still_ordered() {
    let n = 3;
    let mut cluster = Cluster::new(n, GcsConfig::view_based_non_uniform(), 17);
    broadcast_round(&mut cluster, n, 10, 10);
    cluster.engine.run_until(ms(500));
    let expected: Vec<u64> = (100..110).collect();
    assert_all_equal_and_complete(&cluster, n, &expected);
}

#[test]
fn crash_recovery_model_persists_before_delivery() {
    let n = 3;
    let mut cluster = Cluster::new(n, GcsConfig::crash_recovery(), 19);
    broadcast_round(&mut cluster, n, 10, 10);
    cluster.engine.run_until(ms(2_000));
    let expected: Vec<u64> = (100..110).collect();
    assert_all_equal_and_complete(&cluster, n, &expected);
    // Every entry is in every stable log.
    for i in 0..n {
        let host: &GcsHost = cluster.engine.actor(cluster.hosts[i as usize]);
        assert_eq!(host.endpoint().stable_log_seqs().len(), 10, "node {i}");
    }
}

#[test]
fn view_based_minority_crash_survivors_continue() {
    let n = 3;
    let mut cluster = Cluster::new(n, GcsConfig::view_based_uniform(), 23);
    broadcast_round(&mut cluster, n, 10, 6);
    // Crash node 2 at 60 ms; keep broadcasting from the survivors.
    cluster.engine.schedule_crash(ms(60), cluster.hosts[2]);
    for i in 0..6u64 {
        let node = NodeId((i % 2) as u32);
        cluster.broadcast_at(ms(200 + i * 5), node, 500 + i);
    }
    cluster.engine.run_until(ms(1_000));
    let s0 = cluster.stable_values(NodeId(0));
    let s1 = cluster.stable_values(NodeId(1));
    assert_eq!(s0, s1, "survivors diverged");
    let mut sorted = s0.clone();
    sorted.sort_unstable();
    let mut expected: Vec<u64> = (100..106).collect();
    expected.extend(500..506);
    assert_eq!(sorted, expected);
    // The survivors installed a smaller view.
    let host: &GcsHost = cluster.engine.actor(cluster.hosts[0]);
    assert_eq!(host.endpoint().view().members, vec![NodeId(0), NodeId(1)]);
}

#[test]
fn view_based_rejoin_via_state_transfer() {
    let n = 3;
    let mut cluster = Cluster::new(n, GcsConfig::view_based_uniform(), 29);
    broadcast_round(&mut cluster, n, 10, 6);
    cluster.engine.schedule_crash(ms(60), cluster.hosts[2]);
    for i in 0..4u64 {
        cluster.broadcast_at(ms(200 + i * 5), NodeId(0), 500 + i);
    }
    // Recover node 2 at 400 ms: it should rejoin through a state transfer
    // and converge with the others, including messages it never saw.
    cluster.engine.schedule_recover(ms(400), cluster.hosts[2]);
    for i in 0..4u64 {
        cluster.broadcast_at(ms(600 + i * 5), NodeId(1), 700 + i);
    }
    cluster.engine.run_until(ms(1_500));
    let s0 = cluster.stable_values(NodeId(0));
    let s2 = cluster.stable_values(NodeId(2));
    assert_eq!(s0, s2, "rejoined replica diverged");
    let mut sorted = s2.clone();
    sorted.sort_unstable();
    let mut expected: Vec<u64> = (100..106).collect();
    expected.extend(500..504);
    expected.extend(700..704);
    assert_eq!(sorted, expected);
    let host: &GcsHost = cluster.engine.actor(cluster.hosts[2]);
    assert_eq!(host.endpoint().view().len(), 3);
}

#[test]
fn view_based_sequencer_crash_failover() {
    let n = 3;
    let mut cluster = Cluster::new(n, GcsConfig::view_based_uniform(), 31);
    broadcast_round(&mut cluster, n, 10, 4);
    // Node 0 is the initial sequencer; kill it.
    cluster.engine.schedule_crash(ms(80), cluster.hosts[0]);
    // These broadcasts need the new sequencer (node 1) to be ordered —
    // including one submitted during the detection window.
    cluster.broadcast_at(ms(90), NodeId(2), 900);
    for i in 0..4u64 {
        cluster.broadcast_at(ms(300 + i * 5), NodeId(1), 910 + i);
    }
    cluster.engine.run_until(ms(1_500));
    let s1 = cluster.stable_values(NodeId(1));
    let s2 = cluster.stable_values(NodeId(2));
    assert_eq!(s1, s2, "survivors diverged after sequencer failover");
    let mut sorted = s1.clone();
    sorted.sort_unstable();
    let mut expected: Vec<u64> = (100..104).collect();
    expected.push(900);
    expected.extend(910..914);
    assert_eq!(sorted, expected);
    let host: &GcsHost = cluster.engine.actor(cluster.hosts[1]);
    assert!(host.endpoint().is_sequencer());
}

/// Fig. 5: message delivered everywhere, processed nowhere but at the
/// delegate, then every process crashes. With the classic (view-based)
/// stack the message is unrecoverable.
#[test]
fn fig5_total_failure_loses_delivered_unprocessed_message() {
    let n = 3;
    // 50 ms between delivery and processing: the vulnerability window.
    let mut cluster = Cluster::with_process_delay(
        n,
        GcsConfig::view_based_uniform(),
        37,
        SimDuration::from_millis(50),
    );
    cluster.broadcast_at(ms(10), NodeId(0), 4242);
    // Delivery completes within a few hundred microseconds; processing
    // would finish at ~60 ms. Crash everyone at 30 ms.
    for &h in &cluster.hosts {
        cluster.engine.schedule_crash(ms(30), h);
    }
    for &h in &cluster.hosts {
        cluster.engine.schedule_recover(ms(100), h);
    }
    // Total failure in the dynamic model: the group cannot re-form on its
    // own; the operator restarts it from local application state.
    let members: Vec<NodeId> = (0..n).map(NodeId).collect();
    for &h in &cluster.hosts {
        cluster
            .engine
            .schedule_resilient(ms(200), h, RestartGroupCmd(members.clone()));
    }
    // The restarted group still works for new messages...
    cluster.broadcast_at(ms(300), NodeId(1), 4343);
    cluster.engine.run_until(ms(1_000));
    for i in 0..n {
        let vals = cluster.stable_values(NodeId(i));
        assert!(
            !vals.contains(&4242),
            "node {i} should have lost the unprocessed message, has {vals:?}"
        );
        assert!(
            vals.contains(&4343),
            "node {i} missed the post-restart message"
        );
    }
}

/// Fig. 7: the same scenario over end-to-end atomic broadcast. After
/// recovery the message is redelivered and every replica processes it.
#[test]
fn fig7_end_to_end_replays_after_total_failure() {
    let n = 3;
    let mut cluster =
        Cluster::with_process_delay(n, GcsConfig::end_to_end(), 41, SimDuration::from_millis(50));
    cluster.broadcast_at(ms(10), NodeId(0), 4242);
    // Crash everyone at 45 ms: entries are persisted (disk write ≈ 4–12 ms)
    // and delivered by then, but no application has processed them.
    for &h in &cluster.hosts {
        cluster.engine.schedule_crash(ms(45), h);
    }
    for &h in &cluster.hosts {
        cluster.engine.schedule_recover(ms(100), h);
    }
    cluster.broadcast_at(ms(300), NodeId(1), 4343);
    cluster.engine.run_until(ms(2_000));
    for i in 0..n {
        let vals = cluster.stable_values(NodeId(i));
        assert!(
            vals.contains(&4242),
            "node {i} must recover the unprocessed message, has {vals:?}"
        );
        assert!(vals.contains(&4343), "node {i} missed the new message");
    }
    mark_all_yellow(&cluster, n);
    let violations = cluster.obs.borrow().check_all(true);
    assert!(violations.is_empty(), "{violations:?}");
}

/// The same total-failure scenario in the crash-recovery model *without*
/// end-to-end guarantees: entries were stably marked `delivered`, so the
/// GC layer must not replay them (uniform integrity) — the message is lost
/// even though every GC log contains it. This is §3's second problem.
#[test]
fn crash_recovery_without_e2e_still_loses_the_message() {
    let n = 3;
    let mut cluster = Cluster::with_process_delay(
        n,
        GcsConfig::crash_recovery(),
        43,
        SimDuration::from_millis(50),
    );
    cluster.broadcast_at(ms(10), NodeId(0), 4242);
    for &h in &cluster.hosts {
        cluster.engine.schedule_crash(ms(45), h);
    }
    for &h in &cluster.hosts {
        cluster.engine.schedule_recover(ms(100), h);
    }
    cluster.broadcast_at(ms(300), NodeId(1), 4343);
    cluster.engine.run_until(ms(2_000));
    for i in 0..n {
        let vals = cluster.stable_values(NodeId(i));
        assert!(
            !vals.contains(&4242),
            "node {i}: classic crash-recovery must not replay, has {vals:?}"
        );
        assert!(vals.contains(&4343), "node {i} missed the new message");
        // ... even though the entry sits in its stable log:
        let host: &GcsHost = cluster.engine.actor(cluster.hosts[i as usize]);
        assert!(
            !host.endpoint().stable_log_seqs().is_empty(),
            "node {i}: the GC log does contain the entry"
        );
    }
}

/// End-to-end broadcast with a *partial* crash: one node crashes inside
/// the processing window, recovers, and replays only what it missed.
#[test]
fn e2e_partial_crash_replays_only_unacked() {
    let n = 3;
    let mut cluster =
        Cluster::with_process_delay(n, GcsConfig::end_to_end(), 47, SimDuration::from_millis(30));
    cluster.broadcast_at(ms(10), NodeId(0), 1111);
    // Node 2 crashes at 40 ms (delivered, unprocessed), recovers at 120 ms.
    cluster.engine.schedule_crash(ms(40), cluster.hosts[2]);
    cluster.engine.schedule_recover(ms(120), cluster.hosts[2]);
    // A second message while node 2 is down.
    cluster.broadcast_at(ms(60), NodeId(1), 2222);
    cluster.engine.run_until(ms(2_000));
    let expected: Vec<u64> = vec![1111, 2222];
    for i in 0..n {
        let mut vals = cluster.stable_values(NodeId(i));
        vals.sort_unstable();
        assert_eq!(vals, expected, "node {i}");
    }
    mark_all_yellow(&cluster, n);
    let violations = cluster.obs.borrow().check_all(true);
    assert!(violations.is_empty(), "{violations:?}");
}

/// Determinism: identical seeds reproduce identical engine fingerprints
/// across a crash-heavy scenario.
#[test]
fn scenarios_are_deterministic() {
    let run = |seed: u64| {
        let n = 3;
        let mut cluster = Cluster::new(n, GcsConfig::end_to_end(), seed);
        broadcast_round(&mut cluster, n, 10, 10);
        cluster.engine.schedule_crash(ms(60), cluster.hosts[1]);
        cluster.engine.schedule_recover(ms(150), cluster.hosts[1]);
        cluster.engine.run_until(ms(1_000));
        (
            cluster.engine.fingerprint(),
            cluster.stable_values(NodeId(0)),
        )
    };
    assert_eq!(run(99), run(99));
    // And different seeds still converge to the same application state
    // (timing differs, outcomes agree).
    assert_eq!(run(99).1.len(), run(101).1.len());
}
