//! Property-based tests for the database engine's invariants.

use std::cell::RefCell;
use std::rc::Rc;

use groupsafe_db::{
    DbConfig, DbEngine, FlushPolicy, ItemId, ItemState, LockManager, LockMode, LockOutcome, TxnId,
    WriteOp,
};
use groupsafe_sim::{Disk, Fcfs, SimTime};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engine(n_items: u32, seed: u64) -> DbEngine {
    DbEngine::new(
        DbConfig {
            n_items,
            flush_policy: FlushPolicy::Async,
            ..DbConfig::default()
        },
        Rc::new(RefCell::new(Fcfs::new(2))),
        Rc::new(RefCell::new(Disk::paper_default())),
        Rc::new(RefCell::new(Disk::paper_default())),
        StdRng::seed_from_u64(seed),
    )
}

/// A step of the random lock-manager workload.
#[derive(Debug, Clone)]
enum LockStep {
    Acquire { txn: u8, item: u8, exclusive: bool },
    Release { txn: u8 },
}

fn lock_step() -> impl Strategy<Value = LockStep> {
    prop_oneof![
        (0u8..6, 0u8..4, any::<bool>()).prop_map(|(txn, item, exclusive)| LockStep::Acquire {
            txn,
            item,
            exclusive
        }),
        (0u8..6).prop_map(|txn| LockStep::Release { txn }),
    ]
}

proptest! {
    /// 2PL invariant: at no point do two transactions hold incompatible
    /// locks on the same item, and every deadlock verdict names a waiting
    /// transaction.
    #[test]
    fn lock_manager_never_grants_conflicting_locks(
        steps in proptest::collection::vec(lock_step(), 1..80)
    ) {
        let mut lm = LockManager::new();
        // Reference view: (item -> holders with mode), rebuilt from grants.
        let mut holders: std::collections::BTreeMap<u8, Vec<(u8, bool)>> = Default::default();
        let mut waiting: std::collections::BTreeSet<u8> = Default::default();
        for step in steps {
            match step {
                LockStep::Acquire { txn, item, exclusive } => {
                    if waiting.contains(&txn) {
                        continue; // a waiting transaction cannot issue ops
                    }
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    let t = TxnId { client: txn as u32, seq: 1 };
                    match lm.acquire(t, ItemId(item as u32), mode) {
                        LockOutcome::Granted => {
                            let hs = holders.entry(item).or_default();
                            hs.retain(|(h, _)| *h != txn);
                            hs.push((txn, exclusive));
                        }
                        LockOutcome::Waiting => {
                            waiting.insert(txn);
                        }
                        LockOutcome::Deadlock { victim } => {
                            // The victim must actually be waiting (it is on
                            // a cycle, and every cycle member waits).
                            prop_assert!(lm.is_waiting(victim) || victim == t,
                                "victim {victim} is not waiting");
                            let vid = victim.client as u8;
                            let granted = lm.release_all(victim);
                            holders.iter_mut().for_each(|(_, hs)| hs.retain(|(h, _)| *h != vid));
                            waiting.remove(&vid);
                            if victim != t {
                                waiting.insert(txn); // requester still queued
                            }
                            for (g, gi) in granted {
                                waiting.remove(&(g.client as u8));
                                holders
                                    .entry(gi.0 as u8)
                                    .or_default()
                                    .push((g.client as u8, false)); // mode unknown; conflict check below is via lm
                            }
                        }
                    }
                }
                LockStep::Release { txn } => {
                    let t = TxnId { client: txn as u32, seq: 1 };
                    let granted = lm.release_all(t);
                    holders.iter_mut().for_each(|(_, hs)| hs.retain(|(h, _)| *h != txn));
                    waiting.remove(&txn);
                    for (g, gi) in granted {
                        waiting.remove(&(g.client as u8));
                        holders.entry(gi.0 as u8).or_default().push((g.client as u8, false));
                    }
                }
            }
            // Core invariant via the authoritative manager: an exclusive
            // grant excludes everyone else. We probe it per item with a
            // scratch transaction: if someone holds X, a fresh S request
            // must not be granted immediately... (probing would mutate
            // state, so instead check our mirror for double-X.)
            for hs in holders.values() {
                let x_holders = hs.iter().filter(|(_, ex)| *ex).count();
                if x_holders > 0 {
                    prop_assert!(hs.len() == x_holders && x_holders == 1,
                        "exclusive lock shared: {hs:?}");
                }
            }
        }
    }

    /// Crash recovery: the recovered state equals the redo of the durable
    /// prefix, exactly-once semantics included.
    #[test]
    fn recovery_replays_exactly_the_durable_prefix(
        commits in proptest::collection::vec(
            (0u32..20, -1000i64..1000),
            1..40
        ),
        durable_upto in 0usize..40
    ) {
        let mut e = engine(20, 42);
        let mut t = SimTime::ZERO;
        for (i, (item, value)) in commits.iter().enumerate() {
            let txn = TxnId { client: 0, seq: i as u64 + 1 };
            let w = WriteOp { item: ItemId(*item), value: *value, version: i as u64 + 1 };
            let res = e.commit(t, txn, &[w]);
            t = res.done + groupsafe_sim::SimDuration::from_millis(1);
            if i + 1 == durable_upto.min(commits.len()) {
                // Flush everything appended so far and mark durable.
                if let Some((done, lsn)) = e.flush_wal(t) {
                    e.wal_mark_durable(lsn);
                    t = done;
                }
            }
        }
        let cut = durable_upto.min(commits.len());
        e.crash();
        // Recovered state: exactly the first `cut` commits.
        let mut expect = vec![ItemState::default(); 20];
        for (i, (item, value)) in commits.iter().take(cut).enumerate() {
            expect[*item as usize] = ItemState { value: *value, version: i as u64 + 1 };
        }
        for idx in 0..20u32 {
            prop_assert_eq!(e.item(ItemId(idx)), expect[idx as usize], "item {}", idx);
        }
        for (i, _) in commits.iter().enumerate() {
            let txn = TxnId { client: 0, seq: i as u64 + 1 };
            prop_assert_eq!(e.is_committed(txn), i < cut);
        }
        // A duplicate commit of a recovered transaction is a no-op.
        if cut > 0 {
            let txn = TxnId { client: 0, seq: 1 };
            let res = e.commit(SimTime::from_secs(100), txn, &[WriteOp {
                item: ItemId(0), value: 999_999, version: 999_999,
            }]);
            prop_assert!(res.duplicate);
        }
    }

    /// The Thomas write rule is order-insensitive: any permutation of the
    /// same write sets converges to the same state.
    #[test]
    fn thomas_rule_is_order_insensitive(
        mut writes in proptest::collection::vec(
            (0u32..10, -100i64..100, 1u64..50),
            1..20
        ),
        swap_a in 0usize..20,
        swap_b in 0usize..20
    ) {
        // Unique versions (ties are resolved by uniqueness in the system).
        writes.sort_by_key(|w| w.2);
        writes.dedup_by_key(|w| w.2);
        let apply = |order: &[(u32, i64, u64)]| {
            let mut e = engine(10, 7);
            for (i, (item, value, version)) in order.iter().enumerate() {
                let txn = TxnId { client: 1, seq: *version };
                let _ = i;
                e.apply_unlogged(SimTime::ZERO, txn, &[WriteOp {
                    item: ItemId(*item), value: *value, version: *version,
                }]);
            }
            e.state_digest()
        };
        let d1 = apply(&writes);
        let mut shuffled = writes.clone();
        if !shuffled.is_empty() {
            let a = swap_a % shuffled.len();
            let b = swap_b % shuffled.len();
            shuffled.swap(a, b);
        }
        let d2 = apply(&shuffled);
        prop_assert_eq!(d1, d2, "Thomas rule must be commutative");
    }
}
