//! Write-ahead log with group commit and sync/async flush policies.
//!
//! The WAL is the authority for crash recovery: the recovered state is the
//! redo of the *durable* prefix. Under the synchronous policy the commit
//! reply waits for the flush (1-safe, group-1-safe); under the
//! asynchronous policy flushes happen periodically in the background —
//! exactly the optimisation group-safety legitimises (§5.1: "group-safe
//! replication basically allows all disk writes to be done
//! asynchronously").

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;

use groupsafe_sim::{Disk, SimTime};

use crate::types::{ItemId, TxnId, WriteOp};

/// Log sequence number: index of a record in the log (0-based).
pub type Lsn = u64;

/// What a log record does at redo time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalKind {
    /// Apply the record's writes, mark the transaction committed, and
    /// drop any reservation it held.
    Commit,
    /// Reserve the listed items for the transaction (a cross-group
    /// prepare certified under a logging safety level; `coordinator` is
    /// the deciding server's node id, kept so a recovered replica can
    /// resume probing for the missing decision).
    Reserve {
        /// The reserved items.
        items: Vec<ItemId>,
        /// The coordinator to probe for the decision.
        coordinator: u32,
    },
    /// Drop the transaction's reservations without committing anything
    /// (a cross-group abort decision).
    Release,
}

/// A log record: everything redo needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRecord {
    /// The transaction the record belongs to.
    pub txn: TxnId,
    /// Its writes, with assigned versions ([`WalKind::Commit`] only).
    pub writes: Vec<WriteOp>,
    /// What redo does with the record.
    pub kind: WalKind,
}

/// When commit records reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Flush before acknowledging the commit (the commit pays the write).
    Sync,
    /// Flush in the background on a timer; commits return immediately.
    Async,
}

/// WAL counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalStats {
    /// Records appended.
    pub appends: u64,
    /// Flush batches written to the log disk.
    pub flushes: u64,
    /// Records covered by flush batches (≥ flushes under group commit).
    pub flushed_records: u64,
}

/// The write-ahead log.
pub struct Wal {
    records: Vec<CommitRecord>,
    /// Records below this index are on disk.
    durable: usize,
    /// Records below this index are covered by an in-flight flush.
    flushing: usize,
    log_disk: Rc<RefCell<Disk>>,
    stats: WalStats,
}

impl Wal {
    /// Create a WAL backed by `log_disk`.
    pub fn new(log_disk: Rc<RefCell<Disk>>) -> Self {
        Wal {
            records: Vec::new(),
            durable: 0,
            flushing: 0,
            log_disk,
            stats: WalStats::default(),
        }
    }

    /// Append a commit record (buffered, not yet durable). Returns its LSN.
    pub fn append(&mut self, record: CommitRecord) -> Lsn {
        self.stats.appends += 1;
        self.records.push(record);
        (self.records.len() - 1) as Lsn
    }

    /// Highest appended LSN + 1 (0 when empty).
    pub fn end_lsn(&self) -> Lsn {
        self.records.len() as Lsn
    }

    /// Records at or above this LSN are not yet durable.
    pub fn durable_lsn(&self) -> Lsn {
        self.durable as Lsn
    }

    /// True if `lsn` is on disk.
    pub fn is_durable(&self, lsn: Lsn) -> bool {
        (lsn as usize) < self.durable
    }

    /// Start flushing everything appended so far that is not yet covered
    /// by a flush. Returns `Some((completion, covered_lsn))` if a batch was
    /// written: the host must call [`Wal::mark_durable`]`(covered_lsn)` at
    /// `completion`. Returns `None` when there is nothing new to flush.
    ///
    /// Group commit: all pending records go out as one sequential batch.
    pub fn flush(&mut self, now: SimTime, rng: &mut StdRng) -> Option<(SimTime, Lsn)> {
        let end = self.records.len();
        if end <= self.flushing {
            return None;
        }
        let batch = end - self.flushing;
        self.flushing = end;
        self.stats.flushes += 1;
        self.stats.flushed_records += batch as u64;
        let done = self.log_disk.borrow_mut().sequential_batch(now, batch, rng);
        Some((done, end as Lsn))
    }

    /// Synchronous flush: a single pending commit record is forced with
    /// one *individual random access* (the transaction is waiting; there
    /// is nothing to batch with). When several records are pending —
    /// e.g. cross-group reserve/release records queued since the last
    /// force — they go out as one sequential group-commit batch, exactly
    /// as a real log does when a forced write finds company. This is the
    /// flush the synchronous-durability techniques pay on their critical
    /// path; the background [`Wal::flush`] always batches.
    pub fn flush_unbatched(&mut self, now: SimTime, rng: &mut StdRng) -> Option<(SimTime, Lsn)> {
        let end = self.records.len();
        if end <= self.flushing {
            return None;
        }
        let batch = end - self.flushing;
        let done = {
            let mut disk = self.log_disk.borrow_mut();
            if batch == 1 {
                disk.access(now, rng)
            } else {
                disk.sequential_batch(now, batch, rng)
            }
        };
        self.stats.flushes += 1;
        self.stats.flushed_records += batch as u64;
        self.flushing = end;
        Some((done, end as Lsn))
    }

    /// A flush covering records below `lsn` completed.
    pub fn mark_durable(&mut self, lsn: Lsn) {
        self.durable = self.durable.max(lsn as usize).min(self.records.len());
    }

    /// Redo: the durable commit records in LSN order.
    pub fn durable_records(&self) -> &[CommitRecord] {
        &self.records[..self.durable]
    }

    /// Crash: lose everything that never reached the disk. In-flight
    /// flushes are conservatively treated as failed (their completion
    /// event dies with the crash).
    pub fn crash(&mut self) {
        self.records.truncate(self.durable);
        self.flushing = self.durable;
    }

    /// Counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ItemId;
    use rand::SeedableRng;

    fn rec(seq: u64) -> CommitRecord {
        CommitRecord {
            txn: TxnId { client: 0, seq },
            writes: vec![WriteOp {
                item: ItemId(1),
                value: seq as i64,
                version: seq,
            }],
            kind: WalKind::Commit,
        }
    }

    fn wal() -> (Wal, StdRng) {
        (
            Wal::new(Rc::new(RefCell::new(Disk::paper_default()))),
            StdRng::seed_from_u64(3),
        )
    }

    #[test]
    fn append_then_flush_then_durable() {
        let (mut w, mut rng) = wal();
        let lsn = w.append(rec(1));
        assert_eq!(lsn, 0);
        assert!(!w.is_durable(lsn));
        let (done, covered) = w.flush(SimTime::ZERO, &mut rng).expect("flush starts");
        assert!(done > SimTime::ZERO);
        assert_eq!(covered, 1);
        w.mark_durable(covered);
        assert!(w.is_durable(lsn));
        assert_eq!(w.durable_records().len(), 1);
    }

    #[test]
    fn group_commit_batches_pending_records() {
        let (mut w, mut rng) = wal();
        for i in 0..5 {
            w.append(rec(i));
        }
        let (_, covered) = w.flush(SimTime::ZERO, &mut rng).expect("flush starts");
        assert_eq!(covered, 5);
        assert_eq!(w.stats().flushes, 1);
        assert_eq!(w.stats().flushed_records, 5);
        // Nothing new: no second flush.
        assert!(w.flush(SimTime::ZERO, &mut rng).is_none());
    }

    #[test]
    fn crash_drops_unflushed_tail() {
        let (mut w, mut rng) = wal();
        w.append(rec(1));
        let (_, covered) = w.flush(SimTime::ZERO, &mut rng).expect("flush");
        w.mark_durable(covered);
        w.append(rec(2));
        w.append(rec(3));
        // Start a flush but crash before completion: records 2, 3 are gone.
        let _ = w.flush(SimTime::from_millis(1), &mut rng);
        w.crash();
        assert_eq!(w.durable_records().len(), 1);
        assert_eq!(w.end_lsn(), 1);
        // New appends continue after the truncation point.
        let lsn = w.append(rec(4));
        assert_eq!(lsn, 1);
    }

    #[test]
    fn concurrent_flushes_cover_disjoint_ranges() {
        let (mut w, mut rng) = wal();
        w.append(rec(1));
        let (_, c1) = w.flush(SimTime::ZERO, &mut rng).expect("first");
        w.append(rec(2));
        let (_, c2) = w.flush(SimTime::ZERO, &mut rng).expect("second");
        assert_eq!((c1, c2), (1, 2));
        w.mark_durable(c2);
        // Out-of-order completion of the first flush must not regress.
        w.mark_durable(c1);
        assert_eq!(w.durable_lsn(), 2);
    }
}
