//! Core identifiers and values of the local database engine.

use std::fmt;

/// A data item (the paper's database is a set of 10 000 items).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

impl ItemId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Globally unique transaction identity: submitting client plus a
/// client-local sequence number. Survives resubmissions (the dedup key of
/// testable transactions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId {
    /// The client that created the transaction.
    pub client: u32,
    /// Client-local sequence number.
    pub seq: u64,
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.client, self.seq)
    }
}

/// A stored value.
pub type Value = i64;

/// Committed version of an item. The database state machine uses the
/// global delivery sequence number (identical at every replica); the lazy
/// technique uses origin timestamps (Thomas write rule).
pub type Version = u64;

/// One operation of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Read the item.
    Read(ItemId),
    /// Overwrite the item with a value derived from the payload.
    Write(ItemId, Value),
}

impl Operation {
    /// The item this operation touches.
    pub fn item(self) -> ItemId {
        match self {
            Operation::Read(i) | Operation::Write(i, _) => i,
        }
    }

    /// True for writes.
    pub fn is_write(self) -> bool {
        matches!(self, Operation::Write(..))
    }
}

/// The state of an item: current committed value and version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ItemState {
    /// Committed value.
    pub value: Value,
    /// Version of the last committed writer.
    pub version: Version,
}

/// A write carried by a commit record or a replication message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOp {
    /// Target item.
    pub item: ItemId,
    /// New value.
    pub value: Value,
    /// Version assigned to the write.
    pub version: Version,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operation_accessors() {
        let r = Operation::Read(ItemId(3));
        let w = Operation::Write(ItemId(4), 9);
        assert_eq!(r.item(), ItemId(3));
        assert_eq!(w.item(), ItemId(4));
        assert!(!r.is_write());
        assert!(w.is_write());
    }

    #[test]
    fn txn_ids_order_by_client_then_seq() {
        let a = TxnId { client: 0, seq: 9 };
        let b = TxnId { client: 1, seq: 1 };
        assert!(a < b);
        assert_eq!(a.to_string(), "t0.9");
    }
}
