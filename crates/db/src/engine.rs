//! The local database engine: executes operations with simulated timing,
//! enforces ACID locally, and recovers from its WAL after crashes.
//!
//! The engine is passive: methods take the current instant and return
//! completion instants computed against the server's shared resources
//! (CPU, log disk, data disk); the owning server actor schedules its
//! continuations at those instants. State changes are applied eagerly at
//! call time (the standard simulator simplification; the interleaving
//! semantics are governed by the caller's concurrency control).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use rand::rngs::StdRng;

use groupsafe_sim::{Disk, Fcfs, SimDuration, SimTime};

use crate::buffer::{BufferModel, BufferPool};
use crate::lock::{LockManager, LockMode, LockOutcome};
use crate::types::{ItemId, ItemState, TxnId, Value, Version, WriteOp};
use crate::wal::{CommitRecord, FlushPolicy, Lsn, Wal, WalKind};

/// Engine configuration (defaults follow Table 4).
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Number of items in the database (Table 4: 10 000).
    pub n_items: u32,
    /// CPU time per disk I/O (Table 4: 0.4 ms).
    pub cpu_per_io: SimDuration,
    /// CPU time per logical operation served from the buffer.
    pub cpu_per_op: SimDuration,
    /// Buffer model (Table 4: probabilistic, 20 % hits).
    pub buffer: BufferModel,
    /// WAL flush policy (chosen by the replication technique's safety
    /// level: sync for 1-safe/group-1-safe, async for group-safe).
    pub flush_policy: FlushPolicy,
    /// Target retained versions per item in the multi-version store
    /// backing snapshot reads (0 disables version retention — the
    /// engine then keeps only the committed head, the seed behavior).
    /// Versions below the pruning watermark are dropped down to the
    /// newest one at or below it, so a snapshot at the watermark stays
    /// servable. The cap only trims entries strictly *below* that
    /// floor: retention is effectively `max(watermark need, depth cap)`,
    /// so a burst of writes under a lagging watermark grows the chain
    /// past the cap instead of evicting a still-pinned floor (which
    /// would force spurious snapshot-too-old aborts).
    pub mvcc_depth: usize,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            n_items: 10_000,
            cpu_per_io: SimDuration::from_micros(400),
            cpu_per_op: SimDuration::from_micros(50),
            buffer: BufferModel::Probabilistic { hit_ratio: 0.2 },
            flush_policy: FlushPolicy::Sync,
            mvcc_depth: 0,
        }
    }
}

/// Engine counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DbStats {
    /// Read operations served.
    pub reads: u64,
    /// Reads that went to the data disk.
    pub read_misses: u64,
    /// Transactions committed (first time).
    pub commits: u64,
    /// Duplicate commit attempts suppressed (testable transactions).
    pub duplicate_commits: u64,
    /// Background page-flush batches.
    pub page_flushes: u64,
}

/// Result of a read: when it completes and what it saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadResult {
    /// Completion instant (CPU + optional disk).
    pub done: SimTime,
    /// The committed value observed.
    pub value: Value,
    /// The committed version observed (certification input).
    pub version: Version,
}

/// Result of a commit application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitResult {
    /// Instant at which the commit is processed (and, under the sync
    /// policy, durable).
    pub done: SimTime,
    /// If a flush was started, the host must call
    /// [`DbEngine::wal_mark_durable`] with this LSN at `flush_done`.
    pub flush: Option<(SimTime, Lsn)>,
    /// The commit was a duplicate (already committed — testable
    /// transactions make this a no-op).
    pub duplicate: bool,
}

/// The local database engine.
pub struct DbEngine {
    config: DbConfig,
    cpu: Rc<RefCell<Fcfs>>,
    data_disk: Rc<RefCell<Disk>>,
    rng: StdRng,

    // Volatile (rebuilt by redo on recovery).
    items: Vec<ItemState>,
    committed: BTreeSet<TxnId>,
    buffer: BufferPool,
    locks: LockManager,
    dirty_pages: usize,
    stats: DbStats,
    /// Items reserved by in-flight cross-group transactions between their
    /// certification vote and the coordinator's decision (item →
    /// (holder, coordinator node)). Certification state, like
    /// `committed`: it travels with checkpoints so a state-transferred
    /// joiner reaches the same verdicts as its peers, and under the
    /// logging safety levels it is additionally WAL-durable
    /// ([`WalKind::Reserve`]/[`WalKind::Release`]) so crash recovery
    /// redoes it; it is *not* part of [`DbEngine::state_digest`] (a
    /// quiesced system has released every reservation).
    reservations: BTreeMap<ItemId, (TxnId, u32)>,
    /// Bounded multi-version store backing snapshot reads: per item
    /// (indexed by [`ItemId::index`], mirroring `items`), the retained
    /// `(version, state)` chain as a contiguous vector in ascending
    /// version order (versions are delivery sequence numbers under the
    /// DSM technique), so snapshot lookups binary-search instead of
    /// walking a tree. Populated only when `config.mvcc_depth > 0`;
    /// pruned at the group-stable watermark by
    /// [`DbEngine::prune_versions`].
    history: Vec<Vec<(Version, ItemState)>>,
    /// Newest group-stable watermark seen by [`DbEngine::prune_versions`]:
    /// the depth cap may only trim chain entries strictly below the
    /// snapshot floor this watermark pins.
    stable_floor: Version,
    /// Entries the depth cap trimmed (always already below the pruning
    /// floor — the floor itself is pinned until the watermark passes it).
    mvcc_evictions: u64,

    // Stable.
    wal: Wal,
}

/// A full application checkpoint (state transfer payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbCheckpoint {
    /// All item states.
    pub items: Vec<ItemState>,
    /// Committed transaction ids (testable-transaction table).
    pub committed: BTreeSet<TxnId>,
    /// In-flight cross-group reservations (item → (holder, coordinator)).
    pub reservations: BTreeMap<ItemId, (TxnId, u32)>,
}

impl DbEngine {
    /// Create an engine over the given shared resources.
    pub fn new(
        config: DbConfig,
        cpu: Rc<RefCell<Fcfs>>,
        log_disk: Rc<RefCell<Disk>>,
        data_disk: Rc<RefCell<Disk>>,
        rng: StdRng,
    ) -> Self {
        let buffer = BufferPool::new(config.buffer.clone());
        DbEngine {
            items: vec![ItemState::default(); config.n_items as usize],
            committed: BTreeSet::new(),
            buffer,
            locks: LockManager::new(),
            dirty_pages: 0,
            stats: DbStats::default(),
            reservations: BTreeMap::new(),
            history: vec![Vec::new(); config.n_items as usize],
            stable_floor: 0,
            mvcc_evictions: 0,
            wal: Wal::new(log_disk),
            config,
            cpu,
            data_disk,
            rng,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// Counters.
    pub fn stats(&self) -> DbStats {
        self.stats
    }

    /// Current committed state of `item`.
    pub fn item(&self, item: ItemId) -> ItemState {
        self.items[item.index()]
    }

    /// True if `txn` already committed here (testable transactions).
    pub fn is_committed(&self, txn: TxnId) -> bool {
        self.committed.contains(&txn)
    }

    /// Number of committed transactions.
    pub fn committed_count(&self) -> usize {
        self.committed.len()
    }

    /// The set of committed transaction ids.
    pub fn committed_txns(&self) -> &BTreeSet<TxnId> {
        &self.committed
    }

    /// The lock manager (2PL paths: local execution, lazy technique).
    pub fn locks(&mut self) -> &mut LockManager {
        &mut self.locks
    }

    /// The first of `items` reserved by a transaction other than `txn`
    /// (a cross-group transaction between its certification vote and its
    /// coordinator's decision), if any. Re-certifying the holder itself
    /// is not a conflict — a client retry of the same transaction
    /// re-prepares.
    pub fn reserved_conflict(
        &self,
        txn: TxnId,
        items: impl IntoIterator<Item = ItemId>,
    ) -> Option<ItemId> {
        items
            .into_iter()
            .find(|i| self.reservations.get(i).is_some_and(|&(t, _)| t != txn))
    }

    /// Reserve `items` for `txn`, decided by `coordinator` (certify-
    /// then-block phase of a cross-group commit). The caller must have
    /// checked [`DbEngine::reserved_conflict`] first; re-reserving for
    /// the same holder is idempotent.
    pub fn reserve(
        &mut self,
        txn: TxnId,
        coordinator: u32,
        items: impl IntoIterator<Item = ItemId>,
    ) {
        for i in items {
            self.reservations.insert(i, (txn, coordinator));
        }
    }

    /// Drop every reservation held by `txn` (the coordinator's decision
    /// arrived — commit or abort). Idempotent.
    pub fn release(&mut self, txn: TxnId) {
        self.reservations.retain(|_, &mut (t, _)| t != txn);
    }

    /// Number of items currently reserved (inspection/test helper).
    pub fn reserved_count(&self) -> usize {
        self.reservations.len()
    }

    /// True if `txn` currently reserves any item (cheap hot-path check;
    /// see [`DbEngine::reservation_holders`] for the full listing).
    pub fn holds_reservation(&self, txn: TxnId) -> bool {
        self.reservations.values().any(|&(t, _)| t == txn)
    }

    /// The distinct `(transaction, coordinator)` pairs currently holding
    /// reservations — what a recovered replica must resume probing for.
    pub fn reservation_holders(&self) -> Vec<(TxnId, u32)> {
        let mut out: Vec<(TxnId, u32)> = self.reservations.values().copied().collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Drop every reservation (operator restart after a total group
    /// failure: the in-flight cross-group transactions died with the
    /// coordinator history and will be resubmitted by their clients).
    pub fn clear_reservations(&mut self) {
        self.reservations.clear();
    }

    /// Apply `txn`'s reservation of `items` and append the WAL record
    /// that redoes it (the logging safety levels' cross-group prepare:
    /// the end-to-end `ack(m)` must wait for the record's durability,
    /// else a crash would silently unwind this replica's certification
    /// state while its peers keep theirs). The record rides the normal
    /// background group-commit flush — nothing in the protocol waits on
    /// it except the ack. Returns the record's LSN.
    pub fn reserve_logged(&mut self, txn: TxnId, coordinator: u32, items: Vec<ItemId>) -> Lsn {
        self.reserve(txn, coordinator, items.iter().copied());
        self.wal.append(CommitRecord {
            txn,
            writes: Vec::new(),
            kind: WalKind::Reserve { items, coordinator },
        })
    }

    /// Release `txn`'s reservations and append the WAL record that
    /// redoes it (a cross-group abort under a logging level). Returns
    /// the record's LSN.
    pub fn release_logged(&mut self, txn: TxnId) -> Lsn {
        self.release(txn);
        self.wal.append(CommitRecord {
            txn,
            writes: Vec::new(),
            kind: WalKind::Release,
        })
    }

    /// Read `item` at `now`: returns value, version and completion time
    /// (buffer hit: CPU only; miss: CPU + data-disk access, plus a
    /// write-back if a dirty page was evicted).
    pub fn read(&mut self, now: SimTime, item: ItemId) -> ReadResult {
        self.stats.reads += 1;
        let access = self.buffer.access(item, &mut self.rng);
        let done = if access.hit {
            self.cpu.borrow_mut().request(now, self.config.cpu_per_op)
        } else {
            self.stats.read_misses += 1;
            let cpu_done = self.cpu.borrow_mut().request(now, self.config.cpu_per_io);
            let mut disk = self.data_disk.borrow_mut();
            let mut t = cpu_done;
            if access.writeback {
                t = disk.access(t, &mut self.rng);
            }
            disk.access(t, &mut self.rng)
        };
        let s = self.items[item.index()];
        ReadResult {
            done,
            value: s.value,
            version: s.version,
        }
    }

    /// Read `item` at `now` from the snapshot at or below version
    /// `limit`: same simulated timing as [`DbEngine::read`], but the
    /// value and version come from the multi-version store ([`DbConfig::
    /// mvcc_depth`]). With `limit == u64::MAX` (or the store disabled)
    /// this is exactly a committed-head read.
    pub fn read_versioned(&mut self, now: SimTime, item: ItemId, limit: Version) -> ReadResult {
        let head = self.read(now, item);
        if limit == Version::MAX || self.config.mvcc_depth == 0 || head.version <= limit {
            return head;
        }
        let s = self.version_at(item, limit);
        ReadResult {
            done: head.done,
            value: s.value,
            version: s.version,
        }
    }

    /// The state of `item` in the snapshot at or below version `limit`:
    /// the newest retained version `≤ limit`, the never-written default
    /// when the item has no retained version that old, or — for a
    /// snapshot below everything retained — the oldest version still
    /// retained (bounded-staleness fallback).
    pub fn version_at(&self, item: ItemId, limit: Version) -> ItemState {
        let head = self.items[item.index()];
        if head.version <= limit {
            return head;
        }
        let chain = &self.history[item.index()];
        if chain.is_empty() {
            // No retained history (store disabled or item chain pruned
            // to the head): the head is all we have.
            return head;
        }
        // Chains are version-sorted: binary-search the newest `≤ limit`.
        let above = chain.partition_point(|&(v, _)| v <= limit);
        if above > 0 {
            return chain[above - 1].1;
        }
        if chain[0].0 > 0 {
            // The snapshot predates everything retained: serve the
            // oldest retained version (bounded-staleness fallback).
            return chain[0].1;
        }
        ItemState::default()
    }

    /// Drop retained versions below the newest one at or below `stable`
    /// (the group-stable watermark): snapshots at or above the watermark
    /// stay servable, everything older is unreachable by construction.
    pub fn prune_versions(&mut self, stable: Version) {
        if self.config.mvcc_depth == 0 {
            return;
        }
        self.stable_floor = self.stable_floor.max(stable);
        for chain in &mut self.history {
            // Index of the first version above the watermark; the entry
            // just below it is the floor snapshot and must survive.
            let above = chain.partition_point(|&(v, _)| v <= stable);
            if above > 1 {
                chain.drain(..above - 1);
            }
            // A chain collapsed to the committed head alone carries no
            // information the item table lacks.
            if chain.len() <= 1 {
                chain.clear();
            }
        }
    }

    /// Retained versions across all items (inspection/test helper).
    pub fn mvcc_retained(&self) -> usize {
        self.history.iter().map(|c| c.len()).sum()
    }

    /// Entries the depth cap trimmed below the pruning floor.
    pub fn mvcc_evictions(&self) -> u64 {
        self.mvcc_evictions
    }

    /// Record the committed head of `item` in the version store (called
    /// under every apply path once the item table is updated; `old` is
    /// the state the apply overwrote). A chain starts with the
    /// overwritten state — the never-written default, or the single
    /// consistent snapshot a crash redo / checkpoint install left — so
    /// snapshots below the first retained write stay servable.
    fn retain_version(&mut self, item: ItemId, old: ItemState) {
        if self.config.mvcc_depth == 0 {
            return;
        }
        let state = self.items[item.index()];
        let chain = &mut self.history[item.index()];
        if chain.is_empty() {
            chain.push((old.version, old));
        }
        match chain.last_mut() {
            Some(last @ &mut (v, _)) if v == state.version => *last = (state.version, state),
            Some(&mut (v, _)) if v > state.version => {
                // Out-of-order version (lazy Thomas-rule interleavings):
                // insert in place to keep the chain sorted.
                let pos = chain.partition_point(|&(cv, _)| cv < state.version);
                chain.insert(pos, (state.version, state));
            }
            _ => chain.push((state.version, state)),
        }
        // Over the cap, trim from the front — but only entries strictly
        // below the stable floor (the successor must still be at or
        // below the floor, so the floor snapshot stays servable). Under
        // a lagging watermark the chain grows past the cap instead;
        // `prune_versions` re-bounds it once the watermark advances.
        while chain.len() > self.config.mvcc_depth.max(2)
            && chain.get(1).is_some_and(|&(v, _)| v <= self.stable_floor)
        {
            chain.remove(0);
            self.mvcc_evictions += 1;
        }
    }

    /// Reset the version store after a crash redo or checkpoint install:
    /// the surviving state is a single consistent snapshot, so chains of
    /// length one are implied by the item table and nothing needs
    /// retaining until new commits layer versions on top (the next
    /// `retain_version` call seeds each touched chain with the snapshot
    /// state it overwrites).
    fn reseed_versions(&mut self) {
        for chain in &mut self.history {
            chain.clear();
        }
    }

    /// Apply and commit `writes` for `txn` at `now`.
    ///
    /// Exactly-once: a duplicate commit is detected via the committed-
    /// transaction table and applies nothing. Under [`FlushPolicy::Sync`]
    /// the returned `done` includes the log flush (group commit); under
    /// [`FlushPolicy::Async`] the records wait for the next background
    /// flush and `done` only covers the in-memory apply.
    pub fn commit(&mut self, now: SimTime, txn: TxnId, writes: &[WriteOp]) -> CommitResult {
        if !self.committed.insert(txn) {
            self.stats.duplicate_commits += 1;
            return CommitResult {
                done: now,
                flush: None,
                duplicate: true,
            };
        }
        self.stats.commits += 1;
        // Apply to the committed in-memory state and dirty the pages.
        let cpu_time = self.config.cpu_per_op * writes.len().max(1) as u64;
        let cpu_done = self.cpu.borrow_mut().request(now, cpu_time);
        for w in writes {
            let old = self.items[w.item.index()];
            self.items[w.item.index()] = ItemState {
                value: w.value,
                version: w.version,
            };
            self.buffer.mark_dirty(w.item);
            self.retain_version(w.item, old);
        }
        self.dirty_pages += writes.len();
        self.wal.append(CommitRecord {
            txn,
            writes: writes.to_vec(),
            kind: WalKind::Commit,
        });
        match self.config.flush_policy {
            FlushPolicy::Sync => {
                let flush = self.wal.flush(cpu_done, &mut self.rng);
                let done = flush.map(|(d, _)| d).unwrap_or(cpu_done);
                CommitResult {
                    done,
                    flush,
                    duplicate: false,
                }
            }
            FlushPolicy::Async => CommitResult {
                done: cpu_done,
                flush: None,
                duplicate: false,
            },
        }
    }

    /// Apply `writes` only where newer than the current version (Thomas
    /// write rule — the lazy technique's reconciliation-free apply).
    /// Returns the writes actually applied.
    pub fn apply_newer(&mut self, now: SimTime, txn: TxnId, writes: &[WriteOp]) -> CommitResult {
        let newer: Vec<WriteOp> = writes
            .iter()
            .copied()
            .filter(|w| w.version > self.items[w.item.index()].version)
            .collect();
        self.commit(now, txn, &newer)
    }

    /// Background WAL flush (async policy; the host drives it on a timer).
    /// Returns `(completion, covered_lsn)` when a batch was started.
    pub fn flush_wal(&mut self, now: SimTime) -> Option<(SimTime, Lsn)> {
        self.wal.flush(now, &mut self.rng)
    }

    /// Synchronous critical-path WAL flush: unbatched random writes (see
    /// [`Wal::flush_unbatched`]). Used by techniques that must log before
    /// replying (1-safe, group-1-safe, 2-safe).
    pub fn flush_wal_sync(&mut self, now: SimTime) -> Option<(SimTime, Lsn)> {
        self.wal.flush_unbatched(now, &mut self.rng)
    }

    /// Apply `writes` to the in-memory committed state *without logging*
    /// (lazy replication's remote apply: 1-safe durability lives only in
    /// the delegate's log; a crashed remote re-synchronises from peers).
    /// Applies the Thomas write rule and testable-transaction dedup.
    pub fn apply_unlogged(&mut self, now: SimTime, txn: TxnId, writes: &[WriteOp]) -> CommitResult {
        if !self.committed.insert(txn) {
            self.stats.duplicate_commits += 1;
            return CommitResult {
                done: now,
                flush: None,
                duplicate: true,
            };
        }
        self.stats.commits += 1;
        let cpu_time = self.config.cpu_per_op * writes.len().max(1) as u64;
        let cpu_done = self.cpu.borrow_mut().request(now, cpu_time);
        for w in writes {
            let old = self.items[w.item.index()];
            if w.version > old.version {
                self.items[w.item.index()] = ItemState {
                    value: w.value,
                    version: w.version,
                };
                self.buffer.mark_dirty(w.item);
                self.dirty_pages += 1;
                self.retain_version(w.item, old);
            }
        }
        CommitResult {
            done: cpu_done,
            flush: None,
            duplicate: false,
        }
    }

    /// A WAL flush completed: records below `lsn` are durable.
    pub fn wal_mark_durable(&mut self, lsn: Lsn) {
        self.wal.mark_durable(lsn);
    }

    /// LSN after the last appended record.
    pub fn wal_end_lsn(&self) -> Lsn {
        self.wal.end_lsn()
    }

    /// LSN after the last durable record.
    pub fn wal_durable_lsn(&self) -> Lsn {
        self.wal.durable_lsn()
    }

    /// Install `pages` dirty pages synchronously (inside the transaction
    /// boundary — what group-1-safe pays and group-safety avoids, §5.1).
    /// The pages go out as one per-transaction sequential batch and no
    /// longer wait for the background flush.
    pub fn sync_install(&mut self, now: SimTime, pages: usize) -> SimTime {
        if pages == 0 {
            return now;
        }
        let done = self
            .data_disk
            .borrow_mut()
            .sequential_batch(now, pages, &mut self.rng);
        self.dirty_pages = self.dirty_pages.saturating_sub(pages);
        done
    }

    /// Background data-page flush: write all dirtied pages as one
    /// sequential batch (write caching — what group-safety permits).
    /// Returns the completion instant if anything was dirty.
    pub fn flush_pages(&mut self, now: SimTime) -> Option<SimTime> {
        if self.dirty_pages == 0 {
            return None;
        }
        self.stats.page_flushes += 1;
        let done =
            self.data_disk
                .borrow_mut()
                .sequential_batch(now, self.dirty_pages, &mut self.rng);
        self.dirty_pages = 0;
        self.buffer.flush_all();
        Some(done)
    }

    /// Take a checkpoint of the committed state (state-transfer payload).
    pub fn checkpoint(&self) -> DbCheckpoint {
        DbCheckpoint {
            items: self.items.clone(),
            committed: self.committed.clone(),
            reservations: self.reservations.clone(),
        }
    }

    /// Replace the committed state with `ckpt` (joining replica).
    pub fn install_checkpoint(&mut self, ckpt: DbCheckpoint) {
        assert_eq!(
            ckpt.items.len(),
            self.items.len(),
            "checkpoint shape mismatch"
        );
        self.items = ckpt.items;
        self.committed = ckpt.committed;
        self.reservations = ckpt.reservations;
        // The checkpointed state is authoritative; local WAL history no
        // longer matters for redo (a real system would reset the log).
        self.wal.crash();
        self.dirty_pages = 0;
        self.reseed_versions();
    }

    /// Crash: volatile state is lost; rebuild the committed state by
    /// redoing the durable WAL prefix.
    pub fn crash(&mut self) {
        self.wal.crash();
        self.buffer.clear();
        self.locks.clear();
        self.reservations.clear();
        self.dirty_pages = 0;
        self.items = vec![ItemState::default(); self.config.n_items as usize];
        self.committed.clear();
        // Redo, in LSN (= processing) order: commits apply writes and
        // drop the transaction's reservations; reserve/release records
        // rebuild the reservation table exactly as the pre-crash
        // processing left its durable prefix.
        let mut reservations = BTreeMap::new();
        for rec in self.wal.durable_records() {
            match &rec.kind {
                WalKind::Commit => {
                    for w in &rec.writes {
                        self.items[w.item.index()] = ItemState {
                            value: w.value,
                            version: w.version,
                        };
                    }
                    self.committed.insert(rec.txn);
                    reservations.retain(|_, &mut (t, _): &mut (TxnId, u32)| t != rec.txn);
                }
                WalKind::Reserve { items, coordinator } => {
                    for &i in items {
                        reservations.insert(i, (rec.txn, *coordinator));
                    }
                }
                WalKind::Release => {
                    reservations.retain(|_, &mut (t, _)| t != rec.txn);
                }
            }
        }
        self.reservations = reservations;
        self.reseed_versions();
    }

    /// Highest committed version in the database (the sequence-number
    /// watermark used when restarting a group after total failure).
    pub fn max_version(&self) -> Version {
        self.items.iter().map(|s| s.version).max().unwrap_or(0)
    }

    /// FNV-1a digest of the committed state (replica-consistency checks).
    pub fn state_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        };
        for (i, s) in self.items.iter().enumerate() {
            if s.version != 0 {
                mix(i as u64);
                mix(s.value as u64);
                mix(s.version);
            }
        }
        h
    }

    /// Convenience for tests: acquire a lock.
    pub fn lock(&mut self, txn: TxnId, item: ItemId, mode: LockMode) -> LockOutcome {
        self.locks.acquire(txn, item, mode)
    }

    /// Convenience for tests: release a transaction's locks.
    pub fn unlock_all(&mut self, txn: TxnId) -> Vec<(TxnId, ItemId)> {
        self.locks.release_all(txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn engine(policy: FlushPolicy) -> DbEngine {
        let cfg = DbConfig {
            n_items: 100,
            flush_policy: policy,
            ..DbConfig::default()
        };
        DbEngine::new(
            cfg,
            Rc::new(RefCell::new(Fcfs::new(2))),
            Rc::new(RefCell::new(Disk::paper_default())),
            Rc::new(RefCell::new(Disk::paper_default())),
            StdRng::seed_from_u64(7),
        )
    }

    fn t(seq: u64) -> TxnId {
        TxnId { client: 0, seq }
    }

    fn w(item: u32, value: i64, version: u64) -> WriteOp {
        WriteOp {
            item: ItemId(item),
            value,
            version,
        }
    }

    #[test]
    fn read_timing_hit_vs_miss() {
        let mut e = engine(FlushPolicy::Sync);
        let mut hits = 0;
        let mut misses = 0;
        for i in 0..200u32 {
            let r = e.read(SimTime::from_secs(i as u64), ItemId(i % 100));
            let elapsed = r.done - SimTime::from_secs(i as u64);
            if elapsed < SimDuration::from_millis(1) {
                hits += 1;
            } else {
                assert!(elapsed >= SimDuration::from_millis(4));
                misses += 1;
            }
        }
        assert!(hits > 10, "some hits expected, got {hits}");
        assert!(misses > 100, "80% misses expected, got {misses}");
        assert_eq!(e.stats().reads, 200);
        assert_eq!(e.stats().read_misses, misses);
    }

    #[test]
    fn commit_applies_and_sync_flushes() {
        let mut e = engine(FlushPolicy::Sync);
        let res = e.commit(SimTime::ZERO, t(1), &[w(5, 42, 1)]);
        assert!(!res.duplicate);
        let (flush_done, lsn) = res.flush.expect("sync commit flushes");
        assert_eq!(res.done, flush_done);
        assert!(flush_done >= SimTime::from_millis(4), "log write ≈ 8 ms");
        e.wal_mark_durable(lsn);
        assert_eq!(
            e.item(ItemId(5)),
            ItemState {
                value: 42,
                version: 1
            }
        );
        assert!(e.is_committed(t(1)));
        assert_eq!(e.wal_durable_lsn(), 1);
    }

    #[test]
    fn async_commit_returns_fast_and_flushes_later() {
        let mut e = engine(FlushPolicy::Async);
        let res = e.commit(SimTime::ZERO, t(1), &[w(5, 42, 1)]);
        assert!(res.flush.is_none());
        assert!(res.done < SimTime::from_millis(1), "no disk wait");
        let (done, lsn) = e
            .flush_wal(SimTime::from_millis(10))
            .expect("background flush");
        assert!(done > SimTime::from_millis(10));
        e.wal_mark_durable(lsn);
        assert!(e.wal_durable_lsn() == 1);
    }

    #[test]
    fn duplicate_commit_is_noop() {
        let mut e = engine(FlushPolicy::Sync);
        e.commit(SimTime::ZERO, t(1), &[w(5, 42, 1)]);
        let res = e.commit(SimTime::from_millis(50), t(1), &[w(5, 99, 2)]);
        assert!(res.duplicate);
        assert_eq!(e.item(ItemId(5)).value, 42, "duplicate must not re-apply");
        assert_eq!(e.stats().duplicate_commits, 1);
    }

    #[test]
    fn crash_recovers_durable_prefix_only() {
        let mut e = engine(FlushPolicy::Sync);
        let r1 = e.commit(SimTime::ZERO, t(1), &[w(1, 10, 1)]);
        e.wal_mark_durable(r1.flush.expect("sync").1);
        // Second commit: appended, flush started, but the completion event
        // never fires (we never call wal_mark_durable).
        e.commit(SimTime::from_millis(20), t(2), &[w(2, 20, 2)]);
        // t(2)'s flush was started by the sync policy but never completed
        // (no mark_durable call) — the crash drops it.
        e.crash();
        assert_eq!(e.item(ItemId(1)).value, 10, "durable commit survived");
        assert_eq!(e.item(ItemId(2)).value, 0, "unflushed commit lost");
        assert!(e.is_committed(t(1)));
        assert!(!e.is_committed(t(2)));
    }

    #[test]
    fn thomas_write_rule_skips_stale() {
        let mut e = engine(FlushPolicy::Async);
        e.commit(SimTime::ZERO, t(1), &[w(1, 10, 5)]);
        e.apply_newer(SimTime::from_millis(1), t(2), &[w(1, 99, 3)]);
        assert_eq!(e.item(ItemId(1)).value, 10, "stale write skipped");
        e.apply_newer(SimTime::from_millis(2), t(3), &[w(1, 77, 9)]);
        assert_eq!(e.item(ItemId(1)).value, 77, "newer write applied");
    }

    #[test]
    fn checkpoint_round_trip() {
        let mut e = engine(FlushPolicy::Async);
        e.commit(SimTime::ZERO, t(1), &[w(1, 10, 1), w(2, 20, 1)]);
        let ckpt = e.checkpoint();
        let mut other = engine(FlushPolicy::Async);
        other.install_checkpoint(ckpt);
        assert_eq!(other.item(ItemId(2)).value, 20);
        assert!(other.is_committed(t(1)));
        assert_eq!(e.state_digest(), other.state_digest());
    }

    #[test]
    fn page_flush_batches_dirty_pages() {
        let mut e = engine(FlushPolicy::Async);
        e.commit(SimTime::ZERO, t(1), &[w(1, 1, 1), w(2, 2, 1), w(3, 3, 1)]);
        let done = e.flush_pages(SimTime::from_millis(5)).expect("dirty pages");
        assert!(done > SimTime::from_millis(5));
        assert!(
            e.flush_pages(SimTime::from_millis(50)).is_none(),
            "clean now"
        );
        assert_eq!(e.stats().page_flushes, 1);
    }

    fn mvcc_engine(depth: usize) -> DbEngine {
        let cfg = DbConfig {
            n_items: 100,
            flush_policy: FlushPolicy::Async,
            mvcc_depth: depth,
            ..DbConfig::default()
        };
        DbEngine::new(
            cfg,
            Rc::new(RefCell::new(Fcfs::new(2))),
            Rc::new(RefCell::new(Disk::paper_default())),
            Rc::new(RefCell::new(Disk::paper_default())),
            StdRng::seed_from_u64(9),
        )
    }

    #[test]
    fn snapshot_reads_observe_older_versions() {
        let mut e = mvcc_engine(8);
        e.commit(SimTime::ZERO, t(1), &[w(3, 10, 2)]);
        e.commit(SimTime::ZERO, t(2), &[w(3, 20, 5)]);
        e.commit(SimTime::ZERO, t(3), &[w(3, 30, 9)]);
        // Head read.
        assert_eq!(e.version_at(ItemId(3), Version::MAX).value, 30);
        // Snapshots between versions resolve to the newest at-or-below.
        assert_eq!(e.version_at(ItemId(3), 9).value, 30);
        assert_eq!(e.version_at(ItemId(3), 8).value, 20);
        assert_eq!(e.version_at(ItemId(3), 4).value, 10);
        // Before the first write: the never-written default.
        assert_eq!(e.version_at(ItemId(3), 1).version, 0);
        // An untouched item serves the default at any snapshot.
        assert_eq!(e.version_at(ItemId(7), 3).version, 0);
        let r = e.read_versioned(SimTime::from_secs(1), ItemId(3), 8);
        assert_eq!((r.value, r.version), (20, 5));
    }

    #[test]
    fn pruning_keeps_the_snapshot_floor() {
        let mut e = mvcc_engine(8);
        for (i, seq) in [2u64, 5, 9, 12].iter().enumerate() {
            e.commit(
                SimTime::ZERO,
                t(i as u64 + 1),
                &[w(3, 10 * (i as i64 + 1), *seq)],
            );
        }
        e.prune_versions(9);
        // The floor (seq 9) and everything above survive...
        assert_eq!(e.version_at(ItemId(3), 9).value, 30);
        assert_eq!(e.version_at(ItemId(3), 11).value, 30);
        assert_eq!(e.version_at(ItemId(3), 12).value, 40);
        // ...and the watermark bounds retention.
        assert!(e.mvcc_retained() <= 2, "retained {}", e.mvcc_retained());
        // Pruning at the head collapses the chain entirely.
        e.prune_versions(12);
        assert_eq!(e.mvcc_retained(), 0);
        assert_eq!(e.version_at(ItemId(3), 12).value, 40);
    }

    #[test]
    fn depth_cap_defers_to_the_watermark() {
        let mut e = mvcc_engine(4);
        // A write burst with the watermark still at zero: nothing is
        // below the floor, so the cap must not evict anything and every
        // snapshot stays exactly servable.
        for seq in 1..=20u64 {
            e.commit(SimTime::ZERO, t(seq), &[w(1, seq as i64, seq)]);
        }
        assert_eq!(e.mvcc_evictions(), 0);
        for seq in 1..=20u64 {
            let s = e.version_at(ItemId(1), seq);
            assert_eq!((s.version, s.value), (seq, seq as i64));
        }
        // Once the watermark advances, pruning re-bounds the chain and
        // the floor snapshot is still exact.
        e.prune_versions(18);
        assert!(e.mvcc_retained() <= 4, "retained {}", e.mvcc_retained());
        assert_eq!(e.version_at(ItemId(1), 18).version, 18);
        // Below the new floor, snapshots degrade to the oldest retained
        // version (bounded-staleness fallback) instead of fabricating
        // the default.
        let oldest = e.version_at(ItemId(1), 1);
        assert_eq!(oldest.version, 18, "oldest retained {oldest:?}");
    }

    #[test]
    fn hot_key_under_lagging_watermark_keeps_its_floor() {
        let mut e = mvcc_engine(4);
        e.commit(SimTime::ZERO, t(1), &[w(1, 10, 3)]);
        // The group-stable watermark reaches 3, then stalls (e.g. a
        // lagging replica holds back group-stability)...
        e.prune_versions(3);
        // ...while a burst of writes on the same hot key runs far past
        // the depth cap.
        for seq in 4..=30u64 {
            e.commit(SimTime::ZERO, t(seq), &[w(1, seq as i64 * 10, seq)]);
        }
        // The pinned floor is still *exactly* servable — the cap did
        // not evict it out from under the watermark, so a follower
        // snapshot read at the watermark cannot spuriously abort.
        let floor = e.version_at(ItemId(1), 3);
        assert_eq!((floor.version, floor.value), (3, 10));
        let r = e.read_versioned(SimTime::from_secs(1), ItemId(1), 3);
        assert_eq!((r.version, r.value), (3, 10));
        // Intermediate snapshots above the floor are exact too.
        assert_eq!(e.version_at(ItemId(1), 17).version, 17);
        assert_eq!(e.mvcc_evictions(), 0);
        // The watermark catches up: pruning re-bounds the hot chain.
        e.prune_versions(28);
        assert!(e.mvcc_retained() <= 4, "retained {}", e.mvcc_retained());
        assert_eq!(e.version_at(ItemId(1), 28).version, 28);
        assert_eq!(e.version_at(ItemId(1), 30).version, 30);
    }

    #[test]
    fn mvcc_disabled_retains_nothing() {
        let mut e = mvcc_engine(0);
        e.commit(SimTime::ZERO, t(1), &[w(1, 10, 2)]);
        e.commit(SimTime::ZERO, t(2), &[w(1, 20, 5)]);
        assert_eq!(e.mvcc_retained(), 0);
        // version_at degrades to the committed head.
        assert_eq!(e.version_at(ItemId(1), 3).value, 20);
    }

    #[test]
    fn crash_and_checkpoint_reseed_versions() {
        let mut e = mvcc_engine(8);
        let r1 = e.commit(SimTime::ZERO, t(1), &[w(1, 10, 2)]);
        assert!(r1.flush.is_none(), "async policy");
        e.commit(SimTime::ZERO, t(2), &[w(1, 20, 5)]);
        let ckpt = e.checkpoint();
        let mut other = mvcc_engine(8);
        other.install_checkpoint(ckpt);
        // The transferred state is one consistent snapshot: history
        // before it is unreachable, the head is served at any limit.
        assert_eq!(other.mvcc_retained(), 0);
        assert_eq!(other.version_at(ItemId(1), 5).value, 20);
        other.commit(SimTime::ZERO, t(3), &[w(1, 30, 9)]);
        assert_eq!(other.version_at(ItemId(1), 5).value, 20);
        assert_eq!(other.version_at(ItemId(1), 9).value, 30);
    }

    #[test]
    fn digests_differ_on_divergence() {
        let mut a = engine(FlushPolicy::Async);
        let mut b = engine(FlushPolicy::Async);
        a.commit(SimTime::ZERO, t(1), &[w(1, 10, 1)]);
        b.commit(SimTime::ZERO, t(1), &[w(1, 11, 1)]);
        assert_ne!(a.state_digest(), b.state_digest());
    }
}
