//! Buffer pool models.
//!
//! The paper's simulator fixes the buffer hit ratio at 20 % (Table 4), so
//! the default model is probabilistic. A real LRU page cache is also
//! provided for ablations (the hit ratio then emerges from the access
//! pattern instead of being assumed).

use rand::rngs::StdRng;
use rand::Rng;

use crate::types::ItemId;

/// Items per page (the LRU model caches pages, not items).
pub const ITEMS_PER_PAGE: u32 = 10;

/// Which buffer model to use.
#[derive(Debug, Clone)]
pub enum BufferModel {
    /// Each access hits with fixed probability (Table 4: 0.2).
    Probabilistic {
        /// Hit probability in `[0, 1]`.
        hit_ratio: f64,
    },
    /// True LRU over pages with the given capacity (in pages).
    Lru {
        /// Number of pages the pool can hold.
        capacity: usize,
    },
}

/// Buffer pool access statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct BufferStats {
    /// Accesses that hit the pool.
    pub hits: u64,
    /// Accesses that missed (require a disk read).
    pub misses: u64,
    /// Dirty pages evicted (require a write-back before the read).
    pub dirty_evictions: u64,
}

impl BufferStats {
    /// Observed hit ratio (0.0 when no accesses yet).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// Outcome of a buffer access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferAccess {
    /// The page was already cached.
    pub hit: bool,
    /// A dirty page must be written back before the read can proceed.
    pub writeback: bool,
}

/// The buffer pool.
#[derive(Debug, Clone)]
pub struct BufferPool {
    model: BufferModel,
    /// LRU state: pages in recency order (front = LRU victim).
    lru: Vec<u32>,
    dirty: Vec<bool>,
    stats: BufferStats,
}

impl BufferPool {
    /// Create a pool with the given model.
    pub fn new(model: BufferModel) -> Self {
        if let BufferModel::Probabilistic { hit_ratio } = &model {
            assert!(
                (0.0..=1.0).contains(hit_ratio),
                "hit ratio out of range: {hit_ratio}"
            );
        }
        BufferPool {
            model,
            lru: Vec::new(),
            dirty: Vec::new(),
            stats: BufferStats::default(),
        }
    }

    /// The paper's default: 20 % hit ratio.
    pub fn paper_default() -> Self {
        BufferPool::new(BufferModel::Probabilistic { hit_ratio: 0.2 })
    }

    fn page_of(item: ItemId) -> u32 {
        item.0 / ITEMS_PER_PAGE
    }

    /// Access `item` for reading. Returns whether it hit and whether a
    /// dirty write-back precedes the fill.
    pub fn access(&mut self, item: ItemId, rng: &mut StdRng) -> BufferAccess {
        match &self.model {
            BufferModel::Probabilistic { hit_ratio } => {
                let hit = rng.random_bool(*hit_ratio);
                if hit {
                    self.stats.hits += 1;
                } else {
                    self.stats.misses += 1;
                }
                BufferAccess {
                    hit,
                    writeback: false,
                }
            }
            BufferModel::Lru { capacity } => {
                let capacity = *capacity;
                let page = Self::page_of(item);
                if let Some(pos) = self.lru.iter().position(|&p| p == page) {
                    // Move to MRU position.
                    self.lru.remove(pos);
                    let d = self.dirty.remove(pos);
                    self.lru.push(page);
                    self.dirty.push(d);
                    self.stats.hits += 1;
                    return BufferAccess {
                        hit: true,
                        writeback: false,
                    };
                }
                self.stats.misses += 1;
                let mut writeback = false;
                if self.lru.len() >= capacity && capacity > 0 {
                    // Evict the LRU page.
                    self.lru.remove(0);
                    if self.dirty.remove(0) {
                        self.stats.dirty_evictions += 1;
                        writeback = true;
                    }
                }
                if capacity > 0 {
                    self.lru.push(page);
                    self.dirty.push(false);
                }
                BufferAccess {
                    hit: false,
                    writeback,
                }
            }
        }
    }

    /// Mark `item`'s page dirty (it was written in the pool).
    pub fn mark_dirty(&mut self, item: ItemId) {
        if let BufferModel::Lru { .. } = self.model {
            let page = Self::page_of(item);
            if let Some(pos) = self.lru.iter().position(|&p| p == page) {
                self.dirty[pos] = true;
            }
        }
    }

    /// Clean every dirty page (a background flush completed).
    pub fn flush_all(&mut self) -> usize {
        let n = self.dirty.iter().filter(|d| **d).count();
        for d in &mut self.dirty {
            *d = false;
        }
        n
    }

    /// Access statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Drop all cached pages (crash: the pool is volatile).
    pub fn clear(&mut self) {
        self.lru.clear();
        self.dirty.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn probabilistic_ratio_converges() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut pool = BufferPool::paper_default();
        for i in 0..10_000u32 {
            pool.access(ItemId(i % 100), &mut rng);
        }
        let r = pool.stats().hit_ratio();
        assert!((0.18..=0.22).contains(&r), "hit ratio {r}");
    }

    #[test]
    fn lru_caches_hot_pages() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut pool = BufferPool::new(BufferModel::Lru { capacity: 2 });
        // First touch: miss; second touch same page: hit.
        assert!(!pool.access(ItemId(0), &mut rng).hit);
        assert!(pool.access(ItemId(1), &mut rng).hit, "same page as item 0");
        assert!(!pool.access(ItemId(10), &mut rng).hit);
        // Pages 0 and 1 cached; page 2 evicts page 0 (LRU).
        assert!(!pool.access(ItemId(20), &mut rng).hit);
        assert!(!pool.access(ItemId(0), &mut rng).hit, "page 0 was evicted");
    }

    #[test]
    fn lru_dirty_eviction_requires_writeback() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut pool = BufferPool::new(BufferModel::Lru { capacity: 1 });
        pool.access(ItemId(0), &mut rng);
        pool.mark_dirty(ItemId(0));
        let a = pool.access(ItemId(10), &mut rng);
        assert!(!a.hit);
        assert!(a.writeback, "evicting a dirty page needs a write-back");
        assert_eq!(pool.stats().dirty_evictions, 1);
    }

    #[test]
    fn flush_all_cleans() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut pool = BufferPool::new(BufferModel::Lru { capacity: 4 });
        pool.access(ItemId(0), &mut rng);
        pool.mark_dirty(ItemId(0));
        assert_eq!(pool.flush_all(), 1);
        assert_eq!(pool.flush_all(), 0);
    }

    #[test]
    #[should_panic(expected = "hit ratio out of range")]
    fn invalid_ratio_rejected() {
        let _ = BufferPool::new(BufferModel::Probabilistic { hit_ratio: 1.5 });
    }
}
