//! # groupsafe-db — the local database engine
//!
//! The paper assumes each server hosts a database component providing
//! local ACID execution, serialisability, and testable transactions
//! (§2.2). This crate is that substrate, built on the simulated resources
//! of [`groupsafe_sim`]:
//!
//! * [`BufferPool`] — Table 4's probabilistic 20 %-hit buffer plus a real
//!   LRU variant for ablations,
//! * [`LockManager`] — strict two-phase locking with wait-for-graph
//!   deadlock detection,
//! * [`Wal`] — write-ahead log with group commit and sync/async flush
//!   policies (async is the optimisation group-safety legitimises),
//! * [`DbEngine`] — operation execution with simulated timing, exactly-
//!   once commits (testable transactions), WAL-redo crash recovery,
//!   checkpoints for state transfer, and state digests for replica-
//!   consistency verification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod engine;
pub mod lock;
pub mod types;
pub mod wal;

pub use buffer::{BufferAccess, BufferModel, BufferPool, BufferStats, ITEMS_PER_PAGE};
pub use engine::{CommitResult, DbCheckpoint, DbConfig, DbEngine, DbStats, ReadResult};
pub use lock::{LockManager, LockMode, LockOutcome};
pub use types::{ItemId, ItemState, Operation, TxnId, Value, Version, WriteOp};
pub use wal::{CommitRecord, FlushPolicy, Lsn, Wal, WalKind, WalStats};
