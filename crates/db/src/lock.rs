//! Strict two-phase locking with deadlock detection.
//!
//! Used by the delegate's local execution phase and by the lazy (1-safe)
//! technique, which runs full 2PL locally. Shared/exclusive item locks,
//! FIFO wait queues, and wait-for-graph cycle detection with
//! youngest-victim selection.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::types::{ItemId, TxnId};

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

impl LockMode {
    fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }
}

/// Result of a lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock was granted immediately.
    Granted,
    /// The request is queued behind conflicting holders.
    Waiting,
    /// Granting would deadlock; `victim` must abort. The victim is the
    /// youngest transaction on the cycle (highest id).
    Deadlock {
        /// Transaction chosen to abort.
        victim: TxnId,
    },
}

#[derive(Debug, Default)]
struct ItemLock {
    holders: BTreeMap<TxnId, LockMode>,
    waiters: VecDeque<(TxnId, LockMode)>,
}

/// The lock manager.
#[derive(Debug, Default)]
pub struct LockManager {
    locks: BTreeMap<ItemId, ItemLock>,
    /// item set held per transaction (for fast release).
    held: BTreeMap<TxnId, BTreeSet<ItemId>>,
    waiting: BTreeMap<TxnId, ItemId>,
    deadlocks: u64,
}

impl LockManager {
    /// Create an empty lock manager.
    pub fn new() -> Self {
        LockManager::default()
    }

    /// Number of deadlocks detected so far.
    pub fn deadlocks(&self) -> u64 {
        self.deadlocks
    }

    /// True if `txn` currently waits for a lock.
    pub fn is_waiting(&self, txn: TxnId) -> bool {
        self.waiting.contains_key(&txn)
    }

    /// Request `mode` on `item` for `txn`.
    ///
    /// Re-requests by a holder are upgrades: a shared holder asking for
    /// exclusive is granted immediately when it is the only holder,
    /// otherwise it waits (or deadlocks).
    pub fn acquire(&mut self, txn: TxnId, item: ItemId, mode: LockMode) -> LockOutcome {
        let lock = self.locks.entry(item).or_default();
        if let Some(&held_mode) = lock.holders.get(&txn) {
            if held_mode == LockMode::Exclusive || mode == LockMode::Shared {
                return LockOutcome::Granted; // already strong enough
            }
            // Upgrade S -> X: possible only as the single holder with no
            // queued waiters ahead.
            if lock.holders.len() == 1 && lock.waiters.is_empty() {
                lock.holders.insert(txn, LockMode::Exclusive);
                return LockOutcome::Granted;
            }
        }
        let compatible = lock
            .holders
            .iter()
            .all(|(t, m)| *t == txn || m.compatible(mode) && mode.compatible(*m));
        if compatible && lock.waiters.is_empty() {
            // `txn` cannot be a pre-existing holder here: every holder case
            // returned above (grant or fall through to the queue).
            lock.holders.insert(txn, mode);
            self.held.entry(txn).or_default().insert(item);
            return LockOutcome::Granted;
        }
        // Queue and check for deadlock.
        lock.waiters.push_back((txn, mode));
        self.waiting.insert(txn, item);
        if let Some(victim) = self.find_deadlock_victim(txn) {
            self.deadlocks += 1;
            return LockOutcome::Deadlock { victim };
        }
        LockOutcome::Waiting
    }

    /// Wait-for graph: `txn` waits for every holder of (and every earlier
    /// waiter on) the item it is queued on. DFS from `txn`; if the walk
    /// returns to `txn`, pick the youngest transaction on the cycle.
    fn find_deadlock_victim(&self, start: TxnId) -> Option<TxnId> {
        let mut stack = vec![start];
        let mut visited = BTreeSet::new();
        let mut on_cycle = BTreeSet::new();
        // Iterative DFS carrying the path implicitly: we only need cycle
        // membership through `start`, so walk edges and remember everything
        // reachable; a cycle exists iff `start` is reachable from one of
        // its successors.
        let mut reachable = BTreeSet::new();
        while let Some(t) = stack.pop() {
            if !visited.insert(t) {
                continue;
            }
            for next in self.waits_for(t) {
                reachable.insert(next);
                stack.push(next);
            }
        }
        if !reachable.contains(&start) {
            return None;
        }
        // Everything reachable that also reaches start is on a cycle with
        // start; approximate the victim as the youngest transaction among
        // the waiting ones reachable from start (including start). This
        // always breaks the cycle because every cycle member is waiting.
        on_cycle.insert(start);
        for t in reachable {
            if self.waiting.contains_key(&t) {
                on_cycle.insert(t);
            }
        }
        on_cycle.iter().max().copied()
    }

    fn waits_for(&self, txn: TxnId) -> Vec<TxnId> {
        let Some(&item) = self.waiting.get(&txn) else {
            return Vec::new();
        };
        let Some(lock) = self.locks.get(&item) else {
            return Vec::new();
        };
        let mut out: Vec<TxnId> = lock.holders.keys().copied().filter(|t| *t != txn).collect();
        for (w, _) in &lock.waiters {
            if *w == txn {
                break;
            }
            out.push(*w);
        }
        out
    }

    /// Release everything `txn` holds or waits for. Returns the requests
    /// newly granted, in grant order.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<(TxnId, ItemId)> {
        let mut granted = Vec::new();
        let items: Vec<ItemId> = self
            .held
            .remove(&txn)
            .unwrap_or_default()
            .into_iter()
            .collect();
        let waiting_on = self.waiting.remove(&txn);
        for item in items.into_iter().chain(waiting_on) {
            if let Some(lock) = self.locks.get_mut(&item) {
                lock.holders.remove(&txn);
                lock.waiters.retain(|(t, _)| *t != txn);
            }
            granted.extend(self.promote(item));
        }
        granted
    }

    /// Grant as many queued waiters on `item` as compatibility allows.
    fn promote(&mut self, item: ItemId) -> Vec<(TxnId, ItemId)> {
        let mut granted = Vec::new();
        let Some(lock) = self.locks.get_mut(&item) else {
            return granted;
        };
        while let Some(&(txn, mode)) = lock.waiters.front() {
            let compatible = lock
                .holders
                .iter()
                .all(|(t, m)| *t == txn || m.compatible(mode) && mode.compatible(*m));
            if !compatible {
                break;
            }
            lock.waiters.pop_front();
            lock.holders.insert(txn, mode);
            self.held.entry(txn).or_default().insert(item);
            self.waiting.remove(&txn);
            granted.push((txn, item));
        }
        if lock.holders.is_empty() && lock.waiters.is_empty() {
            self.locks.remove(&item);
        }
        granted
    }

    /// Number of locks `txn` holds.
    pub fn held_count(&self, txn: TxnId) -> usize {
        self.held.get(&txn).map(|s| s.len()).unwrap_or(0)
    }

    /// Drop everything (crash).
    pub fn clear(&mut self) {
        self.locks.clear();
        self.held.clear();
        self.waiting.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u32, s: u64) -> TxnId {
        TxnId { client: c, seq: s }
    }
    fn x(i: u32) -> ItemId {
        ItemId(i)
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(t(0, 1), x(1), LockMode::Shared),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(0, 2), x(1), LockMode::Shared),
            LockOutcome::Granted
        );
        assert_eq!(lm.held_count(t(0, 1)), 1);
    }

    #[test]
    fn exclusive_blocks_and_releases_grant() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(t(0, 1), x(1), LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(0, 2), x(1), LockMode::Exclusive),
            LockOutcome::Waiting
        );
        assert!(lm.is_waiting(t(0, 2)));
        let granted = lm.release_all(t(0, 1));
        assert_eq!(granted, vec![(t(0, 2), x(1))]);
        assert!(!lm.is_waiting(t(0, 2)));
    }

    #[test]
    fn fifo_no_starvation_of_writers() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(t(0, 1), x(1), LockMode::Shared),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(0, 2), x(1), LockMode::Exclusive),
            LockOutcome::Waiting
        );
        // A later shared request queues behind the waiting writer.
        assert_eq!(
            lm.acquire(t(0, 3), x(1), LockMode::Shared),
            LockOutcome::Waiting
        );
        let granted = lm.release_all(t(0, 1));
        assert_eq!(granted, vec![(t(0, 2), x(1))]);
        let granted = lm.release_all(t(0, 2));
        assert_eq!(granted, vec![(t(0, 3), x(1))]);
    }

    #[test]
    fn upgrade_single_holder() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(t(0, 1), x(1), LockMode::Shared),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(0, 1), x(1), LockMode::Exclusive),
            LockOutcome::Granted
        );
        // Another reader now blocks.
        assert_eq!(
            lm.acquire(t(0, 2), x(1), LockMode::Shared),
            LockOutcome::Waiting
        );
    }

    #[test]
    fn two_txn_deadlock_detected_youngest_victim() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(t(0, 1), x(1), LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(0, 2), x(2), LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(0, 1), x(2), LockMode::Exclusive),
            LockOutcome::Waiting
        );
        match lm.acquire(t(0, 2), x(1), LockMode::Exclusive) {
            LockOutcome::Deadlock { victim } => assert_eq!(victim, t(0, 2)),
            other => panic!("expected deadlock, got {other:?}"),
        }
        assert_eq!(lm.deadlocks(), 1);
        // Aborting the victim unblocks the other transaction.
        let granted = lm.release_all(t(0, 2));
        assert_eq!(granted, vec![(t(0, 1), x(2))]);
    }

    #[test]
    fn three_txn_cycle_detected() {
        let mut lm = LockManager::new();
        for i in 1..=3 {
            assert_eq!(
                lm.acquire(t(0, i), x(i as u32), LockMode::Exclusive),
                LockOutcome::Granted
            );
        }
        assert_eq!(
            lm.acquire(t(0, 1), x(2), LockMode::Exclusive),
            LockOutcome::Waiting
        );
        assert_eq!(
            lm.acquire(t(0, 2), x(3), LockMode::Exclusive),
            LockOutcome::Waiting
        );
        match lm.acquire(t(0, 3), x(1), LockMode::Exclusive) {
            LockOutcome::Deadlock { victim } => assert_eq!(victim, t(0, 3)),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn release_of_waiter_cleans_queue() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(t(0, 1), x(1), LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(0, 2), x(1), LockMode::Exclusive),
            LockOutcome::Waiting
        );
        lm.release_all(t(0, 2)); // waiter gives up
        let granted = lm.release_all(t(0, 1));
        assert!(granted.is_empty());
    }

    #[test]
    fn reacquire_held_lock_is_granted() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(t(0, 1), x(1), LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(0, 1), x(1), LockMode::Shared),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(0, 1), x(1), LockMode::Exclusive),
            LockOutcome::Granted
        );
    }
}
