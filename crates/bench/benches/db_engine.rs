//! Criterion bench: local database engine hot paths.

use criterion::{criterion_group, criterion_main, Criterion};
use groupsafe_db::{
    DbConfig, DbEngine, FlushPolicy, ItemId, LockManager, LockMode, TxnId, WriteOp,
};
use groupsafe_sim::{Disk, Fcfs, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;

fn engine() -> DbEngine {
    DbEngine::new(
        DbConfig {
            flush_policy: FlushPolicy::Async,
            ..DbConfig::default()
        },
        Rc::new(RefCell::new(Fcfs::new(2))),
        Rc::new(RefCell::new(Disk::paper_pool())),
        Rc::new(RefCell::new(Disk::paper_pool())),
        StdRng::seed_from_u64(1),
    )
}

fn bench_db(c: &mut Criterion) {
    c.bench_function("db/read_10k", |b| {
        let mut e = engine();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(e.read(SimTime::from_micros(i as u64), ItemId(i % 10_000)))
        })
    });

    c.bench_function("db/commit_5_writes", |b| {
        let mut e = engine();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let writes: Vec<WriteOp> = (0..5)
                .map(|k| WriteOp {
                    item: ItemId(((seq * 5 + k) % 10_000) as u32),
                    value: seq as i64,
                    version: seq,
                })
                .collect();
            black_box(e.commit(SimTime::from_micros(seq), TxnId { client: 0, seq }, &writes))
        })
    });

    c.bench_function("db/wal_flush_batched", |b| {
        let mut e = engine();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            e.commit(
                SimTime::from_micros(seq * 10),
                TxnId { client: 1, seq },
                &[WriteOp {
                    item: ItemId((seq % 10_000) as u32),
                    value: 1,
                    version: seq,
                }],
            );
            if let Some((_, lsn)) = e.flush_wal(SimTime::from_micros(seq * 10 + 5)) {
                e.wal_mark_durable(lsn);
            }
            black_box(e.wal_durable_lsn())
        })
    });

    c.bench_function("db/lock_acquire_release", |b| {
        let mut lm = LockManager::new();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let t = TxnId { client: 0, seq };
            for k in 0..10u32 {
                lm.acquire(
                    t,
                    ItemId((seq as u32).wrapping_mul(7).wrapping_add(k) % 1000),
                    if k % 2 == 0 {
                        LockMode::Shared
                    } else {
                        LockMode::Exclusive
                    },
                );
            }
            black_box(lm.release_all(t))
        })
    });

    c.bench_function("db/crash_recovery_1k_txns", |b| {
        b.iter_batched(
            || {
                let mut e = engine();
                for seq in 1..=1_000u64 {
                    e.commit(
                        SimTime::from_micros(seq),
                        TxnId { client: 2, seq },
                        &[WriteOp {
                            item: ItemId((seq % 10_000) as u32),
                            value: seq as i64,
                            version: seq,
                        }],
                    );
                }
                if let Some((_, lsn)) = e.flush_wal(SimTime::from_secs(1)) {
                    e.wal_mark_durable(lsn);
                }
                e
            },
            |mut e| {
                e.crash();
                black_box(e.committed_count())
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_db);
criterion_main!(benches);
