//! Criterion bench: full replicated-database simulations — the cost of
//! simulating one technique for 5 simulated seconds at 30 tps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use groupsafe_core::{Load, System, Technique};
use groupsafe_sim::SimDuration;
use std::hint::black_box;

fn one_run(technique: Technique, seed: u64) -> usize {
    System::builder()
        .technique(technique)
        .load(Load::closed_tps(30.0))
        .client_timeout(SimDuration::from_secs(5))
        .warmup(SimDuration::from_secs(1))
        .measure(SimDuration::from_secs(5))
        .drain(SimDuration::from_secs(1))
        .seed(seed)
        .build()
        .expect("a valid configuration")
        .execute()
        .commits
}

fn bench_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("system");
    g.sample_size(10);
    for (name, tech) in [
        (
            "group_safe",
            Technique::Dsm(groupsafe_core::SafetyLevel::GroupSafe),
        ),
        (
            "group_1_safe",
            Technique::Dsm(groupsafe_core::SafetyLevel::GroupOneSafe),
        ),
        (
            "two_safe",
            Technique::Dsm(groupsafe_core::SafetyLevel::TwoSafe),
        ),
        ("lazy", Technique::Lazy),
    ] {
        g.bench_with_input(
            BenchmarkId::new("simulate_5s_30tps_9servers", name),
            &tech,
            |b, tech| b.iter(|| black_box(one_run(*tech, 11))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_system);
criterion_main!(benches);
