//! Criterion bench: full replicated-database simulations — the cost of
//! simulating one technique for 5 simulated seconds at 30 tps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use groupsafe_core::{SafetyLevel, Technique};
use groupsafe_sim::SimDuration;
use groupsafe_workload::{run, PaperParams, RunConfig};
use std::hint::black_box;

fn one_run(technique: Technique, seed: u64) -> usize {
    let cfg = RunConfig {
        technique,
        load_tps: 30.0,
        closed_loop: true,
        assumed_resp_ms: 70.0,
        lazy_prop_ms: 20.0,
        wal_flush_ms: 20.0,
        params: PaperParams::default(),
        warmup: SimDuration::from_secs(1),
        duration: SimDuration::from_secs(5),
        drain: SimDuration::from_secs(1),
        seed,
    };
    run(&cfg).samples
}

fn bench_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("system");
    g.sample_size(10);
    for (name, tech) in [
        ("group_safe", Technique::Dsm(SafetyLevel::GroupSafe)),
        ("group_1_safe", Technique::Dsm(SafetyLevel::GroupOneSafe)),
        ("two_safe", Technique::Dsm(SafetyLevel::TwoSafe)),
        ("lazy", Technique::Lazy),
    ] {
        g.bench_with_input(
            BenchmarkId::new("simulate_5s_30tps_9servers", name),
            &tech,
            |b, tech| b.iter(|| black_box(one_run(*tech, 11))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_system);
criterion_main!(benches);
