//! Criterion bench: raw discrete-event kernel throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use groupsafe_sim::{Actor, Ctx, Engine, Payload, SimDuration, SimTime};
use std::hint::black_box;

struct Ping {
    peer: Option<groupsafe_sim::ActorId>,
    remaining: u32,
}
struct Tick;

impl Actor for Ping {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        if payload.downcast::<Tick>().is_ok() && self.remaining > 0 {
            self.remaining -= 1;
            let target = self.peer.unwrap_or(ctx.me());
            ctx.send(target, SimDuration::from_micros(10), Tick);
        }
    }
}

fn bench_kernel(c: &mut Criterion) {
    c.bench_function("kernel/dispatch_100k_events", |b| {
        b.iter(|| {
            let mut eng = Engine::new(1);
            let a = eng.add_actor(Box::new(Ping {
                peer: None,
                remaining: 50_000,
            }));
            let p = eng.add_actor(Box::new(Ping {
                peer: Some(a),
                remaining: 50_000,
            }));
            eng.schedule(SimTime::ZERO, a, Tick);
            eng.schedule(SimTime::ZERO, p, Tick);
            eng.run_to_completion();
            black_box(eng.dispatched())
        })
    });
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
