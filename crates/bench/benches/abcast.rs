//! Criterion bench: atomic broadcast variants — simulation cost of
//! ordering and delivering 200 messages on a 9-node group.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use groupsafe_gcs::harness::Cluster;
use groupsafe_gcs::GcsConfig;
use groupsafe_net::NodeId;
use groupsafe_sim::SimTime;
use std::hint::black_box;

fn run_broadcasts(cfg: GcsConfig) -> u64 {
    let n = 9;
    let mut cluster = Cluster::new(n, cfg, 3);
    for i in 0..200u64 {
        cluster.broadcast_at(
            SimTime::from_millis(10 + i * 2),
            NodeId((i % n as u64) as u32),
            i,
        );
    }
    cluster.engine.run_until(SimTime::from_secs(10));
    cluster.engine.dispatched()
}

fn bench_abcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("abcast");
    for (name, cfg) in [
        ("non_uniform", GcsConfig::view_based_non_uniform()),
        ("uniform", GcsConfig::view_based_uniform()),
        ("crash_recovery", GcsConfig::crash_recovery()),
        ("end_to_end", GcsConfig::end_to_end()),
    ] {
        g.bench_with_input(
            BenchmarkId::new("deliver_200_msgs_9_nodes", name),
            &cfg,
            |b, cfg| b.iter(|| black_box(run_broadcasts(cfg.clone()))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_abcast);
criterion_main!(benches);
