//! Minimal ASCII chart rendering for the figure harnesses.

/// Render multiple `(x, y)` series as an ASCII chart. Each series is
/// drawn with its own glyph; a legend follows the plot.
pub fn ascii_chart(
    series: &[(String, Vec<(f64, f64)>)],
    x_label: &str,
    y_label: &str,
    width: usize,
    height: usize,
) -> String {
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let points: Vec<(f64, f64)> = series.iter().flat_map(|(_, s)| s.iter().copied()).collect();
    if points.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (y_min, mut y_max) = (0.0f64, f64::NEG_INFINITY);
    for &(x, y) in &points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in s {
            let cx = ((x - x_min) / (x_max - x_min) * (width as f64 - 1.0)).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (height as f64 - 1.0)).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{y_label} (max {:.1})\n", y_max));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(" {x_label}: {:.1} .. {:.1}\n", x_min, x_max));
    for (i, (label, _)) in series.iter().enumerate() {
        out.push_str(&format!(" {} = {}\n", GLYPHS[i % GLYPHS.len()], label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_series() {
        let s = vec![
            ("a".to_string(), vec![(0.0, 1.0), (1.0, 2.0)]),
            ("b".to_string(), vec![(0.0, 2.0), (1.0, 1.0)]),
        ];
        let chart = ascii_chart(&s, "x", "y", 20, 8);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("a"));
        assert!(chart.contains("x: 0.0 .. 1.0"));
    }

    #[test]
    fn empty_input_is_safe() {
        assert_eq!(ascii_chart(&[], "x", "y", 10, 5), "(no data)\n");
    }
}
