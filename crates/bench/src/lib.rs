//! # groupsafe-bench — harnesses regenerating the paper's tables/figures
//!
//! Binaries (one per artefact):
//! * `table1` — empirical safety matrix (delivered × logged),
//! * `table2` — tolerated crashes per safety level,
//! * `table3` — group-safe vs group-1-safe loss conditions,
//! * `table4` — the simulator parameters in use,
//! * `fig5_fig7` — the lost-transaction and end-to-end recovery scenarios,
//! * `fig9` — response time vs load for the three techniques (plus
//!   `--batch`: batched vs unbatched group-safe curves),
//! * `scaling` — §7/Fig. 10: lazy vs group-safe risk as n grows,
//! * `latency_micro` — disk write vs atomic broadcast latency (§6),
//! * `batching` — abcast batch-size sweep under open-loop overload
//!   (asserts the ≥2× saturated-throughput claim),
//! * `scenario_fuzz` — seeded random fault scenarios through the
//!   per-level safety oracle (`--shards G` runs the sharded envelope
//!   with group-targeted faults and the cross-group atomicity digest),
//! * `sharding` — group-count × cross-group-ratio sweep (asserts that
//!   aggregate commit throughput grows monotonically with the group
//!   count at 0 % cross traffic).
//!
//! Criterion micro-benches live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plot;

use groupsafe_core::WorkloadSpec;

/// The ordering-bound workload the batching harnesses share (`batching`
/// and `fig9 --batch`): short write-only transactions over the Table 4
/// database, so the per-transaction abcast traffic — not the read
/// phase or the data path — saturates first. Keeping it in one place
/// keeps the two harnesses measuring the same regime.
pub fn ordering_bound_workload() -> WorkloadSpec {
    WorkloadSpec {
        n_items: 10_000,
        txn_len_min: 2,
        txn_len_max: 4,
        write_probability: 1.0,
        hot_access_fraction: 0.0,
        hot_set_fraction: 0.02,
        read_fraction: 0.0,
        ..WorkloadSpec::default()
    }
}

/// The read-bound workload the `reads` bench sweeps: short transactions
/// over a mostly-cached database, so the ordering pipeline — not the
/// data disks — is what a broadcast read pays and a local read skips.
/// The read fraction is the sweep's x-axis; callers override it.
pub fn read_bound_workload(read_fraction: f64) -> WorkloadSpec {
    WorkloadSpec {
        n_items: 10_000,
        txn_len_min: 3,
        txn_len_max: 6,
        write_probability: 1.0,
        hot_access_fraction: 0.0,
        hot_set_fraction: 0.02,
        read_fraction,
        ..WorkloadSpec::default()
    }
}
