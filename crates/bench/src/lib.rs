//! # groupsafe-bench — harnesses regenerating the paper's tables/figures
//!
//! Binaries (one per artefact):
//! * `table1` — empirical safety matrix (delivered × logged),
//! * `table2` — tolerated crashes per safety level,
//! * `table3` — group-safe vs group-1-safe loss conditions,
//! * `table4` — the simulator parameters in use,
//! * `fig5_fig7` — the lost-transaction and end-to-end recovery scenarios,
//! * `fig9` — response time vs load for the three techniques,
//! * `scaling` — §7/Fig. 10: lazy vs group-safe risk as n grows,
//! * `latency_micro` — disk write vs atomic broadcast latency (§6).
//!
//! Criterion micro-benches live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plot;
