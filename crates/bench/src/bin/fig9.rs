//! Fig. 9 reproduction: mean response time vs offered load (20–40 tps)
//! for group-safe, group-1-safe and lazy (1-safe) replication, on the
//! Table 4 configuration.
//!
//! Usage: `fig9 [--quick] [--csv <path>]`
//!   --quick   shorter runs (10 s measurement instead of 60 s)
//!   --csv     also write a CSV with one row per (technique, load)

use groupsafe_bench::plot::ascii_chart;
use groupsafe_core::{SafetyLevel, Technique};
use groupsafe_sim::SimDuration;
use groupsafe_workload::{csv_header, sweep, PaperParams, RunConfig, RunReport};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv_path = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let loads: Vec<f64> = (20..=40).step_by(2).map(|v| v as f64).collect();
    let base = RunConfig {
        technique: Technique::Dsm(SafetyLevel::GroupSafe),
        load_tps: 0.0,
        closed_loop: true,
        assumed_resp_ms: 70.0,
        lazy_prop_ms: 20.0,
        wal_flush_ms: 20.0,
        params: PaperParams::default(),
        warmup: SimDuration::from_secs(5),
        duration: if quick {
            SimDuration::from_secs(10)
        } else {
            SimDuration::from_secs(60)
        },
        drain: SimDuration::from_secs(3),
        seed: 42,
    };

    let techniques = [
        Technique::Dsm(SafetyLevel::GroupSafe),
        Technique::Lazy,
        Technique::Dsm(SafetyLevel::GroupOneSafe),
    ];

    println!("Fig. 9 — response time vs load (Table 4 configuration)");
    println!(
        "{:<14} {:>6} {:>9} {:>9} {:>9} {:>9} {:>8} {:>6} {:>5}",
        "technique", "load", "achieved", "mean ms", "p50 ms", "p95 ms", "abort%", "lost", "conv"
    );
    let mut all: Vec<RunReport> = Vec::new();
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for tech in techniques {
        let reports = sweep(tech, &loads, &base);
        let mut curve = Vec::new();
        for r in &reports {
            println!(
                "{:<14} {:>6.0} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>7.1}% {:>6} {:>5}",
                r.technique,
                r.offered_tps,
                r.achieved_tps,
                r.mean_ms,
                r.p50_ms,
                r.p95_ms,
                r.abort_rate * 100.0,
                r.lost,
                r.distinct_states,
            );
            curve.push((r.offered_tps, r.mean_ms));
        }
        series.push((reports[0].technique.to_string(), curve));
        all.extend(reports);
        println!();
    }

    println!("{}", ascii_chart(&series, "load [tps]", "response [ms]", 72, 24));

    if let Some(path) = csv_path {
        let mut out = String::from(csv_header());
        out.push('\n');
        for r in &all {
            out.push_str(&r.csv_row());
            out.push('\n');
        }
        std::fs::write(&path, out).expect("write csv");
        println!("wrote {path}");
    }

    // Shape checks mirroring the paper's findings (§6). These are
    // assertions-as-documentation: the binary exits non-zero if the
    // reproduction loses the paper's qualitative result.
    let get = |label: &str| -> &Vec<(f64, f64)> {
        &series.iter().find(|(l, _)| l == label).expect("series").1
    };
    let gs = get("group-safe");
    let lazy = get("lazy (1-safe)");
    let g1s = get("group-1-safe");
    let avg = |curve: &[(f64, f64)]| -> f64 {
        curve.iter().map(|(_, y)| *y).sum::<f64>() / curve.len() as f64
    };
    let low_n = 3.min(gs.len());
    let hi_n = gs.len().saturating_sub(3);
    assert!(
        avg(&gs[..low_n]) < avg(&lazy[..low_n]),
        "group-safe must outperform lazy at low load"
    );
    assert!(
        avg(&lazy[..low_n]) < avg(&g1s[..low_n]),
        "group-1-safe must be the slowest at low load"
    );
    assert!(
        avg(&lazy[hi_n..]) <= avg(&gs[hi_n..]),
        "lazy must catch (or beat) group-safe at high load (§6 crossover)"
    );
    assert!(
        avg(&g1s[hi_n..]) > 2.0 * avg(&g1s[..low_n]),
        "group-1-safe must degrade sharply by 40 tps"
    );
    println!(
        "shape checks passed: group-safe < lazy < group-1-safe at low load;          lazy catches group-safe at high load; group-1-safe scales poorly"
    );
}
