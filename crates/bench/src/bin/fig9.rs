//! Fig. 9 reproduction: mean response time vs offered load (20–40 tps)
//! for group-safe, group-1-safe and lazy (1-safe) replication, on the
//! Table 4 configuration.
//!
//! Usage: `fig9 [--quick] [--csv <path>] [--json <path>]`
//!   --quick   shorter runs (10 s measurement instead of 60 s)
//!   --csv     also write a CSV with one row per (technique, load)
//!   --json    also write a JSON array of full structured reports

use groupsafe_bench::plot::ascii_chart;
use groupsafe_core::{Load, Report, SafetyLevel, System};
use groupsafe_sim::SimDuration;
use groupsafe_workload::{csv_header, RunReport};

fn run_point(level: SafetyLevel, tps: f64, quick: bool) -> Report {
    System::builder()
        .safety(level)
        .load(Load::closed_tps(tps))
        // The historical harness condition: failover only after 5 s.
        .client_timeout(SimDuration::from_secs(5))
        .warmup(SimDuration::from_secs(5))
        .measure(SimDuration::from_secs(if quick { 10 } else { 60 }))
        .drain(SimDuration::from_secs(3))
        .seed(42)
        .build()
        .expect("the Table 4 configuration is valid")
        .execute()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let path_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let csv_path = path_after("--csv");
    let json_path = path_after("--json");

    let loads: Vec<f64> = (20..=40).step_by(2).map(|v| v as f64).collect();
    let levels = [
        SafetyLevel::GroupSafe,
        SafetyLevel::OneSafe,
        SafetyLevel::GroupOneSafe,
    ];

    println!("Fig. 9 — response time vs load (Table 4 configuration)");
    println!(
        "{:<14} {:>6} {:>9} {:>9} {:>9} {:>9} {:>8} {:>6} {:>5}",
        "technique", "load", "achieved", "mean ms", "p50 ms", "p95 ms", "abort%", "lost", "conv"
    );
    let mut all: Vec<Report> = Vec::new();
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for level in levels {
        let mut curve = Vec::new();
        let mut label = String::new();
        for &tps in &loads {
            let r = run_point(level, tps, quick);
            println!(
                "{:<14} {:>6.0} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>7.1}% {:>6} {:>5}",
                r.technique,
                tps,
                r.achieved_tps,
                r.mean_ms,
                r.p50_ms,
                r.p95_ms,
                r.abort_rate * 100.0,
                r.lost,
                r.distinct_states,
            );
            curve.push((tps, r.mean_ms));
            label = r.technique.to_string();
            all.push(r);
        }
        series.push((label, curve));
        println!();
    }

    println!(
        "{}",
        ascii_chart(&series, "load [tps]", "response [ms]", 72, 24)
    );

    if let Some(path) = csv_path {
        let mut out = String::from(csv_header());
        out.push('\n');
        for r in &all {
            out.push_str(&RunReport::from_report(r.offered_tps.unwrap_or(0.0), r).csv_row());
            out.push('\n');
        }
        std::fs::write(&path, out).expect("write csv");
        println!("wrote {path}");
    }
    if let Some(path) = json_path {
        let rows: Vec<String> = all.iter().map(Report::to_json).collect();
        std::fs::write(&path, format!("[{}]\n", rows.join(",\n"))).expect("write json");
        println!("wrote {path}");
    }

    // Shape checks mirroring the paper's findings (§6). These are
    // assertions-as-documentation: the binary exits non-zero if the
    // reproduction loses the paper's qualitative result.
    let get = |label: &str| -> &Vec<(f64, f64)> {
        &series.iter().find(|(l, _)| l == label).expect("series").1
    };
    let gs = get("group-safe");
    let lazy = get("lazy (1-safe)");
    let g1s = get("group-1-safe");
    let avg = |curve: &[(f64, f64)]| -> f64 {
        curve.iter().map(|(_, y)| *y).sum::<f64>() / curve.len() as f64
    };
    let low_n = 3.min(gs.len());
    let hi_n = gs.len().saturating_sub(3);
    assert!(
        avg(&gs[..low_n]) < avg(&lazy[..low_n]),
        "group-safe must outperform lazy at low load"
    );
    assert!(
        avg(&lazy[..low_n]) < avg(&g1s[..low_n]),
        "group-1-safe must be the slowest at low load"
    );
    assert!(
        avg(&lazy[hi_n..]) <= avg(&gs[hi_n..]),
        "lazy must catch (or beat) group-safe at high load (§6 crossover)"
    );
    assert!(
        avg(&g1s[hi_n..]) > 2.0 * avg(&g1s[..low_n]),
        "group-1-safe must degrade sharply by 40 tps"
    );
    println!(
        "shape checks passed: group-safe < lazy < group-1-safe at low load;          lazy catches group-safe at high load; group-1-safe scales poorly"
    );
}
