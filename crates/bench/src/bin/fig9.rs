//! Fig. 9 reproduction: mean response time vs offered load (20–40 tps)
//! for group-safe, group-1-safe and lazy (1-safe) replication, on the
//! Table 4 configuration.
//!
//! Usage: `fig9 [--quick] [--batch] [--csv <path>] [--json <path>]`
//!   --quick   shorter runs (10 s measurement instead of 60 s)
//!   --batch   compare group-safe with and without abcast batching over
//!             an extended load range instead of the three-technique
//!             figure (the speedup is measured here; the hard ≥2×
//!             assertion lives in `bench --bin batching`)
//!   --csv     also write a CSV with one row per (technique, load)
//!   --json    also write a JSON array of full structured reports

use groupsafe_bench::plot::ascii_chart;
use groupsafe_core::{BatchConfig, Load, Report, SafetyLevel, System};
use groupsafe_sim::SimDuration;
use groupsafe_workload::{csv_header, RunReport};

fn run_point(level: SafetyLevel, tps: f64, quick: bool, batch: Option<BatchConfig>) -> Report {
    let mut builder = System::builder()
        .safety(level)
        .load(Load::closed_tps(tps))
        // The historical harness condition: failover only after 5 s.
        .client_timeout(SimDuration::from_secs(5))
        .warmup(SimDuration::from_secs(5))
        .measure(SimDuration::from_secs(if quick { 10 } else { 60 }))
        .drain(SimDuration::from_secs(3))
        .seed(42);
    if let Some(b) = batch {
        builder = builder.batching(b);
    }
    builder
        .build()
        .expect("the Table 4 configuration is valid")
        .execute()
}

/// One point of the `--batch` comparison: the fig9 closed-loop client
/// model over the ordering-bound workload (short write-only
/// transactions, as in `bench --bin batching`) — at the paper's Table 4
/// workload the data path saturates long before the abcast does, so the
/// batching effect only shows where ordering dominates.
fn run_batch_point(tps: f64, quick: bool, batch: Option<BatchConfig>) -> Report {
    let mut builder = System::builder()
        .safety(SafetyLevel::GroupSafe)
        .workload(groupsafe_bench::ordering_bound_workload())
        .load(Load::closed_tps_assuming(tps, 10.0))
        .client_timeout(SimDuration::from_secs(60))
        .warmup(SimDuration::from_secs(1))
        .measure(SimDuration::from_secs(if quick { 3 } else { 15 }))
        .drain(SimDuration::from_secs(2))
        .seed(42);
    if let Some(b) = batch {
        builder = builder.batching(b);
    }
    builder
        .build()
        .expect("the batch-mode configuration is valid")
        .execute()
}

/// `--batch`: group-safe with and without the batched abcast pipeline,
/// closed-loop load climbing through the unbatched knee. The unbatched
/// curve flattens where the per-transaction ordering traffic saturates
/// the servers; the batched curve keeps climbing — the effect `bench
/// --bin batching` pins down (with the ≥2× assertion) under open-loop
/// overload.
fn batch_mode(quick: bool, csv_path: Option<String>, json_path: Option<String>) {
    let loads: Vec<f64> = [250.0, 500.0, 1000.0, 1500.0, 2000.0, 2500.0, 3000.0, 3500.0].to_vec();
    let profile = BatchConfig::of(8, SimDuration::from_millis(1));
    println!("Fig. 9 (--batch) — group-safe, batched vs unbatched abcast");
    println!(
        "{:<22} {:>6} {:>9} {:>9} {:>11} {:>6} {:>5}",
        "pipeline", "load", "achieved", "mean ms", "batch size", "lost", "conv"
    );
    // Both pipelines report the same technique label and offered loads,
    // so the outputs carry an explicit pipeline tag per row.
    let mut all: Vec<(&'static str, f64, Report)> = Vec::new();
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for (label, batch) in [("unbatched", None), ("batched", Some(profile))] {
        let disp = format!("group-safe ({label})");
        let mut curve = Vec::new();
        for &tps in &loads {
            let r = run_batch_point(tps, quick, batch);
            println!(
                "{disp:<22} {:>6.0} {:>9.1} {:>9.1} {:>11.1} {:>6} {:>5}",
                tps, r.achieved_tps, r.mean_ms, r.mean_batch_size, r.lost, r.distinct_states,
            );
            curve.push((tps, r.achieved_tps));
            all.push((label, tps, r));
        }
        series.push((disp, curve));
        println!();
    }
    println!(
        "{}",
        ascii_chart(&series, "load [tps]", "achieved [tps]", 72, 24)
    );
    let top = loads.len() - 1;
    let unbatched = series[0].1[top].1;
    let batched = series[1].1[top].1;
    println!(
        "measured at {} tps offered: unbatched {unbatched:.1} tps, batched {batched:.1} tps ({:.2}x)",
        loads[top],
        batched / unbatched.max(1e-9)
    );
    if let Some(path) = csv_path {
        let mut out = String::from(
            "pipeline,offered_tps,achieved_tps,mean_ms,p95_ms,mean_batch_size,votes_per_delivery,lost,distinct_states\n",
        );
        for (label, tps, r) in &all {
            out.push_str(&format!(
                "{},{:.1},{:.2},{:.2},{:.2},{:.2},{:.3},{},{}\n",
                label,
                tps,
                r.achieved_tps,
                r.mean_ms,
                r.p95_ms,
                r.mean_batch_size,
                r.votes_per_delivery,
                r.lost,
                r.distinct_states
            ));
        }
        std::fs::write(&path, out).expect("write csv");
        println!("wrote {path}");
    }
    if let Some(path) = json_path {
        let rows: Vec<String> = all
            .iter()
            .map(|(label, _, r)| {
                format!("{{\"pipeline\":\"{}\",\"report\":{}}}", label, r.to_json())
            })
            .collect();
        std::fs::write(&path, format!("[{}]\n", rows.join(",\n"))).expect("write json");
        println!("wrote {path}");
    }
}

fn write_outputs(all: &[Report], csv_path: Option<String>, json_path: Option<String>) {
    if let Some(path) = csv_path {
        let mut out = String::from(csv_header());
        out.push('\n');
        for r in all {
            out.push_str(&RunReport::from_report(r.offered_tps.unwrap_or(0.0), r).csv_row());
            out.push('\n');
        }
        std::fs::write(&path, out).expect("write csv");
        println!("wrote {path}");
    }
    if let Some(path) = json_path {
        let rows: Vec<String> = all.iter().map(Report::to_json).collect();
        std::fs::write(&path, format!("[{}]\n", rows.join(",\n"))).expect("write json");
        println!("wrote {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let path_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let csv_path = path_after("--csv");
    let json_path = path_after("--json");

    if args.iter().any(|a| a == "--batch") {
        batch_mode(quick, csv_path, json_path);
        return;
    }

    let loads: Vec<f64> = (20..=40).step_by(2).map(|v| v as f64).collect();
    let levels = [
        SafetyLevel::GroupSafe,
        SafetyLevel::OneSafe,
        SafetyLevel::GroupOneSafe,
    ];

    println!("Fig. 9 — response time vs load (Table 4 configuration)");
    println!(
        "{:<14} {:>6} {:>9} {:>9} {:>9} {:>9} {:>8} {:>6} {:>5}",
        "technique", "load", "achieved", "mean ms", "p50 ms", "p95 ms", "abort%", "lost", "conv"
    );
    let mut all: Vec<Report> = Vec::new();
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for level in levels {
        let mut curve = Vec::new();
        let mut label = String::new();
        for &tps in &loads {
            let r = run_point(level, tps, quick, None);
            println!(
                "{:<14} {:>6.0} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>7.1}% {:>6} {:>5}",
                r.technique,
                tps,
                r.achieved_tps,
                r.mean_ms,
                r.p50_ms,
                r.p95_ms,
                r.abort_rate * 100.0,
                r.lost,
                r.distinct_states,
            );
            curve.push((tps, r.mean_ms));
            label = r.technique.to_string();
            all.push(r);
        }
        series.push((label, curve));
        println!();
    }

    println!(
        "{}",
        ascii_chart(&series, "load [tps]", "response [ms]", 72, 24)
    );

    write_outputs(&all, csv_path, json_path);

    // Shape checks mirroring the paper's findings (§6). These are
    // assertions-as-documentation: the binary exits non-zero if the
    // reproduction loses the paper's qualitative result.
    let get = |label: &str| -> &Vec<(f64, f64)> {
        &series.iter().find(|(l, _)| l == label).expect("series").1
    };
    let gs = get("group-safe");
    let lazy = get("lazy (1-safe)");
    let g1s = get("group-1-safe");
    let avg = |curve: &[(f64, f64)]| -> f64 {
        curve.iter().map(|(_, y)| *y).sum::<f64>() / curve.len() as f64
    };
    let low_n = 3.min(gs.len());
    let hi_n = gs.len().saturating_sub(3);
    assert!(
        avg(&gs[..low_n]) < avg(&lazy[..low_n]),
        "group-safe must outperform lazy at low load"
    );
    assert!(
        avg(&lazy[..low_n]) < avg(&g1s[..low_n]),
        "group-1-safe must be the slowest at low load"
    );
    assert!(
        avg(&lazy[hi_n..]) <= avg(&gs[hi_n..]),
        "lazy must catch (or beat) group-safe at high load (§6 crossover)"
    );
    assert!(
        avg(&g1s[hi_n..]) > 2.0 * avg(&g1s[..low_n]),
        "group-1-safe must degrade sharply by 40 tps"
    );
    println!(
        "shape checks passed: group-safe < lazy < group-1-safe at low load;          lazy catches group-safe at high load; group-1-safe scales poorly"
    );
}
