//! Seeded scenario fuzzing: generate random fault timelines
//! (`ScenarioPlan`s), run them on a small group-safe / 2-safe system,
//! and hold every run to the safety oracle's per-level invariants.
//!
//! Usage: `scenario_fuzz [--seeds N] [--start S] [--level L] [--shards G]
//!                       [--reads LEVEL:FRACTION] [--txns FRACTION]
//!                       [--obs PROFILE] [--json <path>]`
//!   --seeds   seeds per level (default 100 → 200 cases over two levels)
//!   --start   first seed (default 0)
//!   --level   restrict to one of: group-safe | two-safe | group-1-safe |
//!             zero-safe | one-safe (default: group-safe AND two-safe)
//!   --shards  run the sharded envelope: G replica groups of 3 servers
//!             with 10 % cross-group transactions and group-targeted
//!             faults incl. whole-group failures (default: 1, classic)
//!   --reads   mix read clients into every plan: a FRACTION of the
//!             generated transactions are read-only and travel the local
//!             read path at LEVEL (stable | session | latest); the
//!             read-freshness oracle audits every run (default: off)
//!   --txns    mix snapshot-isolation transactions into every plan: a
//!             FRACTION of the generated update transactions run under
//!             SI (MVCC read phase, first-committer-wins certification);
//!             the SI anomaly audits check every run (default: off;
//!             zeroed on one-safe, whose lazy baseline has no SI path)
//!   --obs     observability profile for every run: off | ring[:N] |
//!             full[:N] (default: ring, the bounded flight recorder — a
//!             violation dump then carries the pipeline's last events;
//!             recording never changes fingerprints, so repro seeds
//!             replay identically under any profile)
//!   --json    write a JSON summary
//!
//! On the first oracle violation the binary prints the reproducing seed
//! plus the full plan dump and exits non-zero — the seed alone replays
//! the run bit-for-bit (`fuzz::run_fuzz_case(seed, &FuzzSpec::smoke(level))`).

use groupsafe_core::scenario::fuzz::{run_fuzz_case, FuzzSpec};
use groupsafe_core::{ReadLevel, SafetyLevel};

fn parse_level(s: &str) -> SafetyLevel {
    match s {
        "zero-safe" => SafetyLevel::ZeroSafe,
        "one-safe" => SafetyLevel::OneSafe,
        "group-safe" => SafetyLevel::GroupSafe,
        "group-1-safe" => SafetyLevel::GroupOneSafe,
        "two-safe" => SafetyLevel::TwoSafe,
        other => panic!("unknown level {other:?}"),
    }
}

fn parse_reads(s: &str) -> (ReadLevel, f64) {
    let mut parts = s.splitn(2, ':');
    let level = match parts.next().unwrap_or("") {
        "stable" => ReadLevel::Stable,
        "session" => ReadLevel::Session,
        "latest" => ReadLevel::Latest,
        other => panic!("unknown read level {other:?}"),
    };
    let fraction: f64 = parts
        .next()
        .map(|f| f.parse().expect("--reads takes level:fraction"))
        .unwrap_or(0.5);
    (level, fraction)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let value_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let seeds: u64 = value_after("--seeds")
        .map(|v| v.parse().expect("--seeds takes a number"))
        .unwrap_or(100);
    let start: u64 = value_after("--start")
        .map(|v| v.parse().expect("--start takes a number"))
        .unwrap_or(0);
    let shards: u32 = value_after("--shards")
        .map(|v| v.parse().expect("--shards takes a number"))
        .unwrap_or(1);
    let levels: Vec<SafetyLevel> = match value_after("--level") {
        Some(l) => vec![parse_level(&l)],
        None => vec![SafetyLevel::GroupSafe, SafetyLevel::TwoSafe],
    };
    let reads = value_after("--reads").map(|v| parse_reads(&v));
    let txns: Option<f64> = value_after("--txns").map(|v| {
        let f: f64 = v.parse().expect("--txns takes a fraction");
        assert!((0.0..=1.0).contains(&f), "--txns fraction outside [0, 1]");
        f
    });
    if let Some(profile) = value_after("--obs") {
        // Validate eagerly, then hand the profile to the builders through
        // the `GROUPSAFE_OBS` env hook every run already honours.
        if let Err(e) = groupsafe_sim::ObsConfig::parse(&profile) {
            panic!("--obs: {e}");
        }
        std::env::set_var("GROUPSAFE_OBS", &profile);
    }
    assert!(
        reads.is_none() || !levels.contains(&SafetyLevel::OneSafe),
        "--reads is not defined for one-safe: the lazy baseline has no \
         local read path (run it without --reads; its read-only mix \
         still travels the classic pipeline)"
    );

    let mut total = 0u64;
    let mut commits = 0u64;
    let mut quiescent = 0u64;
    let mut with_loss = 0u64;
    let mut cross_audited = 0u64;
    let mut group_failures = 0u64;
    let mut reads_audited = 0u64;
    let mut si_audited = 0u64;
    // GS-D02 exemption: bench binaries report wall-clock throughput and
    // never feed a fingerprint (see lint.toml / clippy.toml policy).
    #[allow(clippy::disallowed_types)]
    let started = std::time::Instant::now();
    for &level in &levels {
        let mut spec = if shards > 1 {
            FuzzSpec::sharded(level, shards)
        } else {
            FuzzSpec::smoke(level)
        };
        if let Some((read_level, fraction)) = reads {
            spec = spec.with_reads(read_level, fraction);
        }
        if let Some(fraction) = txns {
            spec = spec.with_txns(fraction);
        }
        for seed in start..start + seeds {
            let out = run_fuzz_case(seed, &spec);
            total += 1;
            commits += out.commits as u64;
            quiescent += out.audit.quiescent as u64;
            with_loss += out.plan.uses_loss() as u64;
            cross_audited += out.audit.cross_group_audited as u64;
            group_failures += out.audit.group_failed as u64;
            reads_audited += out.audit.reads_audited as u64;
            si_audited += out.audit.si_audited as u64;
            if !out.ok() {
                eprintln!("scenario-fuzz: ORACLE VIOLATION\n{}", out.describe());
                let mut ctor = if shards > 1 {
                    format!("FuzzSpec::sharded(SafetyLevel::{level:?}, {shards})")
                } else {
                    format!("FuzzSpec::smoke(SafetyLevel::{level:?})")
                };
                if let Some((read_level, fraction)) = reads {
                    ctor = format!("{ctor}.with_reads(ReadLevel::{read_level:?}, {fraction})");
                }
                if let Some(fraction) = txns {
                    ctor = format!("{ctor}.with_txns({fraction})");
                }
                eprintln!("reproduce with: fuzz::run_fuzz_case({seed}, &{ctor})");
                std::process::exit(1);
            }
            if total.is_multiple_of(50) {
                println!(
                    "  {total:>4} scenarios clean ({level}, seed {seed}, {:.1}s)",
                    started.elapsed().as_secs_f64()
                );
            }
        }
    }
    println!(
        "scenario-fuzz: {total} scenarios, 0 violations \
         ({quiescent} fully audited, {with_loss} with loss bursts, \
         {commits} commits, {:.1}s)",
        started.elapsed().as_secs_f64()
    );
    if shards > 1 {
        println!(
            "  sharded envelope: {shards} groups, {cross_audited} cross-group \
             commits atomicity-audited, {group_failures} whole-group-failure runs"
        );
        assert!(
            group_failures > 0 || total < 8,
            "the sharded envelope should exercise at least one whole-group failure"
        );
    }
    if let Some((read_level, fraction)) = reads {
        println!(
            "  read-mixed envelope: {:.0} % read-only at {read_level:?}, \
             {reads_audited} local reads freshness-audited",
            fraction * 100.0
        );
        assert!(
            reads_audited > 0,
            "the read-mixed envelope should actually serve local reads"
        );
    }
    if let Some(fraction) = txns {
        println!(
            "  txn-mixed envelope: {:.0} % snapshot transactions, \
             {si_audited} delegate certifications SI-audited",
            fraction * 100.0
        );
        assert!(
            si_audited > 0 || levels == [SafetyLevel::OneSafe],
            "the txn-mixed envelope should actually certify snapshot transactions"
        );
    }
    if let Some(path) = value_after("--json") {
        let json = format!(
            "{{\"scenarios\":{total},\"violations\":0,\"quiescent\":{quiescent},\
             \"with_loss\":{with_loss},\"commits\":{commits},\
             \"shards\":{shards},\"cross_group_audited\":{cross_audited},\
             \"group_failures\":{group_failures},\"reads_audited\":{reads_audited},\
             \"si_audited\":{si_audited}}}"
        );
        std::fs::write(&path, json).expect("write json");
        println!("wrote {path}");
    }
}
