//! Ablations of the design decisions DESIGN.md §4b calls out, at one
//! moderate load point (28 tps, Table 4 configuration, 20 s windows):
//!
//! 1. write caching (sequential-batch discount) on/off — §5.1's "writes of
//!    adjacent pages … scheduled together";
//! 2. uniform vs non-uniform delivery — what the group-safety guarantee
//!    itself costs;
//! 3. hotspot on/off — the contention calibration;
//! 4. probabilistic vs real-LRU buffer — Table 4's 20 % hit model.

use groupsafe_core::{SafetyLevel, StopClient, System, Technique};
use groupsafe_db::BufferModel;
use groupsafe_sim::{SimDuration, SimTime};
use groupsafe_workload::{report, system_config, table4_generator, PaperParams, RunConfig};

fn base_cfg() -> RunConfig {
    RunConfig {
        duration: SimDuration::from_secs(20),
        ..RunConfig::paper(Technique::Dsm(SafetyLevel::GroupSafe), 28.0, 13)
    }
}

/// Run with a hook that may mutate the built SystemConfig.
fn run_with(
    cfg: &RunConfig,
    tweak: impl FnOnce(&mut groupsafe_core::SystemConfig),
) -> groupsafe_workload::RunReport {
    let mut sys_cfg = system_config(cfg);
    tweak(&mut sys_cfg);
    let params = cfg.params.clone();
    let mut system = System::build(sys_cfg, |_| table4_generator(&params));
    system.start();
    let end = SimTime::ZERO + cfg.warmup + cfg.duration;
    system.engine.run_until(end);
    for &c in &system.clients.clone() {
        system.engine.schedule_resilient(end, c, StopClient);
    }
    system.engine.run_until(end + cfg.drain);
    report(cfg, &mut system)
}

fn main() {
    println!("ablations at 28 tps (group-safe unless noted):\n");
    println!(
        "{:<44} {:>9} {:>9} {:>8}",
        "variant", "mean ms", "p95 ms", "abort%"
    );
    let show = |label: &str, r: &groupsafe_workload::RunReport| {
        println!(
            "{label:<44} {:>9.1} {:>9.1} {:>7.1}%",
            r.mean_ms,
            r.p95_ms,
            r.abort_rate * 100.0
        );
    };

    // 1. Write caching.
    let cfg = base_cfg();
    let cached = run_with(&cfg, |_| {});
    let uncached = run_with(&cfg, |sc| sc.replica.disk_sequential_factor = 1.0);
    show("write caching ON (sequential batches, 0.3x)", &cached);
    show("write caching OFF (every page random)", &uncached);
    assert!(
        cached.mean_ms < uncached.mean_ms,
        "write caching must pay for itself (the disk-write asynchrony is \
         what group-safety buys, §5.1)"
    );

    // 2. Uniform vs non-uniform delivery.
    let zero = run_with(
        &RunConfig {
            technique: Technique::Dsm(SafetyLevel::ZeroSafe),
            ..base_cfg()
        },
        |_| {},
    );
    show("\nuniform delivery (group-safe)".trim_start(), &cached);
    show("non-uniform delivery (0-safe)", &zero);
    assert!(
        zero.mean_ms <= cached.mean_ms + 2.0,
        "dropping uniformity must not be slower"
    );

    // 3. Contention.
    let uniform_items = run_with(
        &RunConfig {
            params: PaperParams {
                hot_access_fraction: 0.0,
                ..PaperParams::default()
            },
            ..base_cfg()
        },
        |_| {},
    );
    show("\nhotspot 15%/2% (default)".trim_start(), &cached);
    show("uniform access (no hotspot)", &uniform_items);
    assert!(
        uniform_items.abort_rate < cached.abort_rate,
        "the hotspot must be what drives the abort rate"
    );

    // 4. Buffer model.
    let lru = run_with(&base_cfg(), |sc| {
        // 200 pages of 10 items = 2 000 of 10 000 items cached: the
        // emergent hit ratio is workload-dependent instead of fixed.
        sc.replica.db.buffer = BufferModel::Lru { capacity: 200 };
    });
    show("\nbuffer: probabilistic 20% (Table 4)".trim_start(), &cached);
    show("buffer: real LRU, 200 pages", &lru);

    println!("\nall ablation expectations hold.");
}
