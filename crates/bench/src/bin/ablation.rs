//! Ablations of the design decisions DESIGN.md §4b calls out, at one
//! moderate load point (28 tps, Table 4 configuration, 20 s windows):
//!
//! 1. write caching (sequential-batch discount) on/off — §5.1's "writes of
//!    adjacent pages … scheduled together";
//! 2. uniform vs non-uniform delivery — what the group-safety guarantee
//!    itself costs;
//! 3. hotspot on/off — the contention calibration;
//! 4. probabilistic vs real-LRU buffer — Table 4's 20 % hit model.
//!
//! Each variant is one builder chain off a shared base.

use groupsafe_core::{Load, Report, SafetyLevel, System, SystemBuilder, WorkloadSpec};
use groupsafe_db::{BufferModel, DbConfig, FlushPolicy};
use groupsafe_sim::SimDuration;

fn base() -> SystemBuilder {
    System::builder()
        .safety(SafetyLevel::GroupSafe)
        .load(Load::closed_tps(28.0))
        // The historical harness condition: failover only after 5 s.
        .client_timeout(SimDuration::from_secs(5))
        .warmup(SimDuration::from_secs(5))
        .measure(SimDuration::from_secs(20))
        .drain(SimDuration::from_secs(3))
        .seed(13)
}

fn execute(builder: SystemBuilder) -> Report {
    builder.build().expect("a valid configuration").execute()
}

fn main() {
    println!("ablations at 28 tps (group-safe unless noted):\n");
    println!(
        "{:<44} {:>9} {:>9} {:>8}",
        "variant", "mean ms", "p95 ms", "abort%"
    );
    let show = |label: &str, r: &Report| {
        println!(
            "{label:<44} {:>9.1} {:>9.1} {:>7.1}%",
            r.mean_ms,
            r.p95_ms,
            r.abort_rate * 100.0
        );
    };

    // 1. Write caching.
    let cached = execute(base());
    let uncached = execute(base().disk_sequential_factor(1.0));
    show("write caching ON (sequential batches, 0.3x)", &cached);
    show("write caching OFF (every page random)", &uncached);
    assert!(
        cached.mean_ms < uncached.mean_ms,
        "write caching must pay for itself (the disk-write asynchrony is \
         what group-safety buys, §5.1)"
    );

    // 2. Uniform vs non-uniform delivery.
    let zero = execute(base().safety(SafetyLevel::ZeroSafe));
    show("\nuniform delivery (group-safe)".trim_start(), &cached);
    show("non-uniform delivery (0-safe)", &zero);
    assert!(
        zero.mean_ms <= cached.mean_ms + 2.0,
        "dropping uniformity must not be slower"
    );

    // 3. Contention.
    let uniform_items = execute(base().workload(WorkloadSpec {
        hot_access_fraction: 0.0,
        ..WorkloadSpec::table4()
    }));
    show("\nhotspot 15%/2% (default)".trim_start(), &cached);
    show("uniform access (no hotspot)", &uniform_items);
    assert!(
        uniform_items.abort_rate < cached.abort_rate,
        "the hotspot must be what drives the abort rate"
    );

    // 4. Buffer model.
    let lru = execute(base().db(DbConfig {
        // 200 pages of 10 items = 2 000 of 10 000 items cached: the
        // emergent hit ratio is workload-dependent instead of fixed.
        buffer: BufferModel::Lru { capacity: 200 },
        // The replica server orchestrates all flushing per safety level;
        // the engine must never flush inside `commit`.
        flush_policy: FlushPolicy::Async,
        ..DbConfig::default()
    }));
    show(
        "\nbuffer: probabilistic 20% (Table 4)".trim_start(),
        &cached,
    );
    show("buffer: real LRU, 200 pages", &lru);

    println!("\nall ablation expectations hold.");
}
