//! Table 2 reproduction: "Safety property and number of crashes" —
//! empirical crash sweeps per safety level.
//!
//! | tolerated crashes      | safety property          |
//! |------------------------|--------------------------|
//! | 0 crashes              | 0-safe, 1-safe           |
//! | less than n crashes    | group-safe, group-1-safe |
//! | n crashes              | 2-safe                   |
//!
//! For each technique we run three adversarial scenarios on n = 5 servers
//! and report whether any *acknowledged* transaction was lost:
//!
//! * `1 crash` — the delegate crashes right after acknowledging (for
//!   0-safe it is additionally isolated first: non-uniform delivery can
//!   acknowledge messages nobody else received);
//! * `n-1 crashes` — only one server survives;
//! * `n crashes` — total failure; everyone recovers and (in the dynamic
//!   model) the operator restarts the group from the most advanced
//!   recovered state.

use groupsafe_core::{SafetyLevel, Technique};
use groupsafe_sim::SimDuration;
use groupsafe_workload::{run_crash_scenario, CrashScenario, RecoveryPlan};

struct Row {
    label: &'static str,
    one: (usize, usize),
    minority: (usize, usize),
    all: (usize, usize),
}

fn scenario(technique: Technique, crash: Vec<u32>, seed: u64) -> CrashScenario {
    CrashScenario {
        recovery: if crash.len() == 5 {
            RecoveryPlan::Recover {
                downtime: SimDuration::from_millis(400),
            }
        } else {
            RecoveryPlan::StayDown
        },
        partition_before: if technique == Technique::Dsm(SafetyLevel::ZeroSafe) && crash.len() == 1
        {
            crash.clone()
        } else {
            Vec::new()
        },
        partition_hold: SimDuration::from_millis(1_500),
        ..CrashScenario::small(technique, crash, seed)
    }
}

fn run_cell(technique: Technique, crash: Vec<u32>, seed: u64) -> (usize, usize) {
    let out = run_crash_scenario(&scenario(technique, crash, seed));
    (out.acked, out.lost)
}

fn main() {
    let techniques = [
        ("0-safe", Technique::Dsm(SafetyLevel::ZeroSafe)),
        ("1-safe (lazy)", Technique::Lazy),
        ("group-safe", Technique::Dsm(SafetyLevel::GroupSafe)),
        ("group-1-safe", Technique::Dsm(SafetyLevel::GroupOneSafe)),
        ("2-safe (e2e)", Technique::Dsm(SafetyLevel::TwoSafe)),
        ("very-safe", Technique::Dsm(SafetyLevel::VerySafe)),
    ];
    println!("Table 2 — tolerated crashes (n = 5 servers, measured):");
    println!(
        "{:<14} {:>18} {:>18} {:>18}",
        "technique", "1 crash", "n-1 crashes", "n crashes"
    );
    let mut rows = Vec::new();
    for (label, tech) in techniques {
        let one = run_cell(tech, vec![0], 101);
        let minority = run_cell(tech, vec![0, 1, 2, 3], 103);
        let all = run_cell(tech, vec![0, 1, 2, 3, 4], 107);
        let cell = |(acked, lost): (usize, usize)| {
            format!(
                "{} ({}/{})",
                if lost == 0 { "ok" } else { "LOSS" },
                lost,
                acked
            )
        };
        println!(
            "{:<14} {:>18} {:>18} {:>18}",
            label,
            cell(one),
            cell(minority),
            cell(all)
        );
        rows.push(Row {
            label,
            one,
            minority,
            all,
        });
    }
    println!("\ncells show verdict (lost/acknowledged)");

    // The paper's claims, as assertions.
    let get = |l: &str| rows.iter().find(|r| r.label == l).expect("row");
    assert!(get("0-safe").one.1 > 0, "0-safe must lose under 1 crash");
    assert!(
        get("1-safe (lazy)").one.1 > 0,
        "1-safe must lose under 1 crash"
    );
    for l in ["group-safe", "group-1-safe", "2-safe (e2e)"] {
        assert_eq!(get(l).one.1, 0, "{l} must survive 1 crash");
        assert_eq!(get(l).minority.1, 0, "{l} must survive n-1 crashes");
    }
    assert!(
        get("group-safe").all.1 > 0,
        "group-safe must lose on total failure"
    );
    assert_eq!(
        get("2-safe (e2e)").all.1,
        0,
        "2-safe must survive the crash of all n servers"
    );
    for col in [
        get("very-safe").one,
        get("very-safe").minority,
        get("very-safe").all,
    ] {
        assert_eq!(col.1, 0, "very-safe can never lose (it may only block)");
    }
    println!("\nTable 2 claims verified: 0/1-safe lose at 1 crash; group levels survive < n; 2-safe survives n.");
}
