//! Sharding sweep: aggregate committed throughput vs. group count and
//! cross-group transaction ratio.
//!
//! A single group-safe group is capped by its sequencer's ordering
//! pipeline; partitioning the key space over `N` independent groups
//! multiplies that capacity, at the price of an ordered two-phase
//! protocol for the transactions that span groups. The sweep drives
//! every configuration far past one group's capacity with short
//! write-heavy transactions and measures:
//!
//! * how aggregate commit throughput scales from 1 to 4 groups at 0 %
//!   cross-group traffic (the headline: it must grow monotonically),
//! * what a 5 % / 20 % cross-group fraction costs (each cross
//!   transaction occupies two groups' pipelines plus a decision round).
//!
//! Usage: `sharding [--quick] [--csv <path>] [--json <path>]`
//!   --quick   1.5 s measurement instead of 4 s
//!   --csv     one row per (groups, cross-ratio) point
//!   --json    JSON array with the full structured reports
//!
//! The binary asserts the headline claim — throughput strictly
//! increases 1 → 2 → 4 groups at 0 % cross traffic — and exits
//! non-zero if sharding ever stops paying.

use groupsafe_bench::ordering_bound_workload;
use groupsafe_core::{Load, Report, SafetyLevel, System};
use groupsafe_sim::SimDuration;

/// Offered load (tps) far above a single 3-server group's saturation
/// point, so the measured commit rate is pipeline capacity.
const OVERLOAD_TPS: f64 = 14_000.0;

/// Servers per replica group (every configuration keeps the group size
/// fixed and scales the number of groups).
const SERVERS_PER_GROUP: u32 = 3;

fn run_point(groups: u32, cross: f64, quick: bool) -> Report {
    System::builder()
        .servers(SERVERS_PER_GROUP)
        .clients_per_server(4)
        .safety(SafetyLevel::GroupSafe)
        .shards(groups)
        .cross_shard_fraction(cross)
        // Short write-heavy transactions: the per-group ordering
        // traffic, not the read phase, dominates — the regime sharding
        // multiplies capacity in.
        .workload(ordering_bound_workload())
        .load(Load::open_tps(OVERLOAD_TPS))
        // No failover churn: the clients just queue behind the pipeline.
        .client_timeout(SimDuration::from_secs(60))
        .warmup(SimDuration::from_secs(1))
        .measure(SimDuration::from_secs_f64(if quick { 1.5 } else { 4.0 }))
        .drain(SimDuration::from_secs(2))
        .seed(42)
        .build()
        .expect("the sharding sweep configuration is valid")
        .execute()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let path_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let csv_path = path_after("--csv");
    let json_path = path_after("--json");

    let group_counts = [1u32, 2, 4];
    let cross_ratios = [0.0f64, 0.05, 0.2];
    println!(
        "Sharding sweep — group-safe, {SERVERS_PER_GROUP} servers/group, \
         {OVERLOAD_TPS:.0} tps offered (overload)"
    );
    println!(
        "{:>7} {:>7} {:>10} {:>9} {:>9} {:>11} {:>9}",
        "groups", "cross", "committed", "tps", "mean ms", "xg commits", "speedup"
    );
    let mut reports: Vec<(u32, f64, Report)> = Vec::new();
    let mut zero_cross_tps: Vec<(u32, f64)> = Vec::new();
    let mut base_tps = 0.0;
    for &groups in &group_counts {
        for &cross in &cross_ratios {
            if groups == 1 && cross > 0.0 {
                continue; // one group has nothing to cross into
            }
            let r = run_point(groups, cross, quick);
            assert_eq!(r.lost, 0, "sharding must never lose transactions");
            assert_eq!(r.distinct_states, 1, "every group must converge");
            if groups == 1 {
                base_tps = r.achieved_tps;
            }
            if cross == 0.0 {
                zero_cross_tps.push((groups, r.achieved_tps));
            }
            println!(
                "{:>7} {:>6.0}% {:>10} {:>9.1} {:>9.1} {:>11} {:>8.2}x",
                groups,
                cross * 100.0,
                r.commits,
                r.achieved_tps,
                r.mean_ms,
                r.cross_group_commits,
                r.achieved_tps / base_tps.max(1e-9),
            );
            reports.push((groups, cross, r));
        }
    }

    // The headline gate: aggregate capacity grows with every doubling of
    // the group count when no transaction crosses groups.
    for w in zero_cross_tps.windows(2) {
        let (g0, t0) = w[0];
        let (g1, t1) = w[1];
        assert!(
            t1 > t0,
            "sharding stopped paying: {g1} groups committed {t1:.1} tps \
             <= {g0} groups at {t0:.1} tps"
        );
    }
    let (gmax, tmax) = *zero_cross_tps.last().expect("swept");
    println!(
        "monotonic scaling holds: 1 group {base_tps:.1} tps -> {gmax} groups {tmax:.1} tps \
         ({:.2}x) at 0% cross traffic",
        tmax / base_tps.max(1e-9)
    );

    if let Some(path) = csv_path {
        let mut csv =
            String::from("groups,cross_ratio,commits,achieved_tps,mean_ms,cross_group_commits\n");
        for (groups, cross, r) in &reports {
            csv.push_str(&format!(
                "{},{:.2},{},{:.2},{:.2},{}\n",
                groups, cross, r.commits, r.achieved_tps, r.mean_ms, r.cross_group_commits
            ));
        }
        std::fs::write(&path, csv).expect("write csv");
        println!("wrote {path}");
    }
    if let Some(path) = json_path {
        let mut json = String::from("[");
        for (i, (groups, cross, r)) in reports.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"groups\":{groups},\"cross_ratio\":{cross:.2},\"report\":{}}}",
                r.to_json()
            ));
        }
        json.push(']');
        std::fs::write(&path, json).expect("write json");
        println!("wrote {path}");
    }
}
