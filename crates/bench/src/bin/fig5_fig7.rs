//! Fig. 5 / Fig. 7 reproduction: the unrecoverable-failure scenario under
//! classic atomic broadcast, and its recovery under end-to-end atomic
//! broadcast — plus the §3 variant where even a persistent GC log cannot
//! help without the end-to-end property.
//!
//! The scenario (paper §3): a transaction's message m is delivered on all
//! three servers; the delegate commits and answers the client; then every
//! server crashes before S2/S3 process m. On recovery, can the system
//! still commit m?

use groupsafe_gcs::harness::{Cluster, RestartGroupCmd};
use groupsafe_gcs::GcsConfig;
use groupsafe_net::NodeId;
use groupsafe_sim::{SimDuration, SimTime};

fn ms(v: u64) -> SimTime {
    SimTime::from_millis(v)
}

struct Outcome {
    recovered: usize,
    n: u32,
}

fn run_scenario(label: &str, cfg: GcsConfig, restart: bool) -> Outcome {
    let n = 3;
    let mut cluster = Cluster::with_process_delay(n, cfg, 1234, SimDuration::from_millis(50));
    // t is broadcast at 10 ms; delivery completes within ~20 ms; the
    // processing (logging) would finish at ~60 ms or later.
    cluster.broadcast_at(ms(10), NodeId(0), 4242);
    // Everyone crashes inside the delivered-but-unprocessed window.
    for &h in &cluster.hosts {
        cluster.engine.schedule_crash(ms(45), h);
    }
    for &h in &cluster.hosts {
        cluster.engine.schedule_recover(ms(100), h);
    }
    if restart {
        // Dynamic model, total failure: operator restarts the group.
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        for &h in &cluster.hosts {
            cluster
                .engine
                .schedule_resilient(ms(300), h, RestartGroupCmd(members.clone()));
        }
    }
    cluster.engine.run_until(ms(2_000));
    let recovered = (0..n)
        .filter(|&i| cluster.stable_values(NodeId(i)).contains(&4242))
        .count();
    println!(
        "  {label:<44} t recovered on {recovered}/{n} servers  {}",
        if recovered == n as usize {
            "-> 2-safe behaviour"
        } else {
            "-> transaction LOST"
        }
    );
    Outcome { recovered, n }
}

fn main() {
    println!("Fig. 5 / Fig. 7 — total failure inside the delivery-to-processing window:\n");
    let fig5 = run_scenario(
        "Fig. 5: classic atomic broadcast (view-based)",
        GcsConfig::view_based_uniform(),
        true,
    );
    let sect3 = run_scenario(
        "§3: crash-recovery log, no end-to-end property",
        GcsConfig::crash_recovery(),
        false,
    );
    let fig7 = run_scenario(
        "Fig. 7: end-to-end atomic broadcast",
        GcsConfig::end_to_end(),
        false,
    );
    assert_eq!(fig5.recovered, 0, "Fig. 5: t must be lost everywhere");
    assert_eq!(
        sect3.recovered, 0,
        "§3: uniform integrity forbids replay; t must be lost"
    );
    assert_eq!(
        fig7.recovered, fig7.n as usize,
        "Fig. 7: end-to-end replay must recover t everywhere"
    );
    println!("\nAll three verdicts match the paper: only end-to-end atomic broadcast");
    println!("recovers the delivered-but-unprocessed transaction (refined uniform");
    println!("integrity allows the redelivery that classic integrity forbids).");
}
