//! Batching sweep: committed throughput vs. the abcast batch size under
//! open-loop overload.
//!
//! The group-safe pipeline pays one ordered message plus one stability
//! vote per replica for every transaction; at saturation that ordering
//! traffic — not the data path — caps throughput. The sweep drives the
//! Table 4 group (9 servers) far past its unbatched capacity with short
//! write-heavy transactions and measures how the knee moves as the
//! sequencer packs more transactions per frame (`max_msgs` from 1 to
//! 32, 1 ms flush deadline).
//!
//! Usage: `batching [--quick] [--csv <path>] [--json <path>]`
//!   --quick   2 s measurement instead of 6 s
//!   --csv     one row per batch size
//!   --json    JSON array with the full structured reports
//!
//! The binary asserts the headline claim: at the highest load point,
//! `max_msgs = 32` commits at least 2× what `max_msgs = 1` does on the
//! same seed. It exits non-zero if batching ever stops paying.

use groupsafe_bench::ordering_bound_workload;
use groupsafe_core::{BatchConfig, Load, Report, SafetyLevel, System};
use groupsafe_sim::SimDuration;

/// Offered load (tps) far above the unbatched saturation point, so the
/// measured commit rate is the pipeline's capacity, not the offered
/// rate.
const OVERLOAD_TPS: f64 = 4_000.0;

fn run_point(max_msgs: usize, quick: bool) -> Report {
    System::builder()
        .servers(9)
        .clients_per_server(4)
        .safety(SafetyLevel::GroupSafe)
        .batching(BatchConfig {
            max_msgs,
            max_bytes: 0,
            max_delay: SimDuration::from_millis(1),
        })
        // Short write-heavy transactions: the ordering traffic, not the
        // read phase, dominates — the regime batching is built for.
        .workload(ordering_bound_workload())
        .load(Load::open_tps(OVERLOAD_TPS))
        // No failover churn: the clients just queue behind the pipeline.
        .client_timeout(SimDuration::from_secs(60))
        .warmup(SimDuration::from_secs(1))
        .measure(SimDuration::from_secs(if quick { 2 } else { 6 }))
        .drain(SimDuration::from_secs(2))
        .seed(42)
        .build()
        .expect("the batching sweep configuration is valid")
        .execute()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let path_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let csv_path = path_after("--csv");
    let json_path = path_after("--json");

    let sizes = [1usize, 2, 4, 8, 16, 32];
    println!("Batching sweep — group-safe, 9 servers, {OVERLOAD_TPS:.0} tps offered (overload)");
    println!(
        "{:>9} {:>10} {:>9} {:>9} {:>11} {:>12} {:>9}",
        "max_msgs", "committed", "tps", "mean ms", "batch size", "votes/deliv", "speedup"
    );
    let mut reports: Vec<(usize, Report)> = Vec::new();
    let mut base_tps = 0.0;
    for &max_msgs in &sizes {
        let r = run_point(max_msgs, quick);
        assert_eq!(r.lost, 0, "batching must never lose transactions");
        assert_eq!(r.distinct_states, 1, "replicas must converge");
        if max_msgs == 1 {
            base_tps = r.achieved_tps;
        }
        println!(
            "{:>9} {:>10} {:>9.1} {:>9.1} {:>11.1} {:>12.2} {:>8.2}x",
            max_msgs,
            r.commits,
            r.achieved_tps,
            r.mean_ms,
            r.mean_batch_size,
            r.votes_per_delivery,
            r.achieved_tps / base_tps.max(1e-9),
        );
        reports.push((max_msgs, r));
    }

    if let Some(path) = csv_path {
        let mut out =
            String::from("max_msgs,commits,achieved_tps,mean_ms,p95_ms,mean_batch_size,votes_per_delivery,abcast_batches\n");
        for (m, r) in &reports {
            out.push_str(&format!(
                "{},{},{:.2},{:.2},{:.2},{:.2},{:.3},{}\n",
                m,
                r.commits,
                r.achieved_tps,
                r.mean_ms,
                r.p95_ms,
                r.mean_batch_size,
                r.votes_per_delivery,
                r.abcast_batches
            ));
        }
        std::fs::write(&path, out).expect("write csv");
        println!("wrote {path}");
    }
    if let Some(path) = json_path {
        let rows: Vec<String> = reports
            .iter()
            .map(|(m, r)| format!("{{\"max_msgs\":{},\"report\":{}}}", m, r.to_json()))
            .collect();
        std::fs::write(&path, format!("[{}]\n", rows.join(",\n"))).expect("write json");
        println!("wrote {path}");
    }

    let top = &reports.last().expect("non-empty sweep").1;
    let speedup = top.achieved_tps / base_tps.max(1e-9);
    assert!(
        speedup >= 2.0,
        "batching must at least double saturated commit throughput \
         (measured {speedup:.2}x: {base_tps:.0} -> {:.0} tps)",
        top.achieved_tps
    );
    assert!(
        top.mean_batch_size > 4.0,
        "the overload must actually fill batches (mean {:.1})",
        top.mean_batch_size
    );
    println!("claim holds: max_msgs=32 commits {speedup:.2}x the unbatched pipeline at saturation");
}
