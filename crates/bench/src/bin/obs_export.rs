//! Deterministic observability exporter: run the pinned reference
//! scenario with the full structured event stream and write the two
//! exporter artefacts —
//!
//! * a Chrome trace-event JSON (`OBS_trace.json`), loadable in
//!   Perfetto / `chrome://tracing`, one instant event per pipeline
//!   stage on the emitting actor's track, and
//! * a Prometheus text-format snapshot (`OBS_metrics.prom`) of the
//!   engine's counters, histogram summaries and per-stage event
//!   counts.
//!
//! Everything is stamped with *simulated* time only, so both files are
//! byte-identical on every run and every machine — the committed copies
//! double as golden files (`--check` regenerates and compares).
//!
//! Usage: `obs_export [--trace PATH] [--prom PATH] [--check] [--phases]`
//!   --trace   where to write the Chrome trace (default OBS_trace.json)
//!   --prom    where to write the Prometheus snapshot (default
//!             OBS_metrics.prom)
//!   --check   do not write; diff the regenerated artefacts against the
//!             files on disk and exit non-zero on any byte difference
//!   --phases  print the commit-pipeline phase decomposition of the
//!             pinned scenario at every DSM safety level instead (the
//!             EXPERIMENTS.md table; deterministic, markdown rows)

use groupsafe_core::{Load, SafetyLevel, System};
use groupsafe_sim::{prometheus_snapshot, ObsConfig, SimDuration};

/// The pinned reference scenario: small enough to finish in seconds,
/// busy enough that every commit-pipeline stage appears in the trace.
fn artefacts() -> (String, String) {
    let mut run = System::builder()
        .servers(3)
        .clients_per_server(2)
        .safety(SafetyLevel::GroupSafe)
        .load(Load::open_tps(10.0))
        .measure(SimDuration::from_secs(4))
        .seed(42)
        .observe(ObsConfig::stream())
        .build()
        .expect("the pinned reference configuration is valid");
    let end = run.measure_end();
    run.run_until(end);
    run.stop_clients_at(end);
    run.run_until(end + SimDuration::from_secs(2));
    let engine = &run.system().engine;
    let trace = engine.obs().chrome_trace();
    let prom = prometheus_snapshot(engine.metrics(), engine.obs());
    (trace, prom)
}

/// The pinned scenario at each DSM safety level: where each level's
/// latency actually goes, phase by phase (the EXPERIMENTS.md table).
fn print_phase_table() {
    println!("| level | commits | submit | exec | commit | reply | total (ms) |");
    println!("|---|---|---|---|---|---|---|");
    for level in [
        SafetyLevel::ZeroSafe,
        SafetyLevel::GroupSafe,
        SafetyLevel::GroupOneSafe,
        SafetyLevel::TwoSafe,
        SafetyLevel::VerySafe,
    ] {
        let report = System::builder()
            .servers(3)
            .clients_per_server(2)
            .safety(level)
            .load(Load::open_tps(10.0))
            .measure(SimDuration::from_secs(4))
            .drain(SimDuration::from_secs(2))
            .seed(42)
            .observe(ObsConfig::stream())
            .build()
            .expect("valid")
            .execute();
        let p = report
            .obs_phases
            .first()
            .expect("stream mode always yields the global row");
        println!(
            "| {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} |",
            report.technique,
            p.commits,
            p.submit_ms,
            p.exec_ms,
            p.commit_ms,
            p.reply_ms,
            p.total_ms()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let value_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let trace_path = value_after("--trace").unwrap_or_else(|| "OBS_trace.json".to_string());
    let prom_path = value_after("--prom").unwrap_or_else(|| "OBS_metrics.prom".to_string());
    let check = args.iter().any(|a| a == "--check");

    if args.iter().any(|a| a == "--phases") {
        print_phase_table();
        return;
    }

    let (trace, prom) = artefacts();

    if check {
        let mut failed = false;
        for (path, fresh) in [(&trace_path, &trace), (&prom_path, &prom)] {
            match std::fs::read_to_string(path) {
                Ok(on_disk) if on_disk == *fresh => {
                    println!("obs-export: {path} matches the pinned scenario");
                }
                Ok(_) => {
                    eprintln!(
                        "obs-export: {path} DIFFERS from the regenerated artefact \
                         (rerun `obs_export` to refresh it)"
                    );
                    failed = true;
                }
                Err(e) => {
                    eprintln!("obs-export: cannot read {path}: {e}");
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }

    std::fs::write(&trace_path, &trace).expect("write chrome trace");
    std::fs::write(&prom_path, &prom).expect("write prometheus snapshot");
    println!(
        "obs-export: wrote {trace_path} ({} bytes) and {prom_path} ({} bytes)",
        trace.len(),
        prom.len()
    );
}
