//! Table 4 reproduction: the simulator parameters actually in use —
//! printed in the paper's layout, from the canonical `PaperParams`.

use groupsafe_workload::PaperParams;

fn main() {
    let p = PaperParams::default();
    println!("Table 4 — simulator parameters:\n");
    print!("{}", p.render_table());
    println!("\nExtensions beyond Table 4 (documented in DESIGN.md):");
    println!(
        "{:<50} {:.0}% of accesses to {:.0}% of items",
        "Hotspot (abort-rate calibration)",
        p.hot_access_fraction * 100.0,
        p.hot_set_fraction * 100.0
    );
}
