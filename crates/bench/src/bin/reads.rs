//! Read-path sweep: committed read throughput vs. read fraction and
//! read level, against the broadcast-read baseline.
//!
//! A broadcast read pays the full group-safe ordering round — sequencer
//! forward, ordered frame, one stability vote per replica, certification
//! at every delivery — exactly like an update. A local follower read
//! pays a network hop and the serving replica's CPU, and the load
//! spreads over *all* replicas of the owning group. The sweep drives a
//! group-safe group far past the ordering pipeline's capacity with a
//! mostly-cached, read-heavy workload and measures committed read
//! throughput per (read fraction × read path) point.
//!
//! Usage: `reads [--quick] [--csv <path>] [--json <path>]`
//!   --quick   1.5 s measurement instead of 4 s
//!   --csv     one row per (fraction, path) point
//!   --json    JSON array with the full structured reports
//!
//! The binary asserts the headline claim — at a 90 % read mix,
//! `ReadLevel::Session` serves at least 5× the committed read
//! throughput of the broadcast-reads baseline — and exits non-zero if
//! the local path ever stops paying.

use groupsafe_bench::read_bound_workload;
use groupsafe_core::{Load, ReadLevel, ReadPath, Report, SafetyLevel, System};
use groupsafe_db::{BufferModel, DbConfig};
use groupsafe_sim::SimDuration;

/// Offered load (tps) far above the broadcast pipeline's saturation
/// point, so the measured rates are capacity, not the offered rate.
const OVERLOAD_TPS: f64 = 9_000.0;

/// Servers in the (single) replica group.
const SERVERS: u32 = 3;

fn run_point(path: ReadPath, read_fraction: f64, quick: bool) -> Report {
    System::builder()
        .servers(SERVERS)
        .clients_per_server(6)
        .safety(SafetyLevel::GroupSafe)
        .read_path(path)
        // Mostly-cached database: the ordering round — not the data
        // disks — is what a broadcast read pays and a local read skips.
        .db(DbConfig {
            buffer: BufferModel::Probabilistic { hit_ratio: 0.95 },
            ..DbConfig::default()
        })
        .workload(read_bound_workload(read_fraction))
        .load(Load::open_tps(OVERLOAD_TPS))
        // No failover churn: the clients just queue behind the pipeline.
        .client_timeout(SimDuration::from_secs(60))
        .warmup(SimDuration::from_secs(1))
        .measure(SimDuration::from_secs_f64(if quick { 1.5 } else { 4.0 }))
        .drain(SimDuration::from_secs(2))
        .seed(42)
        .build()
        .expect("the read sweep configuration is valid")
        .execute()
}

fn label(path: ReadPath) -> &'static str {
    path.label()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let path_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let csv_path = path_after("--csv");
    let json_path = path_after("--json");

    let fractions = [0.5, 0.9];
    let paths = [
        ReadPath::Broadcast,
        ReadPath::Local(ReadLevel::Stable),
        ReadPath::Local(ReadLevel::Session),
        ReadPath::Local(ReadLevel::Latest),
    ];
    println!(
        "Read sweep — group-safe, {SERVERS} servers, {OVERLOAD_TPS:.0} tps offered (overload)"
    );
    println!(
        "{:>9} {:>14} {:>9} {:>10} {:>9} {:>10} {:>10} {:>9}",
        "read mix", "path", "reads", "read tps", "tps", "read ms", "redirects", "speedup"
    );
    let mut reports: Vec<(f64, ReadPath, Report)> = Vec::new();
    let mut gate: Option<f64> = None; // broadcast read tps at the 90 % mix
    let mut session_90 = 0.0f64;
    for &fraction in &fractions {
        let mut base_read_tps = 0.0f64;
        for &path in &paths {
            let r = run_point(path, fraction, quick);
            assert_eq!(r.lost, 0, "the read path must never lose transactions");
            assert_eq!(r.distinct_states, 1, "replicas must converge");
            if path == ReadPath::Broadcast {
                base_read_tps = r.read_tps;
                if fraction == 0.9 {
                    gate = Some(r.read_tps);
                }
            }
            if path == ReadPath::Local(ReadLevel::Session) && fraction == 0.9 {
                session_90 = r.read_tps;
            }
            println!(
                "{:>8.0}% {:>14} {:>9} {:>10.1} {:>9.1} {:>10.2} {:>10} {:>8.2}x",
                fraction * 100.0,
                label(path),
                r.reads,
                r.read_tps,
                r.achieved_tps,
                r.read_mean_ms,
                r.read_redirects,
                r.read_tps / base_read_tps.max(1e-9),
            );
            reports.push((fraction, path, r));
        }
    }

    if let Some(path) = csv_path {
        let mut out = String::from(
            "read_fraction,path,reads,read_tps,read_mean_ms,read_redirects,read_staleness,\
             achieved_tps,commits,mean_ms\n",
        );
        for (fr, p, r) in &reports {
            out.push_str(&format!(
                "{},{},{},{:.2},{:.2},{},{:.3},{:.2},{},{:.2}\n",
                fr,
                label(*p),
                r.reads,
                r.read_tps,
                r.read_mean_ms,
                r.read_redirects,
                r.read_staleness,
                r.achieved_tps,
                r.commits,
                r.mean_ms
            ));
        }
        std::fs::write(&path, out).expect("write csv");
        println!("wrote {path}");
    }
    if let Some(path) = json_path {
        let rows: Vec<String> = reports
            .iter()
            .map(|(fr, p, r)| {
                format!(
                    "{{\"read_fraction\":{},\"path\":\"{}\",\"report\":{}}}",
                    fr,
                    label(*p),
                    r.to_json()
                )
            })
            .collect();
        std::fs::write(&path, format!("[{}]\n", rows.join(",\n"))).expect("write json");
        println!("wrote {path}");
    }

    let base = gate.expect("the sweep ran the 90 % broadcast baseline");
    let speedup = session_90 / base.max(1e-9);
    assert!(
        speedup >= 5.0,
        "session follower reads must serve at least 5x the broadcast baseline \
         at a 90 % read mix (measured {speedup:.2}x: {base:.0} -> {session_90:.0} read tps)"
    );
    println!(
        "claim holds: session reads serve {speedup:.2}x the broadcast baseline \
         at the 90 % mix ({base:.0} -> {session_90:.0} read tps)"
    );
}
