//! Table 1 reproduction: the safety matrix — which safety level follows
//! from (transaction delivered on …) × (transaction logged on …) — plus
//! two empirical anchors from the crash machinery.

use groupsafe_core::{Guarantee, SafetyLevel, Technique};
use groupsafe_core::table1;
use groupsafe_workload::{run_crash_scenario, CrashScenario};

fn cell_label(d: Guarantee, l: Guarantee) -> String {
    match table1(d, l) {
        Some(level) => level.to_string(),
        None => "—".to_string(),
    }
}

fn main() {
    println!("Table 1 — safety levels by (delivered × logged) guarantees:\n");
    println!(
        "{:<22} {:>14} {:>14} {:>14}",
        "delivered \\ logged", "no replica", "1 replica", "all replicas"
    );
    for (dl, dg) in [
        ("1 replica", Guarantee::OneReplica),
        ("all replicas", Guarantee::AllReplicas),
    ] {
        println!(
            "{:<22} {:>14} {:>14} {:>14}",
            dl,
            cell_label(dg, Guarantee::NoReplica),
            cell_label(dg, Guarantee::OneReplica),
            cell_label(dg, Guarantee::AllReplicas),
        );
    }

    println!("\nPer-level properties (Tables 1–2 as code):");
    println!(
        "{:<14} {:>12} {:>12} {:>22} {:>14}",
        "level", "delivered", "logged", "tolerated crashes (n=9)", "reply pre-log"
    );
    for level in [
        SafetyLevel::ZeroSafe,
        SafetyLevel::OneSafe,
        SafetyLevel::GroupSafe,
        SafetyLevel::GroupOneSafe,
        SafetyLevel::TwoSafe,
        SafetyLevel::VerySafe,
    ] {
        let g = |g: Guarantee| match g {
            Guarantee::NoReplica => "none",
            Guarantee::OneReplica => "one",
            Guarantee::AllReplicas => "all",
        };
        println!(
            "{:<14} {:>12} {:>12} {:>22} {:>14}",
            level.to_string(),
            g(level.delivered_on()),
            g(level.logged_on()),
            level.tolerated_crashes(9),
            level.reply_before_logging(),
        );
    }

    // Empirical anchors: the matrix's two extremes, measured.
    println!("\nEmpirical anchors (n = 5, delegate crash):");
    let lazy = run_crash_scenario(&CrashScenario::small(Technique::Lazy, vec![0], 301));
    println!(
        "  1-safe (logged on one):      lost {}/{} acknowledged  (loss expected)",
        lazy.lost, lazy.acked
    );
    let gs = run_crash_scenario(&CrashScenario::small(
        Technique::Dsm(SafetyLevel::GroupSafe),
        vec![0],
        307,
    ));
    println!(
        "  group-safe (delivered on all): lost {}/{} acknowledged  (no loss expected)",
        gs.lost, gs.acked
    );
    assert!(lazy.lost > 0, "1-safe anchor must exhibit loss");
    assert_eq!(gs.lost, 0, "group-safe anchor must not lose");
    println!("\nTable 1 anchors verified.");
}
