//! Table 1 reproduction: the safety matrix — which safety level follows
//! from (transaction delivered on …) × (transaction logged on …) — plus
//! two empirical anchors from the crash machinery.

use groupsafe_core::table1;
use groupsafe_core::{Guarantee, SafetyLevel, Technique};
use groupsafe_workload::{run_crash_scenario, CrashScenario};

fn cell_label(d: Guarantee, l: Guarantee) -> String {
    match table1(d, l) {
        Some(level) => level.to_string(),
        None => "—".to_string(),
    }
}

fn main() {
    println!("Table 1 — safety levels by (delivered × logged) guarantees:\n");
    println!(
        "{:<22} {:>14} {:>14} {:>14}",
        "delivered \\ logged", "no replica", "1 replica", "all replicas"
    );
    for (dl, dg) in [
        ("1 replica", Guarantee::OneReplica),
        ("all replicas", Guarantee::AllReplicas),
    ] {
        println!(
            "{:<22} {:>14} {:>14} {:>14}",
            dl,
            cell_label(dg, Guarantee::NoReplica),
            cell_label(dg, Guarantee::OneReplica),
            cell_label(dg, Guarantee::AllReplicas),
        );
    }

    println!("\nPer-level properties (Tables 1–2 as code):");
    println!(
        "{:<14} {:>12} {:>12} {:>22} {:>14}",
        "level", "delivered", "logged", "tolerated crashes (n=9)", "reply pre-log"
    );
    for level in [
        SafetyLevel::ZeroSafe,
        SafetyLevel::OneSafe,
        SafetyLevel::GroupSafe,
        SafetyLevel::GroupOneSafe,
        SafetyLevel::TwoSafe,
        SafetyLevel::VerySafe,
    ] {
        let g = |g: Guarantee| match g {
            Guarantee::NoReplica => "none",
            Guarantee::OneReplica => "one",
            Guarantee::AllReplicas => "all",
        };
        println!(
            "{:<14} {:>12} {:>12} {:>22} {:>14}",
            level.to_string(),
            g(level.delivered_on()),
            g(level.logged_on()),
            level.tolerated_crashes(9),
            level.reply_before_logging(),
        );
    }

    // Empirical anchors: the matrix's two extremes, measured. Loss at a
    // delegate crash is a *window*, so each anchor accumulates a few
    // adversarial seeds.
    println!("\nEmpirical anchors (n = 5, delegate crash, 4 seeds):");
    let anchor = |technique: Technique| -> (usize, usize) {
        let mut acked = 0;
        let mut lost = 0;
        for seed in [301, 307, 311, 313] {
            let out = run_crash_scenario(&CrashScenario {
                load_tps: 40.0,
                ..CrashScenario::small(technique, vec![0], seed)
            });
            acked += out.acked;
            lost += out.lost;
        }
        (acked, lost)
    };
    let (lazy_acked, lazy_lost) = anchor(Technique::Lazy);
    println!(
        "  1-safe (logged on one):      lost {lazy_lost}/{lazy_acked} acknowledged  (loss expected)"
    );
    let (gs_acked, gs_lost) = anchor(Technique::Dsm(SafetyLevel::GroupSafe));
    println!(
        "  group-safe (delivered on all): lost {gs_lost}/{gs_acked} acknowledged  (no loss expected)"
    );
    assert!(lazy_lost > 0, "1-safe anchor must exhibit loss");
    assert_eq!(gs_lost, 0, "group-safe anchor must not lose");
    println!("\nTable 1 anchors verified.");
}
