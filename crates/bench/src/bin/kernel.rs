//! Kernel microbench: raw simulated-event throughput (wall-clock).
//!
//! Two scenarios exercise the two halves of the sim-kernel hot path:
//!
//! * `storm` — a closed-loop timer ping-pong across 16 actors: pure
//!   scheduler + event-allocation cost, no payload to speak of.
//! * `multicast` — the abcast delivery shape: a sequencer fans an
//!   `OrderedBatch`-sized payload (128 entries, each with read/write
//!   sets) out to 9 replicas every round and waits for their acks.
//!
//! Each scenario runs twice: once in the *legacy* idiom (binary-heap
//! scheduler, every replica receives its own deep clone of the batch —
//! the pre-overhaul hot path) and once *tuned* (timing-wheel scheduler,
//! slab-allocated events, one `Rc`-shared batch). Both idioms execute
//! the identical event schedule, so their kernel fingerprints must
//! agree — the bench asserts it — and the events/sec ratio isolates
//! the kernel overhead the overhaul removed.
//!
//! Usage: `kernel [--quick] [--json <path>]`
//!
//! The binary asserts the tentpole gate — the tuned multicast scenario
//! moves at least 10× the events/sec of the legacy idiom — and exits
//! non-zero if the kernel ever regresses below it.

// Wall-clock measurement is this bench's entire purpose: GS-D02
// exempts `crates/bench`, and the clippy mirror of that ban is
// waived here for the same reason.
#![allow(clippy::disallowed_types)]

use std::rc::Rc;
use std::time::Instant;

use groupsafe_sim::{
    Actor, ActorId, Ctx, Engine, ObsConfig, ObsEvent, Payload, Scheduler, SimDuration, SimTime,
};

/// Replicas the batch fans out to (the paper's largest group, n = 9).
const REPLICAS: usize = 9;
/// Application messages packed per ordered batch frame (PR 2 regime).
const BATCH: usize = 128;
/// Read-set / write-set entries per transaction in the batch.
const OPS: usize = 4;

// ---------------------------------------------------------------------
// Payloads: the shape of an abcast `OrderedBatch` delivery.
// ---------------------------------------------------------------------

/// One transaction inside a batch frame (mirrors `gcs::Entry<DsmMsg>`).
#[derive(Clone)]
struct BatchEntry {
    seq: u64,
    origin: u32,
    counter: u64,
    readset: Vec<(u64, u64)>,
    writes: Vec<(u64, i64)>,
    era: u64,
}

/// A batch frame as fanned out to the group.
#[derive(Clone)]
struct BatchFrame {
    view: u64,
    entries: Vec<BatchEntry>,
}

fn make_frame(round: u64) -> BatchFrame {
    BatchFrame {
        view: 1,
        entries: (0..BATCH as u64)
            .map(|i| BatchEntry {
                seq: round * BATCH as u64 + i,
                origin: (i % REPLICAS as u64) as u32,
                counter: i,
                readset: (0..OPS as u64).map(|k| (i * 31 + k, round + k)).collect(),
                writes: (0..OPS as u64).map(|k| (i * 37 + k, k as i64)).collect(),
                era: 1,
            })
            .collect(),
    }
}

/// Fold the delivery-time work of a frame — log append + write-set apply —
/// into a checksum so the work (and any clone feeding it) cannot be
/// optimised away. Deliberately touches only the header and write sets:
/// heavier application CPU (certification scans, lock tables) is modelled
/// as *simulated* time by the harness and must not leak into the
/// wall-clock this microbench isolates. Read sets still ride in the frame,
/// so the wire/log clones of the legacy idiom pay for them in full.
fn digest(frame: &BatchFrame, acc: &mut u64) {
    for e in &frame.entries {
        *acc = acc
            .wrapping_mul(0x100000001b3)
            .wrapping_add(e.seq ^ e.counter ^ e.era ^ frame.view ^ e.origin as u64)
            .wrapping_add((e.readset.len() as u64) << 32);
        for &(i, v) in &e.writes {
            *acc = acc.wrapping_add(i ^ v as u64);
        }
    }
}

/// Per-receiver delivery, legacy idiom: an owned deep clone.
struct DeepDelivery(BatchFrame);
/// Per-receiver delivery, tuned idiom: a shared refcount bump.
struct SharedDelivery(Rc<BatchFrame>);
/// Replica → sequencer stability ack.
struct Ack;
/// Kick off (or continue) a round at the sequencer.
struct NextRound;

// ---------------------------------------------------------------------
// Actors
// ---------------------------------------------------------------------

const WIRE: SimDuration = SimDuration::from_micros(70);

struct Sequencer {
    replicas: Vec<ActorId>,
    rounds_left: u64,
    acks_pending: usize,
    share: bool,
}

impl Actor for Sequencer {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        let payload = match payload.downcast::<NextRound>() {
            Ok(_) => {
                if self.rounds_left == 0 {
                    return;
                }
                self.rounds_left -= 1;
                self.acks_pending = self.replicas.len();
                let fanout = self.replicas.len() as u32;
                ctx.emit(|| ObsEvent::MulticastSend { fanout });
                let frame = make_frame(self.rounds_left);
                if self.share {
                    let shared = Rc::new(frame);
                    for &r in &self.replicas {
                        ctx.send(r, WIRE, SharedDelivery(Rc::clone(&shared)));
                    }
                } else {
                    for &r in &self.replicas {
                        ctx.send(r, WIRE, DeepDelivery(frame.clone()));
                    }
                }
                return;
            }
            Err(p) => p,
        };
        match payload.downcast::<Ack>() {
            Ok(_) => {
                self.acks_pending -= 1;
                if self.acks_pending == 0 {
                    ctx.timer(SimDuration::from_micros(10), NextRound);
                }
            }
            Err(_) => panic!("sequencer: unhandled event payload"),
        }
    }
    fn name(&self) -> &str {
        "sequencer"
    }
}

/// Ordered-log frames a replica retains before its watermark GC kicks
/// in (mirrors the stable-watermark pruning of the real message log).
const LOG_DEPTH: usize = 4;

struct Replica {
    sequencer: ActorId,
    log_deep: Vec<BatchFrame>,
    log_shared: Vec<Rc<BatchFrame>>,
    checksum: u64,
}

impl Replica {
    fn gc(&mut self) {
        if self.log_deep.len() > LOG_DEPTH {
            self.log_deep.remove(0);
        }
        if self.log_shared.len() > LOG_DEPTH {
            self.log_shared.remove(0);
        }
    }
}

impl Actor for Replica {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        // The legacy idiom copies the frame three times per replica,
        // exactly like the pre-overhaul pipeline: once onto the wire
        // (done by the sender), once into the ordered message log, and
        // once more handing entries to the delivery callback. The tuned
        // idiom logs a refcount bump and delivers by reference.
        let payload = match payload.downcast::<DeepDelivery>() {
            Ok(d) => {
                let seq = d.0.entries.first().map_or(0, |e| e.seq);
                ctx.emit(|| ObsEvent::UniformDeliver { seq });
                self.log_deep.push(d.0);
                let delivered = self.log_deep.last().expect("just pushed").clone();
                digest(&delivered, &mut self.checksum);
                self.gc();
                ctx.send(self.sequencer, WIRE, Ack);
                return;
            }
            Err(p) => p,
        };
        match payload.downcast::<SharedDelivery>() {
            Ok(d) => {
                let seq = d.0.entries.first().map_or(0, |e| e.seq);
                ctx.emit(|| ObsEvent::UniformDeliver { seq });
                self.log_shared.push(Rc::clone(&d.0));
                digest(&d.0, &mut self.checksum);
                self.gc();
                ctx.send(self.sequencer, WIRE, Ack);
            }
            Err(_) => panic!("replica: unhandled event payload"),
        }
    }
    fn name(&self) -> &str {
        "replica"
    }
}

/// Timer ping-pong across a small actor set: pure scheduler churn.
struct Pinger {
    peers: Vec<ActorId>,
    next: usize,
    remaining: u64,
}

struct Ping;

impl Actor for Pinger {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, payload: Payload) {
        match payload.downcast::<Ping>() {
            Ok(_) => {
                if self.remaining == 0 {
                    return;
                }
                self.remaining -= 1;
                let target = self.peers[self.next % self.peers.len()];
                self.next += 1;
                // Mixed horizons keep several wheel levels (heap depths)
                // occupied, like real timer + wire-latency traffic.
                let delay = match self.next % 4 {
                    0 => SimDuration::from_nanos(1),
                    1 => SimDuration::from_micros(70),
                    2 => SimDuration::from_millis(1),
                    _ => SimDuration::from_millis(50),
                };
                ctx.send(target, delay, Ping);
            }
            Err(_) => panic!("pinger: unhandled event payload"),
        }
    }
    fn name(&self) -> &str {
        "pinger"
    }
}

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

struct Sample {
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    fingerprint: u64,
    /// Folded replica apply checksums (multicast scenario only).
    checksum: u64,
}

fn engine(legacy: bool, obs: ObsConfig) -> Engine {
    let mut eng = if legacy {
        Engine::new_with_scheduler(1, Scheduler::LegacyHeap)
    } else {
        Engine::new(1)
    };
    eng.set_obs(obs);
    eng
}

fn run_multicast(rounds: u64, legacy: bool, share: bool, obs: ObsConfig) -> Sample {
    let mut eng = engine(legacy, obs);
    let seq = eng.add_actor(Box::new(Sequencer {
        replicas: Vec::new(),
        rounds_left: rounds,
        acks_pending: 0,
        share,
    }));
    let replicas: Vec<ActorId> = (0..REPLICAS)
        .map(|_| {
            eng.add_actor(Box::new(Replica {
                sequencer: seq,
                log_deep: Vec::new(),
                log_shared: Vec::new(),
                checksum: 0,
            }))
        })
        .collect();
    eng.actor_mut::<Sequencer>(seq).replicas = replicas.clone();
    eng.schedule(SimTime::ZERO, seq, NextRound);
    let start = Instant::now();
    eng.run_to_completion();
    let wall = start.elapsed().as_secs_f64();
    let checksum = replicas
        .iter()
        .fold(0u64, |acc, &r| acc ^ eng.actor::<Replica>(r).checksum);
    Sample {
        events: eng.dispatched(),
        wall_s: wall,
        events_per_sec: eng.dispatched() as f64 / wall.max(1e-9),
        fingerprint: eng.fingerprint(),
        checksum,
    }
}

fn run_storm(messages: u64, legacy: bool) -> Sample {
    // At bench saturation (9k offered tps) the real system keeps thousands
    // of arrivals + timers queued; a matching standing population is what
    // separates the O(1) wheel from the O(log n) heap.
    const ACTORS: usize = 1024;
    let mut eng = engine(legacy, ObsConfig::disabled());
    let ids: Vec<ActorId> = (0..ACTORS)
        .map(|_| {
            eng.add_actor(Box::new(Pinger {
                peers: Vec::new(),
                next: 0,
                remaining: messages / ACTORS as u64,
            }))
        })
        .collect();
    for (i, &id) in ids.iter().enumerate() {
        let mut peers = ids.clone();
        peers.rotate_left(i + 1);
        eng.actor_mut::<Pinger>(id).peers = peers;
        eng.schedule(SimTime::from_nanos(i as u64), id, Ping);
    }
    let start = Instant::now();
    eng.run_to_completion();
    let wall = start.elapsed().as_secs_f64();
    Sample {
        events: eng.dispatched(),
        wall_s: wall,
        events_per_sec: eng.dispatched() as f64 / wall.max(1e-9),
        fingerprint: eng.fingerprint(),
        checksum: 0,
    }
}

fn row(scenario: &str, idiom: &str, s: &Sample) {
    println!(
        "{:>10} {:>7} {:>12} {:>9.3}s {:>14.0}",
        scenario, idiom, s.events, s.wall_s, s.events_per_sec
    );
}

fn json_obj(scenario: &str, idiom: &str, s: &Sample) -> String {
    format!(
        "{{\"scenario\":\"{}\",\"idiom\":\"{}\",\"events\":{},\"wall_s\":{:.4},\"events_per_sec\":{:.0},\"fingerprint\":\"{:#018x}\"}}",
        scenario, idiom, s.events, s.wall_s, s.events_per_sec, s.fingerprint
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let rounds: u64 = if quick { 2_000 } else { 6_000 };
    let messages: u64 = if quick { 400_000 } else { 1_200_000 };

    println!("Kernel microbench — {REPLICAS} replicas, {BATCH}-entry batches, {OPS}-op txns");
    println!(
        "{:>10} {:>7} {:>12} {:>10} {:>14}",
        "scenario", "idiom", "events", "wall", "events/sec"
    );

    let storm_legacy = run_storm(messages, true);
    row("storm", "legacy", &storm_legacy);
    let storm_tuned = run_storm(messages, false);
    row("storm", "tuned", &storm_tuned);
    assert_eq!(
        storm_legacy.fingerprint, storm_tuned.fingerprint,
        "schedulers must dispatch the identical event sequence"
    );

    let mc_legacy = run_multicast(rounds, true, false, ObsConfig::disabled());
    row("multicast", "legacy", &mc_legacy);
    let mc_tuned = run_multicast(rounds, false, true, ObsConfig::disabled());
    row("multicast", "tuned", &mc_tuned);
    assert_eq!(
        mc_legacy.fingerprint, mc_tuned.fingerprint,
        "payload sharing must not alter the event sequence"
    );
    assert_eq!(
        mc_legacy.checksum, mc_tuned.checksum,
        "replicas must apply identical frame contents under both idioms"
    );

    // Observability overhead: the same tuned multicast schedule with the
    // full structured event stream recording versus recording disabled.
    // Recording must never alter the dispatched schedule (identical
    // fingerprints) and full tracing must stay within the overhead gate;
    // the disabled mode costs one branch per emission, so `mc_tuned`
    // above already *is* the obs-off baseline.
    let mc_obs = run_multicast(rounds, false, true, ObsConfig::stream());
    row("multicast", "obs", &mc_obs);
    assert_eq!(
        mc_tuned.fingerprint, mc_obs.fingerprint,
        "obs recording must not alter the event sequence"
    );
    assert_eq!(
        mc_tuned.checksum, mc_obs.checksum,
        "obs recording must not alter delivered frame contents"
    );

    let storm_ratio = storm_tuned.events_per_sec / storm_legacy.events_per_sec.max(1e-9);
    let mc_ratio = mc_tuned.events_per_sec / mc_legacy.events_per_sec.max(1e-9);
    let obs_ratio = mc_obs.events_per_sec / mc_tuned.events_per_sec.max(1e-9);
    println!("storm speedup:     {storm_ratio:.2}x");
    println!("multicast speedup: {mc_ratio:.2}x  (gate: >= 10x)");
    println!("obs full tracing:  {obs_ratio:.2}x of obs-off  (gate: >= 0.85x)");

    if let Some(path) = json_path {
        let objs = [
            json_obj("storm", "legacy", &storm_legacy),
            json_obj("storm", "tuned", &storm_tuned),
            json_obj("multicast", "legacy", &mc_legacy),
            json_obj("multicast", "tuned", &mc_tuned),
            json_obj("multicast", "obs", &mc_obs),
        ];
        let body = format!(
            "[{},\n{},\n{},\n{},\n{},\n{{\"storm_speedup\":{:.4},\"multicast_speedup\":{:.4},\
             \"obs_ratio\":{:.4}}}]\n",
            objs[0], objs[1], objs[2], objs[3], objs[4], storm_ratio, mc_ratio, obs_ratio
        );
        std::fs::write(&path, body).expect("write json report");
        println!("wrote {path}");
    }

    assert!(
        mc_ratio >= 10.0,
        "kernel gate: tuned multicast must run >= 10x the legacy idiom (got {mc_ratio:.2}x)"
    );
    assert!(
        obs_ratio >= 0.85,
        "obs gate: full tracing must keep >= 85 % of the obs-off \
         event rate (got {obs_ratio:.2}x)"
    );
}
