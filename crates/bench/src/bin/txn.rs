//! Snapshot-transaction sweep: abort rate and throughput vs.
//! `txn_fraction` and operations-per-transaction, against the classic
//! first-writer-wins baseline at a contended 50 % read mix.
//!
//! The classic pipeline certifies whole read sets: with broadcast
//! (strictly serializable) reads, every read-only transaction is a
//! certification target any concurrent writer can invalidate, and past
//! the pipeline's knee the abort rate storms to ~0.42. Snapshot
//! transactions serve reads off the multi-version store and certify
//! write sets only (first-committer-wins), so the same offered mix
//! certifies an order of magnitude fewer conflict candidates. The sweep
//! drives the identical contended mix through both pipelines and
//! measures abort rate per (txn_fraction × ops-per-transaction) point.
//!
//! Usage: `txn [--quick] [--csv <path>] [--json <path>]`
//!   --quick   only the gate points (classic baseline + all-snapshot
//!             headline) at the full measurement window — shrinking the
//!             window instead would dissolve the queueing the abort
//!             storm is made of, and the gate would pass vacuously
//!   --csv     one row per sweep point
//!   --json    JSON array with the full structured reports
//!
//! The binary asserts the headline claim — at the 50 % read mix whose
//! classic baseline aborts ≥ 0.3 of attempts, the all-snapshot mix
//! holds the abort rate under 0.1 — and exits non-zero if snapshot
//! certification ever stops paying.

use groupsafe_core::{Load, ReadConfig, Report, SafetyLevel, System, WorkloadSpec};
use groupsafe_sim::SimDuration;

/// Offered load (tps) just past the classic pipeline's knee at the
/// 50 % read mix: enough contention for the read-set abort storm
/// without collapsing the snapshot runs' throughput.
const CONTENDED_TPS: f64 = 32.0;

/// Servers in the (single) replica group.
const SERVERS: u32 = 3;

fn run_point(txn_fraction: f64, ops: Option<(usize, usize)>) -> Report {
    let mut b = System::builder()
        .servers(SERVERS)
        .clients_per_server(4)
        .safety(SafetyLevel::GroupSafe)
        // Strictly serializable reads: the baseline's read-only
        // transactions certify their full read sets, which is exactly
        // the storm the snapshot path dissolves.
        .reads(ReadConfig::broadcast())
        .workload(WorkloadSpec {
            read_fraction: 0.5,
            ..WorkloadSpec::default()
        })
        .txn_fraction(txn_fraction)
        .load(Load::open_tps(CONTENDED_TPS))
        .measure(SimDuration::from_secs(20))
        .drain(SimDuration::from_secs(2))
        .seed(11);
    if let Some((lo, hi)) = ops {
        b = b.txn_ops(lo, hi);
    }
    b.build()
        .expect("the transaction sweep configuration is valid")
        .execute()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let path_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let csv_path = path_after("--csv");
    let json_path = path_after("--json");

    // (txn_fraction, ops-per-transaction range); None = the classic
    // baseline and the spec's Table 4 default respectively.
    let full: [(f64, Option<(usize, usize)>); 6] = [
        (0.0, None),
        (0.25, Some((10, 20))),
        (0.5, Some((10, 20))),
        (1.0, Some((4, 8))),
        (1.0, Some((10, 20))),
        (1.0, Some((20, 30))),
    ];
    let gates_only = [(0.0, None), (1.0, Some((10, 20)))];
    let points: &[(f64, Option<(usize, usize)>)] = if quick { &gates_only } else { &full };
    println!(
        "Snapshot-transaction sweep — group-safe, {SERVERS} servers, \
         50 % read mix, {CONTENDED_TPS:.0} tps offered (contended)"
    );
    println!(
        "{:>8} {:>8} {:>8} {:>11} {:>10} {:>10} {:>10} {:>9}",
        "txn mix", "ops/txn", "commits", "abort rate", "txn commit", "txn abort", "txn rate", "tps"
    );
    type SweepRow = (f64, Option<(usize, usize)>, Report);
    let mut reports: Vec<SweepRow> = Vec::new();
    let mut baseline = 0.0f64;
    let mut headline = 1.0f64;
    for &(fraction, ops) in points {
        let r = run_point(fraction, ops);
        assert_eq!(r.lost, 0, "the snapshot mix must never lose transactions");
        assert_eq!(r.distinct_states, 1, "replicas must converge");
        if fraction == 0.0 {
            baseline = r.abort_rate;
        }
        if fraction == 1.0 && ops == Some((10, 20)) {
            headline = r.abort_rate;
        }
        println!(
            "{:>7.0}% {:>8} {:>8} {:>11.3} {:>10} {:>10} {:>10.3} {:>9.1}",
            fraction * 100.0,
            ops.map_or_else(|| "tbl4".to_string(), |(lo, hi)| format!("{lo}-{hi}")),
            r.commits,
            r.abort_rate,
            r.txn_commits,
            r.txn_aborts,
            r.txn_abort_rate,
            r.achieved_tps,
        );
        reports.push((fraction, ops, r));
    }

    if let Some(path) = csv_path {
        let mut out = String::from(
            "txn_fraction,ops_min,ops_max,commits,abort_rate,txn_commits,txn_aborts,\
             txn_abort_rate,achieved_tps,mean_ms\n",
        );
        for (fr, ops, r) in &reports {
            let (lo, hi) = ops.unwrap_or((0, 0));
            out.push_str(&format!(
                "{},{},{},{},{:.4},{},{},{:.4},{:.2},{:.2}\n",
                fr,
                lo,
                hi,
                r.commits,
                r.abort_rate,
                r.txn_commits,
                r.txn_aborts,
                r.txn_abort_rate,
                r.achieved_tps,
                r.mean_ms
            ));
        }
        std::fs::write(&path, out).expect("write csv");
        println!("wrote {path}");
    }
    if let Some(path) = json_path {
        let rows: Vec<String> = reports
            .iter()
            .map(|(fr, ops, r)| {
                let (lo, hi) = ops.unwrap_or((0, 0));
                format!(
                    "{{\"txn_fraction\":{},\"ops_min\":{},\"ops_max\":{},\"report\":{}}}",
                    fr,
                    lo,
                    hi,
                    r.to_json()
                )
            })
            .collect();
        std::fs::write(&path, format!("[{}]\n", rows.join(",\n"))).expect("write json");
        println!("wrote {path}");
    }

    assert!(
        baseline >= 0.3,
        "the classic baseline's abort storm has moved (measured {baseline:.3}, \
         historically ~0.39-0.42) — retune CONTENDED_TPS before trusting the sweep"
    );
    assert!(
        headline < 0.1,
        "snapshot transactions must hold the abort rate under 0.1 at the mix \
         the classic pipeline aborts {baseline:.3} of (measured {headline:.3})"
    );
    println!(
        "claim holds: the all-snapshot mix aborts {headline:.3} of attempts where \
         the classic pipeline aborts {baseline:.3} ({:.1}x fewer)",
        baseline / headline.max(1e-9)
    );
}
