//! Table 3 reproduction: when do group-safe and group-1-safe actually
//! lose transactions?
//!
//! |              | group ok | group fails, Sd survives* | group fails, Sd crashes |
//! |--------------|----------|---------------------------|-------------------------|
//! | group-safe   | no loss  | possible loss             | possible loss           |
//! | group-1-safe | no loss  | no loss                   | possible loss           |
//!
//! *"Sd survives" means the delegate's log eventually comes back: we model
//! it as a total failure where every server recovers (all logs return).
//! "Sd crashes" keeps server 0 down forever, so the transactions it
//! delegated — logged only there under group-1-safety — are gone.
//! (The paper notes the middle column does not exist in pure
//! update-everywhere settings, since every server delegates for someone;
//! the experiment isolates it by examining the recovered logs.)

use groupsafe_core::{SafetyLevel, Technique};
use groupsafe_sim::SimDuration;
use groupsafe_workload::{run_crash_scenario, CrashScenario, RecoveryPlan};

/// Run the scenario over several seeds: Table 3 claims are about
/// *possible* loss, so one adversarial instant is enough.
fn cell(technique: Technique, scenario: u8, seed: u64) -> (usize, usize) {
    let mut acked = 0;
    let mut lost = 0;
    for s in 0..6 {
        let (a, l) = cell_once(technique, scenario, seed + s * 13);
        acked += a;
        lost += l;
    }
    (acked, lost)
}

fn cell_once(technique: Technique, scenario: u8, seed: u64) -> (usize, usize) {
    let base = CrashScenario {
        load_tps: 30.0,
        ..CrashScenario::small(technique, vec![0, 1, 2, 3, 4], seed)
    };
    let sc = match scenario {
        // Group does not fail: a minority crash only.
        0 => CrashScenario {
            crash: vec![1, 2],
            recovery: RecoveryPlan::StayDown,
            ..base
        },
        // Group fails simultaneously; every server (and so every delegate
        // log) recovers. Group-safe has acknowledged transactions inside
        // everyone's asynchronous-flush window; group-1-safe has not (each
        // acknowledgement followed a delegate log force, and the most
        // advanced recovered log is a superset of all durable prefixes).
        1 => CrashScenario {
            recovery: RecoveryPlan::Recover {
                downtime: SimDuration::from_millis(400),
            },
            ..base
        },
        // Group fails the same way, but server 0 never recovers: whatever
        // only its log held is gone.
        2 => CrashScenario {
            recovery: RecoveryPlan::Recover {
                downtime: SimDuration::from_millis(400),
            },
            crash_last: Some((0, SimDuration::from_millis(250))),
            stay_down: vec![0],
            ..base
        },
        _ => unreachable!(),
    };
    let out = run_crash_scenario(&sc);
    (out.acked, out.lost)
}

fn main() {
    println!("Table 3 — loss conditions, group-safe vs group-1-safe (n = 5, measured):");
    println!(
        "{:<14} {:>16} {:>22} {:>22}",
        "technique", "group ok", "fails, logs return", "fails, Sd gone"
    );
    let mut results = Vec::new();
    for (label, tech) in [
        ("group-safe", Technique::Dsm(SafetyLevel::GroupSafe)),
        ("group-1-safe", Technique::Dsm(SafetyLevel::GroupOneSafe)),
    ] {
        let a = cell(tech, 0, 211);
        let b = cell(tech, 1, 223);
        let c = cell(tech, 2, 227);
        let f = |(acked, lost): (usize, usize)| {
            format!(
                "{} ({}/{})",
                if lost == 0 { "no loss" } else { "LOSS" },
                lost,
                acked
            )
        };
        println!("{:<14} {:>16} {:>22} {:>22}", label, f(a), f(b), f(c));
        results.push((label, a, b, c));
    }
    println!("\ncells show verdict (lost/acknowledged)");

    let gs = results[0];
    let g1s = results[1];
    assert_eq!(gs.1 .1, 0, "group-safe: no loss while the group holds");
    assert_eq!(g1s.1 .1, 0, "group-1-safe: no loss while the group holds");
    assert!(
        gs.2 .1 > 0,
        "group-safe loses when the group fails even if all logs return"
    );
    assert_eq!(
        g1s.2 .1, 0,
        "group-1-safe survives group failure when the delegate logs return"
    );
    assert!(
        g1s.3 .1 > 0,
        "group-1-safe loses when the delegate never recovers"
    );
    println!(
        "\nTable 3 claims verified: the middle column is exactly where \
         group-1-safety pays off — and §5.2 argues it is empty in \
         update-everywhere settings, making group-safe the better deal."
    );
}
