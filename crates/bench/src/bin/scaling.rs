//! §7 / Fig. 10 reproduction: lazy replication's risk *grows* with the
//! number of servers, group-safe replication's risk *shrinks*.
//!
//! * Lazy: in an update-everywhere setting, the chance that two
//!   transactions from different delegates conflict — and silently lose
//!   an update, violating ACID with **no failure at all** — grows with n.
//!   Measured: lost updates per 1 000 acknowledged commits, full
//!   simulation, per-server load held constant.
//! * Group-safe: ACID is violated only if the *group* fails (all n crash
//!   concurrently). With independent crash probability p per server, that
//!   chance is pⁿ — it shrinks as n grows. Measured by Monte-Carlo
//!   sampling of the crash model (the paper's own argument is analytic).

use groupsafe_core::{Load, SafetyLevel, System};
use groupsafe_sim::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn lazy_lost_updates(n: u32, seed: u64) -> (usize, usize) {
    let r = System::builder()
        .servers(n)
        .clients_per_server(4)
        .safety(SafetyLevel::OneSafe)
        // Constant per-server load: the system grows with n.
        .load(Load::open_tps(4.0 * n as f64))
        // The historical harness condition: failover only after 5 s.
        .client_timeout(SimDuration::from_secs(5))
        .lazy_prop_interval(SimDuration::from_millis(100))
        .warmup(SimDuration::from_secs(2))
        .measure(SimDuration::from_secs(20))
        .drain(SimDuration::from_secs(2))
        .seed(seed)
        .build()
        .expect("a valid configuration")
        .execute();
    (r.lost_updates, r.commits)
}

fn group_failure_fraction(n: u32, p: f64, trials: u32, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fails = 0u32;
    for _ in 0..trials {
        if (0..n).all(|_| rng.random_bool(p)) {
            fails += 1;
        }
    }
    fails as f64 / trials as f64
}

fn main() {
    let ns = [3u32, 5, 7, 9, 12, 15];
    let p = 0.3;
    let trials = 200_000;
    println!("§7 / Fig. 10 — risk as the group grows (per-server load fixed at 4 tps):\n");
    println!(
        "{:>3} {:>26} {:>30}",
        "n", "lazy lost-updates /1k acks", "P(group-safe violation) = p^n"
    );
    let mut lazy_rates = Vec::new();
    let mut gs_rates = Vec::new();
    for &n in &ns {
        let (lu, acks) = lazy_lost_updates(n, 900 + n as u64);
        let rate = lu as f64 * 1000.0 / acks.max(1) as f64;
        let gf = group_failure_fraction(n, p, trials, 77 + n as u64);
        println!(
            "{n:>3} {:>20.2} ({lu:>3}/{acks:>5}) {:>21.6} (p={p})",
            rate, gf
        );
        lazy_rates.push(rate);
        gs_rates.push(gf);
    }
    println!();
    // Shape checks: lazy risk grows, group-safe risk shrinks.
    assert!(
        lazy_rates.last().expect("nonempty") > lazy_rates.first().expect("nonempty"),
        "lazy lost-update rate must grow with n"
    );
    assert!(
        gs_rates.windows(2).all(|w| w[1] <= w[0]),
        "group-failure probability must shrink with n"
    );
    println!(
        "shape verified: \"the chances that something bad happens increases with n \
         for lazy replication, and decreases with group-safe replication\" (§7)"
    );
}
