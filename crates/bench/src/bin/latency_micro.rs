//! §6 microbenchmark: "writing to disk takes around 8 ms, while
//! performing an atomic broadcast takes approximately 1 ms" — the whole
//! case for delegating durability from stable storage to the group.

use groupsafe_gcs::harness::Cluster;
use groupsafe_gcs::GcsConfig;
use groupsafe_net::NodeId;
use groupsafe_sim::{Disk, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mean disk access time on an idle disk.
fn disk_mean_ms() -> f64 {
    let mut rng = StdRng::seed_from_u64(5);
    let mut disk = Disk::paper_default();
    let n = 2_000u64;
    let mut total_ms = 0.0;
    for i in 0..n {
        // Idle disk: each access starts well after the previous finished.
        let start = SimTime::from_millis(i * 50);
        let done = disk.access(start, &mut rng);
        total_ms += (done - start).as_millis_f64();
    }
    total_ms / n as f64
}

/// Mean submit-to-delivery latency of the uniform atomic broadcast at the
/// submitting node, measured on an idle 9-server group.
fn abcast_mean_ms() -> f64 {
    let servers = 9u32;
    let mut cluster = Cluster::new(servers, GcsConfig::view_based_uniform(), 7);
    let count = 500u64;
    let spacing = 20u64;
    // Single origin: its i-th delivery corresponds to its i-th broadcast
    // (total order preserves a single submitter's order on an idle group).
    for i in 0..count {
        cluster.broadcast_at(SimTime::from_millis(100 + i * spacing), NodeId(0), i);
    }
    cluster
        .engine
        .run_until(SimTime::from_millis(100 + (count + 50) * spacing));
    let obs = cluster.obs.borrow();
    let recs = obs
        .deliveries
        .get(&NodeId(0))
        .expect("deliveries at origin");
    assert_eq!(recs.len() as u64, count, "all broadcasts must deliver");
    let mut total = 0.0;
    for (i, r) in recs.iter().enumerate() {
        let submitted = SimTime::from_millis(100 + i as u64 * spacing);
        total += (r.at - submitted).as_millis_f64();
    }
    total / count as f64
}

fn main() {
    let disk_ms = disk_mean_ms();
    let abcast_ms = abcast_mean_ms();
    println!("§6 durability-cost comparison (Table 4 parameters):\n");
    println!("  disk write (random access, idle disk):       {disk_ms:>6.2} ms");
    println!("  uniform atomic broadcast (9 servers, idle):  {abcast_ms:>6.2} ms");
    println!(
        "  -> durability by the group is ~{:.0}x cheaper than by the disk",
        disk_ms / abcast_ms.max(1e-9)
    );
    assert!(
        (7.0..9.0).contains(&disk_ms),
        "disk mean should be ~8 ms, got {disk_ms}"
    );
    assert!(
        abcast_ms < 1.5,
        "abcast should be ~1 ms or less, got {abcast_ms}"
    );
    println!("\nmatches §6: \"writing to disk takes around 8 ms, while performing an");
    println!("atomic broadcast takes approximately 1 ms\"");
}
