//! Network node identities.

use std::fmt;

/// Identifies a node on the simulated LAN (a database server or a client
/// machine). Distinct from [`groupsafe_sim::ActorId`]: the network maps
/// node identities to the actors that implement them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(NodeId(3).index(), 3);
        assert!(NodeId(1) < NodeId(2));
    }
}
