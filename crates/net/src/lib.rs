//! # groupsafe-net — simulated LAN for the group-safety reproduction
//!
//! Models the network of the paper's Table 4: a 100 Mb/s LAN where a
//! message or broadcast takes 0.07 ms on the wire and costs 0.07 ms of CPU
//! at each endpoint. Supports partitions and probabilistic loss for fault
//! injection. Messages to crashed nodes are lost (the kernel's incarnation
//! check), matching the paper's failure model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod network;
pub mod node;

pub use network::{Incoming, NetConfig, NetStats, Network, NET_CPU};
pub use node::NodeId;
